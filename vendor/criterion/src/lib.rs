//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Implements the subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`,
//! `criterion_group!`/`criterion_main!` and `black_box` — with simple
//! wall-clock timing printed to stdout. No statistics, plots or HTML
//! reports; the point is that `cargo bench` compiles and produces usable
//! numbers without network access to crates.io.

use std::time::Instant;

/// Prevents the optimizer from eliding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, _parent: self }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.into(), 10, &mut f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{id}", self.name), self.sample_size, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Per-benchmark timing handle passed to the closure.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, calling it once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label}: no samples");
        return;
    }
    b.samples.sort_by(f64::total_cmp);
    let median = b.samples[b.samples.len() / 2];
    let best = b.samples[0];
    println!(
        "{label}: median {:.3} ms, best {:.3} ms ({} samples)",
        median * 1e3,
        best * 1e3,
        b.samples.len()
    );
}

/// Collects benchmark functions into a runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $bench(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
