//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no network access to
//! crates.io, so the external `rand` dependency is replaced by this local
//! implementation of the small API subset the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`],
//! [`Rng::gen_bool`] and [`Rng::gen`].
//!
//! The generator is a deterministic `xoshiro256**`; it is seeded exactly,
//! so experiment reproducibility within this workspace is preserved, but
//! streams differ from the upstream crate.

use std::ops::{Range, RangeInclusive};

/// Sources of randomness: the subset of the upstream `RngCore` surface the
/// workspace needs.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled from a half-open or inclusive range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            // `as` is required: the macro instantiates for usize/isize,
            // which have no `From` conversion to i128.
            #[allow(clippy::cast_lossless)]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (low as i128 + v) as $t
            }
            #[allow(clippy::cast_lossless)]
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range called with empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (low as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                low + unit * (high - low)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range called with empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                low + unit * (high - low)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Argument adapter for [`Rng::gen_range`], accepting `a..b` and `a..=b`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// Values [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from `range` (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        f64::draw(self) < p
    }

    /// Draws a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic `xoshiro256**` generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_state(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A non-deterministic entry point, mirroring `rand::thread_rng` (seeded
/// from the system time; fresh per call).
#[must_use]
pub fn thread_rng() -> rngs::StdRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0x5EED, |d| u64::from(d.subsec_nanos()) ^ d.as_secs());
    <rngs::StdRng as SeedableRng>::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-6i16..=6);
            assert!((-6..=6).contains(&v));
            let f = rng.gen_range(0.08f64..0.25);
            assert!((0.08..0.25).contains(&f));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((600..1400).contains(&heads), "heads {heads}");
    }
}
