//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build container has no network access to crates.io, so this local
//! crate implements the subset of the proptest API the workspace's test
//! suites use: the [`proptest!`] macro, `prop_assert*`/`prop_assume`,
//! range/tuple/collection strategies, `any::<T>()`, `prop_map` /
//! `prop_flat_map`, [`prop_oneof!`] and `ProptestConfig::with_cases`.
//!
//! Semantic differences from upstream: cases are drawn from a
//! deterministic per-test RNG (no persistence files, no failure
//! *shrinking*) — a failing case reports the case index so it can be
//! reproduced by rerunning the test.

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples its strategies for a number of cases
/// and runs the body, which may use `prop_assert*`/`prop_assume`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        u64::from(__case),
                    );
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                            panic!("property '{}' failed at case {}: {}", stringify!($name), __case, __msg)
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                __l, __r, format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}`",
                __l, __r
            )));
        }
    }};
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniformly picks one of several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
