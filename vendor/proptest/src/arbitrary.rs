//! `any::<T>()`: full-range strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngCore;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-range strategy for `T` (e.g. `any::<usize>()`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Uniform in [0, 1): ties test usage to a bounded, useful default.
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
