//! Value-generation strategies: the core [`Strategy`] trait and its
//! combinators.

use crate::test_runner::TestRng;
use rand::SampleUniform;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// sampler. The combinator methods carry `where Self: Sized` so the trait
/// stays object-safe ([`BoxedStrategy`] is a plain trait object).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent second strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (rejection sampling with a
    /// bounded number of retries).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, pred }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Box::new(self) }
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V> {
    inner: Box<dyn Strategy<Value = V>>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        self.inner.sample(rng)
    }
}

/// Strategy always producing a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 consecutive samples", self.whence)
    }
}

/// Uniform choice between strategies (the [`crate::prop_oneof!`] macro).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `options`, each equally likely.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let k = usize::sample_range(rng, 0, self.options.len());
        self.options[k].sample(rng)
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
