//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::SampleUniform;
use std::ops::{Range, RangeInclusive};

/// A length specification for collection strategies: an exact size, `a..b`
/// or `a..=b`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// A strategy producing `Vec`s of values from `element`, with lengths drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = usize::sample_range_inclusive(rng, self.size.min, self.size.max);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
