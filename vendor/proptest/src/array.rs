//! Fixed-size array strategies (`prop::array::uniform8`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

macro_rules! uniform_array {
    ($($fname:ident => $n:literal),+ $(,)?) => {$(
        /// An array of values all drawn from one element strategy.
        pub fn $fname<S: Strategy>(element: S) -> UniformArray<S, $n> {
            UniformArray { element }
        }
    )+};
}

uniform_array! {
    uniform2 => 2,
    uniform4 => 4,
    uniform8 => 8,
    uniform16 => 16,
    uniform32 => 32,
}

/// See [`uniform8`] and friends.
pub struct UniformArray<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];

    fn sample(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.sample(rng))
    }
}
