//! Test-case execution support: configuration, RNG and case outcomes.

use rand::{rngs::StdRng, SeedableRng};

/// Per-`proptest!` block configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Number of cases sampled per property.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 48 }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was skipped by `prop_assume!`.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure outcome with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (skip) outcome with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// The deterministic RNG strategies draw from: seeded from the fully
/// qualified test name and the case index, so every run of a test samples
/// the same sequence of cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// The RNG for case `case` of the property named `name`.
    #[must_use]
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { inner: StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
