//! The system-level study of the paper's Sec. 5 in miniature: push an image
//! through the gate-level DCT→IDCT chain at a fixed clock with fresh and
//! aged delays, and watch aging destroy the picture.
//!
//! Run with: `cargo run --release --example image_chain`
//! (writes PGM files into `target/example-images/`)

use reliaware::bti::AgingScenario;
use reliaware::flow::{annotation_from_sta, run_image_chain, CharConfig, Characterizer};
use reliaware::imgproc::{psnr, synthetic, write_pgm};
use reliaware::sta::{analyze, Constraints};
use reliaware::stdcells::CellSet;
use reliaware::synth::{synthesize, MapOptions};
use std::path::PathBuf;

fn main() {
    let characterizer = Characterizer::new(CellSet::minimal(), CharConfig::fast());
    println!("characterizing libraries...");
    let fresh = characterizer.library(&AgingScenario::fresh());
    let aged = characterizer.library(&AgingScenario::worst_case(10.0));

    println!("synthesizing DCT and IDCT...");
    let dct_design = reliaware::circuits::dct8();
    let idct_design = reliaware::circuits::idct8();
    let options = MapOptions::default();
    let dct = synthesize(&dct_design.aig, &fresh, &options).expect("dct");
    let idct = synthesize(&idct_design.aig, &fresh, &options).expect("idct");

    let c = Constraints::default();
    let period = analyze(&dct, &fresh, &c)
        .expect("sta")
        .critical_delay()
        .max(analyze(&idct, &fresh, &c).expect("sta").critical_delay())
        * 1.001;
    println!("clock period = {:.1} ps (fresh critical path, no guardband)", period * 1e12);

    let image = synthetic::test_image(24, 24, 11);
    let out_dir = PathBuf::from("target/example-images");
    std::fs::create_dir_all(&out_dir).expect("output dir");
    std::fs::write(out_dir.join("original.pgm"), write_pgm(&image)).expect("write");

    for (label, lib) in [("fresh", &fresh), ("aged_10y_worst", &aged)] {
        let dct_ann = annotation_from_sta(&dct, lib, &c).expect("sta");
        let idct_ann = annotation_from_sta(&idct, lib, &c).expect("sta");
        let result = run_image_chain(
            &image,
            &dct,
            &dct_design,
            &idct,
            &idct_design,
            lib,
            &dct_ann,
            &idct_ann,
            period,
        )
        .expect("chain");
        let file = out_dir.join(format!("{label}.pgm"));
        std::fs::write(&file, write_pgm(&result.output)).expect("write");
        println!(
            "{label:>15}: PSNR {:>6.1} dB, {} late events -> {}",
            result.psnr_db,
            result.late_events,
            file.display()
        );
        let _ = psnr(&image, &result.output);
    }
    println!("\nOpen the PGMs with any image viewer to see the paper's Fig. 7 effect.");
}
