//! The system-level study of the paper's Sec. 5 in miniature: push an image
//! through the gate-level DCT→IDCT chain at a fixed clock with fresh and
//! aged delays, and watch aging destroy the picture.
//!
//! Run with: `cargo run --release --example image_chain`
//! (writes PGM files into `target/example-images/`)

use reliaware::bti::AgingScenario;
use reliaware::flow::{
    annotation_from_sta, run_image_chain, run_main, CharConfig, Characterizer, FlowError,
};
use reliaware::imgproc::{psnr, synthetic, write_pgm};
use reliaware::sta::{analyze, Constraints};
use reliaware::stdcells::CellSet;
use reliaware::synth::{synthesize, MapOptions};
use std::path::PathBuf;
use std::process::ExitCode;

fn run() -> Result<(), FlowError> {
    let characterizer = Characterizer::new(CellSet::minimal(), CharConfig::fast())?;
    println!("characterizing libraries...");
    let fresh = characterizer.library(&AgingScenario::fresh())?;
    let aged = characterizer.library(&AgingScenario::worst_case(10.0))?;

    println!("synthesizing DCT and IDCT...");
    let dct_design = reliaware::circuits::dct8();
    let idct_design = reliaware::circuits::idct8();
    let options = MapOptions::default();
    let dct = synthesize(&dct_design.aig, &fresh, &options)?;
    let idct = synthesize(&idct_design.aig, &fresh, &options)?;

    let c = Constraints::default();
    let period = analyze(&dct, &fresh, &c)?
        .critical_delay()
        .max(analyze(&idct, &fresh, &c)?.critical_delay())
        * 1.001;
    println!("clock period = {:.1} ps (fresh critical path, no guardband)", period * 1e12);

    let image = synthetic::test_image(24, 24, 11);
    let out_dir = PathBuf::from("target/example-images");
    std::fs::create_dir_all(&out_dir).map_err(|e| FlowError::io(out_dir.display(), &e))?;
    let original = out_dir.join("original.pgm");
    std::fs::write(&original, write_pgm(&image))
        .map_err(|e| FlowError::io(original.display(), &e))?;

    for (label, lib) in [("fresh", &fresh), ("aged_10y_worst", &aged)] {
        let dct_ann = annotation_from_sta(&dct, lib, &c)?;
        let idct_ann = annotation_from_sta(&idct, lib, &c)?;
        let result = run_image_chain(
            &image,
            &dct,
            &dct_design,
            &idct,
            &idct_design,
            lib,
            &dct_ann,
            &idct_ann,
            period,
        )?;
        let file = out_dir.join(format!("{label}.pgm"));
        std::fs::write(&file, write_pgm(&result.output))
            .map_err(|e| FlowError::io(file.display(), &e))?;
        println!(
            "{label:>15}: PSNR {:>6.1} dB, {} late events -> {}",
            result.psnr_db,
            result.late_events,
            file.display()
        );
        let _ = psnr(&image, &result.output);
    }
    println!("\nOpen the PGMs with any image viewer to see the paper's Fig. 7 effect.");
    Ok(())
}

fn main() -> ExitCode {
    run_main(run)
}
