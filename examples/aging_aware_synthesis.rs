//! Aging-aware synthesis (paper Fig. 4(c)): synthesize a design with the
//! initial library and with the degradation-aware library, and compare
//! required vs contained guardbands, area and frequency.
//!
//! Run with: `cargo run --release --example aging_aware_synthesis`

use reliaware::bti::AgingScenario;
use reliaware::flow::{compare_synthesis, run_main, CharConfig, Characterizer, FlowError};
use reliaware::stdcells::CellSet;
use reliaware::synth::MapOptions;
use std::process::ExitCode;

fn run() -> Result<(), FlowError> {
    // A slightly richer cell set than `minimal` so the mapper has real
    // choices; still seconds-fast at the reduced grid.
    let cells = CellSet::nangate45_like().subset(&[
        "INV_X1", "INV_X2", "INV_X4", "BUF_X2", "NAND2_X1", "NAND2_X2", "NOR2_X1", "NOR2_X2",
        "AND2_X1", "OR2_X1", "XOR2_X1", "XNOR2_X1", "AOI21_X1", "OAI21_X1", "MUX2_X1", "DFF_X1",
    ]);
    let characterizer = Characterizer::new(cells, CharConfig::fast())?;
    println!("characterizing fresh + worst-case libraries...");
    let fresh = characterizer.library(&AgingScenario::fresh())?;
    let aged = characterizer.library(&AgingScenario::worst_case(10.0))?;

    println!("running both synthesis flows on RISC-5P...");
    let design = reliaware::circuits::risc_5p();
    let cmp = compare_synthesis(&design.aig, &fresh, &aged, &MapOptions::default())?;

    println!("\n                         baseline      aging-aware");
    println!(
        "fresh critical path   {:>9.1} ps   {:>9.1} ps",
        cmp.baseline_fresh * 1e12,
        cmp.aware_fresh * 1e12
    );
    println!(
        "aged  critical path   {:>9.1} ps   {:>9.1} ps",
        cmp.baseline_aged * 1e12,
        cmp.aware_aged * 1e12
    );
    println!("area                  {:>9.1} um2  {:>9.1} um2", cmp.baseline_area, cmp.aware_area);
    println!("\nrequired guardband  (baseline): {:>7.1} ps", cmp.required_guardband() * 1e12);
    println!("contained guardband (aware):    {:>7.1} ps", cmp.contained_guardband() * 1e12);
    println!("guardband reduction:            {:>+7.1}%", cmp.guardband_reduction() * 100.0);
    println!("frequency gain under aging:     {:>+7.1}%", cmp.frequency_gain() * 100.0);
    println!("area overhead:                  {:>+7.1}%", cmp.area_overhead() * 100.0);
    Ok(())
}

fn main() -> ExitCode {
    run_main(run)
}
