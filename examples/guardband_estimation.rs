//! Guardband estimation (paper Fig. 4(b)): synthesize a benchmark design
//! once, then re-analyze it against degradation-aware libraries for several
//! aging scenarios — including the ΔVth-only simplification the paper
//! refutes.
//!
//! Run with: `cargo run --release --example guardband_estimation`

use reliaware::bti::AgingScenario;
use reliaware::flow::{estimate_guardband, run_main, CharConfig, Characterizer, FlowError};
use reliaware::sta::Constraints;
use reliaware::stdcells::CellSet;
use reliaware::synth::{synthesize, MapOptions};
use std::process::ExitCode;

fn run() -> Result<(), FlowError> {
    // Fast settings: minimal cell set, reduced OPC grid.
    let characterizer = Characterizer::new(CellSet::minimal(), CharConfig::fast())?;
    let fresh = characterizer.library(&AgingScenario::fresh())?;

    println!("synthesizing the VLIW benchmark against the fresh library...");
    let design = reliaware::circuits::vliw();
    let netlist = synthesize(&design.aig, &fresh, &MapOptions::default())?;
    println!("  {} instances", netlist.instance_count());

    let constraints = Constraints::default();
    println!("\n{:<28} {:>14} {:>16}", "scenario", "aged CP [ps]", "guardband [ps]");
    for (label, scenario) in [
        ("balanced λ=0.5, 10y", AgingScenario::balanced(10.0)),
        ("worst case λ=1, 1y", AgingScenario::worst_case(1.0)),
        ("worst case λ=1, 10y", AgingScenario::worst_case(10.0)),
    ] {
        let aged = characterizer.library(&scenario)?;
        let report = estimate_guardband(&netlist, &fresh, &aged, &constraints)?;
        println!(
            "{label:<28} {:>14.1} {:>16.1}",
            report.aged_delay * 1e12,
            report.guardband() * 1e12
        );
    }

    // The ΔVth-only state of the art under-estimates the guardband.
    let worst = AgingScenario::worst_case(10.0);
    let full = characterizer.library(&worst)?;
    let vth_only = characterizer.library_vth_only(&worst)?;
    let g_full = estimate_guardband(&netlist, &fresh, &full, &constraints)?;
    let g_vth = estimate_guardband(&netlist, &fresh, &vth_only, &constraints)?;
    println!(
        "\nΔVth-only guardband: {:.1} ps vs full (ΔVth+Δμ): {:.1} ps  ({:+.1}% under-estimated)",
        g_vth.guardband() * 1e12,
        g_full.guardband() * 1e12,
        (g_vth.guardband() / g_full.guardband() - 1.0) * 100.0
    );
    Ok(())
}

fn main() -> ExitCode {
    run_main(run)
}
