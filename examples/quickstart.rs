//! Quickstart: create a degradation-aware cell library and watch aging
//! change a gate's delay — the core of the paper in ~40 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use reliaware::bti::AgingScenario;
use reliaware::flow::{run_main, CharConfig, CharError, Characterizer, FlowError};
use reliaware::stdcells::CellSet;
use std::process::ExitCode;

fn run() -> Result<(), FlowError> {
    // A small cell subset on a reduced grid keeps this example fast
    // (~seconds); the full flow uses all 68 cells on the paper's 7×7 grid.
    let cells = CellSet::nangate45_like().subset(&["INV_X1", "NAND2_X1", "NOR2_X1"]);
    let characterizer = Characterizer::new(cells, CharConfig::fast())?;

    println!("characterizing fresh and 10-year worst-case aged libraries...");
    let fresh = characterizer.library(&AgingScenario::fresh())?;
    let aged = characterizer.library(&AgingScenario::worst_case(10.0))?;

    let delay = |lib: &reliaware::liberty::Library, name: &str, slew: f64, load: f64| {
        lib.cell(name)
            .map(|cell| cell.worst_delay(slew, load))
            .ok_or_else(|| FlowError::from(CharError::UnknownCell { cell: name.to_owned() }))
    };

    println!("\n{:<10} {:>14} {:>14} {:>9}", "cell", "fresh [ps]", "aged [ps]", "change");
    for name in ["INV_X1", "NAND2_X1", "NOR2_X1"] {
        let slew = 150e-12;
        let load = 4e-15;
        let f = delay(&fresh, name, slew, load)?;
        let a = delay(&aged, name, slew, load)?;
        println!(
            "{name:<10} {:>14.2} {:>14.2} {:>+8.1}%",
            f * 1e12,
            a * 1e12,
            (a / f - 1.0) * 100.0
        );
    }

    // The same gate under different *operating conditions* ages differently
    // — the paper's key observation (its Fig. 1).
    println!("\nNAND2_X1 aging impact by operating condition:");
    for (slew, load) in [(5e-12, 20e-15), (947e-12, 0.5e-15)] {
        let delta =
            delay(&aged, "NAND2_X1", slew, load)? / delay(&fresh, "NAND2_X1", slew, load)? - 1.0;
        println!(
            "  slew {:>4.0} ps, load {:>4.1} fF -> {:+.1}%",
            slew * 1e12,
            load * 1e15,
            delta * 100.0
        );
    }
    println!("\nLibraries are ordinary liberty-style objects: plug either one into");
    println!("STA (`sta::analyze`) or synthesis (`synth::synthesize`) unchanged.");
    Ok(())
}

fn main() -> ExitCode {
    run_main(run)
}
