//! Quickstart: create a degradation-aware cell library and watch aging
//! change a gate's delay — the core of the paper in ~40 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use reliaware::bti::AgingScenario;
use reliaware::flow::{CharConfig, Characterizer};
use reliaware::stdcells::CellSet;

fn main() {
    // A small cell subset on a reduced grid keeps this example fast
    // (~seconds); the full flow uses all 68 cells on the paper's 7×7 grid.
    let cells = CellSet::nangate45_like().subset(&["INV_X1", "NAND2_X1", "NOR2_X1"]);
    let characterizer = Characterizer::new(cells, CharConfig::fast());

    println!("characterizing fresh and 10-year worst-case aged libraries...");
    let fresh = characterizer.library(&AgingScenario::fresh());
    let aged = characterizer.library(&AgingScenario::worst_case(10.0));

    println!("\n{:<10} {:>14} {:>14} {:>9}", "cell", "fresh [ps]", "aged [ps]", "change");
    for name in ["INV_X1", "NAND2_X1", "NOR2_X1"] {
        let slew = 150e-12;
        let load = 4e-15;
        let f = fresh.cell(name).expect("characterized").worst_delay(slew, load);
        let a = aged.cell(name).expect("characterized").worst_delay(slew, load);
        println!(
            "{name:<10} {:>14.2} {:>14.2} {:>+8.1}%",
            f * 1e12,
            a * 1e12,
            (a / f - 1.0) * 100.0
        );
    }

    // The same gate under different *operating conditions* ages differently
    // — the paper's key observation (its Fig. 1).
    let nand = |lib: &reliaware::liberty::Library, slew: f64, load: f64| {
        lib.cell("NAND2_X1").expect("cell").worst_delay(slew, load)
    };
    println!("\nNAND2_X1 aging impact by operating condition:");
    for (slew, load) in [(5e-12, 20e-15), (947e-12, 0.5e-15)] {
        let delta = nand(&aged, slew, load) / nand(&fresh, slew, load) - 1.0;
        println!(
            "  slew {:>4.0} ps, load {:>4.1} fF -> {:+.1}%",
            slew * 1e12,
            load * 1e15,
            delta * 100.0
        );
    }
    println!("\nLibraries are ordinary liberty-style objects: plug either one into");
    println!("STA (`sta::analyze`) or synthesis (`synth::synthesize`) unchanged.");
}
