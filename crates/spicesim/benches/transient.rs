//! Criterion benchmarks of the transient solver inner loop: full-trace
//! recording vs. the lean observed-node trace used by characterization.

use criterion::{criterion_group, criterion_main, Criterion};
use ptm::MosModel;
use spicesim::{Circuit, NodeId, TransientConfig, Waveform};

/// A 3-stage inverter chain with internal nodes — enough state for the
/// observed-node restriction to matter.
fn inverter_chain(stages: usize, load: f64) -> (Circuit, NodeId, NodeId) {
    let vdd = 1.2;
    let mut c = Circuit::new(vdd);
    let input = c.add_source("a", Waveform::rising_ramp(0.5e-9, 40e-12, vdd));
    let mut from = input;
    let mut out = input;
    for k in 0..stages {
        out = c.add_node(&format!("n{k}"), if k + 1 == stages { load } else { 0.0 });
        c.add_pmos(MosModel::pmos_45nm(), from, out, c.vdd_node(), 630e-9);
        c.add_nmos(MosModel::nmos_45nm(), from, out, c.gnd_node(), 415e-9);
        from = out;
    }
    (c, input, out)
}

fn bench_transient(c: &mut Criterion) {
    let mut group = c.benchmark_group("transient_solve");
    group.sample_size(20);
    let (circuit, input, output) = inverter_chain(3, 2e-15);
    let config = TransientConfig::up_to(2.0e-9);
    group.bench_function("chain3_full_trace", |b| {
        b.iter(|| circuit.transient(&config));
    });
    let lean = config.clone().observing(&[input, output]);
    group.bench_function("chain3_lean_trace", |b| {
        b.iter(|| circuit.transient(&lean));
    });
    let (wide, input, output) = inverter_chain(9, 2e-15);
    let lean_wide = TransientConfig::up_to(3.0e-9).observing(&[input, output]);
    group.bench_function("chain9_lean_trace", |b| {
        b.iter(|| wide.transient(&lean_wide));
    });
    group.finish();
}

criterion_group!(benches, bench_transient);
criterion_main!(benches);
