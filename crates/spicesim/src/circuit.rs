use crate::Waveform;
use ptm::{MosModel, MosPolarity, CHANNEL_LENGTH};

/// Handle to a circuit node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) usize);

/// Handle to a MOS device within a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceId(pub(crate) usize);

#[derive(Debug, Clone)]
pub(crate) enum NodeKind {
    /// A floating node integrated by the engine; holds its explicit
    /// capacitance to ground in farad (device parasitics are added on top).
    Floating { cap: f64 },
    /// A node pinned to a waveform (input stimulus).
    Source(Waveform),
    /// A supply rail pinned to a constant voltage.
    Rail(f64),
}

#[derive(Debug, Clone)]
pub(crate) struct Device {
    pub model: MosModel,
    pub gate: NodeId,
    pub drain: NodeId,
    pub source: NodeId,
    pub w_over_l: f64,
}

/// A small transistor-level circuit: MOS devices, node capacitances, supply
/// rails and stimulus sources.
///
/// Construction is incremental; the `vdd`/`gnd` rails exist from the start.
/// Every added device automatically contributes its gate capacitance to its
/// gate node and junction capacitance to its drain/source nodes (the
/// layout-parasitics role of the paper's Sec. 4.1), so explicit
/// [`Circuit::add_cap`] calls are only needed for external loads.
///
/// See the [crate-level example](crate) for a complete inverter simulation.
#[derive(Debug, Clone)]
pub struct Circuit {
    pub(crate) vdd: f64,
    pub(crate) names: Vec<String>,
    pub(crate) kinds: Vec<NodeKind>,
    /// Extra capacitance accumulated from device parasitics per node.
    pub(crate) parasitic_cap: Vec<f64>,
    pub(crate) initial: Vec<Option<f64>>,
    pub(crate) devices: Vec<Device>,
    vdd_node: NodeId,
    gnd_node: NodeId,
}

/// Minimum capacitance guaranteed on every floating node, in farad. Keeps
/// the node ODEs well-conditioned even if a cell netlist forgets parasitics.
pub(crate) const C_MIN: f64 = 0.05e-15;

impl Circuit {
    /// Creates an empty circuit with supply rails at `vdd` and 0 V.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is not a positive finite voltage.
    #[must_use]
    pub fn new(vdd: f64) -> Self {
        assert!(vdd.is_finite() && vdd > 0.0, "vdd must be positive");
        let mut c = Circuit {
            vdd,
            names: Vec::new(),
            kinds: Vec::new(),
            parasitic_cap: Vec::new(),
            initial: Vec::new(),
            devices: Vec::new(),
            vdd_node: NodeId(0),
            gnd_node: NodeId(0),
        };
        c.vdd_node = c.push_node("vdd!", NodeKind::Rail(vdd));
        c.gnd_node = c.push_node("gnd!", NodeKind::Rail(0.0));
        c
    }

    fn push_node(&mut self, name: &str, kind: NodeKind) -> NodeId {
        let id = NodeId(self.kinds.len());
        self.names.push(name.to_owned());
        self.kinds.push(kind);
        self.parasitic_cap.push(0.0);
        self.initial.push(None);
        id
    }

    /// The Vdd rail node.
    #[must_use]
    pub fn vdd_node(&self) -> NodeId {
        self.vdd_node
    }

    /// The ground rail node.
    #[must_use]
    pub fn gnd_node(&self) -> NodeId {
        self.gnd_node
    }

    /// The supply voltage.
    #[must_use]
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Adds a floating node with an explicit capacitance to ground (farad).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is negative or not finite.
    pub fn add_node(&mut self, name: &str, cap: f64) -> NodeId {
        assert!(cap.is_finite() && cap >= 0.0, "node capacitance must be non-negative");
        self.push_node(name, NodeKind::Floating { cap })
    }

    /// Adds a stimulus node pinned to `waveform`.
    pub fn add_source(&mut self, name: &str, waveform: Waveform) -> NodeId {
        self.push_node(name, NodeKind::Source(waveform))
    }

    /// Adds extra capacitance (farad) from `node` to ground — e.g. the output
    /// load of a characterization run.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is negative/not finite, or `node` is a rail or source.
    pub fn add_cap(&mut self, node: NodeId, cap: f64) {
        assert!(cap.is_finite() && cap >= 0.0, "capacitance must be non-negative");
        match &mut self.kinds[node.0] {
            NodeKind::Floating { cap: c } => *c += cap,
            _ => panic!("cannot attach capacitance to a rail or source node"),
        }
    }

    /// Sets the initial (t = start) voltage of a floating node. Unset nodes
    /// start at ground; characterization typically pre-settles the circuit,
    /// so this is an optimization/robustness aid rather than a requirement.
    pub fn set_initial_voltage(&mut self, node: NodeId, volts: f64) {
        self.initial[node.0] = Some(volts);
    }

    /// Adds a MOS device. `w` is the channel width in meters; the length is
    /// the 45 nm node's [`CHANNEL_LENGTH`]. Parasitic gate/junction
    /// capacitances are added to the connected nodes automatically.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not positive and finite.
    pub fn add_mos(
        &mut self,
        model: MosModel,
        gate: NodeId,
        drain: NodeId,
        source: NodeId,
        w: f64,
    ) -> DeviceId {
        assert!(w.is_finite() && w > 0.0, "device width must be positive");
        self.parasitic_cap[gate.0] += model.gate_capacitance(w);
        self.parasitic_cap[drain.0] += model.junction_capacitance(w);
        self.parasitic_cap[source.0] += model.junction_capacitance(w);
        let id = DeviceId(self.devices.len());
        self.devices.push(Device { w_over_l: w / CHANNEL_LENGTH, model, gate, drain, source });
        id
    }

    /// Convenience wrapper of [`Circuit::add_mos`] asserting an nMOS model.
    ///
    /// # Panics
    ///
    /// Panics if `model` is not n-channel.
    pub fn add_nmos(
        &mut self,
        model: MosModel,
        gate: NodeId,
        drain: NodeId,
        source: NodeId,
        w: f64,
    ) -> DeviceId {
        assert_eq!(model.polarity, MosPolarity::Nmos, "add_nmos needs an n-channel model");
        self.add_mos(model, gate, drain, source, w)
    }

    /// Convenience wrapper of [`Circuit::add_mos`] asserting a pMOS model.
    ///
    /// # Panics
    ///
    /// Panics if `model` is not p-channel.
    pub fn add_pmos(
        &mut self,
        model: MosModel,
        gate: NodeId,
        drain: NodeId,
        source: NodeId,
        w: f64,
    ) -> DeviceId {
        assert_eq!(model.polarity, MosPolarity::Pmos, "add_pmos needs a p-channel model");
        self.add_mos(model, gate, drain, source, w)
    }

    /// Number of nodes (including the two rails).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// Number of MOS devices.
    #[must_use]
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// The parameter card of device `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a device of this circuit.
    #[must_use]
    pub fn device_model(&self, id: DeviceId) -> &MosModel {
        &self.devices[id.0].model
    }

    /// The parameter cards of every device, in addition (ordinal) order.
    /// With process variation each device carries its own sampled card;
    /// without it, the per-polarity cards repeat.
    pub fn device_models(&self) -> impl Iterator<Item = &MosModel> {
        self.devices.iter().map(|d| &d.model)
    }

    /// The name given to `node` at creation.
    #[must_use]
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.names[node.0]
    }

    /// Total capacitance (explicit + device parasitics, floored at a small
    /// `C_MIN`) seen by a floating node; `None` for rails/sources.
    #[must_use]
    pub fn total_cap(&self, node: NodeId) -> Option<f64> {
        match &self.kinds[node.0] {
            NodeKind::Floating { cap } => Some((cap + self.parasitic_cap[node.0]).max(C_MIN)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rails_exist() {
        let c = Circuit::new(1.2);
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.node_name(c.vdd_node()), "vdd!");
        assert_eq!(c.node_name(c.gnd_node()), "gnd!");
        assert_eq!(c.total_cap(c.vdd_node()), None);
    }

    #[test]
    fn device_adds_parasitics() {
        let mut c = Circuit::new(1.2);
        let a = c.add_source("a", Waveform::Dc(0.0));
        let y = c.add_node("y", 0.0);
        c.add_nmos(MosModel::nmos_45nm(), a, y, c.gnd_node(), 450e-9);
        let cap = c.total_cap(y).unwrap();
        // Junction cap of a 450 nm device ≈ 0.27 fF.
        assert!(cap > 0.2e-15 && cap < 0.5e-15, "cap = {cap}");
        assert_eq!(c.device_count(), 1);
    }

    #[test]
    fn explicit_load_adds_on_top() {
        let mut c = Circuit::new(1.2);
        let y = c.add_node("y", 1.0e-15);
        c.add_cap(y, 2.0e-15);
        assert!((c.total_cap(y).unwrap() - 3.0e-15).abs() < 1e-20);
    }

    #[test]
    fn min_cap_floor() {
        let mut c = Circuit::new(1.2);
        let y = c.add_node("y", 0.0);
        assert_eq!(c.total_cap(y), Some(C_MIN));
    }

    #[test]
    #[should_panic(expected = "rail or source")]
    fn cap_on_rail_panics() {
        let mut c = Circuit::new(1.2);
        let vdd = c.vdd_node();
        c.add_cap(vdd, 1e-15);
    }

    #[test]
    #[should_panic(expected = "n-channel")]
    fn wrong_polarity_panics() {
        let mut c = Circuit::new(1.2);
        let a = c.add_source("a", Waveform::Dc(0.0));
        let y = c.add_node("y", 0.0);
        let gnd = c.gnd_node();
        c.add_nmos(MosModel::pmos_45nm(), a, y, gnd, 450e-9);
    }
}
