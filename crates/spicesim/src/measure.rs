//! Waveform measurements on a recorded [`Trace`]: threshold crossings,
//! propagation delay and output slew — the `.measure` role of HSPICE decks.

use crate::circuit::NodeId;
use crate::engine::Trace;

/// A measured output edge: 50 %-to-50 % propagation delay and 10–90 % output
/// slew, both in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeMeasurement {
    /// Input-50 % to output-50 % propagation delay in seconds. Negative
    /// values are possible for very slow inputs driving fast gates.
    pub delay: f64,
    /// 10 %–90 % output transition time in seconds.
    pub output_slew: f64,
}

impl Trace {
    /// First time after `t_after` at which `node` crosses `level` in the
    /// given direction (`rising` = low→high), linearly interpolated.
    /// Returns `None` if the crossing never happens.
    #[must_use]
    pub fn crossing(&self, node: NodeId, level: f64, rising: bool, t_after: f64) -> Option<f64> {
        let v = self.voltage(node);
        let t = self.time();
        for i in 1..t.len() {
            if t[i] < t_after {
                continue;
            }
            let (v0, v1) = (v[i - 1], v[i]);
            let crossed =
                if rising { v0 < level && v1 >= level } else { v0 > level && v1 <= level };
            if crossed {
                let frac = if (v1 - v0).abs() > 0.0 { (level - v0) / (v1 - v0) } else { 1.0 };
                let tc = t[i - 1] + frac * (t[i] - t[i - 1]);
                if tc >= t_after {
                    return Some(tc);
                }
            }
        }
        None
    }

    /// 50 %-to-50 % propagation delay from an input edge on `input`
    /// (direction `input_rising`) to the next output edge on `output`
    /// (direction `output_rising`), measured after `t_after`.
    #[must_use]
    pub fn delay_after(
        &self,
        input: NodeId,
        input_rising: bool,
        output: NodeId,
        output_rising: bool,
        t_after: f64,
    ) -> Option<f64> {
        let half = 0.5 * self.vdd();
        let t_in = self.crossing(input, half, input_rising, t_after)?;
        // The output may already be moving before the input's 50 % point
        // (very slow inputs), so search from the input edge start, not t_in.
        let t_out = self.crossing(output, half, output_rising, t_after)?;
        Some(t_out - t_in)
    }

    /// Like [`Trace::delay_after`] with `t_after = 0`.
    #[must_use]
    pub fn delay(
        &self,
        input: NodeId,
        input_rising: bool,
        output: NodeId,
        output_rising: bool,
        _half_level: f64,
    ) -> Option<f64> {
        self.delay_after(input, input_rising, output, output_rising, 0.0)
    }

    /// 10 %–90 % transition time of the edge on `node` after `t_after`.
    #[must_use]
    pub fn slew_after(&self, node: NodeId, rising: bool, t_after: f64) -> Option<f64> {
        let (lo, hi) = (0.1 * self.vdd(), 0.9 * self.vdd());
        if rising {
            let t_lo = self.crossing(node, lo, true, t_after)?;
            let t_hi = self.crossing(node, hi, true, t_lo)?;
            Some(t_hi - t_lo)
        } else {
            let t_hi = self.crossing(node, hi, false, t_after)?;
            let t_lo = self.crossing(node, lo, false, t_hi)?;
            Some(t_lo - t_hi)
        }
    }

    /// Measures the propagation delay and output slew of one input→output
    /// edge pair occurring after `t_after`.
    #[must_use]
    pub fn measure_edge(
        &self,
        input: NodeId,
        input_rising: bool,
        output: NodeId,
        output_rising: bool,
        t_after: f64,
    ) -> Option<EdgeMeasurement> {
        let delay = self.delay_after(input, input_rising, output, output_rising, t_after)?;
        let output_slew = self.slew_after(output, output_rising, t_after)?;
        Some(EdgeMeasurement { delay, output_slew })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Circuit, TransientConfig, Waveform};
    use ptm::MosModel;

    fn inverter_trace(slew: f64, load: f64, input_rising: bool) -> (Trace, NodeId, NodeId) {
        let vdd = 1.2;
        let mut c = Circuit::new(vdd);
        let wave = Waveform::from_slew(0.5e-9, slew, vdd, input_rising);
        let a = c.add_source("a", wave);
        let y = c.add_node("y", load);
        c.add_pmos(MosModel::pmos_45nm(), a, y, c.vdd_node(), 630e-9);
        c.add_nmos(MosModel::nmos_45nm(), a, y, c.gnd_node(), 415e-9);
        let trace = c.transient(&TransientConfig::up_to(6.0e-9));
        (trace, a, y)
    }

    #[test]
    fn crossing_interpolates() {
        let (trace, a, _y) = inverter_trace(80e-12, 2e-15, true);
        let t = trace.crossing(a, 0.6, true, 0.0).expect("input crosses half rail");
        // Analytic: ramp starts at 0.5 ns, full duration 100 ps → 50 % at 50 ps.
        assert!((t - 0.55e-9).abs() < 1.0e-12, "t = {t}");
    }

    #[test]
    fn missing_crossing_is_none() {
        let (trace, a, y) = inverter_trace(80e-12, 2e-15, true);
        assert_eq!(trace.crossing(a, 0.6, false, 0.0), None, "input never falls");
        assert_eq!(trace.crossing(y, 0.6, true, 1.0e-9), None, "output never re-rises");
    }

    #[test]
    fn inverter_delay_and_slew_positive() {
        let (trace, a, y) = inverter_trace(40e-12, 2e-15, true);
        let m = trace.measure_edge(a, true, y, false, 0.0).expect("edge measured");
        assert!(m.delay > 0.0 && m.delay < 100e-12, "delay = {}", m.delay);
        assert!(m.output_slew > 1.0e-12 && m.output_slew < 200e-12, "slew = {}", m.output_slew);
    }

    #[test]
    fn larger_load_larger_delay_and_slew() {
        let (t1, a1, y1) = inverter_trace(40e-12, 1e-15, true);
        let (t2, a2, y2) = inverter_trace(40e-12, 10e-15, true);
        let m1 = t1.measure_edge(a1, true, y1, false, 0.0).unwrap();
        let m2 = t2.measure_edge(a2, true, y2, false, 0.0).unwrap();
        assert!(m2.delay > m1.delay);
        assert!(m2.output_slew > m1.output_slew);
    }

    #[test]
    fn falling_input_gives_rising_output() {
        let (trace, a, y) = inverter_trace(40e-12, 2e-15, false);
        let m = trace.measure_edge(a, false, y, true, 0.0).expect("rising output edge");
        assert!(m.delay > 0.0 && m.delay < 100e-12);
    }

    #[test]
    fn slow_input_can_yield_small_or_negative_delay() {
        // With a ~1 ns input slew the output starts moving long before the
        // input 50 % point; delay may approach zero or go negative but the
        // measurement must still succeed.
        let (trace, a, y) = inverter_trace(900e-12, 0.5e-15, true);
        let m = trace.measure_edge(a, true, y, false, 0.0).expect("measured");
        assert!(m.delay.abs() < 500e-12);
    }
}
