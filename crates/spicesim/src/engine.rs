use crate::circuit::{Circuit, NodeId, NodeKind};

/// Configuration of a transient analysis.
///
/// The engine starts at [`t_start`](Self::t_start) (typically negative, so
/// the circuit settles to its DC operating point before the stimulus fires)
/// and integrates until [`t_stop`](Self::t_stop). Step size adapts so no
/// node moves more than [`max_dv`](Self::max_dv) volts per step.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientConfig {
    /// Simulation start time in seconds (settle phase before stimuli).
    pub t_start: f64,
    /// Simulation end time in seconds.
    pub t_stop: f64,
    /// Accuracy knob: maximum voltage change per node per step, in volts.
    pub max_dv: f64,
    /// Smallest allowed time step in seconds.
    pub dt_min: f64,
    /// Largest allowed time step in seconds.
    pub dt_max: f64,
    /// Nodes whose waveforms the [`Trace`] records. `None` records every
    /// node; characterization passes just the measured input/output pins,
    /// which cuts per-step allocation and cache traffic on large cells.
    /// Integration accuracy is unaffected — every node is still solved.
    pub observed: Option<Vec<NodeId>>,
}

impl TransientConfig {
    /// Default-accuracy run from −0.5 ns (DC settle) to `t_stop`.
    ///
    /// # Panics
    ///
    /// Panics if `t_stop` is not positive and finite.
    #[must_use]
    pub fn up_to(t_stop: f64) -> Self {
        assert!(t_stop.is_finite() && t_stop > 0.0, "t_stop must be positive");
        TransientConfig {
            t_start: -0.5e-9,
            t_stop,
            max_dv: 2.0e-3,
            dt_min: 1.0e-16,
            dt_max: 5.0e-12,
            observed: None,
        }
    }

    /// Returns a copy with a different accuracy knob (`max_dv`, volts).
    ///
    /// # Panics
    ///
    /// Panics if `max_dv` is not positive and finite.
    #[must_use]
    pub fn with_max_dv(mut self, max_dv: f64) -> Self {
        assert!(max_dv.is_finite() && max_dv > 0.0, "max_dv must be positive");
        self.max_dv = max_dv;
        self
    }

    /// Returns a copy recording only `nodes` in the resulting [`Trace`]
    /// (lean traces); measuring an unobserved node panics. Duplicates are
    /// recorded once.
    #[must_use]
    pub fn observing(mut self, nodes: &[NodeId]) -> Self {
        self.observed = Some(nodes.to_vec());
        self
    }
}

/// The recorded result of a transient analysis: time points and the voltage
/// of every *observed* node at each point.
///
/// By default every node is observed; a [`TransientConfig::observing`]
/// restriction stores only the named nodes (the characterization hot path
/// records just the measured input/output pins).
#[derive(Debug, Clone)]
pub struct Trace {
    pub(crate) time: Vec<f64>,
    /// `voltages[slot][sample]`, one slot per observed node.
    pub(crate) voltages: Vec<Vec<f64>>,
    /// Node index → slot in [`Self::voltages`]; `None` if unobserved.
    pub(crate) slots: Vec<Option<usize>>,
    /// Node indices backing each slot, in slot order.
    pub(crate) observed: Vec<usize>,
    pub(crate) vdd: f64,
}

impl Trace {
    /// The recorded time points in seconds, ascending.
    #[must_use]
    pub fn time(&self) -> &[f64] {
        &self.time
    }

    /// The recorded voltage series of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` was excluded by [`TransientConfig::observing`].
    #[must_use]
    pub fn voltage(&self, node: NodeId) -> &[f64] {
        let slot = self.slots[node.0].unwrap_or_else(|| {
            panic!(
                "node {} was not observed in this trace; add it to TransientConfig::observing",
                node.0
            )
        });
        &self.voltages[slot]
    }

    /// True if `node`'s waveform was recorded.
    #[must_use]
    pub fn is_observed(&self, node: NodeId) -> bool {
        self.slots.get(node.0).is_some_and(Option::is_some)
    }

    /// The number of recorded integration points — a simulator-cost proxy
    /// callers can attribute to their instrumentation (the characterizer
    /// books it against its `transient` stage, which is what the tier-0
    /// surrogate amortizes away).
    #[must_use]
    pub fn step_count(&self) -> usize {
        self.time.len()
    }

    /// The supply voltage of the simulated circuit.
    #[must_use]
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// The last recorded voltage of `node`.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty (a run always records at least the
    /// initial point, so this only fires on a default-constructed trace)
    /// or if `node` was not observed.
    #[must_use]
    pub fn final_voltage(&self, node: NodeId) -> f64 {
        *self.voltage(node).last().expect("trace has at least one sample")
    }
}

/// Conductances below this (siemens) fall back to a plain Euler step.
const G_FLOOR: f64 = 1.0e-12;

impl Circuit {
    /// Runs a transient analysis and returns the recorded [`Trace`].
    ///
    /// Floating nodes start from their configured initial voltage (default
    /// 0 V) and the settle phase between `config.t_start` and the first
    /// stimulus event lets the circuit find its DC operating point.
    ///
    /// # Panics
    ///
    /// Panics if `config.t_stop <= config.t_start`.
    #[must_use]
    pub fn transient(&self, config: &TransientConfig) -> Trace {
        assert!(config.t_stop > config.t_start, "empty simulation window");
        let n = self.node_count();

        // Precompute floating-node data and adjacency.
        let mut floating: Vec<usize> = Vec::new();
        let mut cap = vec![0.0; n];
        for (i, slot) in cap.iter_mut().enumerate() {
            if let Some(c) = self.total_cap(NodeId(i)) {
                floating.push(i);
                *slot = c;
            }
        }
        // Accuracy-critical nodes: those whose voltage influences others
        // (device gates) or is measured (explicitly loaded). Pure internal
        // stack nodes are quasi-static slaves of the exponential update and
        // must not collapse the global step size.
        let mut observable = vec![false; n];
        for d in &self.devices {
            observable[d.gate.0] = true;
        }
        for (k, kind) in self.kinds.iter().enumerate() {
            if let NodeKind::Floating { cap } = kind {
                if *cap > 0.0 {
                    observable[k] = true;
                }
            }
        }
        // Stimulus events the integrator must not step across, and the time
        // after which no source moves again (for early termination).
        let mut events: Vec<f64> = Vec::new();
        let mut activity_end = config.t_start;
        for k in &self.kinds {
            if let NodeKind::Source(w) = k {
                if let Some(t) = w.first_event() {
                    events.push(t);
                }
                if let Some(t) = w.end_of_activity() {
                    activity_end = activity_end.max(t);
                }
            }
        }
        events.sort_by(f64::total_cmp);

        // Initial state.
        let mut t = config.t_start;
        let mut v = vec![0.0; n];
        for (i, (vi, kind)) in v.iter_mut().zip(&self.kinds).enumerate() {
            *vi = match kind {
                NodeKind::Rail(volts) => *volts,
                NodeKind::Source(w) => w.value(t),
                NodeKind::Floating { .. } => self.initial[i].unwrap_or(0.0),
            };
        }

        // Observed-node bookkeeping: which nodes get a recorded series.
        let (slots, observed) = match &config.observed {
            None => ((0..n).map(Some).collect::<Vec<_>>(), (0..n).collect::<Vec<_>>()),
            Some(nodes) => {
                let mut slots: Vec<Option<usize>> = vec![None; n];
                let mut observed = Vec::with_capacity(nodes.len());
                for id in nodes {
                    if slots[id.0].is_none() {
                        slots[id.0] = Some(observed.len());
                        observed.push(id.0);
                    }
                }
                (slots, observed)
            }
        };
        let mut trace = Trace {
            time: Vec::with_capacity(4096),
            voltages: vec![Vec::with_capacity(4096); observed.len()],
            slots,
            observed,
            vdd: self.vdd,
        };
        record(&mut trace, t, &v);

        let mut currents = vec![0.0; n];
        let mut conductance = vec![0.0; n];
        while t < config.t_stop {
            // Node currents and channel conductances from all devices.
            currents.iter_mut().for_each(|c| *c = 0.0);
            conductance.iter_mut().for_each(|g| *g = 0.0);
            for d in &self.devices {
                let (id, g) = d.model.drain_current_and_conductance(
                    v[d.gate.0],
                    v[d.drain.0],
                    v[d.source.0],
                    d.w_over_l,
                );
                currents[d.drain.0] -= id;
                currents[d.source.0] += id;
                conductance[d.drain.0] += g;
                conductance[d.source.0] += g;
            }

            // Accuracy-driven step size, from observable nodes only.
            let mut max_rate: f64 = 0.0;
            for &i in &floating {
                if observable[i] {
                    max_rate = max_rate.max((currents[i] / cap[i]).abs());
                }
            }
            for k in &self.kinds {
                if let NodeKind::Source(w) = k {
                    // Only throttle while the source is actually ramping.
                    max_rate = max_rate.max(w.max_slope_in(t, t + config.dt_max));
                }
            }
            // Early termination: every source is done moving and every
            // observable node drifts slower than 0.1 mV/ns — the circuit
            // has settled and nothing further can change.
            if t > activity_end + 10.0 * config.dt_max && max_rate < 1.0e5 {
                record(&mut trace, config.t_stop, &v);
                break;
            }
            let mut dt = if max_rate > 0.0 {
                (config.max_dv / max_rate).clamp(config.dt_min, config.dt_max)
            } else {
                config.dt_max
            };
            // Do not step across a stimulus event.
            for &ev in &events {
                if ev > t && ev < t + dt {
                    dt = (ev - t).max(config.dt_min);
                    break;
                }
            }
            if t + dt > config.t_stop {
                dt = config.t_stop - t;
            }

            // Exponential-Euler update per floating node.
            for &i in &floating {
                let g = conductance[i];
                let vi = v[i];
                let next = if g > G_FLOOR {
                    let target = vi + currents[i] / g;
                    target + (vi - target) * (-g * dt / cap[i]).exp()
                } else {
                    vi + currents[i] * dt / cap[i]
                };
                v[i] = next.clamp(-0.3, self.vdd + 0.3);
            }

            t += dt;
            // Pin sources to their waveform at the new time.
            for (i, k) in self.kinds.iter().enumerate() {
                if let NodeKind::Source(w) = k {
                    v[i] = w.value(t);
                }
            }
            record(&mut trace, t, &v);
        }
        trace
    }
}

fn record(trace: &mut Trace, t: f64, v: &[f64]) {
    trace.time.push(t);
    for (series, &node) in trace.voltages.iter_mut().zip(&trace.observed) {
        series.push(v[node]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Waveform;
    use ptm::MosModel;

    fn inverter(load_f: f64, in_wave: Waveform) -> (Circuit, NodeId, NodeId) {
        let vdd = 1.2;
        let mut c = Circuit::new(vdd);
        let a = c.add_source("a", in_wave);
        let y = c.add_node("y", load_f);
        c.add_pmos(MosModel::pmos_45nm(), a, y, c.vdd_node(), 630e-9);
        c.add_nmos(MosModel::nmos_45nm(), a, y, c.gnd_node(), 415e-9);
        (c, a, y)
    }

    #[test]
    fn dc_settle_reaches_logic_level() {
        // Input low → output settles to Vdd even from a 0 V initial guess.
        let (c, _a, y) = inverter(2.0e-15, Waveform::Dc(0.0));
        let trace = c.transient(&TransientConfig::up_to(1.0e-9));
        assert!((trace.final_voltage(y) - 1.2).abs() < 0.01, "Vout = {}", trace.final_voltage(y));
    }

    #[test]
    fn inverter_switches() {
        let (c, _a, y) = inverter(2.0e-15, Waveform::rising_ramp(0.5e-9, 50.0e-12, 1.2));
        let trace = c.transient(&TransientConfig::up_to(2.0e-9));
        // Starts high (input low), ends low.
        let first = trace.voltage(y)[0];
        let last = trace.final_voltage(y);
        assert!(last < 0.05, "output must fall, got {last}");
        // After settle it must have been high; scan max.
        let peak = trace.voltage(y).iter().cloned().fold(f64::MIN, f64::max);
        assert!(peak > 1.1, "output was high before the edge (peak {peak}), started at {first}");
    }

    #[test]
    fn heavier_load_switches_slower() {
        let t_half = |load: f64| {
            let (c, _a, y) = inverter(load, Waveform::rising_ramp(0.5e-9, 20.0e-12, 1.2));
            let trace = c.transient(&TransientConfig::up_to(3.0e-9));
            trace
                .time
                .iter()
                .zip(trace.voltage(y))
                .find(|&(&t, &v)| t > 0.5e-9 && v < 0.6)
                .map(|(&t, _)| t)
                .expect("output crosses half rail")
        };
        let fast = t_half(1.0e-15);
        let slow = t_half(10.0e-15);
        assert!(slow > fast, "10 fF load must switch later than 1 fF");
    }

    #[test]
    fn monotone_time_axis() {
        let (c, _a, y) = inverter(1.0e-15, Waveform::rising_ramp(0.5e-9, 100e-12, 1.2));
        let trace = c.transient(&TransientConfig::up_to(1.5e-9));
        assert!(trace.time.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(trace.time.len(), trace.voltage(y).len());
    }

    #[test]
    fn voltages_stay_bounded() {
        let (c, _a, y) = inverter(0.5e-15, Waveform::rising_ramp(0.5e-9, 5e-12, 1.2));
        let trace = c.transient(&TransientConfig::up_to(1.5e-9));
        for &v in trace.voltage(y) {
            assert!((-0.3..=1.5).contains(&v), "node voltage {v} escaped bounds");
        }
    }

    #[test]
    fn accuracy_knob_changes_step_count() {
        let (c, _a, _y) = inverter(2.0e-15, Waveform::rising_ramp(0.5e-9, 50e-12, 1.2));
        let fine = c.transient(&TransientConfig::up_to(1.0e-9).with_max_dv(1.0e-3));
        let coarse = c.transient(&TransientConfig::up_to(1.0e-9).with_max_dv(10.0e-3));
        assert!(fine.time.len() > coarse.time.len());
    }

    #[test]
    fn observed_subset_matches_full_trace() {
        let (c, a, y) = inverter(2.0e-15, Waveform::rising_ramp(0.5e-9, 50.0e-12, 1.2));
        let full = c.transient(&TransientConfig::up_to(2.0e-9));
        let lean = c.transient(&TransientConfig::up_to(2.0e-9).observing(&[a, y]));
        // Identical integration: same time axis, bit-identical waveforms on
        // the observed nodes.
        assert_eq!(full.time(), lean.time());
        assert_eq!(full.voltage(a), lean.voltage(a));
        assert_eq!(full.voltage(y), lean.voltage(y));
        assert!(lean.is_observed(y) && !lean.is_observed(c.vdd_node()));
        assert!(full.is_observed(c.vdd_node()));
    }

    #[test]
    fn duplicate_observed_nodes_record_once() {
        let (c, _a, y) = inverter(2.0e-15, Waveform::Dc(0.0));
        let trace = c.transient(&TransientConfig::up_to(0.5e-9).observing(&[y, y]));
        assert_eq!(trace.voltages.len(), 1);
        assert!((trace.final_voltage(y) - 1.2).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "not observed")]
    fn unobserved_node_panics() {
        let (c, a, y) = inverter(2.0e-15, Waveform::Dc(0.0));
        let trace = c.transient(&TransientConfig::up_to(0.5e-9).observing(&[a]));
        let _ = trace.voltage(y);
    }

    #[test]
    #[should_panic(expected = "empty simulation window")]
    fn bad_window_panics() {
        let (c, _a, _y) = inverter(1e-15, Waveform::Dc(0.0));
        let cfg = TransientConfig { t_stop: -1.0, ..TransientConfig::up_to(1.0) };
        let _ = c.transient(&cfg);
    }
}
