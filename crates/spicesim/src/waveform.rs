/// A voltage source waveform driving a circuit input.
///
/// Slews in this repository are defined as 10 %–90 % transition times; a
/// saturated ramp whose 10–90 time equals `slew` therefore has a full 0–100 %
/// ramp duration of `slew / 0.8`. The [`Waveform::rising_ramp`] /
/// [`Waveform::falling_ramp`] constructors take the *full* ramp duration;
/// use [`Waveform::from_slew`] to construct from a 10–90 slew directly.
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant voltage.
    Dc(f64),
    /// A single saturated linear ramp from `from` to `to`, starting at
    /// `t_start` and lasting `duration` seconds; constant outside the ramp.
    Ramp {
        /// Time at which the ramp begins, in seconds.
        t_start: f64,
        /// Full 0–100 % ramp duration in seconds.
        duration: f64,
        /// Voltage before the ramp.
        from: f64,
        /// Voltage after the ramp.
        to: f64,
    },
    /// Piecewise-linear waveform given as `(time, voltage)` breakpoints in
    /// increasing time order; constant before the first and after the last.
    Pwl(Vec<(f64, f64)>),
}

/// Fraction of the full swing covered between the 10 % and 90 % points.
pub(crate) const SLEW_FRACTION: f64 = 0.8;

impl Waveform {
    /// A full-swing rising ramp 0 → `vdd` starting at `t_start` with full
    /// ramp `duration`.
    #[must_use]
    pub fn rising_ramp(t_start: f64, duration: f64, vdd: f64) -> Self {
        Waveform::Ramp { t_start, duration, from: 0.0, to: vdd }
    }

    /// A full-swing falling ramp `vdd` → 0 starting at `t_start`.
    #[must_use]
    pub fn falling_ramp(t_start: f64, duration: f64, vdd: f64) -> Self {
        Waveform::Ramp { t_start, duration, from: vdd, to: 0.0 }
    }

    /// A full-swing ramp whose **10–90 % slew** equals `slew` seconds.
    /// `rising` selects 0 → `vdd` (true) or `vdd` → 0.
    #[must_use]
    pub fn from_slew(t_start: f64, slew: f64, vdd: f64, rising: bool) -> Self {
        let duration = slew / SLEW_FRACTION;
        if rising {
            Self::rising_ramp(t_start, duration, vdd)
        } else {
            Self::falling_ramp(t_start, duration, vdd)
        }
    }

    /// The waveform voltage at time `t`.
    #[must_use]
    pub fn value(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Ramp { t_start, duration, from, to } => {
                if t <= *t_start || *duration <= 0.0 {
                    if t <= *t_start {
                        *from
                    } else {
                        *to
                    }
                } else if t >= t_start + duration {
                    *to
                } else {
                    from + (to - from) * (t - t_start) / duration
                }
            }
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t <= t1 {
                        if t1 <= t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points[points.len() - 1].1
            }
        }
    }

    /// The earliest time at which the waveform changes, if any — used by the
    /// integrator to avoid stepping over the start of a stimulus.
    #[must_use]
    pub fn first_event(&self) -> Option<f64> {
        match self {
            Waveform::Dc(_) => None,
            Waveform::Ramp { t_start, from, to, .. } => (from != to).then_some(*t_start),
            Waveform::Pwl(points) => {
                points.windows(2).find(|w| (w[0].1 - w[1].1).abs() > 0.0).map(|w| w[0].0)
            }
        }
    }

    /// The steepest |dV/dt| of the waveform within the window `[t0, t1]`,
    /// in V/s — used for step-size control only while a source actually
    /// ramps.
    #[must_use]
    pub fn max_slope_in(&self, t0: f64, t1: f64) -> f64 {
        match self {
            Waveform::Dc(_) => 0.0,
            Waveform::Ramp { t_start, duration, from, to } => {
                let t_end = t_start + duration;
                if t1 < *t_start || t0 > t_end || from == to {
                    0.0
                } else if *duration > 0.0 {
                    (to - from).abs() / duration
                } else {
                    f64::INFINITY
                }
            }
            Waveform::Pwl(points) => points
                .windows(2)
                .filter(|w| w[1].0 >= t0 && w[0].0 <= t1)
                .map(|w| {
                    let dt = w[1].0 - w[0].0;
                    if dt > 0.0 {
                        (w[1].1 - w[0].1).abs() / dt
                    } else {
                        0.0
                    }
                })
                .fold(0.0, f64::max),
        }
    }

    /// The time after which the waveform never changes again (`None` for
    /// DC sources, which never change at all).
    #[must_use]
    pub fn end_of_activity(&self) -> Option<f64> {
        match self {
            Waveform::Dc(_) => None,
            Waveform::Ramp { t_start, duration, from, to } => {
                (from != to).then_some(t_start + duration)
            }
            Waveform::Pwl(points) => points.last().map(|p| p.0),
        }
    }

    /// The steepest |dV/dt| of the waveform in V/s (0 for DC), used for
    /// step-size control while the source is ramping.
    #[must_use]
    pub fn max_slope(&self) -> f64 {
        match self {
            Waveform::Dc(_) => 0.0,
            Waveform::Ramp { duration, from, to, .. } => {
                if *duration > 0.0 {
                    (to - from).abs() / duration
                } else {
                    f64::INFINITY
                }
            }
            Waveform::Pwl(points) => points
                .windows(2)
                .map(|w| {
                    let dt = w[1].0 - w[0].0;
                    if dt > 0.0 {
                        (w[1].1 - w[0].1).abs() / dt
                    } else {
                        0.0
                    }
                })
                .fold(0.0, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::Dc(1.2);
        assert_eq!(w.value(-1.0), 1.2);
        assert_eq!(w.value(5.0), 1.2);
        assert_eq!(w.first_event(), None);
        assert_eq!(w.max_slope(), 0.0);
    }

    #[test]
    fn ramp_interpolates() {
        let w = Waveform::rising_ramp(1.0, 2.0, 1.2);
        assert_eq!(w.value(0.5), 0.0);
        assert_eq!(w.value(1.0), 0.0);
        assert!((w.value(2.0) - 0.6).abs() < 1e-12);
        assert_eq!(w.value(3.0), 1.2);
        assert_eq!(w.value(9.0), 1.2);
        assert_eq!(w.first_event(), Some(1.0));
        assert!((w.max_slope() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn falling_ramp_direction() {
        let w = Waveform::falling_ramp(0.0, 1.0, 1.2);
        assert_eq!(w.value(0.0), 1.2);
        assert_eq!(w.value(1.0), 0.0);
    }

    #[test]
    fn from_slew_has_requested_ten_ninety_time() {
        let vdd = 1.2;
        let slew = 80.0e-12;
        let w = Waveform::from_slew(0.0, slew, vdd, true);
        // 10% and 90% crossing times of the analytic ramp.
        let full = slew / SLEW_FRACTION;
        let t10 = 0.1 * full;
        let t90 = 0.9 * full;
        assert!((w.value(t10) - 0.1 * vdd).abs() < 1e-9);
        assert!((w.value(t90) - 0.9 * vdd).abs() < 1e-9);
        assert!((t90 - t10 - slew).abs() < 1e-18);
    }

    #[test]
    fn pwl_lookup() {
        let w = Waveform::Pwl(vec![(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)]);
        assert_eq!(w.value(-1.0), 0.0);
        assert!((w.value(0.5) - 0.5).abs() < 1e-12);
        assert!((w.value(1.5) - 0.75).abs() < 1e-12);
        assert_eq!(w.value(3.0), 0.5);
        assert_eq!(w.first_event(), Some(0.0));
        assert!((w.max_slope() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_ramp_steps() {
        let w = Waveform::Ramp { t_start: 1.0, duration: 0.0, from: 0.0, to: 1.0 };
        assert_eq!(w.value(0.99), 0.0);
        assert_eq!(w.value(1.01), 1.0);
    }
}
