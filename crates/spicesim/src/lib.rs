//! Transistor-level transient circuit simulation.
//!
//! This crate is the repository's substitute for HSPICE: it simulates small
//! CMOS circuits (standard cells with their parasitics, driven by voltage
//! ramps and loaded with capacitors) in the time domain and measures
//! propagation delays and output slews — exactly the role HSPICE plays in
//! the paper's degradation-aware library creation (Fig. 4(a)).
//!
//! The engine integrates each floating node's charge balance
//! `C·dV/dt = ΣI(V)` with an exponential-Euler scheme: per node the device
//! currents are linearized and the node voltage is stepped along the exact
//! solution of the linearized ODE. That makes the integration
//! unconditionally stable on stiff nets (strong transistor on a tiny
//! parasitic node) while an adaptive step keeps the voltage change per step
//! below [`TransientConfig::max_dv`] for accuracy.
//!
//! # Example: inverter delay
//!
//! ```
//! use ptm::MosModel;
//! use spicesim::{Circuit, TransientConfig, Waveform};
//!
//! let vdd = 1.2;
//! let mut c = Circuit::new(vdd);
//! let a = c.add_source("a", Waveform::rising_ramp(1.0e-9, 20.0e-12, vdd));
//! let y = c.add_node("y", 1.0e-15); // 1 fF load
//! c.set_initial_voltage(y, vdd);
//! c.add_pmos(MosModel::pmos_45nm(), a, y, c.vdd_node(), 630e-9);
//! c.add_nmos(MosModel::nmos_45nm(), a, y, c.gnd_node(), 415e-9);
//!
//! let trace = c.transient(&TransientConfig::up_to(2.0e-9));
//! let delay = trace.delay(a, true, y, false, 0.5 * vdd).expect("output fell");
//! assert!(delay > 0.0 && delay < 100.0e-12);
//! ```

mod circuit;
mod engine;
mod measure;
mod waveform;

pub use circuit::{Circuit, DeviceId, NodeId};
pub use engine::{Trace, TransientConfig};
pub use measure::EdgeMeasurement;
pub use waveform::Waveform;
