//! Property-based tests for the transient engine: physical monotonicity
//! and accuracy-knob convergence on the canonical inverter.

use proptest::prelude::*;
use ptm::MosModel;
use spicesim::{Circuit, NodeId, TransientConfig, Waveform};

fn inverter(load: f64, slew: f64, rising: bool) -> (Circuit, NodeId, NodeId) {
    let vdd = 1.2;
    let mut c = Circuit::new(vdd);
    let a = c.add_source("a", Waveform::from_slew(0.4e-9, slew, vdd, rising));
    let y = c.add_node("y", load);
    c.add_pmos(MosModel::pmos_45nm(), a, y, c.vdd_node(), 630e-9);
    c.add_nmos(MosModel::nmos_45nm(), a, y, c.gnd_node(), 415e-9);
    (c, a, y)
}

fn delay(load: f64, slew: f64, rising: bool, max_dv: f64) -> f64 {
    let (c, a, y) = inverter(load, slew, rising);
    let cfg = TransientConfig::up_to(2e-9 + 4.0 * slew).with_max_dv(max_dv);
    let trace = c.transient(&cfg);
    trace.delay_after(a, rising, y, !rising, 0.0).expect("edge propagates")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Delay grows strictly with output load at fixed slew.
    #[test]
    fn delay_monotone_in_load(
        l1 in 0.5e-15f64..20e-15,
        l2 in 0.5e-15f64..20e-15,
        rising in any::<bool>(),
    ) {
        prop_assume!((l1 - l2).abs() > 2e-15);
        let (lo, hi) = if l1 < l2 { (l1, l2) } else { (l2, l1) };
        let slew = 60e-12;
        let d_lo = delay(lo, slew, rising, 4e-3);
        let d_hi = delay(hi, slew, rising, 4e-3);
        prop_assert!(d_hi > d_lo, "load {hi:.2e} must be slower than {lo:.2e}: {d_hi} vs {d_lo}");
    }

    /// The accuracy knob converges: a fine integration agrees with a very
    /// fine one within a small relative error, while a coarse one may not.
    #[test]
    fn accuracy_convergence(load in 1e-15f64..15e-15, slew in 20e-12f64..400e-12) {
        let reference = delay(load, slew, true, 1e-3);
        let fine = delay(load, slew, true, 3e-3);
        prop_assert!(
            (fine - reference).abs() <= 0.05 * reference.abs() + 0.3e-12,
            "3mV vs 1mV delay mismatch: {fine} vs {reference}"
        );
    }

    /// The output always settles to the full rail after the transition.
    #[test]
    fn output_settles_to_rail(load in 0.5e-15f64..20e-15, rising in any::<bool>()) {
        let (c, _a, y) = inverter(load, 80e-12, rising);
        let trace = c.transient(&TransientConfig::up_to(3e-9));
        let v = trace.final_voltage(y);
        if rising {
            prop_assert!(v < 0.05, "output must settle low, got {v}");
        } else {
            prop_assert!(v > 1.15, "output must settle high, got {v}");
        }
    }

    /// Delay measured from identical circuits is deterministic.
    #[test]
    fn deterministic(load in 0.5e-15f64..20e-15) {
        let a = delay(load, 50e-12, true, 4e-3);
        let b = delay(load, 50e-12, true, 4e-3);
        prop_assert_eq!(a, b);
    }
}
