//! Soundness property: for every bundled benchmark, duty cycles extracted
//! from logic simulation of a random workload always fall inside the
//! statically provable λ-intervals.
//!
//! The boundary condition feeds the *observed* primary-input marginals back
//! into the analysis as point intervals (the clock reports 0.5, matching
//! the extractor's convention), so the propagated intervals must bracket
//! the simulated probabilities for this exact workload — under both the
//! gate-average and the worst-pin extraction, up to the λ-grid
//! quantization tolerance of half a step.

use dataflow::{DataflowConfig, Extraction, Interval, NetlistDataflow};
use logicsim::run_cycles;
use synth::test_fixtures::fixture_library;
use synth::MapOptions;

const STEPS: u32 = 10;
const CYCLES: usize = 48;

fn vectors(width: usize, seed: &mut u64) -> Vec<Vec<bool>> {
    (0..CYCLES)
        .map(|_| {
            (0..width)
                .map(|_| {
                    *seed = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                    *seed >> 35 & 1 == 1
                })
                .collect()
        })
        .collect()
}

/// The fixture library replicated onto the λ grid (delays untouched —
/// validation only needs the tagged names to resolve).
fn merged_complete(base: &liberty::Library, steps: u32) -> liberty::Library {
    let mut parts = Vec::new();
    for p in 0..=steps {
        for n in 0..=steps {
            let tag = liberty::LambdaTag {
                lambda_pmos: f64::from(p) / f64::from(steps),
                lambda_nmos: f64::from(n) / f64::from(steps),
            };
            parts.push((tag, base.clone()));
        }
    }
    liberty::merge_indexed("complete", &parts)
}

#[test]
fn simulated_duty_cycles_fall_inside_static_intervals() {
    let library = fixture_library();
    let complete = merged_complete(&library, STEPS);
    let half_step = 0.5 / f64::from(STEPS) + 1e-9;
    let mut seed = 0x0DDB1A5E5u64;

    for design in circuits::all_benchmarks() {
        let nl = synth::synthesize(&design.aig, &library, &MapOptions::default())
            .unwrap_or_else(|e| panic!("synthesis of {} failed: {e}", design.name));
        let clock = design.is_sequential().then_some("clk");
        let run = run_cycles(&nl, &library, clock, &vectors(design.input_width(), &mut seed))
            .unwrap_or_else(|e| panic!("simulation of {} failed: {e}", design.name));

        // Boundary condition: the observed input marginals, as points. The
        // clock is the exception — the zero-delay simulation models it
        // implicitly (the net reports 0.5 by convention but its buffered
        // cone carries the raw resting level), so only FULL is honest.
        let clock_net = clock.and_then(|c| nl.find_net(c));
        let mut config = DataflowConfig::default();
        for net in nl.input_nets() {
            let interval = if Some(net) == clock_net {
                Interval::FULL
            } else {
                Interval::point(run.activity.signal_probability(net))
            };
            config.input_intervals.insert(net, interval);
        }
        let df = NetlistDataflow::analyze_with(&nl, &library, &config);

        // Every simulated net probability lies inside its interval.
        for k in 0..nl.net_count() {
            let net = netlist::NetId::from_index(k);
            let p = run.activity.signal_probability(net);
            assert!(
                df.interval(net).contains_with_tolerance(p, 1e-12),
                "{}: net {} simulated p = {p} outside {}",
                design.name,
                nl.net_name(net),
                df.interval(net)
            );
        }

        // Every extracted λ tag lies inside its provable bounds.
        let mut checked = 0usize;
        for inst in nl.instance_ids() {
            for (extraction, tag) in [
                (Extraction::GateAverage, run.activity.lambda_of(&nl, &library, inst, STEPS)),
                (
                    Extraction::WorstPin,
                    run.activity.lambda_of_worst_pin(&nl, &library, inst, STEPS),
                ),
            ] {
                let Some(tag) = tag else { continue };
                let bounds = df
                    .lambda_bounds(&nl, &library, inst, extraction)
                    .expect("extractor resolved the cell, so must the analysis");
                assert!(
                    bounds.contains(tag, half_step),
                    "{}: instance {} tag ({:.2}, {:.2}) outside {bounds} ({extraction:?})",
                    design.name,
                    nl.instance(inst).name,
                    tag.lambda_pmos,
                    tag.lambda_nmos
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "{}: no λ tags were checked", design.name);

        // The simulated annotation passes static validation end to end
        // (against a merged library so the tagged cell names resolve).
        let annotated = netlist::annotate::annotated_with_lambda(&nl, |inst| {
            run.activity.lambda_of(&nl, &library, inst, STEPS)
        });
        let violations =
            df.validate_annotations(&annotated, &complete, Extraction::GateAverage, STEPS);
        assert!(violations.is_empty(), "{}: {violations:?}", design.name);
    }
}
