//! **dataflow** — static λ-interval analysis of gate-level netlists.
//!
//! The paper's degradation model is driven by per-transistor duty cycles
//! (λ): they select the ΔVth/Δμ corner every cell is characterized at.
//! The dynamic flow extracts λ from logic simulation of one workload —
//! which silently under-covers every workload that was *not* simulated.
//! This crate brackets what simulation can ever produce: an
//! abstract-interpretation engine propagates **signal-probability
//! intervals** `[lo, hi] ⊆ [0, 1]` from the primary inputs through every
//! gate using correlation-proof Fréchet bounds (topological order for
//! DAGs, widening to `[0, 1]` across combinational loops).
//!
//! Four analyses sit on the core lattice:
//!
//! - **λ-interval bounds** per instance ([`NetlistDataflow::lambda_bounds`]),
//!   convertible to [`bti::DutyCycle`] ranges;
//! - **constant-net detection** ([`NetlistDataflow::constant_nets`]) —
//!   statically pinned nets are maximal asymmetric BTI/PBTI stress points;
//! - **dead-cone detection** ([`dead_cone`]) — instances whose output
//!   never reaches a primary output;
//! - **annotation validation**
//!   ([`NetlistDataflow::validate_annotations`]) — a λ-annotation outside
//!   its statically provable interval can come from no workload.
//!
//! [`static_guardband_bound`] turns the intervals into a provable timing
//! bound: each instance is moved to its worst characterized λ-grid variant
//! inside the interval box and the netlist is re-timed, upper-bounding the
//! dynamic guardband of **any** workload.
//!
//! The `lint` crate surfaces these analyses as relialint rules
//! `DF001`–`DF006`; the `bench` crate ships a `dataflow` CLI.
//!
//! # Example
//!
//! ```
//! use dataflow::{DataflowConfig, Interval, NetlistDataflow};
//! use liberty::{Cell, Library};
//! use netlist::{Netlist, PortDir};
//!
//! let mut lib = Library::new("lib", 1.2);
//! lib.add_cell(Cell::test_inverter("INV_X1"));
//! let mut nl = Netlist::new("m");
//! let a = nl.add_port("a", PortDir::Input);
//! let y = nl.add_port("y", PortDir::Output);
//! nl.add_instance("u0", "INV_X1", &[("A", a), ("Y", y)]);
//!
//! let mut config = DataflowConfig::default();
//! config.input_intervals.insert(a, Interval::new(0.8, 0.9));
//! let df = NetlistDataflow::analyze_with(&nl, &lib, &config);
//! assert!((df.interval(y).lo() - 0.1).abs() < 1e-12);
//! assert!((df.interval(y).hi() - 0.2).abs() < 1e-12);
//! ```

mod engine;
mod guardband;
mod interval;
mod lambda;
mod lifetime;
mod mc;
mod paths;

pub use engine::{dead_cone, expr_interval, DataflowConfig, NetlistDataflow};
pub use guardband::{static_guardband_bound, StaticBoundReport};
pub use interval::Interval;
pub use lambda::{Extraction, LambdaBounds, Violation, ViolationKind};
pub use lifetime::{
    activity_upper_bound, series_mttf_lower_bound, static_lifetime_bound, InstanceLifetime,
    LifetimeConfig, LifetimeReport, MechanismInterval,
};
pub use mc::{
    clamp_boundary_bound, mc_design_mttf, sample_design_mttf, McDistribution, McSampling,
};
pub use paths::{analyze_paths, ArcAging, PathAnalysis, PathAnalysisConfig, PathProfile};
