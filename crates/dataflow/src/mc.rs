//! Monte-Carlo composition of process variation into MTTF *distributions*.
//!
//! The static engine ([`crate::static_lifetime_bound`]) answers "what is
//! the worst the design can do" with one number. This module answers "what
//! does the population of manufactured dies look like": each sample is one
//! die whose instances carry sampled fresh-Vth offsets, every instance's
//! worst-corner Weibulls are re-derived with its offset, and the
//! series-system machinery of the static engine composes them into that
//! die's design-MTTF. Over N samples this yields an empirical
//! [`McDistribution`] — quantiles, spread and a variation-aware guardband
//! reference.
//!
//! # Determinism and containment
//!
//! Sampling is counter-based ([`bti::rng`]): die `s` draws its per-instance
//! offsets from stream `draw(seed, s)` at counter = instance index, so any
//! sample is a pure function of `(seed, s)` — evaluable in any order, on
//! any worker count, bit-identically. Offsets are clamped at
//! `±clamp_sigmas·sigma_vth`; by the mechanism monotonicity contract every
//! sampled die's MTTF therefore sits at or above the *variation-aware*
//! static bound ([`McDistribution::static_bound_years`], the clamp-boundary
//! re-evaluation), which is asserted by the `reliaware` test-suite across
//! all benchmarks. Zero-variance sampling reproduces the deterministic
//! path bit-for-bit: every sample equals
//! [`LifetimeReport::design_mttf_lo_years`].

use crate::lifetime::{series_mttf_lower_bound_pooled, stress_interval};
use crate::{InstanceLifetime, LifetimeReport};
use bti::{AgingInput, Weibull};
use std::collections::BTreeMap;

/// Configuration of a Monte-Carlo lifetime run at the composition level:
/// how many dies to sample and how instance offsets spread.
#[derive(Debug, Clone, PartialEq)]
pub struct McSampling {
    /// Number of sampled dies.
    pub samples: usize,
    /// Base seed of the sampling streams (die `s` uses stream
    /// `bti::rng::draw(seed, s)`).
    pub seed: u64,
    /// 1σ of the per-instance fresh-Vth offset in volts (0 = the
    /// deterministic path).
    pub sigma_vth: f64,
    /// Offsets are clamped to `±clamp_sigmas` standard deviations.
    pub clamp_sigmas: f64,
}

impl McSampling {
    /// A sampling plan with the given size and seed at a 15 mV / 4σ-clamp
    /// spread (matching `ptm`'s nominal 45 nm variation model).
    #[must_use]
    pub fn nominal_45nm(samples: usize, seed: u64) -> Self {
        McSampling { samples, seed, sigma_vth: 0.015, clamp_sigmas: 4.0 }
    }

    /// The zero-variance plan: every sample is the nominal die.
    #[must_use]
    pub fn zero_variance(samples: usize, seed: u64) -> Self {
        McSampling { samples, seed, sigma_vth: 0.0, clamp_sigmas: 4.0 }
    }

    /// True when sampling can only produce the nominal die.
    #[must_use]
    pub fn is_zero_variance(&self) -> bool {
        self.sigma_vth == 0.0
    }

    /// The largest offset any instance can realize (clamp boundary).
    #[must_use]
    pub fn max_vth_offset(&self) -> f64 {
        self.sigma_vth * self.clamp_sigmas
    }

    /// Validates the plan, returning a description of every problem
    /// (empty = sound).
    #[must_use]
    pub fn validation_errors(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.samples == 0 {
            out.push("sample count must be at least 1".to_owned());
        }
        if !(self.sigma_vth.is_finite() && self.sigma_vth >= 0.0) {
            out.push(format!("sigma_vth {} must be finite and non-negative", self.sigma_vth));
        }
        if !(self.clamp_sigmas.is_finite() && self.clamp_sigmas > 0.0) {
            out.push(format!("clamp_sigmas {} must be positive and finite", self.clamp_sigmas));
        }
        out
    }

    /// The sampled fresh-Vth offset of instance `index` on die `sample`.
    /// Pure in its arguments; zero-variance plans return exactly 0.
    #[must_use]
    pub fn instance_offset(&self, sample: usize, index: usize) -> f64 {
        if self.is_zero_variance() {
            return 0.0;
        }
        let stream = bti::rng::draw(self.seed, sample as u64);
        let c = self.clamp_sigmas;
        self.sigma_vth * bti::rng::normal_at(stream, index as u64).clamp(-c, c)
    }
}

/// The per-mechanism worst-corner Weibulls of one instance on a die whose
/// fresh Vth is offset by `vth0_offset`, in suite-slot order (`None` =
/// cannot fail at the worst corner). Rebuilt exactly like the static
/// engine's corner evaluation, so a zero offset reproduces the report's
/// pooled components bit-for-bit.
fn instance_components(
    report: &LifetimeReport,
    inst: &InstanceLifetime,
    vth0_offset: f64,
) -> Vec<Option<Weibull>> {
    let config = &report.config;
    config
        .suite
        .mechanisms()
        .iter()
        .map(|(source, mech)| {
            let (_, stress_hi) = stress_interval(*source, inst.lambda, inst.activity_hi);
            let worst_input = AgingInput::new(
                stress_hi,
                config.years,
                config.temperature_range.1,
                config.vdd_range.1,
                config.frequency_hz,
            )
            .with_vth0_offset(vth0_offset);
            mech.failure_distribution(&worst_input)
        })
        .collect()
}

/// The design-MTTF of one sampled die: per-instance offsets drawn from
/// `sampling`, worst-corner Weibulls re-derived per instance, composed
/// with the same pooled series integration as the static engine.
///
/// A pure function of `(report, sampling, sample)` — the unit the flow's
/// Monte-Carlo driver fans across its worker pool.
#[must_use]
pub fn sample_design_mttf(report: &LifetimeReport, sampling: &McSampling, sample: usize) -> f64 {
    let slots = report.config.suite.mechanisms().len();
    let mut pools: Vec<BTreeMap<(u64, u64), u64>> = vec![BTreeMap::new(); slots];
    for (index, inst) in report.instances.iter().enumerate() {
        let offset = sampling.instance_offset(sample, index);
        for (slot, w) in instance_components(report, inst, offset).into_iter().enumerate() {
            if let Some(w) = w {
                *pools[slot].entry((w.scale_years.to_bits(), w.shape.to_bits())).or_insert(0) += 1;
            }
        }
    }
    // Flatten in suite order, mirroring the static engine's design pool so
    // zero-offset samples sum in the identical floating-point order.
    let design_pool: Vec<(Weibull, u64)> = pools
        .into_iter()
        .flat_map(|groups| {
            groups.into_iter().map(|((scale, shape), count)| {
                (Weibull::new(f64::from_bits(scale), f64::from_bits(shape)), count)
            })
        })
        .collect();
    series_mttf_lower_bound_pooled(&design_pool)
}

/// The variation-aware static lower bound: every instance evaluated at the
/// clamp-boundary offset `+clamp_sigmas·sigma_vth`. By mechanism
/// monotonicity this bounds every die the clamped sampler can realize —
/// [`mc_design_mttf`] validates its samples against it.
#[must_use]
pub fn clamp_boundary_bound(report: &LifetimeReport, sampling: &McSampling) -> f64 {
    let slots = report.config.suite.mechanisms().len();
    let mut pools: Vec<BTreeMap<(u64, u64), u64>> = vec![BTreeMap::new(); slots];
    for inst in &report.instances {
        let comps = instance_components(report, inst, sampling.max_vth_offset());
        for (slot, w) in comps.into_iter().enumerate() {
            if let Some(w) = w {
                *pools[slot].entry((w.scale_years.to_bits(), w.shape.to_bits())).or_insert(0) += 1;
            }
        }
    }
    let design_pool: Vec<(Weibull, u64)> = pools
        .into_iter()
        .flat_map(|groups| {
            groups.into_iter().map(|((scale, shape), count)| {
                (Weibull::new(f64::from_bits(scale), f64::from_bits(shape)), count)
            })
        })
        .collect();
    series_mttf_lower_bound_pooled(&design_pool)
}

/// An empirical design-MTTF distribution over sampled dies.
#[derive(Debug, Clone, PartialEq)]
pub struct McDistribution {
    /// Per-sample design MTTF in years, in sample order (`samples[s]` is
    /// die `s`; infinite when that die cannot fail).
    pub samples: Vec<f64>,
    /// The sampling plan that produced it.
    pub sampling: McSampling,
    /// The nominal-die static bound ([`LifetimeReport::design_mttf_lo_years`])
    /// the distribution is measured against.
    pub nominal_years: f64,
    /// The variation-aware static bound at the sampling clamp boundary —
    /// provably below every sample.
    pub static_bound_years: f64,
}

impl McDistribution {
    /// Smallest sampled design MTTF (infinite when there are no samples).
    #[must_use]
    pub fn min_years(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest sampled design MTTF.
    #[must_use]
    pub fn max_years(&self) -> f64 {
        self.samples.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean sampled design MTTF.
    #[must_use]
    pub fn mean_years(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Empirical `p`-quantile (nearest-rank on the sorted samples).
    ///
    /// # Panics
    ///
    /// Panics when the distribution holds no samples or `p` is outside
    /// `[0, 1]`.
    #[must_use]
    pub fn quantile_years(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile probability must be in [0, 1]");
        assert!(!self.samples.is_empty(), "no samples to take a quantile of");
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("MTTFs are never NaN"));
        let rank = ((p * sorted.len() as f64).ceil() as usize).max(1) - 1;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Median sampled design MTTF.
    #[must_use]
    pub fn median_years(&self) -> f64 {
        self.quantile_years(0.5)
    }

    /// True when every sample respects the variation-aware static bound —
    /// the soundness invariant of the whole Monte-Carlo layer.
    #[must_use]
    pub fn contains_static_bound(&self) -> bool {
        self.min_years() >= self.static_bound_years * (1.0 - 1e-12)
    }

    /// The variation-aware guardband factor: how much of the nominal-die
    /// MTTF the p5 die keeps (1 = no variation erosion). Infinite nominal
    /// bounds (nothing can fail) report 1.
    #[must_use]
    pub fn p5_retention(&self) -> f64 {
        let p5 = self.quantile_years(0.05);
        if self.nominal_years.is_infinite() {
            1.0
        } else {
            p5 / self.nominal_years
        }
    }
}

/// Runs the full Monte-Carlo composition serially: every die of
/// `sampling`, plus the nominal and clamp-boundary references.
///
/// The flow crate's `mc_lifetime` fans [`sample_design_mttf`] across its
/// worker pool instead, then assembles the identical structure — both
/// paths are bit-identical because every sample is pure in `(seed, s)`.
///
/// # Panics
///
/// Panics if `sampling` fails [`McSampling::validation_errors`].
#[must_use]
pub fn mc_design_mttf(report: &LifetimeReport, sampling: &McSampling) -> McDistribution {
    let problems = sampling.validation_errors();
    assert!(problems.is_empty(), "invalid MC sampling plan: {problems:?}");
    let samples: Vec<f64> =
        (0..sampling.samples).map(|s| sample_design_mttf(report, sampling, s)).collect();
    McDistribution {
        samples,
        sampling: sampling.clone(),
        nominal_years: report.design_mttf_lo_years,
        static_bound_years: clamp_boundary_bound(report, sampling),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{static_lifetime_bound, DataflowConfig, LifetimeConfig};
    use liberty::{Cell, Library};
    use netlist::{Netlist, PortDir};

    fn lib() -> Library {
        let mut lib = Library::new("lib", 1.2);
        lib.add_cell(Cell::test_inverter("INV_X1"));
        lib
    }

    fn inv_chain(n: usize) -> Netlist {
        let mut nl = Netlist::new("chain");
        let mut prev = nl.add_port("a", PortDir::Input);
        for k in 0..n {
            let next = if k + 1 == n {
                nl.add_port("y", PortDir::Output)
            } else {
                nl.add_net(&format!("n{k}"))
            };
            nl.add_instance(&format!("u{k}"), "INV_X1", &[("A", prev), ("Y", next)]);
            prev = next;
        }
        nl
    }

    fn report() -> LifetimeReport {
        static_lifetime_bound(
            &inv_chain(6),
            &lib(),
            &LifetimeConfig::default(),
            &DataflowConfig::default(),
        )
    }

    #[test]
    fn zero_variance_samples_reproduce_the_deterministic_bound() {
        let report = report();
        let dist = mc_design_mttf(&report, &McSampling::zero_variance(8, 42));
        for s in &dist.samples {
            assert_eq!(
                s.to_bits(),
                report.design_mttf_lo_years.to_bits(),
                "zero-variance MC must be bit-identical to the static path"
            );
        }
        assert_eq!(dist.static_bound_years.to_bits(), report.design_mttf_lo_years.to_bits());
        assert!(dist.contains_static_bound());
    }

    #[test]
    fn samples_are_pure_in_seed_and_index() {
        let report = report();
        let sampling = McSampling::nominal_45nm(6, 0x5eed);
        let forward: Vec<f64> = (0..6).map(|s| sample_design_mttf(&report, &sampling, s)).collect();
        let backward: Vec<f64> =
            (0..6).rev().map(|s| sample_design_mttf(&report, &sampling, s)).collect();
        for (s, v) in forward.iter().enumerate() {
            assert_eq!(v.to_bits(), backward[5 - s].to_bits());
        }
        // Distinct dies really differ.
        assert!(forward.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn sampled_dies_stay_above_the_clamp_boundary_bound() {
        let report = report();
        let dist = mc_design_mttf(&report, &McSampling::nominal_45nm(32, 7));
        assert!(dist.contains_static_bound(), "a sample fell below the variation-aware bound");
        assert!(dist.static_bound_years < report.design_mttf_lo_years);
        // Order statistics are ordered and the spread is real.
        assert!(dist.min_years() <= dist.quantile_years(0.05));
        assert!(dist.quantile_years(0.05) <= dist.median_years());
        assert!(dist.median_years() <= dist.quantile_years(0.95));
        assert!(dist.quantile_years(0.95) <= dist.max_years());
        assert!(dist.min_years() < dist.max_years());
        assert!(dist.p5_retention() > 0.0 && dist.p5_retention() <= 1.0 + 1e-12);
    }

    #[test]
    fn sampling_validation_rejects_broken_plans() {
        assert!(McSampling::nominal_45nm(16, 1).validation_errors().is_empty());
        let bad = McSampling { samples: 0, seed: 0, sigma_vth: -1.0, clamp_sigmas: f64::NAN };
        assert_eq!(bad.validation_errors().len(), 3);
    }
}
