//! Path-level static analysis: exhaustive-within-budget critical-path
//! enumeration with per-arc aging-sensitivity attribution.
//!
//! The paper's criticality-switching study (Sec. 3) argues that tracking a
//! *set* of near-critical paths — not just the single critical one — is
//! required once aging can reorder them. This module builds that set
//! statically: the k worst paths of the fresh design, each re-evaluated
//! under the λ-annotated netlist against the merged complete library, giving
//!
//! - a **per-path guardband decomposition** (fresh vs aged delay per
//!   traversed arc),
//! - a finite-difference **aging sensitivity** `Δdelay/λ̄` per arc, and
//! - structural **false-path pruning**: a path through a statically
//!   constant net (a [`NetlistDataflow::constant_nets`] fact) can never
//!   propagate a transition, so its guardband is reported but flagged.
//!
//! The `lint` crate surfaces these profiles as the `PT` rule family.

use crate::{DataflowConfig, NetlistDataflow};
use liberty::{split_lambda_tag, Library};
use netlist::{InstId, NetId, Netlist};
use sta::{analyze, evaluate_path_steps_with, k_worst_paths, Constraints, PathSpec, StaError};
use std::collections::HashSet;

/// Budget and window knobs for [`analyze_paths`].
#[derive(Debug, Clone)]
pub struct PathAnalysisConfig {
    /// Maximum number of worst paths to enumerate (the "exhaustive within
    /// budget" bound).
    pub max_paths: usize,
    /// Width of the near-critical window as a fraction of the fresh
    /// critical delay: a path is near-critical when its fresh delay is
    /// within `near_critical_fraction` of the critical delay.
    pub near_critical_fraction: f64,
}

impl Default for PathAnalysisConfig {
    fn default() -> Self {
        PathAnalysisConfig { max_paths: 256, near_critical_fraction: 0.05 }
    }
}

/// One traversed arc of a path with its fresh and aged delay.
#[derive(Debug, Clone, PartialEq)]
pub struct ArcAging {
    /// Instance the arc belongs to.
    pub inst: InstId,
    /// Input pin of the arc.
    pub input: String,
    /// Output pin of the arc.
    pub output: String,
    /// Delay under the fresh library, seconds.
    pub fresh: f64,
    /// Delay under the λ-annotated netlist against the complete library,
    /// seconds.
    pub aged: f64,
    /// Mean λ of the instance's annotation, `(λp + λn) / 2`; `0.0` when the
    /// instance carries no λ tag.
    pub mean_lambda: f64,
}

impl ArcAging {
    /// Aging-induced delay increase of this arc, seconds.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.aged - self.fresh
    }

    /// Finite-difference aging sensitivity `∂delay/∂λ ≈ Δdelay / λ̄` in
    /// seconds per unit duty cycle; `0.0` for untagged or unstressed
    /// (`λ̄ = 0`) instances.
    #[must_use]
    pub fn sensitivity(&self) -> f64 {
        if self.mean_lambda > 0.0 {
            self.delta() / self.mean_lambda
        } else {
            0.0
        }
    }
}

/// One enumerated path with its guardband decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct PathProfile {
    /// The path as enumerated on the fresh design.
    pub path: PathSpec,
    /// Path delay under the fresh library, seconds: the sum of the path's
    /// arc delays at the fresh analysis' propagated slews, so it is bounded
    /// by the fresh critical delay.
    pub fresh_delay: f64,
    /// Path delay under the annotated netlist / complete library at the
    /// aged analysis' propagated slews, seconds — bounded by the aged
    /// critical delay.
    pub aged_delay: f64,
    /// Per-arc decomposition, in path order.
    pub arcs: Vec<ArcAging>,
    /// True when the path crosses a statically constant net and therefore
    /// can never propagate a transition (a structural false path).
    pub false_path: bool,
}

impl PathProfile {
    /// The path's aging guardband: aged − fresh delay, seconds.
    #[must_use]
    pub fn guardband(&self) -> f64 {
        self.aged_delay - self.fresh_delay
    }

    /// The arc contributing the largest share of the guardband, as
    /// `(step index, share)` with share in `[0, 1]`; `None` when the path
    /// is empty or its guardband is not positive.
    #[must_use]
    pub fn dominant_arc(&self) -> Option<(usize, f64)> {
        let gb = self.guardband();
        if gb <= 0.0 {
            return None;
        }
        self.arcs
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.delta().total_cmp(&b.delta()))
            .map(|(k, a)| (k, a.delta() / gb))
    }
}

/// The result of a path-level analysis over one design.
#[derive(Debug, Clone)]
pub struct PathAnalysis {
    /// Enumerated paths, worst fresh delay first.
    pub profiles: Vec<PathProfile>,
    /// Fresh critical delay (the first profile's fresh delay), seconds.
    pub critical_fresh: f64,
    /// True when enumeration stopped at the path budget — the real
    /// near-critical population may be larger than reported.
    pub budget_exhausted: bool,
    /// Statically constant nets used for false-path pruning, as
    /// `(net, value)`.
    pub constant_nets: Vec<(NetId, bool)>,
}

impl PathAnalysis {
    /// Number of enumerated non-false paths whose fresh delay is within
    /// `fraction` of the fresh critical delay.
    #[must_use]
    pub fn near_critical_count(&self, fraction: f64) -> usize {
        let floor = self.critical_fresh * (1.0 - fraction);
        self.profiles.iter().filter(|p| !p.false_path && p.fresh_delay >= floor).count()
    }
}

/// Enumerates the worst paths of `fresh` and re-evaluates each under the
/// λ-annotated netlist / complete library pair.
///
/// `annotated` must be the same design as `fresh` with only cell names
/// changed (the output of `annotated_with_lambda` or of
/// [`crate::static_guardband_bound`]); paths are transferred by instance id.
///
/// # Errors
///
/// Returns [`StaError`] when the two netlists are structurally misaligned,
/// or when enumeration/evaluation fails (missing cells or arcs).
pub fn analyze_paths(
    fresh: &Netlist,
    annotated: &Netlist,
    fresh_library: &Library,
    complete: &Library,
    constraints: &Constraints,
    dataflow_config: &DataflowConfig,
    config: &PathAnalysisConfig,
) -> Result<PathAnalysis, StaError> {
    if annotated.instance_count() != fresh.instance_count()
        || annotated.net_count() != fresh.net_count()
    {
        return Err(StaError::Preflight {
            message: format!(
                "annotated netlist is misaligned with the fresh design: \
                 {} instances / {} nets vs {} / {}",
                annotated.instance_count(),
                annotated.net_count(),
                fresh.instance_count(),
                fresh.net_count()
            ),
        });
    }

    let paths = k_worst_paths(fresh, fresh_library, constraints, config.max_paths)?;
    let budget_exhausted = paths.len() >= config.max_paths;

    // Graph-consistent evaluation: both reports' propagated slews feed the
    // per-arc lookups, so every path sum is bounded by the corresponding
    // full-analysis critical delay (see `evaluate_path_steps_with`) — the
    // invariant PT001 checks per-path aged delays against.
    let fresh_report = analyze(fresh, fresh_library, constraints)?;
    let aged_report = analyze(annotated, complete, constraints)?;

    let df = NetlistDataflow::analyze_with(fresh, fresh_library, dataflow_config);
    let constant_nets = df.constant_nets(fresh, fresh_library);
    let constant: HashSet<NetId> = constant_nets.iter().map(|(n, _)| *n).collect();

    let mut profiles = Vec::with_capacity(paths.len());
    for path in paths {
        let path = timed_segment(fresh, fresh_library, path);
        let fresh_steps =
            evaluate_path_steps_with(fresh, fresh_library, constraints, &fresh_report, &path)?;
        let aged_steps =
            evaluate_path_steps_with(annotated, complete, constraints, &aged_report, &path)?;
        let false_path = constant.contains(&path.start_net)
            || path.steps.iter().any(|s| {
                fresh.instance(s.inst).net_on(&s.output).is_some_and(|net| constant.contains(&net))
            });
        let arcs: Vec<ArcAging> = path
            .steps
            .iter()
            .zip(fresh_steps.iter().zip(&aged_steps))
            .map(|(step, (&f, &a))| {
                let (_, tag) = split_lambda_tag(&annotated.instance(step.inst).cell);
                let mean_lambda = tag.map_or(0.0, |t| (t.lambda_pmos + t.lambda_nmos) / 2.0);
                ArcAging {
                    inst: step.inst,
                    input: step.input.clone(),
                    output: step.output.clone(),
                    fresh: f,
                    aged: a,
                    mean_lambda,
                }
            })
            .collect();
        profiles.push(PathProfile {
            path,
            fresh_delay: fresh_steps.iter().sum(),
            aged_delay: aged_steps.iter().sum(),
            arcs,
            false_path,
        });
    }

    let critical_fresh = profiles.first().map_or(0.0, |p| p.fresh_delay);
    Ok(PathAnalysis { profiles, critical_fresh, budget_exhausted, constant_nets })
}

/// The timed segment of an enumerated path: everything from the last
/// sequential (launching) step onward. Path extraction follows launch back
/// edges *through* a flop's clock pin for provenance, so a path into a
/// gated or logic-derived clock carries clock-cone steps the analysis never
/// times (flops launch at `t = 0`). Dropping that prefix restores the
/// invariant that the step-delay sum is bounded by the critical delay.
fn timed_segment(netlist: &Netlist, library: &Library, path: PathSpec) -> PathSpec {
    let launch = path.steps.iter().rposition(|s| {
        library.cell(&netlist.instance(s.inst).cell).is_some_and(liberty::Cell::is_sequential)
    });
    let Some(k) = launch.filter(|&k| k > 0) else { return path };
    let steps = path.steps[k..].to_vec();
    let start_net =
        netlist.instance(steps[0].inst).net_on(&steps[0].input).unwrap_or(path.start_net);
    PathSpec { start_net, start_rising: steps[0].input_rising, steps, arrival: path.arrival }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liberty::{merge_indexed, Cell, LambdaTag, Library};
    use netlist::annotate::annotated_with_static;
    use netlist::{Netlist, PortDir};

    const STEPS: u32 = 4;

    fn base_library() -> Library {
        let mut lib = Library::new("base", 1.2);
        lib.add_cell(Cell::test_inverter("INV_X1"));
        lib
    }

    /// Complete library with delay scaling `1 + 0.3·(λp + λn)/2`.
    fn complete_library() -> Library {
        let mut parts = Vec::new();
        for p in 0..=STEPS {
            for n in 0..=STEPS {
                let lp = f64::from(p) / f64::from(STEPS);
                let ln = f64::from(n) / f64::from(STEPS);
                let factor = 1.0 + 0.3 * (lp + ln) / 2.0;
                let mut lib = Library::new("part", 1.2);
                let mut cell = Cell::test_inverter("INV_X1");
                for o in &mut cell.outputs {
                    for arc in &mut o.arcs {
                        arc.cell_rise = arc.cell_rise.map(|v| v * factor);
                        arc.cell_fall = arc.cell_fall.map(|v| v * factor);
                    }
                }
                lib.add_cell(cell);
                parts.push((LambdaTag { lambda_pmos: lp, lambda_nmos: ln }, lib));
            }
        }
        merge_indexed("complete", &parts)
    }

    fn chain(n: usize) -> Netlist {
        let mut nl = Netlist::new("chain");
        let mut prev = nl.add_port("a", PortDir::Input);
        for k in 0..n {
            let next = if k + 1 == n {
                nl.add_port("y", PortDir::Output)
            } else {
                nl.add_net(&format!("n{k}"))
            };
            nl.add_instance(&format!("u{k}"), "INV_X1", &[("A", prev), ("Y", next)]);
            prev = next;
        }
        nl
    }

    #[test]
    fn guardband_decomposes_over_arcs() {
        let nl = chain(4);
        let tag = LambdaTag { lambda_pmos: 1.0, lambda_nmos: 1.0 };
        let annotated = annotated_with_static(&nl, tag);
        let analysis = analyze_paths(
            &nl,
            &annotated,
            &base_library(),
            &complete_library(),
            &Constraints::default(),
            &DataflowConfig::default(),
            &PathAnalysisConfig::default(),
        )
        .unwrap();
        assert!(!analysis.profiles.is_empty());
        let worst = &analysis.profiles[0];
        assert_eq!(worst.arcs.len(), 4);
        assert!(worst.guardband() > 0.0, "λ = 1 ages every arc");
        // At full stress the factor is 1.3 on every cell-delay table; slews
        // grow too, so the per-arc delta is at least the table scaling.
        assert!(worst.aged_delay >= worst.fresh_delay * 1.3 - 1e-15);
        // The decomposition covers the guardband: per-arc deltas sum close
        // to the path-level delta (slew interaction makes them not exactly
        // equal, but the aged evaluation *is* the sum of aged arcs).
        let sum: f64 = worst.arcs.iter().map(ArcAging::delta).sum();
        assert!((sum - worst.guardband()).abs() < 1e-15);
        for arc in &worst.arcs {
            assert!((arc.mean_lambda - 1.0).abs() < 1e-12);
            assert!(arc.sensitivity() > 0.0);
        }
        // A uniform chain has no dominant arc.
        let (_, share) = worst.dominant_arc().unwrap();
        assert!(share < 0.5, "share = {share}");
    }

    #[test]
    fn untagged_netlist_has_zero_guardband_and_sensitivity() {
        let nl = chain(3);
        let analysis = analyze_paths(
            &nl,
            &nl,
            &base_library(),
            &base_library(),
            &Constraints::default(),
            &DataflowConfig::default(),
            &PathAnalysisConfig::default(),
        )
        .unwrap();
        for p in &analysis.profiles {
            assert!(p.guardband().abs() < 1e-18);
            assert!(p.arcs.iter().all(|a| a.sensitivity() == 0.0));
        }
    }

    #[test]
    fn constant_cone_marks_false_paths() {
        // A NAND-free design: tie one inverter input to a constant net by
        // giving the input a point interval at 1.0 — its output is then
        // statically 0 and every path through it is false.
        let nl = chain(3);
        let mut df_config = DataflowConfig::default();
        let a = nl.find_net("a").unwrap();
        df_config.input_intervals.insert(a, crate::Interval::point(1.0));
        let analysis = analyze_paths(
            &nl,
            &nl,
            &base_library(),
            &base_library(),
            &Constraints::default(),
            &df_config,
            &PathAnalysisConfig::default(),
        )
        .unwrap();
        assert!(!analysis.constant_nets.is_empty());
        assert!(analysis.profiles.iter().all(|p| p.false_path));
        assert_eq!(analysis.near_critical_count(1.0), 0, "false paths don't count");
    }

    #[test]
    fn misaligned_netlists_are_rejected() {
        let nl = chain(3);
        let other = chain(4);
        let err = analyze_paths(
            &nl,
            &other,
            &base_library(),
            &base_library(),
            &Constraints::default(),
            &DataflowConfig::default(),
            &PathAnalysisConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, StaError::Preflight { .. }));
    }

    #[test]
    fn budget_truncates_and_reports_exhaustion() {
        let nl = chain(6);
        let cfg = PathAnalysisConfig { max_paths: 1, ..PathAnalysisConfig::default() };
        let analysis = analyze_paths(
            &nl,
            &nl,
            &base_library(),
            &base_library(),
            &Constraints::default(),
            &DataflowConfig::default(),
            &cfg,
        )
        .unwrap();
        assert_eq!(analysis.profiles.len(), 1);
        assert!(analysis.budget_exhausted);
    }
}
