//! Per-instance λ-interval bounds and λ-annotation validation.
//!
//! An nMOS transistor is stressed while its gate input is high, a pMOS
//! while it is low (paper Sec. 2), so the signal-probability interval of
//! every input net translates directly into duty-cycle bounds. The two
//! extraction modes mirror the dynamic flow: the paper's footnote-2
//! per-gate average, and the conservative worst-stressed-pin bound.
//!
//! Because annotations are *quantized* to a λ grid of `steps` intervals,
//! every containment test here relaxes the interval by half a grid step —
//! a correctly extracted duty cycle can land at most that far outside its
//! exact interval after rounding.

use crate::engine::NetlistDataflow;
use crate::interval::Interval;
use liberty::{split_lambda_tag, LambdaTag, Library};
use netlist::{InstId, Netlist};
use std::fmt;

/// How per-instance duty cycles are summarized from pin probabilities
/// (mirrors the dynamic flow's extraction modes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Extraction {
    /// The paper's footnote-2 simplification: λn is the mean input-pin
    /// high-probability, and λp = 1 − λn.
    #[default]
    GateAverage,
    /// Conservative: the worst-stressed pin per polarity (λp and λn are
    /// independent maxima, so λp + λn ≥ 1).
    WorstPin,
}

/// Statically provable duty-cycle bounds of one instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LambdaBounds {
    /// Provable interval of the pMOS duty cycle λp.
    pub pmos: Interval,
    /// Provable interval of the nMOS duty cycle λn.
    pub nmos: Interval,
}

impl LambdaBounds {
    /// The bounds as `(min, max)` [`bti::DutyCycle`] pairs,
    /// `(pmos, nmos)` — ready for the `bti` aging models.
    #[must_use]
    pub fn duty_ranges(
        &self,
    ) -> ((bti::DutyCycle, bti::DutyCycle), (bti::DutyCycle, bti::DutyCycle)) {
        (self.pmos.duty_range(), self.nmos.duty_range())
    }

    /// True when `tag` lies inside both intervals, each relaxed by
    /// `tolerance` (normally half a λ-grid step).
    #[must_use]
    pub fn contains(&self, tag: LambdaTag, tolerance: f64) -> bool {
        self.pmos.contains_with_tolerance(tag.lambda_pmos, tolerance)
            && self.nmos.contains_with_tolerance(tag.lambda_nmos, tolerance)
    }

    /// Component-wise union hull with `other`.
    #[must_use]
    pub fn join(&self, other: LambdaBounds) -> LambdaBounds {
        LambdaBounds { pmos: self.pmos.join(other.pmos), nmos: self.nmos.join(other.nmos) }
    }
}

impl fmt::Display for LambdaBounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "λp ∈ {}, λn ∈ {}", self.pmos, self.nmos)
    }
}

/// Why a λ-annotation is statically impossible.
#[derive(Debug, Clone, PartialEq)]
pub enum ViolationKind {
    /// The annotated λp lies outside the provable interval.
    PmosOutsideBounds {
        /// Annotated value.
        value: f64,
        /// Provable interval (before the quantization tolerance).
        bounds: Interval,
    },
    /// The annotated λn lies outside the provable interval.
    NmosOutsideBounds {
        /// Annotated value.
        value: f64,
        /// Provable interval (before the quantization tolerance).
        bounds: Interval,
    },
    /// The (λp, λn) pair violates the extraction-mode invariant — under
    /// [`Extraction::GateAverage`] the components must satisfy
    /// λp + λn = 1 (up to one grid step), under [`Extraction::WorstPin`]
    /// λp + λn ≥ 1 (same tolerance). No workload can produce such a pair.
    InconsistentPair {
        /// Annotated pMOS duty cycle.
        lambda_pmos: f64,
        /// Annotated nMOS duty cycle.
        lambda_nmos: f64,
    },
}

/// One statically impossible λ-annotation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The offending instance.
    pub inst: InstId,
    /// What is wrong with its annotation.
    pub kind: ViolationKind,
}

impl NetlistDataflow {
    /// The statically provable λ bounds of `inst` under `extraction`.
    ///
    /// Returns `None` when the cell is unknown or has no connected input
    /// pins (mirroring the dynamic `lambda_of` extractors).
    #[must_use]
    pub fn lambda_bounds(
        &self,
        netlist: &Netlist,
        library: &Library,
        inst: InstId,
        extraction: Extraction,
    ) -> Option<LambdaBounds> {
        let instance = netlist.instance(inst);
        let cell = library.cell(&instance.cell)?;
        let pins: Vec<Interval> = instance
            .connections
            .iter()
            .filter(|(pin, _)| cell.input_cap(pin).is_some())
            .map(|(_, net)| self.interval(*net))
            .collect();
        if pins.is_empty() {
            return None;
        }
        Some(match extraction {
            Extraction::GateAverage => {
                let nmos = Interval::average(&pins).expect("non-empty pin set");
                LambdaBounds { pmos: nmos.not(), nmos }
            }
            Extraction::WorstPin => {
                let nmos = pins.iter().copied().reduce(Interval::max).expect("non-empty");
                let pmos = pins.iter().map(|i| i.not()).reduce(Interval::max).expect("non-empty");
                LambdaBounds { pmos, nmos }
            }
        })
    }

    /// Validates every λ-annotated instance of `netlist` against its
    /// statically provable interval and the extraction-mode invariant.
    ///
    /// `steps` is the λ-grid resolution the annotations were quantized to;
    /// containment is relaxed by half a step and the pair invariant by one
    /// full step (two roundings).
    #[must_use]
    pub fn validate_annotations(
        &self,
        netlist: &Netlist,
        library: &Library,
        extraction: Extraction,
        steps: u32,
    ) -> Vec<Violation> {
        let half_step = 0.5 / f64::from(steps.max(1)) + 1e-9;
        let full_step = 1.0 / f64::from(steps.max(1)) + 1e-9;
        let mut out = Vec::new();
        for inst in netlist.instance_ids() {
            let instance = netlist.instance(inst);
            let (_, Some(tag)) = split_lambda_tag(&instance.cell) else { continue };
            let consistent = match extraction {
                Extraction::GateAverage => {
                    (tag.lambda_pmos + tag.lambda_nmos - 1.0).abs() <= full_step
                }
                Extraction::WorstPin => tag.lambda_pmos + tag.lambda_nmos >= 1.0 - full_step,
            };
            if !consistent {
                out.push(Violation {
                    inst,
                    kind: ViolationKind::InconsistentPair {
                        lambda_pmos: tag.lambda_pmos,
                        lambda_nmos: tag.lambda_nmos,
                    },
                });
            }
            let Some(bounds) = self.lambda_bounds(netlist, library, inst, extraction) else {
                continue;
            };
            if !bounds.nmos.contains_with_tolerance(tag.lambda_nmos, half_step) {
                out.push(Violation {
                    inst,
                    kind: ViolationKind::NmosOutsideBounds {
                        value: tag.lambda_nmos,
                        bounds: bounds.nmos,
                    },
                });
            }
            if !bounds.pmos.contains_with_tolerance(tag.lambda_pmos, half_step) {
                out.push(Violation {
                    inst,
                    kind: ViolationKind::PmosOutsideBounds {
                        value: tag.lambda_pmos,
                        bounds: bounds.pmos,
                    },
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liberty::Cell;
    use netlist::{Netlist, PortDir};

    fn lib() -> Library {
        let mut lib = Library::new("lib", 1.2);
        lib.add_cell(Cell::test_inverter("INV_X1"));
        // The tagged variants annotations resolve to.
        for p in 0..=10u32 {
            for n in 0..=10u32 {
                let tag = LambdaTag {
                    lambda_pmos: f64::from(p) / 10.0,
                    lambda_nmos: f64::from(n) / 10.0,
                };
                lib.add_cell(Cell::test_inverter(&format!("INV_X1_{}", tag.suffix())));
            }
        }
        lib
    }

    fn annotated_inverter(suffix: &str) -> (Netlist, netlist::NetId) {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        nl.add_instance("u0", &format!("INV_X1_{suffix}"), &[("A", a), ("Y", y)]);
        (nl, a)
    }

    #[test]
    fn bounds_follow_pin_interval() {
        let (nl, a) = annotated_inverter("0.50_0.50");
        let mut config = crate::DataflowConfig::default();
        config.input_intervals.insert(a, Interval::new(0.2, 0.4));
        let df = NetlistDataflow::analyze_with(&nl, &lib(), &config);
        let b = df
            .lambda_bounds(&nl, &lib(), netlist::InstId::from_index(0), Extraction::GateAverage)
            .unwrap();
        assert!((b.nmos.lo() - 0.2).abs() < 1e-12);
        assert!((b.nmos.hi() - 0.4).abs() < 1e-12);
        assert!((b.pmos.lo() - 0.6).abs() < 1e-12);
        assert!((b.pmos.hi() - 0.8).abs() < 1e-12);
        let ((p_lo, p_hi), (n_lo, n_hi)) = b.duty_ranges();
        assert!((p_lo.value() - 0.6).abs() < 1e-12 && (p_hi.value() - 0.8).abs() < 1e-12);
        assert!((n_lo.value() - 0.2).abs() < 1e-12 && (n_hi.value() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn worst_pin_bounds_dominate_average() {
        // Two-input cell via the fixture-style AND is not available here;
        // the single-input inverter makes both extractions agree.
        let (nl, a) = annotated_inverter("0.50_0.50");
        let mut config = crate::DataflowConfig::default();
        config.input_intervals.insert(a, Interval::new(0.3, 0.6));
        let df = NetlistDataflow::analyze_with(&nl, &lib(), &config);
        let id = netlist::InstId::from_index(0);
        let avg = df.lambda_bounds(&nl, &lib(), id, Extraction::GateAverage).unwrap();
        let worst = df.lambda_bounds(&nl, &lib(), id, Extraction::WorstPin).unwrap();
        assert_eq!(avg.nmos, worst.nmos);
        assert_eq!(avg.pmos, worst.pmos);
    }

    #[test]
    fn valid_annotation_passes() {
        // Input pinned high: λn = 1, λp = 0 (quantized) is the only valid tag.
        let (nl, a) = annotated_inverter("0.00_1.00");
        let mut config = crate::DataflowConfig::default();
        config.input_intervals.insert(a, Interval::point(1.0));
        let df = NetlistDataflow::analyze_with(&nl, &lib(), &config);
        assert!(df.validate_annotations(&nl, &lib(), Extraction::GateAverage, 10).is_empty());
    }

    #[test]
    fn out_of_interval_annotation_caught() {
        let (nl, a) = annotated_inverter("1.00_0.00");
        let mut config = crate::DataflowConfig::default();
        config.input_intervals.insert(a, Interval::point(1.0));
        let df = NetlistDataflow::analyze_with(&nl, &lib(), &config);
        let violations = df.validate_annotations(&nl, &lib(), Extraction::GateAverage, 10);
        assert_eq!(violations.len(), 2, "both components are impossible: {violations:?}");
        assert!(violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::NmosOutsideBounds { .. })));
        assert!(violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::PmosOutsideBounds { .. })));
    }

    #[test]
    fn inconsistent_pair_caught_even_with_full_intervals() {
        // Default FULL input: intervals prove nothing, but λp + λn = 0.2
        // can never come from the gate-average extraction.
        let (nl, _) = annotated_inverter("0.10_0.10");
        let df = NetlistDataflow::analyze(&nl, &lib());
        let violations = df.validate_annotations(&nl, &lib(), Extraction::GateAverage, 10);
        assert_eq!(violations.len(), 1);
        assert!(matches!(violations[0].kind, ViolationKind::InconsistentPair { .. }));
        // Worst-pin tolerates λp + λn > 1 but not < 1.
        let violations = df.validate_annotations(&nl, &lib(), Extraction::WorstPin, 10);
        assert_eq!(violations.len(), 1);
    }

    #[test]
    fn quantization_tolerance_absorbs_rounding() {
        // True p = 0.34 → interval [0.34, 0.34]; quantized λn = 0.3 lands
        // 0.04 outside but within the half-step (0.05) tolerance.
        let (nl, a) = annotated_inverter("0.70_0.30");
        let mut config = crate::DataflowConfig::default();
        config.input_intervals.insert(a, Interval::point(0.34));
        let df = NetlistDataflow::analyze_with(&nl, &lib(), &config);
        assert!(df.validate_annotations(&nl, &lib(), Extraction::GateAverage, 10).is_empty());
    }

    #[test]
    fn unannotated_instances_are_ignored() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        nl.add_instance("u0", "INV_X1", &[("A", a), ("Y", y)]);
        let df = NetlistDataflow::analyze(&nl, &lib());
        assert!(df.validate_annotations(&nl, &lib(), Extraction::GateAverage, 10).is_empty());
    }
}
