//! Static lifetime bounds: mechanism-generic degradation intervals and a
//! provable any-workload MTTF lower bound.
//!
//! This is the lifetime analogue of [`crate::static_guardband_bound`]. The
//! λ-interval engine brackets every instance's stress — pMOS/nMOS duty
//! cycles from the signal-probability lattice, switching activity from the
//! output-net interval via `P(toggle) ≤ 2·min(p, 1−p)` — and every
//! [`bti::AgingMechanism`] is evaluated at the *endpoints* of those
//! intervals plus the configured temperature/Vdd ranges.
//!
//! # Soundness argument
//!
//! Each mechanism is monotone in every input (degradation non-decreasing,
//! failure time non-increasing — the trait contract, numerically probed by
//! [`bti::monotonicity_violations`] and lint rule `LT004`). Therefore:
//!
//! 1. evaluating at the interval **high** endpoints yields a degradation
//!    upper bound and a stochastically *smallest* failure distribution —
//!    valid for every workload and environment inside the intervals;
//! 2. the design is a **series system** (first instance failure is design
//!    failure, the standard conservative composition), so
//!    `R_design(t) ≥ Π R_i(t)` evaluated with those worst-corner Weibulls
//!    lower-bounds design reliability for any workload;
//! 3. `MTTF = ∫₀^∞ R(t) dt` is under-approximated by a **right-endpoint
//!    Riemann sum** on a fixed log grid (R is non-increasing), truncated at
//!    both ends — every approximation step only ever *lowers* the result.
//!
//! The chain gives [`LifetimeReport::design_mttf_lo_years`]: a provable
//! MTTF lower bound over every workload whose primary-input probabilities
//! satisfy the analysis boundary, and every environment inside the
//! configured temperature/Vdd ranges.

use crate::engine::{DataflowConfig, NetlistDataflow};
use crate::interval::Interval;
use crate::lambda::{Extraction, LambdaBounds};
use bti::{AgingInput, AgingSuite, StressSource, Weibull};
use liberty::Library;
use netlist::{InstId, Netlist};
use std::collections::BTreeMap;

/// Lower end of the MTTF integration grid in years.
const T_MIN_YEARS: f64 = 1.0e-6;
/// Upper end of the MTTF integration grid in years (beyond the mechanism
/// failure horizon, so no finite Weibull mass is truncated unaccounted).
const T_MAX_YEARS: f64 = 1.0e7;
/// Log-grid resolution of the MTTF integration.
const T_GRID_POINTS: usize = 1600;

/// Configuration of the static lifetime analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeConfig {
    /// The mechanism suite to evaluate.
    pub suite: AgingSuite,
    /// Design lifetime horizon in years (dominance shares, guardband
    /// budget and hotspot checks are evaluated at this age).
    pub years: f64,
    /// Junction-temperature interval `(lo, hi)` in kelvin the bound must
    /// cover.
    pub temperature_range: (f64, f64),
    /// Supply-voltage interval `(lo, hi)` in volts the bound must cover.
    pub vdd_range: (f64, f64),
    /// Clock frequency in hertz (drives the cycle-count mechanisms).
    pub frequency_hz: f64,
    /// Parametric guardband budget: the total `ΔVth` (volts) the design's
    /// timing margin can absorb before re-timing is required.
    pub vth_budget: f64,
    /// Sampled fresh-Vth offset interval `(lo, hi)` in volts the bound must
    /// cover (process variation). `(0, 0)` analyzes the nominal die only;
    /// setting it to a [`ptm`-style variation clamp boundary] — e.g.
    /// `(−σ·clamp, +σ·clamp)` — makes the bound cover every device a
    /// clamped sampler can realize, by the mechanism monotonicity contract
    /// (MTTF non-increasing in the offset).
    pub vth0_offset_range: (f64, f64),
}

impl Default for LifetimeConfig {
    fn default() -> Self {
        LifetimeConfig {
            suite: AgingSuite::standard(),
            years: 10.0,
            temperature_range: (
                bti::Stress::NOMINAL_TEMPERATURE_K,
                bti::Stress::NOMINAL_TEMPERATURE_K,
            ),
            vdd_range: (bti::Stress::NOMINAL_VDD, bti::Stress::NOMINAL_VDD),
            frequency_hz: 1.0e9,
            vth_budget: 0.1,
            vth0_offset_range: (0.0, 0.0),
        }
    }
}

impl LifetimeConfig {
    /// Validates the environment intervals and scalars, returning a
    /// description of every problem (empty = sound). An inverted or
    /// non-finite range makes endpoint evaluation meaningless, so the
    /// analyzer must not run on an invalid configuration (lint `LT003`).
    #[must_use]
    pub fn validation_errors(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut range = |name: &str, (lo, hi): (f64, f64)| {
            if !(lo.is_finite() && hi.is_finite() && lo > 0.0) {
                out.push(format!("{name} range ({lo}, {hi}) must be positive and finite"));
            } else if lo > hi {
                out.push(format!("{name} range ({lo}, {hi}) is inverted"));
            }
        };
        range("temperature", self.temperature_range);
        range("vdd", self.vdd_range);
        if !(self.years.is_finite() && self.years > 0.0) {
            out.push(format!("lifetime horizon {} years must be positive and finite", self.years));
        }
        if !(self.frequency_hz.is_finite() && self.frequency_hz > 0.0) {
            out.push(format!("frequency {} Hz must be positive and finite", self.frequency_hz));
        }
        if !(self.vth_budget.is_finite() && self.vth_budget > 0.0) {
            out.push(format!("ΔVth budget {} V must be positive and finite", self.vth_budget));
        }
        let (olo, ohi) = self.vth0_offset_range;
        if !(olo.is_finite() && ohi.is_finite()) {
            out.push(format!("vth0 offset range ({olo}, {ohi}) must be finite"));
        } else if olo > ohi {
            out.push(format!("vth0 offset range ({olo}, {ohi}) is inverted"));
        }
        out
    }
}

/// Interval results of one mechanism on one instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MechanismInterval {
    /// Stable mechanism name (`"nbti"`, `"hci"`, ...).
    pub mechanism: &'static str,
    /// The per-gate stress quantity this mechanism consumed.
    pub source: StressSource,
    /// `[lo, hi]` of `ΔVth` (volts) at the configured lifetime horizon.
    pub delta_vth: (f64, f64),
    /// `[lo, hi]` of the mean time to failure in years
    /// (`f64::INFINITY` = cannot fail at that corner).
    pub mttf_years: (f64, f64),
    /// Worst-corner failure distribution (`None` = cannot fail even at the
    /// worst corner).
    pub worst: Option<Weibull>,
}

/// Lifetime bounds of one instance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceLifetime {
    /// The analyzed instance.
    pub inst: InstId,
    /// Its name in the netlist.
    pub name: String,
    /// Per-mechanism intervals, in suite order.
    pub mechanisms: Vec<MechanismInterval>,
    /// Provable MTTF lower bound of this instance (series over its own
    /// mechanisms at the worst corner), years.
    pub mttf_lo_years: f64,
    /// Upper bound of the summed parametric `ΔVth` at the lifetime horizon.
    pub delta_vth_hi: f64,
    /// The mechanism with the largest worst-corner cumulative hazard at
    /// the horizon (first in suite order on ties).
    pub dominant: &'static str,
    /// The λ bounds the duty-driven mechanisms were evaluated over.
    pub lambda: LambdaBounds,
    /// The switching-activity upper bound the activity-driven mechanisms
    /// were evaluated at.
    pub activity_hi: f64,
}

/// The outcome of a static lifetime analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeReport {
    /// Per-instance bounds, in netlist instance order.
    pub instances: Vec<InstanceLifetime>,
    /// Provable design MTTF lower bound (series over all instances and
    /// mechanisms at their worst corners), years. Infinite when nothing
    /// can fail.
    pub design_mttf_lo_years: f64,
    /// Best-corner design MTTF estimate (same series composition at the
    /// interval low endpoints) — an optimistic reference, not a bound on
    /// specific workloads.
    pub design_mttf_best_years: f64,
    /// Share of the design's total worst-corner cumulative hazard at the
    /// horizon per mechanism, in suite order. Shares sum to 1 (or are all
    /// 0 when nothing can fail).
    pub hazard_shares: Vec<(&'static str, f64)>,
    /// Sound lower bound on the years until some instance's summed
    /// parametric `ΔVth` exceeds the configured budget. Infinite when the
    /// budget is never exhausted inside the failure horizon.
    pub years_until_budget: f64,
    /// Name of the instance with the smallest MTTF lower bound.
    pub worst_instance: Option<String>,
    /// True when the interval analysis was exact and every instance's cell
    /// was resolvable; a widened/fallback analysis is still sound, just
    /// more conservative.
    pub exact: bool,
    /// The configuration the report was computed under.
    pub config: LifetimeConfig,
    /// Worst-corner failure distributions pooled per mechanism (suite
    /// order), each with its multiplicity.
    pub worst_pools: Vec<(&'static str, Vec<(Weibull, u64)>)>,
}

impl LifetimeReport {
    /// Lower bound of design reliability `R(t)` at `t_years` (worst-corner
    /// series system).
    #[must_use]
    pub fn design_reliability_lo(&self, t_years: f64) -> f64 {
        let hazard: f64 = self
            .worst_pools
            .iter()
            .flat_map(|(_, pool)| pool)
            .map(|(w, count)| *count as f64 * w.cumulative_hazard(t_years))
            .sum();
        (-hazard).exp()
    }

    /// Per-mechanism design MTTF lower bound: the series MTTF if only that
    /// mechanism existed — the per-mechanism curves the `lifetime` bench
    /// binary plots. Suite order.
    #[must_use]
    pub fn mechanism_design_mttf(&self) -> Vec<(&'static str, f64)> {
        self.worst_pools
            .iter()
            .map(|(name, pool)| (*name, series_mttf_lower_bound_pooled(pool)))
            .collect()
    }
}

/// Provable MTTF lower bound of a series system of Weibull components.
///
/// `R(t) = Π R_i(t)` is non-increasing, so the right-endpoint Riemann sum
/// of `∫ R dt` on a log grid under-approximates the integral; truncating
/// below `T_MIN_YEARS` (1e-6) and above `T_MAX_YEARS` (1e7) only drops
/// mass. An empty pool cannot fail: the bound is infinite.
#[must_use]
pub fn series_mttf_lower_bound(components: &[Weibull]) -> f64 {
    let mut groups: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for w in components {
        *groups.entry((w.scale_years.to_bits(), w.shape.to_bits())).or_insert(0) += 1;
    }
    let pool: Vec<(Weibull, u64)> = groups
        .into_iter()
        .map(|((scale, shape), count)| {
            (Weibull::new(f64::from_bits(scale), f64::from_bits(shape)), count)
        })
        .collect();
    series_mttf_lower_bound_pooled(&pool)
}

pub(crate) fn series_mttf_lower_bound_pooled(pool: &[(Weibull, u64)]) -> f64 {
    if pool.is_empty() {
        return f64::INFINITY;
    }
    let ratio = (T_MAX_YEARS / T_MIN_YEARS).ln();
    let t_at = |k: usize| T_MIN_YEARS * (ratio * k as f64 / T_GRID_POINTS as f64).exp();
    let mut mttf = 0.0;
    let mut prev = t_at(0);
    for k in 1..=T_GRID_POINTS {
        let t = t_at(k);
        let hazard: f64 =
            pool.iter().map(|(w, count)| *count as f64 * w.cumulative_hazard(t)).sum();
        mttf += (t - prev) * (-hazard).exp();
        prev = t;
    }
    mttf
}

/// The provable switching-activity upper bound of a net with signal
/// probability in `interval`: a net at probability `p` toggles in at most
/// `2·min(p, 1−p)` of the cycles, maximized over the interval.
#[must_use]
pub fn activity_upper_bound(interval: Interval) -> f64 {
    if interval.contains(0.5) {
        1.0
    } else if interval.hi() < 0.5 {
        2.0 * interval.hi()
    } else {
        2.0 * (1.0 - interval.lo())
    }
}

/// The worst/best stress interval a mechanism sees on one instance.
pub(crate) fn stress_interval(
    source: StressSource,
    lambda: LambdaBounds,
    activity_hi: f64,
) -> (f64, f64) {
    match source {
        StressSource::PmosDuty => (lambda.pmos.lo(), lambda.pmos.hi()),
        StressSource::NmosDuty => (lambda.nmos.lo(), lambda.nmos.hi()),
        // A provable activity lower bound is always 0: any net can hold.
        StressSource::Activity => (0.0, activity_hi),
    }
}

/// Everything the analysis derives from one stress corner. Instances share
/// corners heavily (the λ lattice collapses to few distinct boxes on real
/// netlists), so the per-corner work — in particular the 1600-point series
/// integration behind `mttf_lo_years` — is computed once per distinct
/// `(λ box, activity)` signature and reused.
#[derive(Clone)]
struct CornerEval {
    mechanisms: Vec<MechanismInterval>,
    best: Vec<Weibull>,
    /// Worst-corner cumulative hazard at the horizon, per suite slot
    /// (0 when the mechanism cannot fail there).
    hazards: Vec<f64>,
    mttf_lo_years: f64,
    delta_vth_hi: f64,
    dominant: &'static str,
}

fn eval_corner(config: &LifetimeConfig, lambda: LambdaBounds, activity_hi: f64) -> CornerEval {
    let mechanisms = config.suite.mechanisms();
    let mut per_mech = Vec::with_capacity(mechanisms.len());
    let mut best = Vec::with_capacity(mechanisms.len());
    let mut hazards = Vec::with_capacity(mechanisms.len());
    let mut worst_here: Vec<Weibull> = Vec::with_capacity(mechanisms.len());
    let mut delta_vth_hi = 0.0;
    let mut dominant = (mechanisms[0].1.name(), -1.0f64);
    for (source, mech) in &mechanisms {
        let (stress_lo, stress_hi) = stress_interval(*source, lambda, activity_hi);
        // MTTF is non-increasing in the fresh-Vth offset (monotonicity
        // contract), so the high endpoint belongs to the worst corner.
        let worst_input = AgingInput::new(
            stress_hi,
            config.years,
            config.temperature_range.1,
            config.vdd_range.1,
            config.frequency_hz,
        )
        .with_vth0_offset(config.vth0_offset_range.1);
        let best_input = AgingInput::new(
            stress_lo,
            config.years,
            config.temperature_range.0,
            config.vdd_range.0,
            config.frequency_hz,
        )
        .with_vth0_offset(config.vth0_offset_range.0);
        let worst = mech.failure_distribution(&worst_input);
        let best_w = mech.failure_distribution(&best_input);
        let dv_hi = mech.degradation(&worst_input).delta_vth;
        delta_vth_hi += dv_hi;
        let mut hazard = 0.0;
        if let Some(w) = worst {
            worst_here.push(w);
            hazard = w.cumulative_hazard(config.years);
            if hazard > dominant.1 {
                dominant = (mech.name(), hazard);
            }
        }
        hazards.push(hazard);
        if let Some(b) = best_w {
            best.push(b);
        }
        per_mech.push(MechanismInterval {
            mechanism: mech.name(),
            source: *source,
            delta_vth: (mech.degradation(&best_input).delta_vth, dv_hi),
            mttf_years: (
                worst.map_or(f64::INFINITY, |w| w.mttf_years()),
                best_w.map_or(f64::INFINITY, |w| w.mttf_years()),
            ),
            worst,
        });
    }
    CornerEval {
        mechanisms: per_mech,
        best,
        hazards,
        mttf_lo_years: series_mttf_lower_bound(&worst_here),
        delta_vth_hi,
        dominant: dominant.0,
    }
}

/// Computes the static lifetime bound of `netlist`.
///
/// Instances whose cell is unknown to `library` (or with no connected
/// input pins) fall back to the full stress box — fully conservative, and
/// flagged through [`LifetimeReport::exact`]. The function is infallible:
/// unlike the guardband bound it needs no timing run.
///
/// # Panics
///
/// Panics if `config` fails [`LifetimeConfig::validation_errors`] — run
/// the validation (or the `LT003` lint rule) first.
#[must_use]
pub fn static_lifetime_bound(
    netlist: &Netlist,
    library: &Library,
    config: &LifetimeConfig,
    dataflow: &DataflowConfig,
) -> LifetimeReport {
    let problems = config.validation_errors();
    assert!(problems.is_empty(), "invalid lifetime config: {problems:?}");
    let df = NetlistDataflow::analyze_with(netlist, library, dataflow);
    let full = LambdaBounds { pmos: Interval::FULL, nmos: Interval::FULL };
    let mut exact = df.is_exact();

    let mechanisms = config.suite.mechanisms();
    let mut instances = Vec::with_capacity(netlist.instances().len());
    let mut pools: Vec<BTreeMap<(u64, u64), u64>> =
        mechanisms.iter().map(|_| BTreeMap::new()).collect();
    let mut best_all: Vec<Weibull> = Vec::new();
    let mut hazard_totals = vec![0.0f64; mechanisms.len()];
    let mut corner_cache: BTreeMap<[u64; 5], CornerEval> = BTreeMap::new();

    for id in netlist.instance_ids() {
        let instance = netlist.instance(id);
        let lambda = df
            .lambda_bounds(netlist, library, id, Extraction::GateAverage)
            .zip(df.lambda_bounds(netlist, library, id, Extraction::WorstPin))
            .map(|(a, b)| a.join(b))
            .unwrap_or_else(|| {
                exact = false;
                full
            });
        let activity_hi = match library.cell(&instance.cell) {
            Some(cell) => instance
                .connections
                .iter()
                .filter(|(pin, _)| cell.output(pin).is_some())
                .map(|(_, net)| activity_upper_bound(df.interval(*net)))
                .fold(0.0, f64::max),
            None => 1.0,
        };

        let signature = [
            lambda.pmos.lo().to_bits(),
            lambda.pmos.hi().to_bits(),
            lambda.nmos.lo().to_bits(),
            lambda.nmos.hi().to_bits(),
            activity_hi.to_bits(),
        ];
        let corner = corner_cache
            .entry(signature)
            .or_insert_with(|| eval_corner(config, lambda, activity_hi));
        for (slot, m) in corner.mechanisms.iter().enumerate() {
            if let Some(w) = m.worst {
                *pools[slot].entry((w.scale_years.to_bits(), w.shape.to_bits())).or_insert(0) += 1;
                hazard_totals[slot] += corner.hazards[slot];
            }
        }
        best_all.extend_from_slice(&corner.best);
        instances.push(InstanceLifetime {
            inst: id,
            name: instance.name.clone(),
            mechanisms: corner.mechanisms.clone(),
            mttf_lo_years: corner.mttf_lo_years,
            delta_vth_hi: corner.delta_vth_hi,
            dominant: corner.dominant,
            lambda,
            activity_hi,
        });
    }

    let worst_pools: Vec<(&'static str, Vec<(Weibull, u64)>)> = mechanisms
        .iter()
        .zip(pools)
        .map(|((_, mech), groups)| {
            let pool = groups
                .into_iter()
                .map(|((scale, shape), count)| {
                    (Weibull::new(f64::from_bits(scale), f64::from_bits(shape)), count)
                })
                .collect();
            (mech.name(), pool)
        })
        .collect();
    let design_pool: Vec<(Weibull, u64)> =
        worst_pools.iter().flat_map(|(_, pool)| pool.iter().copied()).collect();

    let total_hazard: f64 = hazard_totals.iter().sum();
    let hazard_shares = mechanisms
        .iter()
        .zip(&hazard_totals)
        .map(|((_, mech), hazard)| {
            (mech.name(), if total_hazard > 0.0 { hazard / total_hazard } else { 0.0 })
        })
        .collect();

    let worst_instance = instances
        .iter()
        .min_by(|a, b| a.mttf_lo_years.partial_cmp(&b.mttf_lo_years).expect("finite-or-inf"))
        .map(|i| i.name.clone());

    LifetimeReport {
        years_until_budget: years_until_budget(&instances, config),
        design_mttf_lo_years: series_mttf_lower_bound_pooled(&design_pool),
        design_mttf_best_years: series_mttf_lower_bound(&best_all),
        instances,
        hazard_shares,
        worst_instance,
        exact,
        config: config.clone(),
        worst_pools,
    }
}

/// Sound lower bound on the years until some instance's summed worst-corner
/// `ΔVth` exceeds the budget: log-space bisection of the monotone
/// `max_inst ΔVth(t) = budget` crossing, deduplicating instances by their
/// worst-corner signature.
fn years_until_budget(instances: &[InstanceLifetime], config: &LifetimeConfig) -> f64 {
    // Distinct (pmos_hi, nmos_hi, activity_hi) corners: ΔVth(t) is the same
    // function of t for every instance sharing one.
    let mut corners: BTreeMap<(u64, u64, u64), ()> = BTreeMap::new();
    for inst in instances {
        corners.insert(
            (
                inst.lambda.pmos.hi().to_bits(),
                inst.lambda.nmos.hi().to_bits(),
                inst.activity_hi.to_bits(),
            ),
            (),
        );
    }
    let mechanisms = config.suite.mechanisms();
    let worst_dv = |years: f64| -> f64 {
        corners
            .keys()
            .map(|&(p, n, a)| {
                let lambda = LambdaBounds {
                    pmos: Interval::point(f64::from_bits(p)),
                    nmos: Interval::point(f64::from_bits(n)),
                };
                mechanisms
                    .iter()
                    .map(|(source, mech)| {
                        let (_, hi) = stress_interval(*source, lambda, f64::from_bits(a));
                        let input = AgingInput::new(
                            hi,
                            years,
                            config.temperature_range.1,
                            config.vdd_range.1,
                            config.frequency_hz,
                        );
                        mech.degradation(&input).delta_vth
                    })
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    };
    if worst_dv(T_MAX_YEARS) <= config.vth_budget {
        return f64::INFINITY;
    }
    let (mut lo, mut hi) = (T_MIN_YEARS.ln(), T_MAX_YEARS.ln());
    if worst_dv(lo.exp()) > config.vth_budget {
        return 0.0;
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if worst_dv(mid.exp()) <= config.vth_budget {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo.exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use liberty::Cell;
    use netlist::PortDir;

    fn lib() -> Library {
        let mut lib = Library::new("lib", 1.2);
        lib.add_cell(Cell::test_inverter("INV_X1"));
        lib
    }

    fn inv_chain(n: usize) -> Netlist {
        let mut nl = Netlist::new("chain");
        let mut prev = nl.add_port("a", PortDir::Input);
        for k in 0..n {
            let next = if k + 1 == n {
                nl.add_port("y", PortDir::Output)
            } else {
                nl.add_net(&format!("n{k}"))
            };
            nl.add_instance(&format!("u{k}"), "INV_X1", &[("A", prev), ("Y", next)]);
            prev = next;
        }
        nl
    }

    #[test]
    fn series_bound_is_below_the_analytic_mttf() {
        // One exponential component: MTTF = scale exactly; the Riemann
        // bound must come in below but close.
        let w = Weibull::new(100.0, 1.0);
        let bound = series_mttf_lower_bound(&[w]);
        assert!(bound <= 100.0, "bound {bound} exceeds the true MTTF");
        assert!(bound > 95.0, "bound {bound} is needlessly loose");
        // Two identical exponentials in series halve the MTTF.
        let two = series_mttf_lower_bound(&[w, w]);
        assert!(two <= 50.0 && two > 47.0, "series of two: {two}");
        // Nothing in the pool → nothing can fail.
        assert_eq!(series_mttf_lower_bound(&[]), f64::INFINITY);
    }

    #[test]
    fn activity_bound_covers_the_toggle_identity() {
        assert_eq!(activity_upper_bound(Interval::FULL), 1.0);
        assert_eq!(activity_upper_bound(Interval::point(0.5)), 1.0);
        assert!((activity_upper_bound(Interval::new(0.0, 0.2)) - 0.4).abs() < 1e-12);
        assert!((activity_upper_bound(Interval::new(0.9, 1.0)) - 0.2).abs() < 1e-12);
        assert_eq!(activity_upper_bound(Interval::point(0.0)), 0.0);
        assert_eq!(activity_upper_bound(Interval::point(1.0)), 0.0);
    }

    #[test]
    fn unconstrained_chain_gets_a_finite_sound_bound() {
        let nl = inv_chain(8);
        let report = static_lifetime_bound(
            &nl,
            &lib(),
            &LifetimeConfig::default(),
            &DataflowConfig::default(),
        );
        assert!(report.exact);
        assert_eq!(report.instances.len(), 8);
        assert!(report.design_mttf_lo_years.is_finite());
        assert!(
            report.design_mttf_lo_years > 10.0,
            "chain dies young: {}",
            report.design_mttf_lo_years
        );
        // The design bound cannot exceed any instance bound.
        for inst in &report.instances {
            assert!(report.design_mttf_lo_years <= inst.mttf_lo_years + 1e-9);
            // Interval ordering: lo ≤ hi everywhere.
            for m in &inst.mechanisms {
                assert!(m.delta_vth.0 <= m.delta_vth.1 + 1e-15);
                assert!(m.mttf_years.0 <= m.mttf_years.1);
            }
        }
        // Best-corner estimate dominates the worst-corner bound.
        assert!(report.design_mttf_best_years >= report.design_mttf_lo_years);
        // Shares sum to 1 and the report names a worst instance.
        let total: f64 = report.hazard_shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(report.worst_instance.is_some());
        assert!(report.years_until_budget > 10.0);
    }

    #[test]
    fn pinned_inputs_relax_the_bound() {
        let nl = inv_chain(4);
        let free = static_lifetime_bound(
            &nl,
            &lib(),
            &LifetimeConfig::default(),
            &DataflowConfig::default(),
        );
        // Input pinned high: every level is exactly known, activity is 0,
        // duty corners shrink from FULL to points.
        let mut df = DataflowConfig::default();
        let a = nl.find_net("a").unwrap();
        df.input_intervals.insert(a, Interval::point(1.0));
        let pinned = static_lifetime_bound(&nl, &lib(), &LifetimeConfig::default(), &df);
        assert!(pinned.design_mttf_lo_years >= free.design_mttf_lo_years);
        for inst in &pinned.instances {
            assert_eq!(inst.activity_hi, 0.0);
            // Activity-driven hard-failure mechanisms cannot fire.
            for m in &inst.mechanisms {
                if m.source == StressSource::Activity && m.mechanism != "tddb" {
                    assert_eq!(m.mttf_years.0, f64::INFINITY);
                }
            }
        }
    }

    #[test]
    fn hotter_and_overdriven_environments_shrink_the_bound() {
        let nl = inv_chain(4);
        let nominal = static_lifetime_bound(
            &nl,
            &lib(),
            &LifetimeConfig::default(),
            &DataflowConfig::default(),
        );
        let harsh = LifetimeConfig {
            temperature_range: (368.15, 428.15),
            vdd_range: (1.1, 1.3),
            ..LifetimeConfig::default()
        };
        let bounded = static_lifetime_bound(&nl, &lib(), &harsh, &DataflowConfig::default());
        assert!(bounded.design_mttf_lo_years < nominal.design_mttf_lo_years);
        assert!(bounded.design_mttf_best_years > nominal.design_mttf_best_years);
        assert!(bounded.years_until_budget <= nominal.years_until_budget);
    }

    #[test]
    fn variation_offset_range_widens_the_corner_box() {
        let nl = inv_chain(4);
        let nominal = static_lifetime_bound(
            &nl,
            &lib(),
            &LifetimeConfig::default(),
            &DataflowConfig::default(),
        );
        let varied =
            LifetimeConfig { vth0_offset_range: (-0.06, 0.06), ..LifetimeConfig::default() };
        let bounded = static_lifetime_bound(&nl, &lib(), &varied, &DataflowConfig::default());
        // Slow-die devices (positive offset) fail earlier, so the worst-corner
        // bound shrinks; fast-die devices stretch the best-corner estimate.
        assert!(bounded.design_mttf_lo_years < nominal.design_mttf_lo_years);
        assert!(bounded.design_mttf_best_years >= nominal.design_mttf_best_years);
        // Degradation trajectories are offset-independent, so the ΔVth
        // budget crossing is unchanged.
        assert_eq!(bounded.years_until_budget, nominal.years_until_budget);
        let bad = LifetimeConfig { vth0_offset_range: (0.06, -0.06), ..LifetimeConfig::default() };
        assert!(bad.validation_errors().iter().any(|e| e.contains("inverted")));
        let nan =
            LifetimeConfig { vth0_offset_range: (f64::NAN, 0.0), ..LifetimeConfig::default() };
        assert!(nan.validation_errors().iter().any(|e| e.contains("finite")));
    }

    #[test]
    fn unknown_cells_fall_back_conservatively() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        nl.add_instance("u0", "MYSTERY", &[("A", a), ("Y", y)]);
        let report = static_lifetime_bound(
            &nl,
            &lib(),
            &LifetimeConfig::default(),
            &DataflowConfig::default(),
        );
        assert!(!report.exact);
        let inst = &report.instances[0];
        assert_eq!(inst.lambda.pmos, Interval::FULL);
        assert_eq!(inst.activity_hi, 1.0);
        assert!(inst.mttf_lo_years.is_finite());
    }

    #[test]
    fn config_validation_catches_unsound_ranges() {
        assert!(LifetimeConfig::default().validation_errors().is_empty());
        let inverted =
            LifetimeConfig { temperature_range: (428.15, 398.15), ..LifetimeConfig::default() };
        assert!(inverted.validation_errors().iter().any(|e| e.contains("inverted")));
        let bad = LifetimeConfig { vdd_range: (f64::NAN, 1.2), years: -1.0, ..Default::default() };
        assert!(bad.validation_errors().len() >= 2);
    }

    #[test]
    fn report_reliability_and_curves_are_consistent() {
        let nl = inv_chain(4);
        let report = static_lifetime_bound(
            &nl,
            &lib(),
            &LifetimeConfig::default(),
            &DataflowConfig::default(),
        );
        assert!(report.design_reliability_lo(0.0) == 1.0);
        let r10 = report.design_reliability_lo(10.0);
        let r50 = report.design_reliability_lo(50.0);
        assert!((0.0..=1.0).contains(&r10) && r50 <= r10);
        // Every single-mechanism series bound dominates the all-mechanism one.
        for (name, mttf) in report.mechanism_design_mttf() {
            assert!(mttf >= report.design_mttf_lo_years, "{name}: {mttf}");
        }
    }
}
