//! The abstract-interpretation engine: interval propagation to a fixpoint.
//!
//! Initialization pins every net whose value the analysis cannot constrain
//! to [`Interval::FULL`] — primary inputs (unless the caller supplies
//! tighter bounds), flop outputs (a register can hold either level),
//! floating nets, outputs of unresolvable instances and every output of a
//! combinational loop (widening; the loops come from
//! [`sta::combinational_loops`]). The remaining combinational instances
//! form a DAG and are evaluated once each in Kahn topological order, so the
//! fixpoint is reached in a single sweep.

use crate::interval::Interval;
use liberty::{BoolExpr, Library};
use netlist::{InstId, NetId, Netlist};
use std::collections::HashMap;

/// Evaluates a Liberty pin function over intervals; `env` supplies the
/// interval of each referenced pin.
///
/// N-ary conjunctions/disjunctions fold pairwise — Fréchet bounds compose
/// soundly, each step being valid for any joint distribution.
#[must_use]
pub fn expr_interval(expr: &BoolExpr, env: &impl Fn(&str) -> Interval) -> Interval {
    match expr {
        BoolExpr::Const(b) => Interval::point(if *b { 1.0 } else { 0.0 }),
        BoolExpr::Var(pin) => env(pin),
        BoolExpr::Not(e) => expr_interval(e, env).not(),
        BoolExpr::And(es) => {
            es.iter().map(|e| expr_interval(e, env)).fold(Interval::point(1.0), Interval::and)
        }
        BoolExpr::Or(es) => {
            es.iter().map(|e| expr_interval(e, env)).fold(Interval::point(0.0), Interval::or)
        }
        BoolExpr::Xor(a, b) => expr_interval(a, env).xor(expr_interval(b, env)),
    }
}

/// Analysis configuration: per-net overrides for the boundary condition.
#[derive(Debug, Clone, Default)]
pub struct DataflowConfig {
    /// Signal-probability intervals assumed at primary-input nets.
    /// Unlisted inputs default to [`Interval::FULL`] (any workload).
    pub input_intervals: HashMap<NetId, Interval>,
}

/// The result of one interval-propagation pass over a netlist.
#[derive(Debug, Clone)]
pub struct NetlistDataflow {
    intervals: Vec<Interval>,
    widened: Vec<InstId>,
    skipped: Vec<InstId>,
}

impl NetlistDataflow {
    /// Analyzes `netlist` against `library` with the workload-free boundary
    /// condition (every primary input spans [`Interval::FULL`]).
    #[must_use]
    pub fn analyze(netlist: &Netlist, library: &Library) -> Self {
        Self::analyze_with(netlist, library, &DataflowConfig::default())
    }

    /// [`NetlistDataflow::analyze`] with explicit primary-input intervals.
    ///
    /// The pass is total: unresolvable cells or pins never abort, they
    /// widen (and are reported via [`NetlistDataflow::skipped_instances`]).
    #[must_use]
    pub fn analyze_with(netlist: &Netlist, library: &Library, config: &DataflowConfig) -> Self {
        let n_nets = netlist.net_count();
        let n_insts = netlist.instance_count();
        let mut intervals = vec![Interval::FULL; n_nets];
        let mut known = vec![true; n_nets];
        let mut widened = Vec::new();
        let mut skipped = Vec::new();

        // Combinational-loop membership (widened to FULL).
        let mut in_loop = vec![false; n_insts];
        for scc in sta::combinational_loops(netlist, library) {
            for inst in scc {
                in_loop[inst.index()] = true;
                widened.push(inst);
            }
        }

        // Classify instances; collect the pending combinational DAG.
        // `pending[k]` is Some for instances still awaiting evaluation.
        struct Pending<'a> {
            inputs: Vec<(&'a str, NetId)>,
            outputs: Vec<(&'a BoolExpr, NetId)>,
            deps: usize,
        }
        let mut pending: Vec<Option<Pending<'_>>> = Vec::with_capacity(n_insts);
        for (k, inst) in netlist.instances().iter().enumerate() {
            let Some(cell) = library.cell(&inst.cell) else {
                skipped.push(InstId::from_index(k));
                pending.push(None);
                continue;
            };
            if cell.is_sequential() || in_loop[k] {
                // Flop Q spans FULL (registers start anywhere and hold
                // anything across cycles); loop outputs are widened.
                pending.push(None);
                continue;
            }
            let mut inputs = Vec::new();
            let mut outputs = Vec::new();
            let mut unknown_pin = false;
            for (pin, net) in &inst.connections {
                if cell.input_cap(pin).is_some() {
                    inputs.push((pin.as_str(), *net));
                } else if let Some(out) = cell.output(pin) {
                    outputs.push((&out.function, *net));
                } else {
                    unknown_pin = true;
                }
            }
            if unknown_pin {
                skipped.push(InstId::from_index(k));
            }
            pending.push(Some(Pending { inputs, outputs, deps: 0 }));
        }

        // Nets computed by a pending instance start unknown; everything
        // else (inputs, floating nets, flop/loop/skipped outputs) is FULL.
        for p in pending.iter().flatten() {
            for &(_, net) in &p.outputs {
                known[net.index()] = false;
            }
        }
        for net in netlist.input_nets() {
            known[net.index()] = true;
            intervals[net.index()] =
                config.input_intervals.get(&net).copied().unwrap_or(Interval::FULL);
        }

        // Kahn topological evaluation over the pending DAG.
        let mut waiters: Vec<Vec<usize>> = vec![Vec::new(); n_nets];
        let mut queue: Vec<usize> = Vec::new();
        for (k, p) in pending.iter_mut().enumerate() {
            let Some(p) = p else { continue };
            p.deps = p.inputs.iter().filter(|(_, net)| !known[net.index()]).count();
            for &(_, net) in &p.inputs {
                if !known[net.index()] {
                    waiters[net.index()].push(k);
                }
            }
            if p.deps == 0 {
                queue.push(k);
            }
        }
        while let Some(k) = queue.pop() {
            let p = pending[k].as_ref().expect("queued instances are pending");
            let env = |pin: &str| {
                p.inputs
                    .iter()
                    .find(|(name, _)| *name == pin)
                    .map_or(Interval::FULL, |&(_, net)| intervals[net.index()])
            };
            let results: Vec<(NetId, Interval)> =
                p.outputs.iter().map(|&(f, net)| (net, expr_interval(f, &env))).collect();
            for (net, value) in results {
                intervals[net.index()] = value;
                if !known[net.index()] {
                    known[net.index()] = true;
                    for &w in &waiters[net.index()] {
                        if let Some(wp) = pending[w].as_mut() {
                            wp.deps -= 1;
                            if wp.deps == 0 {
                                queue.push(w);
                            }
                        }
                    }
                }
            }
            pending[k] = None;
        }
        // Anything still pending depends on a cycle the loop detector did
        // not model (e.g. through multiply-driven nets): widen defensively.
        for (k, p) in pending.iter().enumerate() {
            if let Some(p) = p {
                for &(_, net) in &p.outputs {
                    intervals[net.index()] = Interval::FULL;
                }
                widened.push(InstId::from_index(k));
            }
        }
        widened.sort_unstable_by_key(|i: &InstId| i.index());
        widened.dedup();
        skipped.sort_unstable_by_key(|i: &InstId| i.index());
        skipped.dedup();
        NetlistDataflow { intervals, widened, skipped }
    }

    /// The computed interval of `net`.
    #[must_use]
    pub fn interval(&self, net: NetId) -> Interval {
        self.intervals[net.index()]
    }

    /// All per-net intervals, indexed by [`NetId::index`].
    #[must_use]
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Instances widened to [`Interval::FULL`] because they sit on (or
    /// could not be ordered around) a combinational loop.
    #[must_use]
    pub fn widened_instances(&self) -> &[InstId] {
        &self.widened
    }

    /// Instances skipped because their cell or a pin could not be resolved
    /// against the library (their outputs stay [`Interval::FULL`]).
    #[must_use]
    pub fn skipped_instances(&self) -> &[InstId] {
        &self.skipped
    }

    /// True when no widening or skipping occurred — every interval is the
    /// best the Fréchet lattice can prove for this netlist.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.widened.is_empty() && self.skipped.is_empty()
    }

    /// Nets statically pinned to a constant level, restricted to nets
    /// actually driven by an instance — the BTI stress hotspots: the
    /// driver's transistors sit at the asymmetric worst-case λ corner of
    /// the paper's Fig. 2 grid, aging monotonically with no recovery.
    #[must_use]
    pub fn constant_nets(&self, netlist: &Netlist, library: &Library) -> Vec<(NetId, bool)> {
        let mut driven = vec![false; netlist.net_count()];
        for inst in netlist.instances() {
            let Some(cell) = library.cell(&inst.cell) else { continue };
            for (pin, net) in &inst.connections {
                if cell.output(pin).is_some() {
                    driven[net.index()] = true;
                }
            }
        }
        (0..netlist.net_count())
            .filter(|&k| driven[k])
            .filter_map(|k| {
                self.intervals[k].as_constant().map(|level| (NetId::from_index(k), level))
            })
            .collect()
    }
}

/// Instances whose output cone never reaches a primary output — dead
/// logic whose aging (and area) is unobservable.
///
/// Reverse reachability from the primary-output nets; sequential cells
/// propagate liveness like any other instance (a flop is live when its `Q`
/// is transitively observable). Unresolvable instances are conservatively
/// treated as live sinks of every net they touch.
#[must_use]
pub fn dead_cone(netlist: &Netlist, library: &Library) -> Vec<InstId> {
    let n_nets = netlist.net_count();
    let n_insts = netlist.instance_count();
    let mut live_net = vec![false; n_nets];
    for net in netlist.output_nets() {
        live_net[net.index()] = true;
    }

    // Per resolvable instance: input and output nets. Unknown cells make
    // every touched net live (they might observe it).
    let mut resolvable: Vec<Option<(Vec<NetId>, Vec<NetId>)>> = Vec::with_capacity(n_insts);
    for inst in netlist.instances() {
        let Some(cell) = library.cell(&inst.cell) else {
            for (_, net) in &inst.connections {
                live_net[net.index()] = true;
            }
            resolvable.push(None);
            continue;
        };
        let mut ins = Vec::new();
        let mut outs = Vec::new();
        for (pin, net) in &inst.connections {
            if cell.input_cap(pin).is_some() {
                ins.push(*net);
            } else if cell.output(pin).is_some() {
                outs.push(*net);
            }
        }
        resolvable.push(Some((ins, outs)));
    }

    let mut live_inst = vec![false; n_insts];
    let mut changed = true;
    while changed {
        changed = false;
        for (k, r) in resolvable.iter().enumerate() {
            let Some((ins, outs)) = r else { continue };
            if !live_inst[k] && outs.iter().any(|net| live_net[net.index()]) {
                live_inst[k] = true;
                changed = true;
                for net in ins {
                    if !live_net[net.index()] {
                        live_net[net.index()] = true;
                        changed = true;
                    }
                }
            }
        }
    }
    (0..n_insts)
        .filter(|&k| resolvable[k].is_some() && !live_inst[k])
        .map(InstId::from_index)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use liberty::Cell;
    use netlist::PortDir;

    fn inv_lib() -> Library {
        let mut lib = Library::new("lib", 1.2);
        lib.add_cell(Cell::test_inverter("INV_X1"));
        lib
    }

    #[test]
    fn inverter_chain_flips_intervals() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        let n1 = nl.add_net("n1");
        nl.add_instance("u0", "INV_X1", &[("A", a), ("Y", n1)]);
        nl.add_instance("u1", "INV_X1", &[("A", n1), ("Y", y)]);
        let mut config = DataflowConfig::default();
        config.input_intervals.insert(a, Interval::new(0.2, 0.3));
        let df = NetlistDataflow::analyze_with(&nl, &inv_lib(), &config);
        assert!(df.is_exact());
        assert!((df.interval(n1).lo() - 0.7).abs() < 1e-12);
        assert!((df.interval(n1).hi() - 0.8).abs() < 1e-12);
        assert!((df.interval(y).lo() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn default_inputs_are_full() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        nl.add_instance("u0", "INV_X1", &[("A", a), ("Y", y)]);
        let df = NetlistDataflow::analyze(&nl, &inv_lib());
        assert_eq!(df.interval(y), Interval::FULL);
    }

    #[test]
    fn constant_input_pins_the_cone() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        nl.add_instance("u0", "INV_X1", &[("A", a), ("Y", y)]);
        let mut config = DataflowConfig::default();
        config.input_intervals.insert(a, Interval::point(1.0));
        let df = NetlistDataflow::analyze_with(&nl, &inv_lib(), &config);
        assert_eq!(df.interval(y).as_constant(), Some(false));
        let constants = df.constant_nets(&nl, &inv_lib());
        assert_eq!(constants, vec![(y, false)], "only the driven net is a hotspot");
    }

    #[test]
    fn combinational_loop_widens() {
        // Cross-coupled inverters: both nets widened, analysis not exact.
        let mut nl = Netlist::new("m");
        let n1 = nl.add_net("n1");
        let n2 = nl.add_net("n2");
        let y = nl.add_port("y", PortDir::Output);
        nl.add_instance("u0", "INV_X1", &[("A", n2), ("Y", n1)]);
        nl.add_instance("u1", "INV_X1", &[("A", n1), ("Y", n2)]);
        nl.add_instance("u2", "INV_X1", &[("A", n1), ("Y", y)]);
        let df = NetlistDataflow::analyze(&nl, &inv_lib());
        assert!(!df.is_exact());
        assert_eq!(df.widened_instances().len(), 2);
        assert_eq!(df.interval(n1), Interval::FULL);
        assert_eq!(df.interval(y), Interval::FULL, "downstream of the loop stays sound");
    }

    #[test]
    fn unknown_cell_skipped_not_fatal() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        let n1 = nl.add_net("n1");
        nl.add_instance("u0", "MYSTERY", &[("A", a), ("Y", n1)]);
        nl.add_instance("u1", "INV_X1", &[("A", n1), ("Y", y)]);
        let mut config = DataflowConfig::default();
        config.input_intervals.insert(a, Interval::point(1.0));
        let df = NetlistDataflow::analyze_with(&nl, &inv_lib(), &config);
        assert_eq!(df.skipped_instances().len(), 1);
        assert_eq!(df.interval(n1), Interval::FULL);
        assert_eq!(df.interval(y), Interval::FULL);
    }

    #[test]
    fn dead_cone_found_behind_live_logic() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        let d1 = nl.add_net("d1");
        let d2 = nl.add_net("d2");
        nl.add_instance("live", "INV_X1", &[("A", a), ("Y", y)]);
        nl.add_instance("dead0", "INV_X1", &[("A", a), ("Y", d1)]);
        nl.add_instance("dead1", "INV_X1", &[("A", d1), ("Y", d2)]);
        let dead = dead_cone(&nl, &inv_lib());
        assert_eq!(dead, vec![InstId::from_index(1), InstId::from_index(2)]);
    }

    #[test]
    fn unknown_cells_keep_their_fanin_live() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let n1 = nl.add_net("n1");
        nl.add_instance("u0", "INV_X1", &[("A", a), ("Y", n1)]);
        nl.add_instance("u1", "MYSTERY", &[("A", n1)]);
        assert!(dead_cone(&nl, &inv_lib()).is_empty());
    }
}
