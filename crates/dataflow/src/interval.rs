//! The signal-probability interval lattice `[lo, hi] ⊆ [0, 1]`.
//!
//! Every net carries the probability `p` that it is logic-high over some
//! workload; an [`Interval`] brackets every achievable `p`. Gate transfer
//! functions use **Fréchet inequalities**, which bound the probability of a
//! conjunction/disjunction for *any* joint distribution of the inputs:
//!
//! ```text
//! max(0, pa + pb − 1) ≤ P(a ∧ b) ≤ min(pa, pb)
//! max(pa, pb)         ≤ P(a ∨ b) ≤ min(1, pa + pb)
//! ```
//!
//! Unlike the classic Parker–McCluskey independence propagation, Fréchet
//! bounds stay sound under reconvergent fanout and arbitrarily correlated
//! workloads — the property the λ-validation rules rely on: a simulated
//! duty cycle can *never* legitimately leave its computed interval.

use bti::DutyCycle;
use std::fmt;

/// A closed sub-interval of the probability range `[0, 1]`.
///
/// The invariant `0 ≤ lo ≤ hi ≤ 1` is maintained by every constructor and
/// operation; out-of-range inputs are clamped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// The whole probability range — the lattice top, used for primary
    /// inputs, flop outputs and everything widened across loops.
    pub const FULL: Interval = Interval { lo: 0.0, hi: 1.0 };

    /// A degenerate single-probability interval.
    #[must_use]
    pub fn point(p: f64) -> Self {
        let p = p.clamp(0.0, 1.0);
        Interval { lo: p, hi: p }
    }

    /// An interval from explicit bounds, clamped into `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi` after clamping (an analysis bug, not an input
    /// condition), or when either bound is NaN.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(!lo.is_nan() && !hi.is_nan(), "NaN probability bound");
        let lo = lo.clamp(0.0, 1.0);
        let hi = hi.clamp(0.0, 1.0);
        assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// Lower bound.
    #[must_use]
    pub fn lo(self) -> f64 {
        self.lo
    }

    /// Upper bound.
    #[must_use]
    pub fn hi(self) -> f64 {
        self.hi
    }

    /// `hi − lo`; zero for points, one for [`Interval::FULL`].
    #[must_use]
    pub fn width(self) -> f64 {
        self.hi - self.lo
    }

    /// True when `p` lies inside the interval.
    #[must_use]
    pub fn contains(self, p: f64) -> bool {
        self.lo <= p && p <= self.hi
    }

    /// [`Interval::contains`] with the bounds relaxed by `tolerance` on
    /// each side — used to absorb λ-grid quantization (half a grid step).
    #[must_use]
    pub fn contains_with_tolerance(self, p: f64, tolerance: f64) -> bool {
        self.lo - tolerance <= p && p <= self.hi + tolerance
    }

    /// `Some(level)` when the interval pins the net to a constant logic
    /// level: `[0, 0]` → `Some(false)`, `[1, 1]` → `Some(true)`.
    #[must_use]
    pub fn as_constant(self) -> Option<bool> {
        if self == Interval::point(0.0) {
            Some(false)
        } else if self == Interval::point(1.0) {
            Some(true)
        } else {
            None
        }
    }

    /// Least upper bound (union hull) of two intervals.
    #[must_use]
    pub fn join(self, other: Interval) -> Interval {
        Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Complement: `P(¬a) = 1 − P(a)`, exact on intervals.
    ///
    /// Named after the gate, alongside [`Interval::and`]/[`Interval::or`];
    /// probabilities have no sensible `!` operator semantics.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn not(self) -> Interval {
        Interval { lo: 1.0 - self.hi, hi: 1.0 - self.lo }
    }

    /// Fréchet conjunction bound, sound for any input correlation.
    #[must_use]
    pub fn and(self, other: Interval) -> Interval {
        Interval { lo: (self.lo + other.lo - 1.0).max(0.0), hi: self.hi.min(other.hi) }
    }

    /// Fréchet disjunction bound, sound for any input correlation.
    #[must_use]
    pub fn or(self, other: Interval) -> Interval {
        Interval { lo: self.lo.max(other.lo), hi: (self.hi + other.hi).min(1.0) }
    }

    /// Exclusive-or bound. With marginals `pa, pb`, Fréchet gives
    /// `|pa − pb| ≤ P(a ⊕ b) ≤ min(pa + pb, 2 − pa − pb)`; both sides are
    /// then extremized over the two intervals.
    #[must_use]
    pub fn xor(self, other: Interval) -> Interval {
        let lo = (self.lo - other.hi).max(other.lo - self.hi).max(0.0);
        // min(s, 2 − s) is maximized at s* = clamp(1, s_lo, s_hi).
        let s = (self.lo + other.lo).max((self.hi + other.hi).min(1.0));
        Interval { lo, hi: s.min(2.0 - s).min(1.0) }
    }

    /// The interval of the arithmetic mean of `items` (exact: the mean of
    /// independent ranges ranges over the mean of the endpoints).
    ///
    /// Returns `None` for an empty slice.
    #[must_use]
    pub fn average(items: &[Interval]) -> Option<Interval> {
        if items.is_empty() {
            return None;
        }
        let n = items.len() as f64;
        let lo = items.iter().map(|i| i.lo).sum::<f64>() / n;
        let hi = items.iter().map(|i| i.hi).sum::<f64>() / n;
        Some(Interval::new(lo, hi))
    }

    /// The interval of `max(a, b)`: each endpoint is the max of the
    /// endpoints (exact for the maximum of two dependent quantities).
    #[must_use]
    pub fn max(self, other: Interval) -> Interval {
        Interval { lo: self.lo.max(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Converts the probability interval into a pair of saturating
    /// [`DutyCycle`] bounds `(min, max)` for the `bti` aging models.
    #[must_use]
    pub fn duty_range(self) -> (DutyCycle, DutyCycle) {
        (DutyCycle::saturating(self.lo), DutyCycle::saturating(self.hi))
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.3}, {:.3}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_clamp_and_classify() {
        assert_eq!(Interval::point(-0.5), Interval::point(0.0));
        assert_eq!(Interval::point(2.0).as_constant(), Some(true));
        assert_eq!(Interval::point(0.0).as_constant(), Some(false));
        assert_eq!(Interval::FULL.as_constant(), None);
        assert!((Interval::new(0.2, 0.7).width() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "inverted interval")]
    fn inverted_bounds_panic() {
        let _ = Interval::new(0.8, 0.2);
    }

    #[test]
    fn not_is_exact_involution() {
        let i = Interval::new(0.2, 0.7);
        assert!((i.not().not().lo() - i.lo()).abs() < 1e-12);
        assert!((i.not().not().hi() - i.hi()).abs() < 1e-12);
        assert!((i.not().lo() - 0.3).abs() < 1e-12);
        assert!((i.not().hi() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn frechet_and_or_points() {
        let a = Interval::point(0.6);
        let b = Interval::point(0.7);
        let and = a.and(b);
        assert!((and.lo() - 0.3).abs() < 1e-12, "max(0, .6+.7-1)");
        assert!((and.hi() - 0.6).abs() < 1e-12, "min(.6,.7)");
        let or = a.or(b);
        assert!((or.lo() - 0.7).abs() < 1e-12);
        assert!((or.hi() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn xor_bounds() {
        let a = Interval::point(0.5);
        let b = Interval::point(0.5);
        let x = a.xor(b);
        assert!((x.lo() - 0.0).abs() < 1e-12);
        assert!((x.hi() - 1.0).abs() < 1e-12);
        // Disjoint intervals force a minimum distance.
        let x = Interval::new(0.0, 0.1).xor(Interval::new(0.9, 1.0));
        assert!((x.lo() - 0.8).abs() < 1e-12);
        // A constant input makes xor behave like (negated) identity.
        let x = Interval::point(1.0).xor(Interval::new(0.2, 0.4));
        assert!((x.lo() - 0.6).abs() < 1e-12);
        assert!((x.hi() - 0.8).abs() < 1e-12);
    }

    /// Monte-Carlo soundness: for random joint distributions of two
    /// correlated bits, the empirical gate probabilities always fall
    /// inside the Fréchet intervals of the empirical marginals.
    #[test]
    fn frechet_sound_under_correlation() {
        // Joint distribution over (a, b) as four weights.
        let joints = [
            [0.25, 0.25, 0.25, 0.25],
            [0.5, 0.0, 0.0, 0.5], // perfectly correlated
            [0.0, 0.5, 0.5, 0.0], // perfectly anti-correlated
            [0.1, 0.2, 0.3, 0.4],
            [0.7, 0.0, 0.1, 0.2],
        ];
        for w in joints {
            let pa = w[2] + w[3];
            let pb = w[1] + w[3];
            let p_and = w[3];
            let p_or = w[1] + w[2] + w[3];
            let p_xor = w[1] + w[2];
            let a = Interval::point(pa);
            let b = Interval::point(pb);
            assert!(a.and(b).contains_with_tolerance(p_and, 1e-12), "{w:?} and");
            assert!(a.or(b).contains_with_tolerance(p_or, 1e-12), "{w:?} or");
            assert!(a.xor(b).contains_with_tolerance(p_xor, 1e-12), "{w:?} xor");
        }
    }

    #[test]
    fn average_and_max() {
        let avg = Interval::average(&[Interval::new(0.0, 0.5), Interval::new(0.5, 1.0)]).unwrap();
        assert!((avg.lo() - 0.25).abs() < 1e-12);
        assert!((avg.hi() - 0.75).abs() < 1e-12);
        assert!(Interval::average(&[]).is_none());
        let m = Interval::new(0.1, 0.3).max(Interval::new(0.2, 0.25));
        assert!((m.lo() - 0.2).abs() < 1e-12);
        assert!((m.hi() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn duty_range_conversion() {
        let (lo, hi) = Interval::new(0.2, 0.9).duty_range();
        assert!((lo.value() - 0.2).abs() < 1e-12);
        assert!((hi.value() - 0.9).abs() < 1e-12);
    }
}
