//! Static worst-case guardband bound from λ-interval endpoints.
//!
//! The dynamic flow (paper Sec. 4.2) simulates a workload, annotates every
//! instance with its extracted λ pair and re-times the design against the
//! complete degradation-aware library. This module produces the
//! *workload-free* counterpart: every instance is annotated with the
//! characterized λ-grid variant of **worst delay inside its statically
//! provable λ-interval box**, and STA of that netlist upper-bounds the aged
//! critical path of any workload — provably containing every dynamic
//! guardband, not just the ones that were simulated.
//!
//! The per-instance variant choice ranks cells by
//! [`liberty::Cell::worst_delay`] at the library's default operating point;
//! the bound therefore assumes the per-cell delay ordering across λ
//! variants is consistent over the characterized slew/load grid — which is
//! what BTI/PBTI aging produces (and what the `AG001` lint rule checks).

use crate::engine::{DataflowConfig, NetlistDataflow};
use crate::lambda::{Extraction, LambdaBounds};
use liberty::{split_lambda_tag, LambdaTag, Library};
use netlist::{annotate::annotated_with_lambda, annotate::annotated_with_static, Netlist};
use sta::{analyze, Constraints, StaError};

/// The outcome of a static guardband-bound computation.
#[derive(Debug, Clone)]
pub struct StaticBoundReport {
    /// Fresh critical path (all instances at the λ = 0 variant), seconds.
    pub fresh_delay: f64,
    /// Upper bound of the aged critical path over every workload whose
    /// primary-input probabilities satisfy the analysis boundary, seconds.
    pub bound_delay: f64,
    /// True when the interval analysis was exact (no widening/skipping);
    /// a widened analysis is still sound, just more conservative.
    pub exact: bool,
    /// The bound-annotated netlist (cells renamed `CELL_λp_λn`).
    pub annotated: Netlist,
}

impl StaticBoundReport {
    /// The provable worst-case guardband: bound − fresh.
    #[must_use]
    pub fn guardband(&self) -> f64 {
        self.bound_delay - self.fresh_delay
    }
}

/// Computes the static worst-case guardband bound of `netlist`.
///
/// * `base_library` supplies cell functions/structure (the library the
///   unannotated netlist was mapped against).
/// * `complete` is the merged degradation-aware library with `CELL_λp_λn`
///   variants on a grid of `steps` intervals.
/// * `config` sets the primary-input probability bounds (use the default
///   for the any-workload bound).
///
/// Instances whose λ-interval box matches no characterized variant (or
/// with no input pins) fall back to the worst variant overall — fully
/// conservative. Both extraction modes' boxes are joined, so the bound
/// holds for gate-average *and* worst-pin annotated netlists.
///
/// # Errors
///
/// Propagates [`StaError`] from the two timing runs.
pub fn static_guardband_bound(
    netlist: &Netlist,
    base_library: &Library,
    complete: &Library,
    steps: u32,
    config: &DataflowConfig,
    constraints: &Constraints,
) -> Result<StaticBoundReport, StaError> {
    let df = NetlistDataflow::analyze_with(netlist, base_library, config);
    let tolerance = 0.5 / f64::from(steps.max(1)) + 1e-9;
    let slew = complete.default_input_slew;
    let load = complete.default_output_load;

    let tags: Vec<Option<LambdaTag>> = netlist
        .instance_ids()
        .map(|id| {
            let inst = netlist.instance(id);
            let bounds = df
                .lambda_bounds(netlist, base_library, id, Extraction::GateAverage)
                .zip(df.lambda_bounds(netlist, base_library, id, Extraction::WorstPin))
                .map(|(a, b)| a.join(b));
            let mut in_box: Option<(f64, LambdaTag)> = None;
            let mut overall: Option<(f64, LambdaTag)> = None;
            for cell in complete.cells_with_base(&inst.cell) {
                let (_, Some(tag)) = split_lambda_tag(&cell.name) else { continue };
                let delay = cell.worst_delay(slew, load);
                let track = |slot: &mut Option<(f64, LambdaTag)>| {
                    if slot.is_none_or(|(d, _)| delay > d) {
                        *slot = Some((delay, tag));
                    }
                };
                track(&mut overall);
                if bounds.is_some_and(|b: LambdaBounds| b.contains(tag, tolerance)) {
                    track(&mut in_box);
                }
            }
            in_box.or(overall).map(|(_, tag)| tag)
        })
        .collect();

    let annotated = annotated_with_lambda(netlist, |id| tags[id.index()]);
    let fresh = annotated_with_static(netlist, LambdaTag { lambda_pmos: 0.0, lambda_nmos: 0.0 });
    let bound_delay = analyze(&annotated, complete, constraints)?.critical_delay();
    let fresh_delay = analyze(&fresh, complete, constraints)?.critical_delay();
    Ok(StaticBoundReport { fresh_delay, bound_delay, exact: df.is_exact(), annotated })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use liberty::{merge_indexed, Cell};
    use netlist::PortDir;

    /// A 5-step complete library over the test inverter where delay
    /// scales with 1 + 0.5·(λp + λn)/2.
    fn complete(steps: u32) -> Library {
        let mut parts = Vec::new();
        for p in 0..=steps {
            for n in 0..=steps {
                let lp = f64::from(p) / f64::from(steps);
                let ln = f64::from(n) / f64::from(steps);
                let factor = 1.0 + 0.5 * (lp + ln) / 2.0;
                let mut lib = Library::new("part", 1.2);
                let mut cell = Cell::test_inverter("INV_X1");
                for o in &mut cell.outputs {
                    for arc in &mut o.arcs {
                        arc.cell_rise = arc.cell_rise.map(|v| v * factor);
                        arc.cell_fall = arc.cell_fall.map(|v| v * factor);
                    }
                }
                lib.add_cell(cell);
                parts.push((LambdaTag { lambda_pmos: lp, lambda_nmos: ln }, lib));
            }
        }
        merge_indexed("complete", &parts)
    }

    fn base() -> Library {
        let mut lib = Library::new("base", 1.2);
        lib.add_cell(Cell::test_inverter("INV_X1"));
        lib
    }

    fn inv_chain(n: usize) -> Netlist {
        let mut nl = Netlist::new("chain");
        let mut prev = nl.add_port("a", PortDir::Input);
        for k in 0..n {
            let next = if k + 1 == n {
                nl.add_port("y", PortDir::Output)
            } else {
                nl.add_net(&format!("n{k}"))
            };
            nl.add_instance(&format!("u{k}"), "INV_X1", &[("A", prev), ("Y", next)]);
            prev = next;
        }
        nl
    }

    #[test]
    fn unconstrained_bound_is_worst_case() {
        let nl = inv_chain(4);
        let report = static_guardband_bound(
            &nl,
            &base(),
            &complete(5),
            5,
            &DataflowConfig::default(),
            &Constraints::default(),
        )
        .unwrap();
        assert!(report.exact);
        assert!(report.guardband() > 0.0);
        // With FULL inputs every inverter can see λn anywhere in [0, 1],
        // so the bound picks the worst variant (λp = λn = 1 here).
        for inst in report.annotated.instances() {
            let (_, tag) = split_lambda_tag(&inst.cell);
            let tag = tag.unwrap();
            assert!((tag.lambda_pmos - 1.0).abs() < 1e-9);
            assert!((tag.lambda_nmos - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constrained_inputs_tighten_the_bound() {
        let nl = inv_chain(4);
        let unconstrained = static_guardband_bound(
            &nl,
            &base(),
            &complete(5),
            5,
            &DataflowConfig::default(),
            &Constraints::default(),
        )
        .unwrap();
        // Input pinned low: stage k sees an exactly known level, so each
        // inverter gets the one matching grid corner instead of the worst.
        let mut config = DataflowConfig::default();
        let a = nl.find_net("a").unwrap();
        config.input_intervals.insert(a, Interval::point(0.0));
        let constrained =
            static_guardband_bound(&nl, &base(), &complete(5), 5, &config, &Constraints::default())
                .unwrap();
        assert!(constrained.bound_delay < unconstrained.bound_delay);
        assert!((constrained.fresh_delay - unconstrained.fresh_delay).abs() < 1e-15);
        assert!(constrained.guardband() >= 0.0);
    }
}
