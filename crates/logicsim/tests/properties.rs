//! Property-based tests for the simulators: timed-vs-functional agreement,
//! activity-statistics invariants and duty-cycle extraction bounds.

use liberty::{Cell, Library};
use netlist::{ArcDelays, DelayAnnotation, Netlist, PortDir};
use proptest::prelude::*;

fn lib() -> Library {
    let mut lib = Library::new("lib", 1.2);
    lib.add_cell(Cell::test_inverter("INV_X1"));
    lib
}

/// Random inverter DAG (same construction as the sta property tests).
fn random_dag(choices: &[usize]) -> Netlist {
    let mut nl = Netlist::new("dag");
    let a = nl.add_port("a", PortDir::Input);
    let mut nets = vec![a];
    for (k, &c) in choices.iter().enumerate() {
        let src = nets[c % nets.len()];
        let dst = nl.add_net(&format!("n{k}"));
        nl.add_instance(&format!("u{k}"), "INV_X1", &[("A", src), ("Y", dst)]);
        nets.push(dst);
    }
    let port = nl.add_port("y", PortDir::Output);
    let last = *nets.last().expect("nonempty");
    nl.add_instance("ob", "INV_X1", &[("A", last), ("Y", port)]);
    nl
}

fn annotate(nl: &Netlist, delays: &[f64]) -> DelayAnnotation {
    let mut ann = DelayAnnotation::new();
    for (k, id) in nl.instance_ids().enumerate() {
        let d = delays[k % delays.len()];
        ann.set(id, "A", "Y", ArcDelays { rise: d, fall: d * 0.9 });
    }
    ann
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// With a period far beyond the total network delay, event-driven
    /// timing simulation equals zero-delay functional simulation.
    #[test]
    fn timed_equals_functional_with_slack(
        choices in prop::collection::vec(any::<usize>(), 1..20),
        delays in prop::collection::vec(1e-12f64..60e-12, 1..5),
        bits in prop::collection::vec(any::<bool>(), 1..16),
    ) {
        let nl = random_dag(&choices);
        let lib = lib();
        let ann = annotate(&nl, &delays);
        let vectors: Vec<Vec<bool>> = bits.iter().map(|&b| vec![b]).collect();
        let golden = logicsim::run_cycles(&nl, &lib, None, &vectors).expect("sim");
        // Total delay is bounded by instances × max arc delay.
        let bound = (nl.instance_count() as f64 + 2.0)
            * delays.iter().copied().fold(0.0, f64::max);
        let timed =
            logicsim::run_timed(&nl, &lib, &ann, bound + 1e-9, None, &vectors).expect("timed");
        prop_assert_eq!(timed.outputs, golden.outputs);
        prop_assert_eq!(timed.late_events, 0);
    }

    /// Signal probabilities are proper frequencies: P ∈ [0,1], and an
    /// inverter's output probability complements its input's.
    #[test]
    fn activity_probabilities_consistent(
        choices in prop::collection::vec(any::<usize>(), 1..20),
        bits in prop::collection::vec(any::<bool>(), 2..24),
    ) {
        let nl = random_dag(&choices);
        let lib = lib();
        let vectors: Vec<Vec<bool>> = bits.iter().map(|&b| vec![b]).collect();
        let run = logicsim::run_cycles(&nl, &lib, None, &vectors).expect("sim");
        for inst in nl.instances() {
            let input = inst.net_on("A").expect("net");
            let output = inst.net_on("Y").expect("net");
            let pi = run.activity.signal_probability(input);
            let po = run.activity.signal_probability(output);
            prop_assert!((0.0..=1.0).contains(&pi));
            prop_assert!((pi + po - 1.0).abs() < 1e-12, "INV output complements input");
        }
    }

    /// Extracted duty cycles satisfy λp + λn = 1 per instance (each device
    /// polarity is stressed exactly when the other is not), and quantized
    /// values sit on the grid.
    #[test]
    fn duty_cycles_complementary(
        choices in prop::collection::vec(any::<usize>(), 1..15),
        bits in prop::collection::vec(any::<bool>(), 2..20),
        steps in 1u32..12,
    ) {
        let nl = random_dag(&choices);
        let lib = lib();
        let vectors: Vec<Vec<bool>> = bits.iter().map(|&b| vec![b]).collect();
        let run = logicsim::run_cycles(&nl, &lib, None, &vectors).expect("sim");
        for id in nl.instance_ids() {
            let tag = run.activity.lambda_of(&nl, &lib, id, steps).expect("single-input cell");
            prop_assert!((tag.lambda_pmos + tag.lambda_nmos - 1.0).abs() < 1.0 / f64::from(steps) + 1e-9);
            let on_grid = |x: f64| {
                let g = x * f64::from(steps);
                (g - g.round()).abs() < 1e-9
            };
            prop_assert!(on_grid(tag.lambda_pmos) && on_grid(tag.lambda_nmos));
        }
    }

    /// Tightening the clock can only corrupt more, never less: the set of
    /// cycles whose outputs match the golden run shrinks monotonically...
    /// verified via error counts at two periods.
    #[test]
    fn tighter_clock_no_fewer_errors(
        choices in prop::collection::vec(any::<usize>(), 4..20),
        bits in prop::collection::vec(any::<bool>(), 4..16),
    ) {
        let nl = random_dag(&choices);
        let lib = lib();
        let ann = annotate(&nl, &[50e-12]);
        let vectors: Vec<Vec<bool>> = bits.iter().map(|&b| vec![b]).collect();
        let golden = logicsim::run_cycles(&nl, &lib, None, &vectors).expect("sim");
        let errors_at = |period: f64| {
            let run = logicsim::run_timed(&nl, &lib, &ann, period, None, &vectors).expect("timed");
            run.outputs
                .iter()
                .zip(&golden.outputs)
                .filter(|(a, b)| a != b)
                .count()
        };
        let total = (nl.instance_count() as f64) * 50e-12;
        let relaxed = errors_at(2.0 * total + 1e-10);
        prop_assert_eq!(relaxed, 0, "fully relaxed clock is error-free");
    }
}
