//! The shared simulation structure: compiled instances, net fanout lists
//! and a topological order of the combinational logic.

use crate::eval::{CompiledCell, CompiledLib};
use crate::SimError;
use liberty::Library;
use netlist::{NetId, Netlist, PortDir};
use std::sync::Arc;

#[derive(Debug, Clone)]
pub(crate) struct SimInst {
    pub cell: Arc<CompiledCell>,
    /// Net per compiled input position.
    pub input_nets: Vec<NetId>,
    /// Net per compiled output position (`None` for unconnected outputs).
    pub output_nets: Vec<Option<NetId>>,
    /// Input/output pin names per position mirror `cell.inputs`/`cell.outputs`.
    pub is_flop: bool,
    /// For flops: compiled input position of the data pin.
    pub data_pos: Option<usize>,
}

#[derive(Debug, Clone)]
pub(crate) struct SimStructure {
    pub n_nets: usize,
    /// Primary input nets in port order, the clock (if named) excluded.
    pub inputs: Vec<NetId>,
    pub clock_net: Option<NetId>,
    /// Primary output nets in port order.
    pub outputs: Vec<NetId>,
    pub insts: Vec<SimInst>,
    /// Indices into `insts`, combinational only, topologically ordered.
    pub comb_order: Vec<usize>,
    /// Indices into `insts` of flip-flops.
    pub flops: Vec<usize>,
    /// Per net: `(instance index, compiled input position)` sinks.
    pub net_sinks: Vec<Vec<(usize, usize)>>,
}

impl SimStructure {
    pub fn build(
        netlist: &Netlist,
        library: &Library,
        clock_port: Option<&str>,
    ) -> Result<Self, SimError> {
        netlist.validate(library)?;
        let compiled = CompiledLib::compile(library)?;

        let mut inputs = Vec::new();
        let mut clock_net = None;
        for port in netlist.ports() {
            if port.dir == PortDir::Input {
                if Some(port.name.as_str()) == clock_port {
                    clock_net = Some(port.net);
                } else {
                    inputs.push(port.net);
                }
            }
        }
        if clock_port.is_some() && clock_net.is_none() {
            return Err(SimError::BadClock { port: clock_port.unwrap_or("").to_owned() });
        }
        let outputs: Vec<NetId> = netlist.output_nets().collect();

        let mut insts = Vec::with_capacity(netlist.instance_count());
        let mut net_sinks: Vec<Vec<(usize, usize)>> = vec![Vec::new(); netlist.net_count()];
        let mut flops = Vec::new();
        for (k, inst) in netlist.instances().iter().enumerate() {
            let cell = Arc::new(compiled.cells[&inst.cell].clone());
            let input_nets: Vec<NetId> = cell
                .inputs
                .iter()
                .map(|pin| inst.net_on(pin).expect("validated: inputs connected"))
                .collect();
            let output_nets: Vec<Option<NetId>> =
                cell.outputs.iter().map(|(pin, _)| inst.net_on(pin)).collect();
            for (pos, net) in input_nets.iter().enumerate() {
                net_sinks[net.index()].push((k, pos));
            }
            let is_flop = cell.flop.is_some();
            let data_pos =
                cell.flop.as_ref().and_then(|(_, data)| cell.inputs.iter().position(|p| p == data));
            if is_flop {
                flops.push(k);
            }
            insts.push(SimInst { cell, input_nets, output_nets, is_flop, data_pos });
        }

        // Topological order of combinational instances (Kahn).
        let mut resolved = vec![false; netlist.net_count()];
        let drivers = netlist.drivers(library)?;
        for (k, r) in resolved.iter_mut().enumerate() {
            if !drivers.contains_key(&NetId::from_index(k)) {
                *r = true;
            }
        }
        for &f in &flops {
            for net in insts[f].output_nets.iter().flatten() {
                resolved[net.index()] = true;
            }
        }
        let mut remaining: Vec<usize> = (0..insts.len()).filter(|&k| !insts[k].is_flop).collect();
        let mut comb_order = Vec::with_capacity(remaining.len());
        loop {
            let before = remaining.len();
            remaining.retain(|&k| {
                let ready = insts[k].input_nets.iter().all(|n| resolved[n.index()]);
                if ready {
                    for net in insts[k].output_nets.iter().flatten() {
                        resolved[net.index()] = true;
                    }
                    comb_order.push(k);
                }
                !ready
            });
            if remaining.is_empty() {
                break;
            }
            if remaining.len() == before {
                return Err(SimError::CombinationalLoop {
                    instance: netlist
                        .instance(netlist::InstId::from_index(remaining[0]))
                        .name
                        .clone(),
                });
            }
        }
        Ok(SimStructure {
            n_nets: netlist.net_count(),
            inputs,
            clock_net,
            outputs,
            insts,
            comb_order,
            flops,
            net_sinks,
        })
    }

    /// Packs the current input values of instance `k` into a truth-table row.
    #[inline]
    pub fn input_row(&self, k: usize, values: &[bool]) -> usize {
        let mut row = 0usize;
        for (bit, net) in self.insts[k].input_nets.iter().enumerate() {
            row |= usize::from(values[net.index()]) << bit;
        }
        row
    }
}
