//! Compiled cell functions: each library cell's outputs become truth tables
//! evaluated in O(1) per event.

use crate::SimError;
use liberty::{CellClass, Library};
use std::collections::HashMap;

/// A cell compiled for simulation.
#[derive(Debug, Clone)]
pub(crate) struct CompiledCell {
    /// Input pin names in truth-table bit order.
    pub inputs: Vec<String>,
    /// `(output pin, truth table words)` — bit `r` of word `r/64` is the
    /// output value for input row `r`.
    pub outputs: Vec<(String, Vec<u64>)>,
    /// `Some((clock pin, data pin))` for flip-flops.
    pub flop: Option<(String, String)>,
}

impl CompiledCell {
    /// Evaluates output `index` for the packed input `row`.
    #[inline]
    pub fn eval(&self, index: usize, row: usize) -> bool {
        let words = &self.outputs[index].1;
        words[row / 64] >> (row % 64) & 1 == 1
    }
}

/// All cells of a library, compiled once.
#[derive(Debug, Clone)]
pub(crate) struct CompiledLib {
    pub cells: HashMap<String, CompiledCell>,
}

impl CompiledLib {
    pub fn compile(library: &Library) -> Result<Self, SimError> {
        let mut cells = HashMap::with_capacity(library.len());
        for cell in library.cells() {
            let inputs: Vec<String> = cell.inputs.iter().map(|p| p.name.clone()).collect();
            if inputs.len() > 16 {
                return Err(SimError::TooManyInputs {
                    cell: cell.name.clone(),
                    inputs: inputs.len(),
                });
            }
            let names: Vec<&str> = inputs.iter().map(String::as_str).collect();
            let outputs = cell
                .outputs
                .iter()
                .map(|o| (o.name.clone(), o.function.truth_table(&names)))
                .collect();
            let flop = match &cell.class {
                CellClass::Flop { clock, data, .. } => Some((clock.clone(), data.clone())),
                CellClass::Combinational => None,
            };
            cells.insert(cell.name.clone(), CompiledCell { inputs, outputs, flop });
        }
        Ok(CompiledLib { cells })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liberty::Cell;

    #[test]
    fn inverter_compiles() {
        let mut lib = Library::new("l", 1.2);
        lib.add_cell(Cell::test_inverter("INV_X1"));
        let compiled = CompiledLib::compile(&lib).unwrap();
        let inv = &compiled.cells["INV_X1"];
        assert_eq!(inv.inputs, vec!["A".to_owned()]);
        assert!(inv.eval(0, 0), "INV(0) = 1");
        assert!(!inv.eval(0, 1), "INV(1) = 0");
        assert!(inv.flop.is_none());
    }
}
