//! Signal-activity statistics and duty-cycle extraction (paper Sec. 4.2).

use liberty::LambdaTag;
use netlist::{InstId, NetId, Netlist};

/// Per-net signal statistics accumulated over a cycle-based simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityStats {
    pub(crate) cycles: usize,
    pub(crate) high_cycles: Vec<usize>,
    pub(crate) toggles: Vec<usize>,
    pub(crate) clock_net: Option<NetId>,
}

impl ActivityStats {
    pub(crate) fn new(n_nets: usize, clock_net: Option<NetId>) -> Self {
        ActivityStats {
            cycles: 0,
            high_cycles: vec![0; n_nets],
            toggles: vec![0; n_nets],
            clock_net,
        }
    }

    pub(crate) fn record(&mut self, values: &[bool], previous: Option<&[bool]>) {
        self.cycles += 1;
        for (k, &v) in values.iter().enumerate() {
            if v {
                self.high_cycles[k] += 1;
            }
            if let Some(prev) = previous {
                if prev[k] != v {
                    self.toggles[k] += 1;
                }
            }
        }
    }

    /// Number of recorded cycles.
    #[must_use]
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Fraction of cycles `net` was high (its signal probability). The
    /// clock net, if one was declared, reports 0.5 regardless of the
    /// cycle-based approximation.
    #[must_use]
    pub fn signal_probability(&self, net: NetId) -> f64 {
        if Some(net) == self.clock_net {
            return 0.5;
        }
        if self.cycles == 0 {
            return 0.0;
        }
        self.high_cycles[net.index()] as f64 / self.cycles as f64
    }

    /// Toggle count of `net` across the run.
    #[must_use]
    pub fn toggle_count(&self, net: NetId) -> usize {
        self.toggles[net.index()]
    }

    /// The average transistor duty cycles of instance `inst` following the
    /// paper's per-gate simplification (footnote 2): an nMOS is stressed
    /// while its gate input is high, a pMOS while it is low, and the
    /// per-gate λ is the average over the input pins. Quantized to `steps`
    /// grid intervals to match the complete degradation-aware library.
    ///
    /// Returns `None` for instances whose cell is unknown or has no inputs.
    #[must_use]
    pub fn lambda_of(
        &self,
        netlist: &Netlist,
        library: &liberty::Library,
        inst: InstId,
        steps: u32,
    ) -> Option<LambdaTag> {
        let instance = netlist.instance(inst);
        let cell = library.cell(&instance.cell)?;
        let mut n_sum = 0.0;
        let mut count = 0usize;
        for (pin, net) in &instance.connections {
            if cell.input_cap(pin).is_some() {
                n_sum += self.signal_probability(*net);
                count += 1;
            }
        }
        if count == 0 {
            return None;
        }
        let lambda_nmos = n_sum / count as f64;
        let lambda_pmos = 1.0 - lambda_nmos;
        let q = |x: f64| (x * f64::from(steps)).round() / f64::from(steps);
        Some(LambdaTag { lambda_pmos: q(lambda_pmos), lambda_nmos: q(lambda_nmos) })
    }
}

impl ActivityStats {
    /// Like [`ActivityStats::lambda_of`] but taking the **worst-stressed
    /// pin** per polarity instead of the per-gate average — a conservative
    /// alternative to the paper's footnote-2 simplification (each device
    /// bounded by the most-stressed device of its polarity).
    #[must_use]
    pub fn lambda_of_worst_pin(
        &self,
        netlist: &Netlist,
        library: &liberty::Library,
        inst: InstId,
        steps: u32,
    ) -> Option<LambdaTag> {
        let instance = netlist.instance(inst);
        let cell = library.cell(&instance.cell)?;
        let mut worst_n: f64 = f64::NEG_INFINITY;
        let mut worst_p: f64 = f64::NEG_INFINITY;
        for (pin, net) in &instance.connections {
            if cell.input_cap(pin).is_some() {
                let p_high = self.signal_probability(*net);
                worst_n = worst_n.max(p_high);
                worst_p = worst_p.max(1.0 - p_high);
            }
        }
        if !worst_n.is_finite() {
            return None;
        }
        let q = |x: f64| (x * f64::from(steps)).round() / f64::from(steps);
        Some(LambdaTag { lambda_pmos: q(worst_p), lambda_nmos: q(worst_n) })
    }

    /// Dynamic-switching energy proxy for the run: `Σ_nets toggles · C_net`
    /// (in farad-toggles; multiply by `Vdd²/2` for joules). Loads come from
    /// the sink input capacitances plus the library wire model — a standard
    /// activity-based power estimate, useful to compare workloads.
    #[must_use]
    pub fn switching_energy_proxy(&self, netlist: &Netlist, library: &liberty::Library) -> f64 {
        let Ok(sinks) = netlist.sinks(library) else { return 0.0 };
        let mut total = 0.0;
        for k in 0..self.toggles.len() {
            let net = NetId::from_index(k);
            let mut cap = 0.0;
            if let Some(pins) = sinks.get(&net) {
                for (inst, pin) in pins {
                    if let Some(c) =
                        library.cell(&netlist.instance(*inst).cell).and_then(|c| c.input_cap(pin))
                    {
                        cap += c + library.wire_cap_per_fanout;
                    }
                }
            }
            total += self.toggles[k] as f64 * cap;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_counts() {
        let mut a = ActivityStats::new(2, None);
        a.record(&[true, false], None);
        let prev = [true, false];
        a.record(&[true, true], Some(&prev));
        let n0 = NetId::from_index(0);
        let n1 = NetId::from_index(1);
        assert_eq!(a.cycles(), 2);
        assert!((a.signal_probability(n0) - 1.0).abs() < 1e-12);
        assert!((a.signal_probability(n1) - 0.5).abs() < 1e-12);
        assert_eq!(a.toggle_count(n0), 0);
        assert_eq!(a.toggle_count(n1), 1);
    }

    #[test]
    fn clock_reports_half() {
        let clock = NetId::from_index(0);
        let mut a = ActivityStats::new(1, Some(clock));
        a.record(&[false], None);
        assert_eq!(a.signal_probability(clock), 0.5);
    }

    #[test]
    fn empty_run_zero_probability() {
        let a = ActivityStats::new(1, None);
        assert_eq!(a.signal_probability(NetId::from_index(0)), 0.0);
    }

    #[test]
    fn worst_pin_dominates_average() {
        use liberty::{
            BoolExpr, Cell, CellClass, InputPin, OutputPin, Table2d, TimingArc, TimingSense,
        };
        use netlist::PortDir;
        // A 2-input AND cell so the two pins can carry different stress.
        let t = Table2d::constant(20e-12, 4e-15, 10e-12);
        let arc = |pin: &str| TimingArc {
            related_pin: pin.into(),
            sense: TimingSense::PositiveUnate,
            cell_rise: t.clone(),
            cell_fall: t.clone(),
            rise_transition: t.clone(),
            fall_transition: t.clone(),
        };
        let mut lib = liberty::Library::new("l", 1.2);
        lib.add_cell(Cell {
            name: "AND2_X1".into(),
            area: 1.0,
            class: CellClass::Combinational,
            inputs: vec![
                InputPin { name: "A".into(), capacitance: 1e-15 },
                InputPin { name: "B".into(), capacitance: 1e-15 },
            ],
            outputs: vec![OutputPin {
                name: "Y".into(),
                function: BoolExpr::parse("A & B").unwrap(),
                max_capacitance: 3e-14,
                arcs: vec![arc("A"), arc("B")],
            }],
        });
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let b = nl.add_port("b", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        let g = nl.add_instance("g", "AND2_X1", &[("A", a), ("B", b), ("Y", y)]);
        // a always high, b always low: avg λn = 0.5, worst-pin λn = 1.0.
        let vectors = vec![vec![true, false]; 8];
        let run = crate::run_cycles(&nl, &lib, None, &vectors).unwrap();
        let avg = run.activity.lambda_of(&nl, &lib, g, 10).unwrap();
        let worst = run.activity.lambda_of_worst_pin(&nl, &lib, g, 10).unwrap();
        assert!((avg.lambda_nmos - 0.5).abs() < 1e-9);
        assert!((worst.lambda_nmos - 1.0).abs() < 1e-9);
        assert!((worst.lambda_pmos - 1.0).abs() < 1e-9, "worst pMOS from the low pin");
        assert!(worst.lambda_nmos >= avg.lambda_nmos);
        assert!(worst.lambda_pmos >= avg.lambda_pmos);
    }

    #[test]
    fn switching_energy_counts_toggles() {
        use liberty::{Cell, Library};
        use netlist::PortDir;
        let mut lib = Library::new("l", 1.2);
        lib.add_cell(Cell::test_inverter("INV_X1"));
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        nl.add_instance("u", "INV_X1", &[("A", a), ("Y", y)]);
        // Toggling input: 3 toggles on `a`, 3 on `y`.
        let vectors = vec![vec![false], vec![true], vec![false], vec![true]];
        let run = crate::run_cycles(&nl, &lib, None, &vectors).unwrap();
        let busy = run.activity.switching_energy_proxy(&nl, &lib);
        // Constant input: zero switching.
        let quiet = crate::run_cycles(&nl, &lib, None, &vec![vec![true]; 4]).unwrap();
        let idle = quiet.activity.switching_energy_proxy(&nl, &lib);
        assert!(busy > 0.0);
        assert_eq!(idle, 0.0);
    }
}
