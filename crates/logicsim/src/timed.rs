//! Event-driven timing simulation with per-arc delays.
//!
//! This is the mechanism behind the paper's system-level study (Sec. 5):
//! the circuit runs at a fixed clock period while its gates carry the
//! delays of a chosen aging scenario. Flip-flops and primary outputs sample
//! at each clock edge, so any combinational path that has not settled by
//! then silently captures a wrong value — a *timing error* that corrupts
//! data exactly as on aged silicon.

use crate::structure::SimStructure;
use crate::SimError;
use liberty::Library;
use netlist::{DelayAnnotation, InstId, Netlist};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The result of a timing-accurate run.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedRun {
    /// Primary-output values sampled at the end of each cycle (port order).
    pub outputs: Vec<Vec<bool>>,
    /// Events that were still pending when their cycle's sampling edge
    /// arrived — a direct count of timing-violation opportunities.
    pub late_events: usize,
}

#[derive(Debug, PartialEq)]
struct Event {
    time: f64,
    seq: u64,
    net: usize,
    value: bool,
    /// Net-schedule version for inertial-delay preemption: an event is
    /// dropped if a newer transition was scheduled on its net after it.
    version: u64,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.total_cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Simulates `vectors` at clock period `period` with the per-arc delays of
/// `delays` (unannotated arcs default to zero delay).
///
/// Per cycle `k`: at `t = k·period` the inputs take vector `k` and the
/// flops drive their captured state through their clk→Q delay; events then
/// propagate through the combinational network; just before
/// `t = (k+1)·period` the primary outputs are sampled and the flops capture
/// whatever value their data nets hold *at that instant* — settled or not.
///
/// # Errors
///
/// Returns [`SimError`] for broken netlists, loops or mis-sized vectors.
///
/// # Panics
///
/// Panics if `period` is not positive and finite.
pub fn run_timed(
    netlist: &Netlist,
    library: &Library,
    delays: &DelayAnnotation,
    period: f64,
    clock_port: Option<&str>,
    vectors: &[Vec<bool>],
) -> Result<TimedRun, SimError> {
    assert!(period.is_finite() && period > 0.0, "clock period must be positive");
    let s = SimStructure::build(netlist, library, clock_port)?;
    // Settle the initial state (all inputs low, flops at 0) with zero
    // delays so event propagation starts from a consistent network.
    let mut value = vec![false; s.n_nets];
    for &k in &s.comb_order {
        let row = s.input_row(k, &value);
        let inst = &s.insts[k];
        for (o, net) in inst.output_nets.iter().enumerate() {
            if let Some(net) = net {
                value[net.index()] = inst.cell.eval(o, row);
            }
        }
    }
    let mut target = value.clone();
    let mut queue: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let mut seq = 0u64;
    // Inertial-delay preemption: the latest scheduled transition per net
    // invalidates all earlier pending ones (narrow pulses are swallowed).
    let mut version = vec![0u64; s.n_nets];
    let mut flop_state = vec![false; s.flops.len()];
    let mut outputs = Vec::with_capacity(vectors.len());
    let mut late_events = 0usize;

    let mut schedule = |queue: &mut BinaryHeap<Reverse<Event>>,
                        version: &mut Vec<u64>,
                        time: f64,
                        net: usize,
                        v: bool| {
        seq += 1;
        version[net] += 1;
        queue.push(Reverse(Event { time, seq, net, value: v, version: version[net] }));
    };

    for (cycle, vector) in vectors.iter().enumerate() {
        if vector.len() != s.inputs.len() {
            return Err(SimError::VectorWidth { expected: s.inputs.len(), got: vector.len() });
        }
        let t_edge = cycle as f64 * period;
        let t_sample = (cycle as f64 + 1.0) * period;

        // Apply inputs at the edge.
        for (net, &v) in s.inputs.iter().zip(vector) {
            if target[net.index()] != v {
                target[net.index()] = v;
                schedule(&mut queue, &mut version, t_edge, net.index(), v);
            }
        }
        // Flops drive captured state after clk→Q.
        for (fi, &k) in s.flops.iter().enumerate() {
            let inst = &s.insts[k];
            for (o, net) in inst.output_nets.iter().enumerate() {
                let Some(net) = net else { continue };
                let v = flop_state[fi];
                if target[net.index()] != v {
                    target[net.index()] = v;
                    let (in_pin, out_pin) = (
                        inst.cell.flop.as_ref().expect("flop").0.clone(),
                        inst.cell.outputs[o].0.clone(),
                    );
                    let d = delays.get(InstId::from_index(k), &in_pin, &out_pin).map_or(0.0, |a| {
                        if v {
                            a.rise
                        } else {
                            a.fall
                        }
                    });
                    schedule(&mut queue, &mut version, t_edge + d, net.index(), v);
                }
            }
        }

        // Drain events strictly before the sampling edge.
        while queue.peek().is_some_and(|Reverse(e)| e.time < t_sample) {
            let Reverse(e) = queue.pop().expect("peeked");
            if e.version != version[e.net] || value[e.net] == e.value {
                continue;
            }
            value[e.net] = e.value;
            for &(k, _pos) in &s.net_sinks[e.net] {
                let inst = &s.insts[k];
                if inst.is_flop {
                    continue; // flops sample only at the clock edge
                }
                let row = s.input_row(k, &value);
                for (o, out_net) in inst.output_nets.iter().enumerate() {
                    let Some(out_net) = out_net else { continue };
                    let new = inst.cell.eval(o, row);
                    if target[out_net.index()] != new {
                        target[out_net.index()] = new;
                        // Delay of the arc from the pin that just changed.
                        let in_pin = inst
                            .input_nets
                            .iter()
                            .position(|n| n.index() == e.net)
                            .map(|p| inst.cell.inputs[p].clone())
                            .unwrap_or_default();
                        let out_pin = &inst.cell.outputs[o].0;
                        let d = delays
                            .get(InstId::from_index(k), &in_pin, out_pin)
                            .map_or(0.0, |a| if new { a.rise } else { a.fall });
                        schedule(&mut queue, &mut version, e.time + d, out_net.index(), new);
                    }
                }
            }
        }
        late_events += queue
            .iter()
            .filter(|Reverse(e)| e.version == version[e.net] && e.value != value[e.net])
            .count();

        // Sample primary outputs and capture flop data at the edge.
        outputs.push(s.outputs.iter().map(|n| value[n.index()]).collect());
        for (fi, &k) in s.flops.iter().enumerate() {
            if let Some(pos) = s.insts[k].data_pos {
                flop_state[fi] = value[s.insts[k].input_nets[pos].index()];
            }
        }
    }
    Ok(TimedRun { outputs, late_events })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_cycles;
    use liberty::{Cell, Library};
    use netlist::{ArcDelays, PortDir};

    fn lib() -> Library {
        let mut lib = Library::new("l", 1.2);
        lib.add_cell(Cell::test_inverter("INV_X1"));
        lib
    }

    fn chain(n: usize) -> Netlist {
        let mut nl = Netlist::new("chain");
        let mut prev = nl.add_port("a", PortDir::Input);
        for k in 0..n {
            let next = if k + 1 == n {
                nl.add_port("y", PortDir::Output)
            } else {
                nl.add_net(&format!("n{k}"))
            };
            nl.add_instance(&format!("u{k}"), "INV_X1", &[("A", prev), ("Y", next)]);
            prev = next;
        }
        nl
    }

    fn annotate(nl: &Netlist, d: f64) -> DelayAnnotation {
        let mut ann = DelayAnnotation::new();
        for id in nl.instance_ids() {
            ann.set(id, "A", "Y", ArcDelays { rise: d, fall: d });
        }
        ann
    }

    #[test]
    fn matches_zero_delay_with_slack() {
        // 4 inverters × 10 ps ≪ 1 ns period: timed == functional.
        let nl = chain(4);
        let lib = lib();
        let ann = annotate(&nl, 10e-12);
        let vectors: Vec<Vec<bool>> = (0..8).map(|k| vec![k % 3 == 0]).collect();
        let golden = run_cycles(&nl, &lib, None, &vectors).unwrap();
        let timed = run_timed(&nl, &lib, &ann, 1e-9, None, &vectors).unwrap();
        assert_eq!(timed.outputs, golden.outputs);
        assert_eq!(timed.late_events, 0);
    }

    #[test]
    fn violations_corrupt_outputs() {
        // 4 inverters × 400 ps ≫ 1 ns period: the output lags the input.
        let nl = chain(4);
        let lib = lib();
        let ann = annotate(&nl, 400e-12);
        let vectors: Vec<Vec<bool>> = (0..8).map(|k| vec![k % 2 == 0]).collect();
        let golden = run_cycles(&nl, &lib, None, &vectors).unwrap();
        let timed = run_timed(&nl, &lib, &ann, 1e-9, None, &vectors).unwrap();
        assert_ne!(timed.outputs, golden.outputs, "slow gates must corrupt sampling");
        assert!(timed.late_events > 0);
    }

    #[test]
    fn boundary_speed_just_fits() {
        // 4 × 100 ps = 400 ps < 500 ps period: correct but tight.
        let nl = chain(4);
        let lib = lib();
        let ann = annotate(&nl, 100e-12);
        let vectors: Vec<Vec<bool>> = (0..6).map(|k| vec![k % 2 == 0]).collect();
        let golden = run_cycles(&nl, &lib, None, &vectors).unwrap();
        let timed = run_timed(&nl, &lib, &ann, 500e-12, None, &vectors).unwrap();
        assert_eq!(timed.outputs, golden.outputs);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_panics() {
        let nl = chain(1);
        let _ = run_timed(&nl, &lib(), &DelayAnnotation::new(), 0.0, None, &[vec![true]]);
    }
}
