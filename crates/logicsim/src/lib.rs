//! Gate-level logic and timing simulation.
//!
//! This crate covers both roles `ModelSim` plays in the paper:
//!
//! 1. **Activity extraction** (Sec. 4.2): [`run_cycles`] performs fast
//!    cycle-based zero-delay simulation of a workload and collects per-net
//!    signal probabilities, from which [`ActivityStats::lambda_of`] derives
//!    the average pMOS/nMOS duty cycles of every instance — the input to
//!    netlist λ-annotation for *dynamic aging stress*.
//! 2. **Timing-error injection** (Sec. 5): [`run_timed`] is an event-driven
//!    simulator using per-arc delays from a [`netlist::DelayAnnotation`]
//!    (produced by STA under a chosen aging scenario). Flip-flops and
//!    primary outputs sample at each clock edge, so any path slower than
//!    the period corrupts real data — exactly how aging destroys the
//!    paper's DCT→IDCT image pipeline.
//!
//! # Example: zero-delay truth check
//!
//! ```
//! use liberty::{Cell, Library};
//! use netlist::{Netlist, PortDir};
//! use logicsim::run_cycles;
//!
//! # fn main() -> Result<(), logicsim::SimError> {
//! let mut lib = Library::new("lib", 1.2);
//! lib.add_cell(Cell::test_inverter("INV_X1"));
//! let mut nl = Netlist::new("m");
//! let a = nl.add_port("a", PortDir::Input);
//! let y = nl.add_port("y", PortDir::Output);
//! nl.add_instance("u0", "INV_X1", &[("A", a), ("Y", y)]);
//!
//! let run = run_cycles(&nl, &lib, None, &[vec![false], vec![true]])?;
//! assert_eq!(run.outputs, vec![vec![true], vec![false]]);
//! # Ok(())
//! # }
//! ```

mod activity;
mod error;
mod eval;
mod structure;
mod timed;
mod zero_delay;

pub use activity::ActivityStats;
pub use error::SimError;
pub use timed::{run_timed, TimedRun};
pub use zero_delay::{run_cycles, CycleRun};
