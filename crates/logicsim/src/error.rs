use netlist::NetlistError;
use std::error::Error;
use std::fmt;

/// Errors raised by gate-level simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The netlist is structurally broken.
    Netlist(NetlistError),
    /// The combinational logic contains a cycle.
    CombinationalLoop {
        /// An instance on the cycle.
        instance: String,
    },
    /// A cell has more inputs than the compiled-function limit (16).
    TooManyInputs {
        /// Cell name.
        cell: String,
        /// Its input count.
        inputs: usize,
    },
    /// An input vector's width does not match the primary-input count.
    VectorWidth {
        /// Expected width.
        expected: usize,
        /// Provided width.
        got: usize,
    },
    /// The named clock port does not exist or is not an input.
    BadClock {
        /// The requested clock port.
        port: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Netlist(e) => write!(f, "{e}"),
            SimError::CombinationalLoop { instance } => {
                write!(f, "combinational loop through instance {instance}")
            }
            SimError::TooManyInputs { cell, inputs } => {
                write!(f, "cell {cell} has {inputs} inputs, more than the simulator supports")
            }
            SimError::VectorWidth { expected, got } => {
                write!(f, "input vector has {got} bits, expected {expected}")
            }
            SimError::BadClock { port } => write!(f, "clock port {port} not found among inputs"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for SimError {
    fn from(e: NetlistError) -> Self {
        SimError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(SimError::VectorWidth { expected: 4, got: 2 }.to_string().contains("2 bits"));
        assert!(SimError::BadClock { port: "ck".into() }.to_string().contains("ck"));
        let e: SimError = NetlistError::Parse { line: 1, message: "x".into() }.into();
        assert!(e.source().is_some());
    }
}
