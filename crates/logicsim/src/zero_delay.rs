//! Cycle-based zero-delay simulation: functional verification, workload
//! playback and activity extraction.

use crate::activity::ActivityStats;
use crate::structure::SimStructure;
use crate::SimError;
use liberty::Library;
use netlist::Netlist;

/// The result of a cycle-based run.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleRun {
    /// Primary-output values per cycle (port order, clock excluded).
    pub outputs: Vec<Vec<bool>>,
    /// Accumulated per-net statistics.
    pub activity: ActivityStats,
}

/// Simulates `vectors` (one primary-input assignment per clock cycle, in
/// port order, excluding `clock_port` if given) with zero gate delays.
///
/// Per cycle: inputs apply, combinational logic settles, outputs are
/// sampled, and flip-flops capture their data inputs for the next cycle.
/// Flops start at logic 0.
///
/// # Errors
///
/// Returns [`SimError`] for broken netlists, combinational loops or
/// mis-sized vectors.
pub fn run_cycles(
    netlist: &Netlist,
    library: &Library,
    clock_port: Option<&str>,
    vectors: &[Vec<bool>],
) -> Result<CycleRun, SimError> {
    let s = SimStructure::build(netlist, library, clock_port)?;
    let mut values = vec![false; s.n_nets];
    let mut previous: Option<Vec<bool>> = None;
    let mut activity = ActivityStats::new(s.n_nets, s.clock_net);
    let mut outputs = Vec::with_capacity(vectors.len());
    // Flop internal state, by position in s.flops.
    let mut flop_state = vec![false; s.flops.len()];

    for vector in vectors {
        if vector.len() != s.inputs.len() {
            return Err(SimError::VectorWidth { expected: s.inputs.len(), got: vector.len() });
        }
        for (net, &v) in s.inputs.iter().zip(vector) {
            values[net.index()] = v;
        }
        // Flop outputs present their captured state.
        for (fi, &k) in s.flops.iter().enumerate() {
            for net in s.insts[k].output_nets.iter().flatten() {
                values[net.index()] = flop_state[fi];
            }
        }
        // Combinational settle in topological order.
        for &k in &s.comb_order {
            let row = s.input_row(k, &values);
            let inst = &s.insts[k];
            for (o, net) in inst.output_nets.iter().enumerate() {
                if let Some(net) = net {
                    values[net.index()] = inst.cell.eval(o, row);
                }
            }
        }
        outputs.push(s.outputs.iter().map(|n| values[n.index()]).collect());
        activity.record(&values, previous.as_deref());
        // Capture for the next cycle.
        for (fi, &k) in s.flops.iter().enumerate() {
            if let Some(pos) = s.insts[k].data_pos {
                flop_state[fi] = values[s.insts[k].input_nets[pos].index()];
            }
        }
        previous = Some(values.clone());
    }
    Ok(CycleRun { outputs, activity })
}

#[cfg(test)]
mod tests {
    use super::*;
    use liberty::{
        BoolExpr, Cell, CellClass, InputPin, OutputPin, Table2d, TimingArc, TimingSense,
    };
    use netlist::PortDir;

    fn nand_cell() -> Cell {
        let t = Table2d::constant(20e-12, 4e-15, 10e-12);
        Cell {
            name: "NAND2_X1".into(),
            area: 1.0,
            class: CellClass::Combinational,
            inputs: vec![
                InputPin { name: "A".into(), capacitance: 1e-15 },
                InputPin { name: "B".into(), capacitance: 1e-15 },
            ],
            outputs: vec![OutputPin {
                name: "Y".into(),
                function: BoolExpr::parse("!(A & B)").unwrap(),
                max_capacitance: 30e-15,
                arcs: vec![arc("A", &t), arc("B", &t)],
            }],
        }
    }

    fn arc(pin: &str, t: &Table2d) -> TimingArc {
        TimingArc {
            related_pin: pin.into(),
            sense: TimingSense::NegativeUnate,
            cell_rise: t.clone(),
            cell_fall: t.clone(),
            rise_transition: t.clone(),
            fall_transition: t.clone(),
        }
    }

    fn flop_cell() -> Cell {
        let t = Table2d::constant(20e-12, 4e-15, 40e-12);
        Cell {
            name: "DFF_X1".into(),
            area: 4.0,
            class: CellClass::Flop {
                clock: "CK".into(),
                data: "D".into(),
                setup: 20e-12,
                hold: 2e-12,
            },
            inputs: vec![
                InputPin { name: "D".into(), capacitance: 1e-15 },
                InputPin { name: "CK".into(), capacitance: 1e-15 },
            ],
            outputs: vec![OutputPin {
                name: "Q".into(),
                function: BoolExpr::var("D"),
                max_capacitance: 30e-15,
                arcs: vec![arc("CK", &t)],
            }],
        }
    }

    fn lib() -> Library {
        let mut lib = Library::new("l", 1.2);
        lib.add_cell(Cell::test_inverter("INV_X1"));
        lib.add_cell(nand_cell());
        lib.add_cell(flop_cell());
        lib
    }

    #[test]
    fn nand_truth_table() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let b = nl.add_port("b", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        nl.add_instance("u0", "NAND2_X1", &[("A", a), ("B", b), ("Y", y)]);
        let vectors =
            vec![vec![false, false], vec![true, false], vec![false, true], vec![true, true]];
        let run = run_cycles(&nl, &lib(), None, &vectors).unwrap();
        let outs: Vec<bool> = run.outputs.iter().map(|o| o[0]).collect();
        assert_eq!(outs, vec![true, true, true, false]);
    }

    #[test]
    fn flop_delays_by_one_cycle() {
        let mut nl = Netlist::new("m");
        let clk = nl.add_port("clk", PortDir::Input);
        let d = nl.add_port("d", PortDir::Input);
        let q = nl.add_port("q", PortDir::Output);
        nl.add_instance("ff", "DFF_X1", &[("D", d), ("CK", clk), ("Q", q)]);
        let vectors = vec![vec![true], vec![false], vec![true], vec![true]];
        let run = run_cycles(&nl, &lib(), Some("clk"), &vectors).unwrap();
        let outs: Vec<bool> = run.outputs.iter().map(|o| o[0]).collect();
        // Q shows the previous cycle's D (reset state 0 first).
        assert_eq!(outs, vec![false, true, false, true]);
    }

    #[test]
    fn activity_extraction() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        nl.add_instance("u0", "INV_X1", &[("A", a), ("Y", y)]);
        let vectors: Vec<Vec<bool>> = (0..10).map(|k| vec![k % 4 == 0]).collect();
        let run = run_cycles(&nl, &lib(), None, &vectors).unwrap();
        // a high 3/10 cycles → P(a)=0.3; y = !a → 0.7.
        assert!((run.activity.signal_probability(a) - 0.3).abs() < 1e-12);
        assert!((run.activity.signal_probability(y) - 0.7).abs() < 1e-12);
        let tag = run.activity.lambda_of(&nl, &lib(), netlist::InstId::from_index(0), 10).unwrap();
        assert!((tag.lambda_nmos - 0.3).abs() < 1e-9);
        assert!((tag.lambda_pmos - 0.7).abs() < 1e-9);
    }

    #[test]
    fn vector_width_checked() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        nl.add_instance("u0", "INV_X1", &[("A", a), ("Y", y)]);
        assert!(matches!(
            run_cycles(&nl, &lib(), None, &[vec![true, false]]),
            Err(SimError::VectorWidth { expected: 1, got: 2 })
        ));
    }

    #[test]
    fn unknown_clock_errors() {
        let nl = Netlist::new("m");
        assert!(matches!(
            run_cycles(&nl, &lib(), Some("nope"), &[]),
            Err(SimError::BadClock { .. })
        ));
    }
}
