#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! Learned tier-0 surrogate for timing-arc characterization.
//!
//! Transistor-level transient simulation dominates the cost of building a
//! degradation-aware library; the content-addressed caches make *repeated*
//! points free, but every **novel** (λ, OPC, scenario) point still pays the
//! full simulator cost. Following the observation of Genssler et al. that
//! small learned models predict aging-dependent timing accurately enough to
//! replace simulation in the common case, this crate provides the
//! model-side machinery for a tier-0 predictor that sits *in front of* the
//! arc cache:
//!
//! * [`ArcFeatures`] — the characterization input of one timing arc reduced
//!   to a numeric feature vector: topology class, stack depth, drive
//!   strength, per-polarity `ΔVth` and mobility ratio (which is exactly how
//!   λ, temperature and lifetime act on an arc), supply, and the log-scaled
//!   OPC grid axes.
//! * [`SurrogateModel`] — a deterministic offline trainer: per arc class, a
//!   ridge regression in log-delay space over degree-2 polynomial
//!   interaction terms of the standardized features, solved in closed form
//!   by Cholesky decomposition (no iterative optimizer, no dependencies).
//! * **Split-conformal error bounds** — every class holds out a calibration
//!   slice of its training points and records the worst relative error the
//!   model made on them, inflated by a safety factor. A class that has not
//!   seen enough data carries an *infinite* bound, so a budget check can
//!   never accidentally serve it. The bound is the contract consumed by the
//!   serving tier: *serve the prediction only if `bound ≤ accuracy budget`,
//!   otherwise fall back to simulation*.
//! * A deterministic text serialization ([`SurrogateModel::to_text`]) so a
//!   trained model lives next to the on-disk arc cache and round-trips
//!   bit-exactly.
//!
//! Training is deterministic regardless of sample arrival order: samples
//! are canonically sorted and deduplicated before the solve, so a model
//! trained from a parallel characterization run equals one trained from a
//! sequential run.
//!
//! The serving tier itself (prediction vs. fallback, online feedback,
//! coalesced refits, counters) lives in `flow::tier0`, next to the cache it
//! fronts.

pub mod features;
pub mod linalg;
pub mod model;

pub use features::{ArcFeatures, ArcSample, TABLE_KINDS};
pub use linalg::solve_ridge;
pub use model::{ErrorSummary, ModelParseError, PredictedTables, SurrogateModel, TrainConfig};
