//! The learned per-class surrogate model with conformal error bounds.

use crate::features::{ArcFeatures, ArcSample, TABLE_KINDS};
use crate::linalg::solve_ridge;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Trainer settings. The defaults are deliberately conservative: a tiny
/// ridge (the polynomial basis is standardized, so scales are comparable),
/// one calibration point per four training points, and a 1.5× inflation on
/// the worst calibration error.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Ridge regularization `λ` (scaled internally by the row count).
    pub ridge: f64,
    /// Roughly one in `calib_every` point rows is held out for conformal
    /// calibration instead of training, selected by a content hash of the
    /// row (never by position: a positional stride aliases with the grid
    /// period and would hold out an entire grid corner, leaving the model
    /// untrained exactly where it is judged); `< 2` disables calibration
    /// and leaves every bound infinite (a collect-only model).
    pub calib_every: usize,
    /// Safety factor applied to the worst calibration error to form the
    /// served bound.
    pub safety: f64,
    /// Minimum training rows per class for a finite bound.
    pub min_train: usize,
    /// Minimum calibration rows per class for a finite bound.
    pub min_calib: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { ridge: 1e-6, calib_every: 4, safety: 1.5, min_train: 12, min_calib: 4 }
    }
}

/// One class's fitted regression: standardization parameters, one weight
/// vector per table kind over the polynomial basis, and the conformal
/// relative-error bound.
#[derive(Debug, Clone, PartialEq)]
struct ClassModel {
    /// Canonical training rows the fit used.
    points: usize,
    /// Conformal relative-error bound (`+∞` when calibration was too thin).
    bound: f64,
    mean: Vec<f64>,
    std: Vec<f64>,
    weights: [Vec<f64>; 4],
}

/// A prediction for one arc: the four tables (row-major `[slew × load]`,
/// [`TABLE_KINDS`] order) plus the class's conformal bound the caller
/// compares against its accuracy budget.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictedTables {
    /// Predicted tables, `TABLE_KINDS` order.
    pub tables: [Vec<f64>; 4],
    /// Conformal relative-error bound of the predicting class.
    pub bound: f64,
}

/// Aggregate prediction error over an evaluation set; see
/// [`SurrogateModel::evaluate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSummary {
    /// Evaluated (grid point × table kind) values.
    pub points: usize,
    /// Worst relative error.
    pub max_rel: f64,
    /// Mean relative error.
    pub mean_rel: f64,
    /// Samples skipped because no class model could predict them.
    pub skipped: usize,
}

/// The serializable surrogate: one [ridge fit](crate::solve_ridge) per arc
/// class, trained deterministically (canonical sample order) and carrying a
/// split-conformal error bound per class.
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateModel {
    dim: usize,
    classes: BTreeMap<String, ClassModel>,
}

/// Length of the degree-2 polynomial basis over `m` standardized features:
/// intercept, linear terms and all pairwise products (squares included).
fn poly_dim(m: usize) -> usize {
    1 + m + m * (m + 1) / 2
}

/// Expands standardized features into the polynomial basis.
fn expand(z: &[f64]) -> Vec<f64> {
    let m = z.len();
    let mut phi = Vec::with_capacity(poly_dim(m));
    phi.push(1.0);
    phi.extend_from_slice(z);
    for i in 0..m {
        for j in i..m {
            phi.push(z[i] * z[j]);
        }
    }
    phi
}

fn standardize(x: &[f64], mean: &[f64], std: &[f64]) -> Vec<f64> {
    x.iter()
        .zip(mean)
        .zip(std)
        .map(|((&v, &m), &s)| if s > 0.0 { (v - m) / s } else { 0.0 })
        .collect()
}

/// One canonical point row: features plus the four ground-truth values.
type PointRow = (Vec<f64>, [f64; 4]);

impl SurrogateModel {
    /// Header line of the serialized model format. `v2` marks models
    /// trained with the explicit environment axes
    /// ([`ArcFeatures::temperature_k`] / [`ArcFeatures::vdd`]) in the
    /// feature vector.
    pub const HEADER: &'static str = "reliaware-surrogate v2";

    /// Header of the pre-environment-axis format. The layout is otherwise
    /// identical, so v1 models still load; their recorded `dim` disagrees
    /// with v2 features, which makes every prediction decline (fall back
    /// to simulation) rather than mispredict.
    pub const LEGACY_HEADER: &'static str = "reliaware-surrogate v1";

    /// Trains one model per arc class from `samples`.
    ///
    /// Deterministic in the *set* of samples: rows are canonically sorted
    /// and exact duplicates removed before the solve, so parallel
    /// (arrival-order-shuffled) collection trains the same model as a
    /// sequential run. Samples whose feature dimension disagrees with the
    /// first sample are ignored; classes whose fit fails numerically are
    /// omitted (their predictions decline).
    #[must_use]
    pub fn train(samples: &[ArcSample], cfg: &TrainConfig) -> Self {
        let dim = samples.first().map_or(0, |s| s.features.dim());
        let mut by_class: BTreeMap<String, Vec<PointRow>> = BTreeMap::new();
        for s in samples {
            if s.features.dim() != dim {
                continue;
            }
            let cols = s.features.loads.len();
            let rows = by_class.entry(s.features.class.clone()).or_default();
            for si in 0..s.features.slews.len() {
                for li in 0..cols {
                    let idx = si * cols + li;
                    let y =
                        [s.tables[0][idx], s.tables[1][idx], s.tables[2][idx], s.tables[3][idx]];
                    rows.push((s.features.point_vector(si, li), y));
                }
            }
        }
        let mut classes = BTreeMap::new();
        for (class, mut rows) in by_class {
            canonicalize(&mut rows);
            if let Some(model) = fit_class(&rows, dim, cfg) {
                classes.insert(class, model);
            }
        }
        SurrogateModel { dim, classes }
    }

    /// Feature-vector length the model was trained with.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of fitted classes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// `true` when no class is fitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The conformal bound of `class` (`+∞` for unknown classes, so a
    /// budget comparison against an unseen class can never pass).
    #[must_use]
    pub fn bound(&self, class: &str) -> f64 {
        self.classes.get(class).map_or(f64::INFINITY, |c| c.bound)
    }

    /// `(class, training points, bound)` per fitted class, sorted by name.
    #[must_use]
    pub fn class_summaries(&self) -> Vec<(String, usize, f64)> {
        self.classes.iter().map(|(name, c)| (name.clone(), c.points, c.bound)).collect()
    }

    /// Predicts the four tables for `features`, or `None` when the class is
    /// unknown, the dimension disagrees, or any predicted value is
    /// non-finite or non-positive. The returned [`PredictedTables::bound`]
    /// is the class's conformal bound — the caller decides whether it fits
    /// its accuracy budget.
    #[must_use]
    pub fn predict(&self, features: &ArcFeatures) -> Option<PredictedTables> {
        if features.dim() != self.dim {
            return None;
        }
        let class = self.classes.get(&features.class)?;
        let n = features.point_count();
        let mut tables: [Vec<f64>; 4] = std::array::from_fn(|_| Vec::with_capacity(n));
        for si in 0..features.slews.len() {
            for li in 0..features.loads.len() {
                let z = standardize(&features.point_vector(si, li), &class.mean, &class.std);
                let phi = expand(&z);
                for (k, w) in class.weights.iter().enumerate() {
                    let v = dot(w, &phi).exp();
                    if !(v.is_finite() && v > 0.0) {
                        return None;
                    }
                    tables[k].push(v);
                }
            }
        }
        Some(PredictedTables { tables, bound: class.bound })
    }

    /// Compares predictions against the ground truth of `samples`,
    /// returning the worst/mean relative error over every grid point and
    /// table kind. Samples the model declines count as `skipped`.
    #[must_use]
    pub fn evaluate(&self, samples: &[ArcSample]) -> ErrorSummary {
        let mut points = 0usize;
        let mut skipped = 0usize;
        let mut max_rel = 0.0f64;
        let mut sum_rel = 0.0f64;
        for s in samples {
            let Some(p) = self.predict(&s.features) else {
                skipped += 1;
                continue;
            };
            for k in 0..4 {
                for (pred, truth) in p.tables[k].iter().zip(&s.tables[k]) {
                    if *truth <= 0.0 || !truth.is_finite() {
                        continue;
                    }
                    let rel = (pred / truth - 1.0).abs();
                    max_rel = max_rel.max(rel);
                    sum_rel += rel;
                    points += 1;
                }
            }
        }
        let mean_rel = if points == 0 { 0.0 } else { sum_rel / points as f64 };
        ErrorSummary { points, max_rel, mean_rel, skipped }
    }

    /// Serializes the model as deterministic text; `f64` values round-trip
    /// through their exact bit patterns, like the arc cache's disk entries.
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{}", Self::HEADER);
        let _ = writeln!(out, "dim {}", self.dim);
        let _ = writeln!(out, "classes {}", self.classes.len());
        let hex = |out: &mut String, values: &[f64]| {
            for v in values {
                let _ = write!(out, " {:016x}", v.to_bits());
            }
            out.push('\n');
        };
        for (name, c) in &self.classes {
            let _ =
                writeln!(out, "class {name} points {} bound {:016x}", c.points, c.bound.to_bits());
            out.push_str("mean");
            hex(&mut out, &c.mean);
            out.push_str("std");
            hex(&mut out, &c.std);
            for (kind, w) in TABLE_KINDS.iter().zip(&c.weights) {
                let _ = write!(out, "w {kind}");
                hex(&mut out, w);
            }
        }
        out
    }

    /// Parses a model serialized by [`SurrogateModel::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelParseError`] naming the offending line on any
    /// malformation.
    pub fn from_text(text: &str) -> Result<Self, ModelParseError> {
        let mut lines = text.lines().enumerate();
        let mut next = |what: &str| lines.next().ok_or_else(|| ModelParseError::eof(what));
        let (_, header) = next("header")?;
        if header != Self::HEADER && header != Self::LEGACY_HEADER {
            return Err(ModelParseError::at(1, "unrecognized header"));
        }
        let (ln, dim_line) = next("dim")?;
        let dim: usize = parse_kv(dim_line, "dim")
            .ok_or_else(|| ModelParseError::at(ln + 1, "expected `dim <n>`"))?;
        let (ln, count_line) = next("classes")?;
        let count: usize = parse_kv(count_line, "classes")
            .ok_or_else(|| ModelParseError::at(ln + 1, "expected `classes <n>`"))?;
        let mut classes = BTreeMap::new();
        for _ in 0..count {
            let (ln, class_line) = next("class")?;
            let bad = |msg: &str| ModelParseError::at(ln + 1, msg);
            let mut parts = class_line.split_whitespace();
            if parts.next() != Some("class") {
                return Err(bad("expected `class <name> points <n> bound <hex>`"));
            }
            let name = parts.next().ok_or_else(|| bad("missing class name"))?.to_owned();
            if parts.next() != Some("points") {
                return Err(bad("missing `points`"));
            }
            let points: usize =
                parts.next().and_then(|p| p.parse().ok()).ok_or_else(|| bad("bad point count"))?;
            if parts.next() != Some("bound") {
                return Err(bad("missing `bound`"));
            }
            let bound = parts
                .next()
                .and_then(|p| u64::from_str_radix(p, 16).ok())
                .map(f64::from_bits)
                .ok_or_else(|| bad("bad bound"))?;
            let mean = parse_values(next("mean")?, "mean", dim)?;
            let std = parse_values(next("std")?, "std", dim)?;
            let p = poly_dim(dim);
            let mut weights: [Vec<f64>; 4] = std::array::from_fn(|_| Vec::new());
            for (k, kind) in TABLE_KINDS.iter().enumerate() {
                let (ln, line) = next(kind)?;
                let rest = line
                    .strip_prefix("w ")
                    .and_then(|r| r.strip_prefix(kind))
                    .ok_or_else(|| ModelParseError::at(ln + 1, "expected `w <kind> <hex...>`"))?;
                weights[k] = parse_hex_row(rest, p)
                    .ok_or_else(|| ModelParseError::at(ln + 1, "bad weight row"))?;
            }
            classes.insert(name, ClassModel { points, bound, mean, std, weights });
        }
        Ok(SurrogateModel { dim, classes })
    }

    /// Writes the serialized model to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_text())
    }

    /// Reads and parses a model from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelParseError`] for unreadable files or malformed
    /// content.
    pub fn load(path: &Path) -> Result<Self, ModelParseError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ModelParseError::at(0, &format!("{}: {e}", path.display())))?;
        Self::from_text(&text)
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Sorts point rows by content and removes exact duplicates, making
/// training independent of sample arrival order.
fn canonicalize(rows: &mut Vec<PointRow>) {
    let key =
        |r: &PointRow| -> Vec<u64> { r.0.iter().chain(r.1.iter()).map(|v| v.to_bits()).collect() };
    rows.sort_by_key(key);
    rows.dedup_by(|a, b| key(a) == key(b));
}

/// FNV-1a over a point row's exact bit patterns — the calibration-split
/// selector. Content-keyed, so the split is independent of arrival order
/// and cannot alias with the grid structure.
fn row_hash(r: &PointRow) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in r.0.iter().chain(r.1.iter()) {
        for b in v.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn fit_class(rows: &[PointRow], dim: usize, cfg: &TrainConfig) -> Option<ClassModel> {
    let calibrated = cfg.calib_every >= 2;
    let is_calib = |r: &PointRow| calibrated && row_hash(r).is_multiple_of(cfg.calib_every as u64);
    let train: Vec<&PointRow> = rows.iter().filter(|r| !is_calib(r)).collect();
    let calib: Vec<&PointRow> = rows.iter().filter(|r| is_calib(r)).collect();
    if train.is_empty() {
        return None;
    }
    // Per-feature mean/std over the training rows; constant columns get a
    // zero std sentinel and standardize to 0, dropping them from the fit.
    let n = train.len() as f64;
    let mut mean = vec![0.0; dim];
    for r in &train {
        for (m, v) in mean.iter_mut().zip(&r.0) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= n;
    }
    let mut std = vec![0.0; dim];
    for r in &train {
        for ((s, m), v) in std.iter_mut().zip(&mean).zip(&r.0) {
            *s += (v - m) * (v - m);
        }
    }
    for s in &mut std {
        *s = (*s / n).sqrt();
        if *s < 1e-12 {
            *s = 0.0;
        }
    }
    let phi_of = |r: &PointRow| expand(&standardize(&r.0, &mean, &std));
    let phi_train: Vec<Vec<f64>> = train.iter().map(|r| phi_of(r)).collect();
    let p = poly_dim(dim);
    let mut weights: [Vec<f64>; 4] = std::array::from_fn(|_| Vec::new());
    for (k, w) in weights.iter_mut().enumerate() {
        // Fit in log space: delays/slews are positive and span decades, and
        // exp() of the prediction is positive by construction.
        let mut xs = Vec::with_capacity(phi_train.len());
        let mut ys = Vec::with_capacity(phi_train.len());
        for (phi, r) in phi_train.iter().zip(&train) {
            let y = r.1[k];
            if y > 0.0 && y.is_finite() {
                xs.push(phi.clone());
                ys.push(y.ln());
            }
        }
        *w = solve_ridge(&xs, &ys, p, cfg.ridge)?;
    }
    // Split-conformal bound: the worst relative error over the held-out
    // calibration rows, inflated by the safety factor. Thin data keeps the
    // bound infinite so the class can never pass a finite budget.
    let bound = if train.len() < cfg.min_train || calib.len() < cfg.min_calib {
        f64::INFINITY
    } else {
        let mut worst = 0.0f64;
        for r in &calib {
            let phi = phi_of(r);
            for (k, w) in weights.iter().enumerate() {
                let truth = r.1[k];
                if !(truth > 0.0 && truth.is_finite()) {
                    worst = f64::INFINITY;
                    continue;
                }
                let pred = dot(w, &phi).exp();
                let rel = (pred / truth - 1.0).abs();
                worst = worst.max(if rel.is_finite() { rel } else { f64::INFINITY });
            }
        }
        worst * cfg.safety
    };
    Some(ClassModel { points: train.len(), bound, mean, std, weights })
}

fn parse_kv<T: std::str::FromStr>(line: &str, key: &str) -> Option<T> {
    let mut parts = line.split_whitespace();
    (parts.next()? == key).then_some(())?;
    parts.next()?.parse().ok()
}

fn parse_hex_row(rest: &str, expect: usize) -> Option<Vec<f64>> {
    let values: Option<Vec<f64>> = rest
        .split_whitespace()
        .map(|p| u64::from_str_radix(p, 16).ok().map(f64::from_bits))
        .collect();
    values.filter(|v| v.len() == expect)
}

fn parse_values(
    (ln, line): (usize, &str),
    label: &str,
    expect: usize,
) -> Result<Vec<f64>, ModelParseError> {
    line.strip_prefix(label)
        .and_then(|rest| parse_hex_row(rest, expect))
        .ok_or_else(|| ModelParseError::at(ln + 1, &format!("bad `{label}` row")))
}

/// A malformed serialized model (or an unreadable model file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelParseError {
    /// 1-based line of the malformation (0 for I/O errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl ModelParseError {
    fn at(line: usize, message: &str) -> Self {
        ModelParseError { line, message: message.to_owned() }
    }

    fn eof(what: &str) -> Self {
        ModelParseError {
            line: 0,
            message: format!("unexpected end of model file, expected {what}"),
        }
    }
}

impl fmt::Display for ModelParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "surrogate model line {}: {}", self.line, self.message)
        } else {
            write!(f, "surrogate model: {}", self.message)
        }
    }
}

impl std::error::Error for ModelParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic "characterization": delay-like tables generated from a
    /// smooth positive function of the features.
    fn synthetic_sample(class: &str, a: f64, b: f64) -> ArcSample {
        let features = ArcFeatures {
            class: class.into(),
            base: vec![1.0, a, b],
            temperature_k: 398.15,
            vdd: 1.2,
            slews: vec![1e-11, 1e-10, 3e-10],
            loads: vec![1e-15, 4e-15, 1e-14],
        };
        let mut tables: [Vec<f64>; 4] = std::array::from_fn(|_| Vec::new());
        for &s in &features.slews {
            for &l in &features.loads {
                let x = s.ln() + 0.5 * l.ln();
                for (k, t) in tables.iter_mut().enumerate() {
                    let v =
                        (1e-11 * (1.0 + 0.3 * a + 0.2 * b + (k as f64) * 0.1)) * (1.0 - 0.004 * x);
                    t.push(v);
                }
            }
        }
        ArcSample { features, tables }
    }

    fn training_set() -> Vec<ArcSample> {
        let mut out = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                out.push(synthetic_sample("comb:X:A->Y", f64::from(i) * 0.25, f64::from(j) * 0.25));
            }
        }
        out
    }

    #[test]
    fn learns_smooth_relation_with_tight_bound() {
        let model = SurrogateModel::train(&training_set(), &TrainConfig::default());
        assert_eq!(model.len(), 1);
        let bound = model.bound("comb:X:A->Y");
        assert!(bound.is_finite() && bound < 0.05, "bound = {bound}");
        // Novel (off-grid) point inside the training hull.
        let novel = synthetic_sample("comb:X:A->Y", 0.375, 0.625);
        let p = model.predict(&novel.features).expect("class is fitted");
        let summary = model.evaluate(&[novel]);
        assert_eq!(summary.skipped, 0);
        assert!(summary.max_rel < 0.05, "max_rel = {}", summary.max_rel);
        assert!(p.tables.iter().all(|t| t.iter().all(|v| *v > 0.0)));
    }

    #[test]
    fn training_is_order_independent() {
        let forward = training_set();
        let mut reversed = forward.clone();
        reversed.reverse();
        let cfg = TrainConfig::default();
        let a = SurrogateModel::train(&forward, &cfg);
        let b = SurrogateModel::train(&reversed, &cfg);
        assert_eq!(a, b, "canonical sort must erase arrival order");
        // Duplicated samples must not change the model either.
        let mut doubled = forward.clone();
        doubled.extend(forward);
        assert_eq!(SurrogateModel::train(&doubled, &cfg), a);
    }

    #[test]
    fn thin_data_keeps_bound_infinite() {
        let samples = vec![synthetic_sample("comb:X:A->Y", 0.0, 0.0)];
        let model = SurrogateModel::train(&samples, &TrainConfig::default());
        assert!(model.bound("comb:X:A->Y").is_infinite());
        assert!(model.bound("comb:unseen:A->Y").is_infinite());
    }

    #[test]
    fn unknown_class_and_dim_mismatch_decline() {
        let model = SurrogateModel::train(&training_set(), &TrainConfig::default());
        let other = ArcFeatures {
            class: "comb:OTHER:A->Y".into(),
            base: vec![1.0, 0.0, 0.0],
            temperature_k: 398.15,
            vdd: 1.2,
            slews: vec![1e-11],
            loads: vec![1e-15],
        };
        assert!(model.predict(&other).is_none());
        let wrong_dim = ArcFeatures {
            class: "comb:X:A->Y".into(),
            base: vec![1.0],
            temperature_k: 398.15,
            vdd: 1.2,
            slews: vec![1e-11],
            loads: vec![1e-15],
        };
        assert!(model.predict(&wrong_dim).is_none());
    }

    #[test]
    fn serialization_round_trips_bit_exact() {
        let model = SurrogateModel::train(&training_set(), &TrainConfig::default());
        let text = model.to_text();
        let back = SurrogateModel::from_text(&text).expect("round trip");
        assert_eq!(back, model);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("reliaware_surrogate_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("model.txt");
        let model = SurrogateModel::train(&training_set(), &TrainConfig::default());
        model.save(&path).expect("save");
        assert_eq!(SurrogateModel::load(&path).expect("load"), model);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_v1_models_still_load_and_decline_v2_features() {
        let model = SurrogateModel::train(&training_set(), &TrainConfig::default());
        // A v1 file is byte-identical apart from its header line and the
        // smaller feature dimension it was trained with.
        let v1_text =
            model.to_text().replacen(SurrogateModel::HEADER, SurrogateModel::LEGACY_HEADER, 1);
        let legacy = SurrogateModel::from_text(&v1_text).expect("v1 header must parse");
        assert_eq!(legacy, model);
        // A genuinely older dim disagrees with v2 features → decline.
        let shrunk = v1_text.replacen(&format!("dim {}", model.dim()), "dim 3", 1);
        let old = SurrogateModel::from_text(&shrunk);
        assert!(old.is_err() || old.unwrap().predict(&training_set()[0].features).is_none());
    }

    #[test]
    fn malformed_text_is_a_typed_error() {
        assert!(SurrogateModel::from_text("bogus").is_err());
        let model = SurrogateModel::train(&training_set(), &TrainConfig::default());
        let mut text = model.to_text();
        text = text.replace("mean", "mena");
        let err = SurrogateModel::from_text(&text).expect_err("must reject");
        assert!(err.to_string().contains("mean"), "{err}");
    }

    #[test]
    fn collect_only_config_disables_serving() {
        let cfg = TrainConfig { calib_every: 0, ..TrainConfig::default() };
        let model = SurrogateModel::train(&training_set(), &cfg);
        assert!(model.bound("comb:X:A->Y").is_infinite());
        // Prediction still works mechanically; only the bound gate blocks.
        let novel = synthetic_sample("comb:X:A->Y", 0.1, 0.1);
        assert!(model.predict(&novel.features).is_some());
    }
}
