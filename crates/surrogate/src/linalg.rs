//! Closed-form ridge regression via Cholesky decomposition.
//!
//! The normal-equation matrix `XᵀX + λI` is symmetric positive definite for
//! any `λ > 0`, so the solve is exact, deterministic and allocation-light —
//! no iterative optimizer and no external linear-algebra dependency.

/// Solves the ridge problem `min_w ‖Xw − y‖² + λ‖w‖²` in closed form.
///
/// `rows` are the feature rows of `X` (all of length `dim`), `y` the
/// targets. Returns `None` when the inputs are inconsistent or the
/// (regularized) normal matrix is numerically singular even after jitter
/// escalation — callers treat that as "no model".
#[must_use]
pub fn solve_ridge(rows: &[Vec<f64>], y: &[f64], dim: usize, lambda: f64) -> Option<Vec<f64>> {
    if rows.len() != y.len() || rows.is_empty() || dim == 0 {
        return None;
    }
    if rows.iter().any(|r| r.len() != dim) {
        return None;
    }
    // Normal equations: A = XᵀX + λ n I (λ scaled by the row count so the
    // regularization strength is independent of sample size), b = Xᵀy.
    let n = rows.len() as f64;
    let mut a = vec![0.0; dim * dim];
    let mut b = vec![0.0; dim];
    for (row, &target) in rows.iter().zip(y) {
        for i in 0..dim {
            b[i] += row[i] * target;
            for j in i..dim {
                a[i * dim + j] += row[i] * row[j];
            }
        }
    }
    for i in 0..dim {
        for j in 0..i {
            a[i * dim + j] = a[j * dim + i];
        }
    }
    // Jitter escalation: retry with 10× the ridge until the factorization
    // succeeds (or give up after a few decades).
    let mut jitter = lambda.max(f64::MIN_POSITIVE) * n;
    for _ in 0..8 {
        let mut reg = a.clone();
        for i in 0..dim {
            reg[i * dim + i] += jitter;
        }
        if let Some(chol) = cholesky(&reg, dim) {
            return Some(chol_solve(&chol, dim, &b));
        }
        jitter *= 10.0;
    }
    None
}

/// Lower-triangular Cholesky factor of a symmetric matrix (row-major),
/// `None` when not positive definite.
fn cholesky(a: &[f64], dim: usize) -> Option<Vec<f64>> {
    let mut l = vec![0.0; dim * dim];
    for i in 0..dim {
        for j in 0..=i {
            let mut sum = a[i * dim + j];
            for k in 0..j {
                sum -= l[i * dim + k] * l[j * dim + k];
            }
            if i == j {
                if !(sum.is_finite() && sum > 0.0) {
                    return None;
                }
                l[i * dim + i] = sum.sqrt();
            } else {
                l[i * dim + j] = sum / l[j * dim + j];
            }
        }
    }
    Some(l)
}

/// Solves `L Lᵀ x = b` by forward then backward substitution.
fn chol_solve(l: &[f64], dim: usize, b: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; dim];
    for i in 0..dim {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * dim + k] * y[k];
        }
        y[i] = sum / l[i * dim + i];
    }
    let mut x = vec![0.0; dim];
    for i in (0..dim).rev() {
        let mut sum = y[i];
        for k in i + 1..dim {
            sum -= l[k * dim + i] * x[k];
        }
        x[i] = sum / l[i * dim + i];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relation() {
        // y = 3 + 2 x1 - x2 with an intercept column.
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let x1 = f64::from(i) * 0.1;
                let x2 = f64::from(i % 5);
                vec![1.0, x1, x2]
            })
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 + 2.0 * r[1] - r[2]).collect();
        let w = solve_ridge(&rows, &y, 3, 1e-10).unwrap();
        assert!((w[0] - 3.0).abs() < 1e-5, "{w:?}");
        assert!((w[1] - 2.0).abs() < 1e-5, "{w:?}");
        assert!((w[2] + 1.0).abs() < 1e-5, "{w:?}");
    }

    #[test]
    fn collinear_columns_survive_via_ridge() {
        // Second and third columns identical: unregularized normal
        // equations are singular, the ridge solve must still succeed.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![1.0, f64::from(i), f64::from(i)]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 1.0 + r[1]).collect();
        let w = solve_ridge(&rows, &y, 3, 1e-8).unwrap();
        let pred = 1.0 + 4.0 * w[1] + 4.0 * w[2] + w[0] - 1.0;
        // The split between the twin columns is arbitrary; the fit is not.
        let fitted: f64 = w[0] + w[1] * 4.0 + w[2] * 4.0;
        assert!((fitted - 5.0).abs() < 1e-3, "fitted {fitted}, pred {pred}");
    }

    #[test]
    fn inconsistent_inputs_yield_none() {
        assert!(solve_ridge(&[], &[], 2, 1e-6).is_none());
        assert!(solve_ridge(&[vec![1.0]], &[1.0, 2.0], 1, 1e-6).is_none());
        assert!(solve_ridge(&[vec![1.0]], &[1.0], 2, 1e-6).is_none());
    }
}
