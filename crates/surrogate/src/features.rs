//! Feature representation of one timing arc's characterization input.

/// The four arc tables a surrogate predicts, in canonical order. Matches
/// the table order of the arc cache's disk format.
pub const TABLE_KINDS: [&str; 4] = ["rise_delay", "fall_delay", "rise_tran", "fall_tran"];

/// The characterization input of one timing arc, reduced to numbers.
///
/// `base` holds the per-arc scalars (drive strength, stack depth, device
/// count, `ΔVth` and mobility ratio per polarity). The environment is
/// carried as two explicit axes — `temperature_k` and `vdd` — so a model
/// trained over several operating corners can interpolate between them;
/// lifetime still acts on an arc only through ΔVth/Δμ and keeps no
/// feature of its own. The OPC axes are kept as raw values; the model
/// works on their logarithms, one prediction point per `(slew, load)`
/// grid cell in row-major `[slew × load]` order — the same layout as the
/// arc tables.
#[derive(Debug, Clone, PartialEq)]
pub struct ArcFeatures {
    /// Arc class identity: models are trained per class (e.g.
    /// `comb:NAND2_X1:A->Y`). Never contains whitespace.
    pub class: String,
    /// Per-arc scalar features; every sample of a deployment must use the
    /// same length and ordering.
    pub base: Vec<f64>,
    /// Junction temperature axis in kelvin.
    pub temperature_k: f64,
    /// Supply-voltage axis in volts.
    pub vdd: f64,
    /// Input-slew axis in seconds.
    pub slews: Vec<f64>,
    /// Output-load axis in farad.
    pub loads: Vec<f64>,
}

impl ArcFeatures {
    /// Grid points per table (`slews × loads`).
    #[must_use]
    pub fn point_count(&self) -> usize {
        self.slews.len() * self.loads.len()
    }

    /// The full feature vector of grid point `(si, li)`: `base`, the
    /// environment axes (`temperature_k`, `vdd`), then `ln(slew)` and
    /// `ln(load)`.
    #[must_use]
    pub fn point_vector(&self, si: usize, li: usize) -> Vec<f64> {
        let mut x = Vec::with_capacity(self.dim());
        x.extend_from_slice(&self.base);
        x.push(self.temperature_k);
        x.push(self.vdd);
        x.push(self.slews[si].ln());
        x.push(self.loads[li].ln());
        x
    }

    /// Length of [`ArcFeatures::point_vector`].
    #[must_use]
    pub fn dim(&self) -> usize {
        self.base.len() + 4
    }
}

/// One observed training sample: the arc's features plus its simulated
/// (ground-truth) tables in [`TABLE_KINDS`] order, each of
/// [`ArcFeatures::point_count`] values in row-major `[slew × load]` order.
#[derive(Debug, Clone, PartialEq)]
pub struct ArcSample {
    /// The arc's feature representation.
    pub features: ArcFeatures,
    /// Ground-truth tables, `TABLE_KINDS` order.
    pub tables: [Vec<f64>; 4],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_vector_appends_environment_then_log_axes() {
        let f = ArcFeatures {
            class: "comb:INV_X1:A->Y".into(),
            base: vec![1.0, 2.0],
            temperature_k: 398.15,
            vdd: 1.2,
            slews: vec![1e-12, 1e-10],
            loads: vec![1e-15],
        };
        assert_eq!(f.point_count(), 2);
        assert_eq!(f.dim(), 6);
        let x = f.point_vector(1, 0);
        assert_eq!(&x[..4], &[1.0, 2.0, 398.15, 1.2]);
        assert!((x[4] - 1e-10_f64.ln()).abs() < 1e-12);
        assert!((x[5] - 1e-15_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn environment_axes_change_the_vector_not_the_class() {
        let f = ArcFeatures {
            class: "comb:INV_X1:A->Y".into(),
            base: vec![1.0],
            temperature_k: 300.0,
            vdd: 1.1,
            slews: vec![1e-11],
            loads: vec![1e-15],
        };
        let hot = ArcFeatures { temperature_k: 398.15, ..f.clone() };
        assert_eq!(f.class, hot.class);
        assert_eq!(f.dim(), hot.dim());
        assert_ne!(f.point_vector(0, 0), hot.point_vector(0, 0));
    }
}
