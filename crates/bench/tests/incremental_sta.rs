//! Property test for the incremental STA engine: on every bundled
//! benchmark, a randomized sequence of λ re-annotations, cell resizes and
//! constraint edits must leave [`sta::IncrementalSta`] **bit-identical** to
//! a fresh [`sta::analyze`] of its current netlist/library/constraints
//! after every single step — the engine's core contract.

use liberty::{split_lambda_tag, LambdaTag};
use sta::{analyze, Constraints, IncrementalSta, StaChange};

const STEPS: u32 = 4;

/// Deterministic LCG (same parameters as the `sta` arrival benchmark).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        self.0 >> 33
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() as usize) % n.max(1)
    }
}

/// A grid tag drawn from the same (STEPS+1)² grid the complete library
/// was built over.
fn grid_tag(rng: &mut Lcg) -> LambdaTag {
    let p = rng.pick(STEPS as usize + 1) as u32;
    let n = rng.pick(STEPS as usize + 1) as u32;
    LambdaTag {
        lambda_pmos: f64::from(p) / f64::from(STEPS),
        lambda_nmos: f64::from(n) / f64::from(STEPS),
    }
}

/// Swap the strength token of a base cell name: `INV_X1` → `INV_X2` etc.
fn resized(base: &str, rng: &mut Lcg) -> Option<String> {
    let (family, _) = base.rsplit_once("_X")?;
    let strength = ["1", "2", "4"][rng.pick(3)];
    Some(format!("{family}_X{strength}"))
}

fn drive(design: &str, seed: u64, changes: usize) {
    let design = bench::design_by_name(design).expect("bundled design");
    let library = synth::test_fixtures::fixture_library();
    // Cheap mapping: the engine contract is what's under test, not QoR.
    let options = synth::MapOptions { sizing_iterations: 1, ..synth::MapOptions::default() };
    let nl = synth::synthesize(&design.aig, &library, &options).expect("synthesis");

    // Start from a uniformly-annotated netlist against the merged complete
    // library so re-annotation is a pure cell rename.
    let complete = bench::lambda_scaled_complete(&library, STEPS);
    let tag0 = LambdaTag { lambda_pmos: 0.0, lambda_nmos: 0.0 };
    let annotated = netlist::annotate::annotated_with_static(&nl, tag0);
    let constraints = Constraints::default();

    let mut inc = IncrementalSta::new(&annotated, &complete, &constraints).expect("initial build");
    let mut rng = Lcg(seed);
    let ids: Vec<netlist::InstId> = annotated.instance_ids().collect();

    for step in 0..changes {
        let inst = ids[rng.pick(ids.len())];
        let current = inc.netlist().instance(inst).cell.clone();
        let (base, tag) = split_lambda_tag(&current);
        let change = match rng.pick(4) {
            // λ re-annotation: same base cell, new grid tag.
            0 | 1 => format!("{base}_{}", grid_tag(&mut rng).suffix()),
            // Resize: same tag, different strength (skip if the complete
            // library has no such variant, e.g. for the flop).
            2 => {
                let tag = tag.unwrap_or(tag0);
                match resized(base, &mut rng) {
                    Some(b) if inc.library().cell(&format!("{b}_{}", tag.suffix())).is_some() => {
                        format!("{b}_{}", tag.suffix())
                    }
                    _ => current.clone(),
                }
            }
            // Constraint edit: move the clock period around.
            _ => {
                let period = 1e-9 * f64::from(rng.pick(20) as u32 + 1);
                inc.apply(&[StaChange::SetConstraints(Constraints {
                    clock_period: Some(period),
                    ..constraints
                })])
                .expect("constraint edit");
                let full =
                    analyze(inc.netlist(), inc.library(), inc.constraints()).expect("full analyze");
                assert_eq!(inc.report().expect("incremental report"), &full);
                continue;
            }
        };
        inc.recell(inst, &change)
            .unwrap_or_else(|e| panic!("step {step}: recell to {change}: {e}"));
        let full = analyze(inc.netlist(), inc.library(), inc.constraints()).expect("full analyze");
        assert_eq!(
            inc.report().expect("incremental report"),
            &full,
            "step {step}: incremental diverged from fresh analyze after recell to {change}"
        );
        let stats = inc.stats();
        assert!(
            stats.last_recomputed <= stats.instances_total,
            "recompute count exceeds design size"
        );
    }
}

#[test]
fn dct_stays_bit_identical() {
    drive("dct", 0x9e37_79b9_7f4a_7c15, 20);
}

#[test]
fn idct_stays_bit_identical() {
    drive("idct", 0x0123_4567_89ab_cdef, 20);
}

#[test]
fn fft_stays_bit_identical() {
    drive("fft", 0xdead_beef_cafe_f00d, 12);
}

#[test]
fn dsp_stays_bit_identical() {
    drive("dsp", 0x0f0f_0f0f_1234_5678, 12);
}

#[test]
fn risc_stays_bit_identical() {
    drive("risc", 0xfeed_face_0000_0001, 12);
}

#[test]
fn risc6_stays_bit_identical() {
    drive("risc6", 0xfeed_face_0000_0002, 12);
}

#[test]
fn vliw_stays_bit_identical() {
    drive("vliw", 0xabcd_ef01_2345_6789, 8);
}
