//! The schema-versioned load-generator record (`reliaware-loadgen-v2`).
//!
//! v1 lived inline in the `loadgen` binary; v2 moves the rendering here so
//! the schema is library-testable, and extends every load phase's `server`
//! block with the tier-0 surrogate counters (`cache_tier0_hits`,
//! `cache_tier0_fallbacks`, `cache_tier0_refits`) — the per-phase deltas a
//! dashboard needs to see how much simulation the learned tier displaced.

use serve::{LoadReport, StormReport};
use std::fmt::Write as _;

/// The schema identifier embedded in every serialized record.
pub const LOADGEN_SCHEMA: &str = "reliaware-loadgen-v2";

/// Everything one `BENCH_*_loadgen.json` record carries.
#[derive(Debug)]
pub struct LoadgenRecord<'a> {
    /// `"smoke"` or `"full"`.
    pub mode: &'a str,
    /// Client counts the load phase swept.
    pub clients: &'a [usize],
    /// Requests per client per load phase.
    pub requests_per_client: usize,
    /// Unique λ-keys in the load key space.
    pub unique_keys: usize,
    /// Hot-key probability in `[0, 1]`.
    pub hot_key_bias: f64,
    /// Whether the key space was pre-warmed before timing.
    pub warm: bool,
    /// Record timestamp (unix seconds).
    pub unix_time: u64,
    /// Human-readable UTC stamp (see [`crate::utc_stamp`]).
    pub stamp: &'a str,
    /// The identical-key storm result.
    pub storm: &'a StormReport,
    /// `(overloads, served)` from the shed phase, if it ran.
    pub shed: Option<(u64, u64)>,
    /// One report per client count.
    pub loads: &'a [LoadReport],
    /// Throughput ratio last/first client count, if computable.
    pub scaling: Option<f64>,
}

impl LoadgenRecord<'_> {
    /// Serializes the record as `reliaware-loadgen-v2` JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, r#"  "schema": "{LOADGEN_SCHEMA}","#);
        let _ = writeln!(out, r#"  "stamp": "{}","#, self.stamp);
        let _ = writeln!(out, r#"  "unix_time": {},"#, self.unix_time);
        let _ = writeln!(
            out,
            r#"  "machine": {{"threads_available": {}, "os": "{}", "arch": "{}"}},"#,
            std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
            std::env::consts::OS,
            std::env::consts::ARCH
        );
        let _ = writeln!(
            out,
            r#"  "config": {{"mode": "{}", "clients": {:?}, "requests_per_client": {}, "unique_keys": {}, "hot_key_bias": {}, "warm": {}}},"#,
            self.mode,
            self.clients,
            self.requests_per_client,
            self.unique_keys,
            self.hot_key_bias,
            self.warm
        );
        let storm = self.storm;
        let _ = writeln!(
            out,
            r#"  "storm": {{"clients": {}, "computed": {}, "absorbed": {}, "server_computed": {}, "all_identical": {}, "bit_identical_to_direct": true}},"#,
            storm.clients,
            storm.computed,
            storm.absorbed,
            storm.server_computed,
            storm.all_identical
        );
        if let Some((overloads, served)) = self.shed {
            let _ = writeln!(out, r#"  "shed": {{"overloads": {overloads}, "served": {served}}},"#);
        }
        let _ = writeln!(out, r#"  "loads": ["#);
        for (k, r) in self.loads.iter().enumerate() {
            let comma = if k + 1 == self.loads.len() { "" } else { "," };
            let d = &r.stats_delta;
            let _ = writeln!(
                out,
                r#"    {{"clients": {}, "requests": {}, "ok": {}, "errors": {}, "overloads": {}, "seconds": {:.6}, "throughput_rps": {:.3}, "p50_us": {}, "p95_us": {}, "p99_us": {}, "memo_hits": {}, "computed": {}, "coalesced": {}, "server": {{"lib_hits": {}, "lib_computed": {}, "lib_coalesced": {}, "cache_memory_hits": {}, "cache_disk_hits": {}, "cache_misses": {}, "cache_coalesced": {}, "cache_tier0_hits": {}, "cache_tier0_fallbacks": {}, "cache_tier0_refits": {}}}}}{comma}"#,
                r.clients,
                r.requests,
                r.ok,
                r.errors,
                r.overloads,
                r.seconds,
                r.throughput_rps,
                r.p50_us,
                r.p95_us,
                r.p99_us,
                r.memo_hits,
                r.computed,
                r.coalesced,
                d.library.hits,
                d.library.computed,
                d.library.coalesced,
                d.cache.memory_hits,
                d.cache.disk_hits,
                d.cache.misses,
                d.cache.coalesced,
                d.cache.tier0_hits,
                d.cache.tier0_fallbacks,
                d.tier0_refits
            );
        }
        let _ = writeln!(out, "  ],");
        match self.scaling {
            Some(ratio) => {
                let _ = writeln!(out, r#"  "throughput_scaling": {ratio:.4}"#);
            }
            None => {
                let _ = writeln!(out, r#"  "throughput_scaling": null"#);
            }
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serve::StatsSnapshot;

    fn sample_record<'a>(storm: &'a StormReport, loads: &'a [LoadReport]) -> LoadgenRecord<'a> {
        LoadgenRecord {
            mode: "smoke",
            clients: &[1, 4],
            requests_per_client: 8,
            unique_keys: 3,
            hot_key_bias: 0.3,
            warm: true,
            unix_time: 1_465_128_000,
            stamp: "20160605-120000",
            storm,
            shed: Some((2, 1)),
            loads,
            scaling: Some(1.5),
        }
    }

    #[test]
    fn record_carries_v2_schema_and_tier0_counters() {
        let storm = StormReport {
            clients: 6,
            ok: 6,
            computed: 1,
            absorbed: 5,
            server_computed: 1,
            library: String::new(),
            all_identical: true,
        };
        let delta = StatsSnapshot {
            cache: flow::CacheStats { tier0_hits: 11, tier0_fallbacks: 3, ..Default::default() },
            tier0_refits: 1,
            ..Default::default()
        };
        let loads = vec![LoadReport {
            clients: 4,
            requests: 32,
            ok: 32,
            errors: 0,
            overloads: 0,
            memo_hits: 20,
            computed: 8,
            coalesced: 4,
            seconds: 0.5,
            throughput_rps: 64.0,
            p50_us: 100,
            p95_us: 400,
            p99_us: 900,
            stats_delta: delta,
        }];
        let json = sample_record(&storm, &loads).to_json();
        assert!(json.contains(r#""schema": "reliaware-loadgen-v2""#), "{json}");
        assert!(json.contains(r#""cache_tier0_hits": 11"#), "{json}");
        assert!(json.contains(r#""cache_tier0_fallbacks": 3"#), "{json}");
        assert!(json.contains(r#""cache_tier0_refits": 1"#), "{json}");
        // The v1 identifier must be gone: consumers key on the schema
        // string to pick the parser.
        assert!(!json.contains("reliaware-loadgen-v1"), "{json}");
    }
}
