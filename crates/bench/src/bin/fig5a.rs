//! Fig. 5(a) — guardband estimation with both `ΔVth` and Δμ versus ΔVth-only
//! (the state of the art): ignoring the mobility degradation
//! under-estimates the required guardband.

use bench::{
    benchmark_netlists, fresh_library, pct, ps, row, worst_library, worst_vth_only_library,
};
use flow::estimate_guardband;
use sta::Constraints;

fn main() {
    let fresh = fresh_library();
    let aged_full = worst_library();
    let aged_vth = worst_vth_only_library();
    let designs = benchmark_netlists(&fresh, "fresh");
    let c = Constraints::default();

    println!("Fig 5(a) — required guardband [ps], worst-case aging, 10 years\n");
    row(&[
        "design".into(),
        "Vth+mu [ours]".into(),
        "Vth only [SoA]".into(),
        "underestimation".into(),
    ]);
    row(&["---".into(), "---".into(), "---".into(), "---".into()]);
    let mut ratios = Vec::new();
    for (design, nl) in &designs {
        let full = estimate_guardband(nl, &fresh, &aged_full, &c).expect("sta");
        let vth = estimate_guardband(nl, &fresh, &aged_vth, &c).expect("sta");
        let under = vth.guardband() / full.guardband() - 1.0;
        ratios.push(under);
        row(&[design.name.clone(), ps(full.guardband()), ps(vth.guardband()), pct(under)]);
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("\naverage under-estimation when neglecting mobility: {}", pct(avg));
    println!("(paper reports −19% on average)");
}
