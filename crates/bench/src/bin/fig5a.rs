//! Fig. 5(a) — guardband estimation with both `ΔVth` and Δμ versus ΔVth-only
//! (the state of the art): ignoring the mobility degradation
//! under-estimates the required guardband.

use bench::{
    benchmark_netlists, fresh_library, pct, ps, row, worst_library, worst_vth_only_library,
};
use flow::{estimate_guardband, FlowError, RunContext};
use sta::Constraints;
use std::process::ExitCode;

const USAGE: &str = "usage: fig5a [--report <path>]

Guardband with Vth+mu vs Vth-only degradation (paper Fig. 5a).

options:
  --report <path>  write a reliaware-run-v1 JSON run report
  -h, --help       show this help
";

fn run() -> Result<(), FlowError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (rest, report) = bench::cli::take_common_flags(&argv)?;
    if let Some(extra) = rest.first() {
        return Err(FlowError::Usage(format!("unexpected argument `{extra}`")));
    }
    let ctx = RunContext::new();
    let fresh = ctx.stage("characterize", fresh_library)?;
    let aged_full = ctx.stage("characterize", worst_library)?;
    let aged_vth = ctx.stage("characterize", worst_vth_only_library)?;
    let designs = ctx.stage("synthesis", || benchmark_netlists(&fresh, "fresh"))?;
    let c = Constraints::default();

    println!("Fig 5(a) — required guardband [ps], worst-case aging, 10 years\n");
    row(&[
        "design".into(),
        "Vth+mu [ours]".into(),
        "Vth only [SoA]".into(),
        "underestimation".into(),
    ]);
    row(&["---".into(), "---".into(), "---".into(), "---".into()]);
    let mut ratios = Vec::new();
    for (design, nl) in &designs {
        let full = ctx.stage("sta", || estimate_guardband(nl, &fresh, &aged_full, &c))?;
        let vth = ctx.stage("sta", || estimate_guardband(nl, &fresh, &aged_vth, &c))?;
        ctx.add_tasks("sta", 2);
        let under = vth.guardband() / full.guardband() - 1.0;
        ratios.push(under);
        row(&[design.name.clone(), ps(full.guardband()), ps(vth.guardband()), pct(under)]);
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("\naverage under-estimation when neglecting mobility: {}", pct(avg));
    println!("(paper reports −19% on average)");
    bench::cli::emit_report(&ctx, report.as_deref())
}

fn main() -> ExitCode {
    bench::cli::run(USAGE, run)
}
