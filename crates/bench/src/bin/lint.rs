//! `lint` — the relialint command-line front end.
//!
//! Runs the rule-based static-analysis pass over a timing library and,
//! optionally, a structural-Verilog netlist or a fresh/aged library pair.
//!
//! ```text
//! lint --lib complete.lib [--verilog design.v] [--fresh-lib t0.lib]
//!      [--allow RULE]... [--input-slew S] [--output-load L] [--json]
//!      [--deny-warnings] [--paths] [--clock-period SEC]
//!      [--mechanisms] [--years Y] [--temp-range LO:HI] [--vdd-range LO:HI]
//! lint --design NAME [--paths] [--mechanisms] [--deny-warnings] ...
//! lint --list-rules
//! ```
//!
//! Exit status: 0 when no errors were found (warnings allowed), 1 when at
//! least one error-severity diagnostic fired (or any warning under
//! `--deny-warnings`), 2 on usage or I/O problems.

use flow::{FlowError, RunContext};
use lint::{LintConfig, LintReport, Rule};
use std::process::ExitCode;

const USAGE: &str = "\
usage: lint --lib FILE [options]
       lint --design NAME [options]
       lint --list-rules

options:
  --lib FILE          timing library to check (.lib subset); required unless
                      --design or --list-rules is given
  --verilog FILE      structural-Verilog netlist to lint against the library
  --design NAME       synthesize a bundled benchmark (dct, idct, fft, dsp,
                      risc, vliw) against the built-in test library and lint
                      the result; mutually exclusive with --lib/--verilog
  --fresh-lib FILE    fresh (t=0) library: enables the AG001 fresh/aged
                      cross-check with --lib as the aged library
  --allow RULE        suppress a rule by code (repeatable), e.g. --allow NL006
  --input-slew SEC    boundary input slew for TM001 (default: library value)
  --output-load F     primary-output load for TM001 (default: library value)
  --paths             also run the PT path-level timing rules: with --design
                      the λ-scaled complete library is derived on the fly;
                      with --lib the library is used as the complete (aged)
                      library and --fresh-lib (when given) as the base
  --clock-period SEC  clock period for the PT pass (PT005 flags constrained
                      designs without one); with --design, defaults to 2x
                      the fresh critical path
  --mechanisms        also run the LT static lifetime rules (BTI/HCI/EM/TDDB
                      interval bounds and the provable design MTTF lower
                      bound); implied by the other --years/--temp-range/...
                      lifetime flags
  --years Y           lifetime horizon in years for the LT pass (default 10)
  --temp-range LO:HI  junction-temperature interval in kelvin the LT bound
                      must cover (default 398.15:398.15)
  --vdd-range LO:HI   supply-voltage interval in volts for the LT bound
                      (default 1.2:1.2)
  --mttf-target Y     LT001/LT005 fire below this MTTF bound (default 10)
  --vth-budget V      guardband ΔVth budget in volts for LT006 (default 0.1)
  --variation         also run the PV process-variation rules: Monte-Carlo
                      MTTF distribution, containment invariant (PV003) and
                      nominal-vs-quantile guardband gap (PV001); implied by
                      the other --mc-.../--sigma-vth/--max-gap flags
  --mc-samples N      number of sampled dies for the PV pass (default 64)
  --mc-seed S         sampling-stream seed for the PV pass (default 1)
  --sigma-vth V       1-sigma per-instance fresh-Vth offset in volts for the
                      PV pass (default 0.015)
  --max-gap F         PV001 fires when the p5 die retains less than 1-F of
                      the nominal MTTF bound (default 0.25)
  --deny-warnings     exit 1 when warnings survive, not only on errors
  --json              emit the JSON report instead of text
  --list-rules        print every rule code, severity and summary, then exit
  --report FILE       write a reliaware-run-v1 JSON run report

exit status:
  0  no errors (warnings allowed unless --deny-warnings)
  1  at least one error-severity diagnostic (or a warning under
     --deny-warnings)
  2  usage or I/O problem";

struct Args {
    lib: Option<String>,
    verilog: Option<String>,
    design: Option<String>,
    fresh_lib: Option<String>,
    allow: Vec<String>,
    input_slew: Option<f64>,
    output_load: Option<f64>,
    paths: bool,
    clock_period: Option<f64>,
    mechanisms: bool,
    years: Option<f64>,
    temp_range: Option<(f64, f64)>,
    vdd_range: Option<(f64, f64)>,
    mttf_target: Option<f64>,
    vth_budget: Option<f64>,
    variation: bool,
    mc_samples: Option<usize>,
    mc_seed: Option<u64>,
    sigma_vth: Option<f64>,
    max_gap: Option<f64>,
    deny_warnings: bool,
    json: bool,
    list_rules: bool,
    report: Option<String>,
}

/// Parses a `LO:HI` range argument.
fn parse_range(flag: &str, raw: &str) -> Result<(f64, f64), String> {
    let bad = || format!("{flag} needs LO:HI, got {raw}");
    let (lo, hi) = raw.split_once(':').ok_or_else(bad)?;
    Ok((lo.parse().map_err(|_| bad())?, hi.parse().map_err(|_| bad())?))
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        lib: None,
        verilog: None,
        design: None,
        fresh_lib: None,
        allow: Vec::new(),
        input_slew: None,
        output_load: None,
        paths: false,
        clock_period: None,
        mechanisms: false,
        years: None,
        temp_range: None,
        vdd_range: None,
        mttf_target: None,
        vth_budget: None,
        variation: false,
        mc_samples: None,
        mc_seed: None,
        sigma_vth: None,
        max_gap: None,
        deny_warnings: false,
        json: false,
        list_rules: false,
        report: None,
    };
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| argv.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--lib" => args.lib = Some(value("--lib")?),
            "--verilog" => args.verilog = Some(value("--verilog")?),
            "--design" => args.design = Some(value("--design")?),
            "--fresh-lib" => args.fresh_lib = Some(value("--fresh-lib")?),
            "--allow" => args.allow.push(value("--allow")?),
            "--input-slew" => {
                let v = value("--input-slew")?;
                args.input_slew = Some(v.parse().map_err(|_| format!("bad slew {v}"))?);
            }
            "--output-load" => {
                let v = value("--output-load")?;
                args.output_load = Some(v.parse().map_err(|_| format!("bad load {v}"))?);
            }
            "--paths" => args.paths = true,
            "--clock-period" => {
                let v = value("--clock-period")?;
                args.clock_period = Some(v.parse().map_err(|_| format!("bad period {v}"))?);
            }
            "--mechanisms" => args.mechanisms = true,
            "--years" => {
                let v = value("--years")?;
                args.years = Some(v.parse().map_err(|_| format!("bad years {v}"))?);
            }
            "--temp-range" => {
                args.temp_range = Some(parse_range("--temp-range", &value("--temp-range")?)?);
            }
            "--vdd-range" => {
                args.vdd_range = Some(parse_range("--vdd-range", &value("--vdd-range")?)?);
            }
            "--mttf-target" => {
                let v = value("--mttf-target")?;
                args.mttf_target = Some(v.parse().map_err(|_| format!("bad target {v}"))?);
            }
            "--vth-budget" => {
                let v = value("--vth-budget")?;
                args.vth_budget = Some(v.parse().map_err(|_| format!("bad budget {v}"))?);
            }
            "--variation" => args.variation = true,
            "--mc-samples" => {
                let v = value("--mc-samples")?;
                args.mc_samples = Some(v.parse().map_err(|_| format!("bad sample count {v}"))?);
            }
            "--mc-seed" => {
                let v = value("--mc-seed")?;
                args.mc_seed = Some(v.parse().map_err(|_| format!("bad seed {v}"))?);
            }
            "--sigma-vth" => {
                let v = value("--sigma-vth")?;
                args.sigma_vth = Some(v.parse().map_err(|_| format!("bad sigma {v}"))?);
            }
            "--max-gap" => {
                let v = value("--max-gap")?;
                args.max_gap = Some(v.parse().map_err(|_| format!("bad gap {v}"))?);
            }
            "--deny-warnings" => args.deny_warnings = true,
            "--json" => args.json = true,
            "--list-rules" => args.list_rules = true,
            "--report" => args.report = Some(value("--report")?),
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.design.is_some() && (args.lib.is_some() || args.verilog.is_some()) {
        return Err("--design is mutually exclusive with --lib/--verilog".into());
    }
    if !args.list_rules && args.lib.is_none() && args.design.is_none() {
        return Err("--lib or --design is required".into());
    }
    Ok(args)
}

fn list_rules() {
    println!("{:<7} {:<8} summary", "code", "severity");
    for rule in Rule::ALL {
        println!("{:<7} {:<8} {}", rule.code(), rule.severity().label(), rule.summary());
    }
}

fn read(path: &str) -> Result<String, FlowError> {
    std::fs::read_to_string(path).map_err(|e| FlowError::io(path, &e))
}

fn parse_failure(path: &str, e: impl std::fmt::Display) -> FlowError {
    FlowError::Io { path: path.to_owned(), message: format!("cannot parse: {e}") }
}

fn run() -> Result<ExitCode, FlowError> {
    let args = parse_args(std::env::args().skip(1)).map_err(FlowError::Usage)?;
    if args.list_rules {
        list_rules();
        return Ok(ExitCode::SUCCESS);
    }
    let ctx = RunContext::new();

    let mut config = LintConfig::default()
        .allow_codes(args.allow.iter().map(String::as_str))
        .map_err(|code| FlowError::Usage(format!("unknown rule code {code}")))?;
    config.input_slew = args.input_slew;
    config.output_load = args.output_load;
    if args.mechanisms
        || args.years.is_some()
        || args.temp_range.is_some()
        || args.vdd_range.is_some()
        || args.mttf_target.is_some()
        || args.vth_budget.is_some()
    {
        let lt = config.lifetime.get_or_insert_with(lint::LifetimeLintConfig::default);
        if let Some(years) = args.years {
            lt.config.years = years;
        }
        if let Some(range) = args.temp_range {
            lt.config.temperature_range = range;
        }
        if let Some(range) = args.vdd_range {
            lt.config.vdd_range = range;
        }
        if let Some(target) = args.mttf_target {
            lt.mttf_target_years = target;
        }
        if let Some(budget) = args.vth_budget {
            lt.config.vth_budget = budget;
        }
    }
    if args.variation
        || args.mc_samples.is_some()
        || args.mc_seed.is_some()
        || args.sigma_vth.is_some()
        || args.max_gap.is_some()
    {
        let pv = config.variation.get_or_insert_with(lint::VariationLintConfig::default);
        if let Some(samples) = args.mc_samples {
            pv.sampling.samples = samples;
        }
        if let Some(seed) = args.mc_seed {
            pv.sampling.seed = seed;
        }
        if let Some(sigma) = args.sigma_vth {
            pv.sampling.sigma_vth = sigma;
        }
        if let Some(gap) = args.max_gap {
            pv.max_gap = gap;
        }
        // The PV pass shares the lifetime configuration when one is set,
        // so --years/--temp-range/... shape both passes consistently.
        if let Some(lt) = &config.lifetime {
            pv.config = lt.config.clone();
        }
    }

    let report = if let Some(name) = &args.design {
        let design = bench::design_by_name(name)
            .ok_or_else(|| FlowError::Usage(format!("unknown design {name}")))?;
        let library = synth::test_fixtures::fixture_library();
        let nl = ctx.stage("synthesis", || {
            synth::synthesize(&design.aig, &library, &synth::MapOptions::default())
        })?;
        let mut report = ctx.stage("lint", || LintReport::run(&nl, &library, &config));
        if args.paths {
            // PT needs a constrained design; default to a comfortable 2x
            // the fresh critical path when no period was given.
            config.clock_period = match args.clock_period {
                Some(p) => Some(p),
                None => {
                    let cp =
                        sta::analyze(&nl, &library, &sta::Constraints::default())?.critical_delay();
                    Some(2.0 * cp)
                }
            };
            let complete = bench::lambda_scaled_complete(&library, config.lambda_steps);
            report = report.merged_with(ctx.stage("lint-paths", || {
                LintReport::run_paths(&nl, &library, &complete, &config)
            })?);
        }
        report
    } else {
        let lib_path = args.lib.as_deref().unwrap_or_default();
        let library =
            liberty::parse_library(&read(lib_path)?).map_err(|e| parse_failure(lib_path, e))?;
        let mut report = match &args.verilog {
            Some(path) => {
                let nl = netlist::verilog::parse_verilog(&read(path)?)
                    .map_err(|e| parse_failure(path, e))?;
                let mut report = ctx.stage("lint", || LintReport::run(&nl, &library, &config));
                if args.paths {
                    config.clock_period = args.clock_period;
                    let base = match &args.fresh_lib {
                        Some(path) => liberty::parse_library(&read(path)?)
                            .map_err(|e| parse_failure(path, e))?,
                        None => library.clone(),
                    };
                    report = report.merged_with(ctx.stage("lint-paths", || {
                        LintReport::run_paths(&nl, &base, &library, &config)
                    })?);
                }
                report
            }
            None if args.paths => {
                return Err(FlowError::Usage("--paths needs --verilog or --design".into()));
            }
            None => ctx.stage("lint", || LintReport::run_library(&library, &config)),
        };
        if let Some(path) = &args.fresh_lib {
            let fresh = liberty::parse_library(&read(path)?).map_err(|e| parse_failure(path, e))?;
            report = report.merged_with(
                ctx.stage("lint", || LintReport::run_aging(&fresh, &library, &config)),
            );
        }
        report
    };

    if args.json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    ctx.add_tasks("lint", (report.error_count() + report.warning_count()) as u64);
    bench::cli::emit_report(&ctx, args.report.as_deref().map(std::path::Path::new))?;
    let fail = report.has_errors() || (args.deny_warnings && report.warning_count() > 0);
    Ok(if fail { ExitCode::FAILURE } else { ExitCode::SUCCESS })
}

fn main() -> ExitCode {
    bench::cli::run_code(USAGE, run)
}
