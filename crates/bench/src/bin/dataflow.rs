//! `dataflow` — the static λ-interval analysis command-line front end.
//!
//! Propagates signal-probability intervals through a netlist, prints the
//! per-net intervals and per-instance λ bounds, reports the `DF` rule
//! diagnostics, and — when a λ-indexed complete library is available —
//! evaluates the **static worst-case guardband bound**: the netlist
//! re-timed at the worst characterized λ-grid point inside each instance's
//! provable interval box. The bound upper-bounds the dynamic guardband of
//! any workload.
//!
//! ```text
//! dataflow --design NAME [--steps N] [--quiet]
//! dataflow --lib FILE --verilog FILE [--complete FILE] [--steps N]
//! ```
//!
//! Exit status: 0 when no error-severity diagnostics were found, 1 when at
//! least one error fired, 2 on usage or I/O problems.

use dataflow::{DataflowConfig, Extraction, NetlistDataflow};
use flow::{FlowError, RunContext};
use lint::{LintConfig, LintReport};
use std::process::ExitCode;

const USAGE: &str = "\
usage: dataflow --design NAME [options]
       dataflow --lib FILE --verilog FILE [options]

options:
  --design NAME    synthesize a bundled benchmark (dct, idct, fft, dsp,
                   risc, vliw) against the built-in test library and analyze
                   it, including the static guardband bound on an analytic
                   λ-scaled complete library
  --lib FILE       base timing library (.lib subset)
  --verilog FILE   structural-Verilog netlist to analyze
  --complete FILE  λ-indexed merged complete library: enables the static
                   guardband bound in --lib/--verilog mode
  --steps N        λ-grid resolution for validation and the bound (default 10)
  --quiet          omit the per-net interval listing
  --json           emit the DF lint report as JSON instead of text
  --report FILE    write a reliaware-run-v1 JSON run report

exit status:
  0  no error-severity diagnostics
  1  at least one error-severity diagnostic
  2  usage or I/O problem";

struct Args {
    design: Option<String>,
    lib: Option<String>,
    verilog: Option<String>,
    complete: Option<String>,
    steps: u32,
    quiet: bool,
    json: bool,
    report: Option<String>,
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        design: None,
        lib: None,
        verilog: None,
        complete: None,
        steps: 10,
        quiet: false,
        json: false,
        report: None,
    };
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| argv.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--design" => args.design = Some(value("--design")?),
            "--lib" => args.lib = Some(value("--lib")?),
            "--verilog" => args.verilog = Some(value("--verilog")?),
            "--complete" => args.complete = Some(value("--complete")?),
            "--steps" => {
                let v = value("--steps")?;
                args.steps = v.parse().map_err(|_| format!("bad step count {v}"))?;
            }
            "--quiet" => args.quiet = true,
            "--json" => args.json = true,
            "--report" => args.report = Some(value("--report")?),
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.design.is_some() && (args.lib.is_some() || args.verilog.is_some()) {
        return Err("--design is mutually exclusive with --lib/--verilog".into());
    }
    if args.design.is_none() && (args.lib.is_none() || args.verilog.is_none()) {
        return Err("--design or both --lib and --verilog are required".into());
    }
    if args.steps == 0 {
        return Err("--steps must be positive".into());
    }
    Ok(args)
}

fn read(path: &str) -> Result<String, FlowError> {
    std::fs::read_to_string(path).map_err(|e| FlowError::io(path, &e))
}

fn parse_failure(path: &str, e: impl std::fmt::Display) -> FlowError {
    FlowError::Io { path: path.to_owned(), message: format!("cannot parse: {e}") }
}

fn run() -> Result<ExitCode, FlowError> {
    let args = parse_args(std::env::args().skip(1)).map_err(FlowError::Usage)?;
    let ctx = RunContext::new();

    let (netlist, library, complete) = if let Some(name) = &args.design {
        let design = bench::design_by_name(name)
            .ok_or_else(|| FlowError::Usage(format!("unknown design {name}")))?;
        let library = synth::test_fixtures::fixture_library();
        let nl = ctx.stage("synthesis", || {
            synth::synthesize(&design.aig, &library, &synth::MapOptions::default())
        })?;
        let complete = ctx.stage("library", || bench::lambda_scaled_complete(&library, args.steps));
        (nl, library, Some(complete))
    } else {
        let lib_path = args.lib.as_deref().unwrap_or_default();
        let library =
            liberty::parse_library(&read(lib_path)?).map_err(|e| parse_failure(lib_path, e))?;
        let v_path = args.verilog.as_deref().unwrap_or_default();
        let nl = netlist::verilog::parse_verilog(&read(v_path)?)
            .map_err(|e| parse_failure(v_path, e))?;
        let complete = match &args.complete {
            Some(path) => {
                Some(liberty::parse_library(&read(path)?).map_err(|e| parse_failure(path, e))?)
            }
            None => None,
        };
        (nl, library, complete)
    };

    let df = ctx.stage("dataflow", || NetlistDataflow::analyze(&netlist, &library));
    println!(
        "module {}: {} nets, {} instances ({} widened, {} skipped)",
        netlist.name,
        netlist.net_count(),
        netlist.instance_count(),
        df.widened_instances().len(),
        df.skipped_instances().len()
    );

    if !args.quiet {
        println!("\nper-net signal-probability intervals:");
        for k in 0..netlist.net_count() {
            let net = netlist::NetId::from_index(k);
            println!("  {:<24} {}", netlist.net_name(net), df.interval(net));
        }
        println!("\nper-instance λ bounds (gate-average extraction):");
        for inst in netlist.instance_ids() {
            if let Some(b) = df.lambda_bounds(&netlist, &library, inst, Extraction::GateAverage) {
                println!("  {:<24} {b}", netlist.instance(inst).name);
            }
        }
    }

    let config = LintConfig { lambda_steps: args.steps, ..LintConfig::default() };
    let report = ctx.stage("lint", || LintReport::run(&netlist, &library, &config));
    println!();
    if args.json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }

    match complete {
        Some(complete) => {
            let bound = ctx.stage("sta", || {
                dataflow::static_guardband_bound(
                    &netlist,
                    &library,
                    &complete,
                    args.steps,
                    &DataflowConfig::default(),
                    &sta::Constraints::default(),
                )
            })?;
            println!(
                "\nstatic worst-case bound: fresh {:.2} ps, bound {:.2} ps, \
                 guardband {:.2} ps ({:+.1}%, {})",
                bound.fresh_delay * 1e12,
                bound.bound_delay * 1e12,
                bound.guardband() * 1e12,
                bound.guardband() / bound.fresh_delay * 100.0,
                if bound.exact { "exact intervals" } else { "widened/skipped: conservative" }
            );
        }
        None => {
            println!("\nstatic worst-case bound: skipped (no --complete library)");
        }
    }

    ctx.add_tasks("lint", (report.error_count() + report.warning_count()) as u64);
    bench::cli::emit_report(&ctx, args.report.as_deref().map(std::path::Path::new))?;
    Ok(if report.has_errors() { ExitCode::FAILURE } else { ExitCode::SUCCESS })
}

fn main() -> ExitCode {
    bench::cli::run_code(USAGE, run)
}
