//! `dataflow` — the static λ-interval analysis command-line front end.
//!
//! Propagates signal-probability intervals through a netlist, prints the
//! per-net intervals and per-instance λ bounds, reports the `DF` rule
//! diagnostics, and — when a λ-indexed complete library is available —
//! evaluates the **static worst-case guardband bound**: the netlist
//! re-timed at the worst characterized λ-grid point inside each instance's
//! provable interval box. The bound upper-bounds the dynamic guardband of
//! any workload.
//!
//! ```text
//! dataflow --design NAME [--steps N] [--quiet]
//! dataflow --lib FILE --verilog FILE [--complete FILE] [--steps N]
//! ```
//!
//! Exit status: 0 when no error-severity diagnostics were found, 1 when at
//! least one error fired, 2 on usage or I/O problems.

use dataflow::{DataflowConfig, Extraction, NetlistDataflow};
use lint::{LintConfig, LintReport};
use std::process::ExitCode;

const USAGE: &str = "\
usage: dataflow --design NAME [options]
       dataflow --lib FILE --verilog FILE [options]

options:
  --design NAME    synthesize a bundled benchmark (dct, idct, fft, dsp,
                   risc, vliw) against the built-in test library and analyze
                   it, including the static guardband bound on an analytic
                   λ-scaled complete library
  --lib FILE       base timing library (.lib subset)
  --verilog FILE   structural-Verilog netlist to analyze
  --complete FILE  λ-indexed merged complete library: enables the static
                   guardband bound in --lib/--verilog mode
  --steps N        λ-grid resolution for validation and the bound (default 10)
  --quiet          omit the per-net interval listing
  --json           emit the DF lint report as JSON instead of text

exit status:
  0  no error-severity diagnostics
  1  at least one error-severity diagnostic
  2  usage or I/O problem";

struct Args {
    design: Option<String>,
    lib: Option<String>,
    verilog: Option<String>,
    complete: Option<String>,
    steps: u32,
    quiet: bool,
    json: bool,
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        design: None,
        lib: None,
        verilog: None,
        complete: None,
        steps: 10,
        quiet: false,
        json: false,
    };
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| argv.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--design" => args.design = Some(value("--design")?),
            "--lib" => args.lib = Some(value("--lib")?),
            "--verilog" => args.verilog = Some(value("--verilog")?),
            "--complete" => args.complete = Some(value("--complete")?),
            "--steps" => {
                let v = value("--steps")?;
                args.steps = v.parse().map_err(|_| format!("bad step count {v}"))?;
            }
            "--quiet" => args.quiet = true,
            "--json" => args.json = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.design.is_some() && (args.lib.is_some() || args.verilog.is_some()) {
        return Err("--design is mutually exclusive with --lib/--verilog".into());
    }
    if args.design.is_none() && (args.lib.is_none() || args.verilog.is_none()) {
        return Err("--design or both --lib and --verilog are required".into());
    }
    if args.steps == 0 {
        return Err("--steps must be positive".into());
    }
    Ok(args)
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args(std::env::args().skip(1))?;

    let (netlist, library, complete) = if let Some(name) = &args.design {
        let design = bench::design_by_name(name).ok_or_else(|| format!("unknown design {name}"))?;
        let library = synth::test_fixtures::fixture_library();
        let nl = synth::synthesize(&design.aig, &library, &synth::MapOptions::default())
            .map_err(|e| format!("synthesis of {name} failed: {e}"))?;
        let complete = bench::lambda_scaled_complete(&library, args.steps);
        (nl, library, Some(complete))
    } else {
        let lib_path = args.lib.as_deref().expect("checked by parse_args");
        let library = liberty::parse_library(&read(lib_path)?)
            .map_err(|e| format!("cannot parse {lib_path}: {e}"))?;
        let v_path = args.verilog.as_deref().expect("checked by parse_args");
        let nl = netlist::verilog::parse_verilog(&read(v_path)?)
            .map_err(|e| format!("cannot parse {v_path}: {e}"))?;
        let complete = match &args.complete {
            Some(path) => Some(
                liberty::parse_library(&read(path)?)
                    .map_err(|e| format!("cannot parse {path}: {e}"))?,
            ),
            None => None,
        };
        (nl, library, complete)
    };

    let df = NetlistDataflow::analyze(&netlist, &library);
    println!(
        "module {}: {} nets, {} instances ({} widened, {} skipped)",
        netlist.name,
        netlist.net_count(),
        netlist.instance_count(),
        df.widened_instances().len(),
        df.skipped_instances().len()
    );

    if !args.quiet {
        println!("\nper-net signal-probability intervals:");
        for k in 0..netlist.net_count() {
            let net = netlist::NetId::from_index(k);
            println!("  {:<24} {}", netlist.net_name(net), df.interval(net));
        }
        println!("\nper-instance λ bounds (gate-average extraction):");
        for inst in netlist.instance_ids() {
            if let Some(b) = df.lambda_bounds(&netlist, &library, inst, Extraction::GateAverage) {
                println!("  {:<24} {b}", netlist.instance(inst).name);
            }
        }
    }

    let config = LintConfig { lambda_steps: args.steps, ..LintConfig::default() };
    let report = LintReport::run(&netlist, &library, &config);
    println!();
    if args.json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }

    match complete {
        Some(complete) => {
            let bound = dataflow::static_guardband_bound(
                &netlist,
                &library,
                &complete,
                args.steps,
                &DataflowConfig::default(),
                &sta::Constraints::default(),
            )
            .map_err(|e| format!("static bound failed: {e}"))?;
            println!(
                "\nstatic worst-case bound: fresh {:.2} ps, bound {:.2} ps, \
                 guardband {:.2} ps ({:+.1}%, {})",
                bound.fresh_delay * 1e12,
                bound.bound_delay * 1e12,
                bound.guardband() * 1e12,
                bound.guardband() / bound.fresh_delay * 100.0,
                if bound.exact { "exact intervals" } else { "widened/skipped: conservative" }
            );
        }
        None => {
            println!("\nstatic worst-case bound: skipped (no --complete library)");
        }
    }

    Ok(if report.has_errors() { ExitCode::FAILURE } else { ExitCode::SUCCESS })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            if message.is_empty() {
                println!("{USAGE}");
                ExitCode::SUCCESS
            } else {
                eprintln!("error: {message}\n\n{USAGE}");
                ExitCode::from(2)
            }
        }
    }
}
