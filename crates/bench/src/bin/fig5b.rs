//! Fig. 5(b) — guardbands from a single operating condition versus the
//! full multi-OPC tables: single-OPC characterization (pessimistic corner)
//! grossly over-estimates the required guardband.

use bench::{benchmark_netlists, fresh_library, pct, ps, row, worst_library};
use flow::{estimate_guardband, single_opc_aged_library, FlowError, RunContext};
use sta::Constraints;
use std::process::ExitCode;

const USAGE: &str = "usage: fig5b [--report <path>]

Guardband from 49 OPCs vs a single pessimistic OPC (paper Fig. 5b).

options:
  --report <path>  write a reliaware-run-v1 JSON run report
  -h, --help       show this help
";

fn run() -> Result<(), FlowError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (rest, report) = bench::cli::take_common_flags(&argv)?;
    if let Some(extra) = rest.first() {
        return Err(FlowError::Usage(format!("unexpected argument `{extra}`")));
    }
    let ctx = RunContext::new();
    let fresh = ctx.stage("characterize", fresh_library)?;
    let aged = ctx.stage("characterize", worst_library)?;
    // The single-OPC state of the art characterizes aging at one
    // pessimistic corner — large slew, small load, where Fig. 1 shows the
    // biggest impact — and applies that degradation factor everywhere.
    let pess_slew = 300e-12;
    let pess_load = 0.5e-15;
    let aged_single =
        ctx.stage("library", || single_opc_aged_library(&fresh, &aged, pess_slew, pess_load));

    let designs = ctx.stage("synthesis", || benchmark_netlists(&fresh, "fresh"))?;
    let c = Constraints::default();

    println!("Fig 5(b) — required guardband [ps]: multiple OPCs vs a single OPC\n");
    row(&[
        "design".into(),
        "49 OPCs [ours]".into(),
        "single OPC [SoA]".into(),
        "overestimation".into(),
    ]);
    row(&["---".into(), "---".into(), "---".into(), "---".into()]);
    let mut ratios = Vec::new();
    for (design, nl) in &designs {
        let multi = ctx.stage("sta", || estimate_guardband(nl, &fresh, &aged, &c))?;
        let single = ctx.stage("sta", || estimate_guardband(nl, &fresh, &aged_single, &c))?;
        ctx.add_tasks("sta", 2);
        let over = single.guardband() / multi.guardband() - 1.0;
        ratios.push(over);
        row(&[design.name.clone(), ps(multi.guardband()), ps(single.guardband()), pct(over)]);
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("\naverage over-estimation from a single OPC: {}", pct(avg));
    println!("(paper reports +214% on average)");
    bench::cli::emit_report(&ctx, report.as_deref())
}

fn main() -> ExitCode {
    bench::cli::run(USAGE, run)
}
