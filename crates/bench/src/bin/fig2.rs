//! Fig. 2 — distribution of aging-induced delay change across the whole
//! cell library: a single operating condition sees only degradation, the
//! full 7×7 OPC grid reveals a wide spread including *improvements*.

use bench::{fresh_library, worst_library};
use flow::{FlowError, RunContext};
use liberty::Table2d;
use std::process::ExitCode;

const USAGE: &str = "usage: fig2 [--report <path>]

Library-wide delay-change histograms under worst-case aging (paper Fig. 2).

options:
  --report <path>  write a reliaware-run-v1 JSON run report
  -h, --help       show this help
";

/// Delays shorter than this are dominated by measurement convention (50 %
/// crossings can even go negative for very slow inputs); ratios over them
/// are meaningless and excluded, as in any sane guardband analysis.
const MIN_DELAY: f64 = 2.0e-12;

fn deltas(fresh: &Table2d, aged: &Table2d, single_opc: bool) -> Vec<f64> {
    if single_opc {
        // Single-OPC baseline: the nominal fast-input corner (first slew,
        // smallest load) — the conventional characterization point.
        let slew = fresh.slew_axis()[0];
        let load = fresh.load_axis()[0];
        let (f, a) = (fresh.value(slew, load), aged.value(slew, load));
        if f > MIN_DELAY {
            vec![a / f - 1.0]
        } else {
            Vec::new()
        }
    } else {
        let mut out = Vec::new();
        for si in 0..fresh.slew_axis().len() {
            for li in 0..fresh.load_axis().len() {
                let (f, a) = (fresh.at(si, li), aged.at(si, li));
                if f > MIN_DELAY {
                    out.push(a / f - 1.0);
                }
            }
        }
        out
    }
}

fn histogram(title: &str, samples: &[f64]) {
    println!("\n{title}  ({} samples)", samples.len());
    let improved = samples.iter().filter(|&&d| d < 0.0).count();
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "  range: {:+.1}% .. {:+.1}%   improved: {:.1}%",
        min * 100.0,
        max * 100.0,
        improved as f64 / samples.len() as f64 * 100.0
    );
    let lo = -0.6;
    let hi = 0.6;
    let bins = 24;
    let mut counts = vec![0usize; bins];
    for &d in samples {
        let x = ((d - lo) / (hi - lo) * bins as f64).floor();
        let b = (x.max(0.0) as usize).min(bins - 1);
        counts[b] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    for (b, &c) in counts.iter().enumerate() {
        let left = lo + (hi - lo) * b as f64 / bins as f64;
        let bar = "#".repeat((c * 50).div_ceil(peak).min(50));
        println!("  {:>6.0}% | {:<50} {}", left * 100.0, bar, c);
    }
}

fn run() -> Result<(), FlowError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (rest, report) = bench::cli::take_common_flags(&argv)?;
    if let Some(extra) = rest.first() {
        return Err(FlowError::Usage(format!("unexpected argument `{extra}`")));
    }
    let ctx = RunContext::new();
    let fresh = ctx.stage("characterize", fresh_library)?;
    let aged = ctx.stage("characterize", worst_library)?;

    let mut single = Vec::new();
    let mut multi = Vec::new();
    for cell in fresh.cells() {
        let Some(aged_cell) = aged.cell(&cell.name) else { continue };
        for out in &cell.outputs {
            let Some(aged_out) = aged_cell.output(&out.name) else { continue };
            for arc in &out.arcs {
                let Some(aged_arc) = aged_out.arc_from(&arc.related_pin) else { continue };
                for (f, a) in
                    [(&arc.cell_rise, &aged_arc.cell_rise), (&arc.cell_fall, &aged_arc.cell_fall)]
                {
                    single.extend(deltas(f, a, true));
                    multi.extend(deltas(f, a, false));
                }
            }
        }
    }
    histogram("Fig 2 (left): single OPC per arc — delay change under worst-case aging", &single);
    histogram("Fig 2 (right): all 49 OPCs per arc — delay change under worst-case aging", &multi);
    println!("\nPaper shape: single-OPC histogram is all-degradation with a narrow range;");
    println!("multi-OPC histogram is much wider and a noticeable share of points improve.");
    ctx.add_tasks("report", 2);
    bench::cli::emit_report(&ctx, report.as_deref())
}

fn main() -> ExitCode {
    bench::cli::run(USAGE, run)
}
