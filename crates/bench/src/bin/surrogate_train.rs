//! Offline trainer for the tier-0 learned surrogate.
//!
//! Characterizes the (λp, λn) complete-library grid with a **collect-only**
//! surrogate tier (budget 0) in front of the arc cache — every simulated
//! arc feeds the sample buffer while the produced library stays bit-exact —
//! then refits the per-class ridge models with their split-conformal error
//! bounds and writes the deterministic model text to `--model`.
//!
//! Before the model is accepted, it is evaluated on **held-out off-grid**
//! λ points the training grid never saw. The run fails if the held-out
//! error exceeds the accuracy budget, or if the collect-only pass is not
//! bit-identical to a direct, uncached characterization. A machine-readable
//! metrics record (`reliaware-surrogate-train-v1`) goes to `--metrics`.
//!
//! ```text
//! surrogate_train --model PATH [--metrics PATH] [--smoke] [--steps N]
//!                 [--cells A,B,...] [--threads N] [--budget F]
//!                 [--cache-dir DIR]
//! ```
//!
//! Point `--cache-dir` at a warm arc cache (e.g. the serve daemon's) and
//! the grid pass replays from disk instead of re-simulating.

use bti::{AgingScenario, DutyCycle};
use flow::{ArcCache, CharConfig, Characterizer, FlowError, SurrogateTier};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;
use stdcells::CellSet;

const USAGE: &str = "usage: surrogate_train --model PATH [--metrics PATH] [--smoke] [--steps N]
                       [--cells A,B,...] [--threads N] [--budget F]
                       [--cache-dir DIR]

options:
  --model PATH     write the trained model text here (required)
  --metrics PATH   write the reliaware-surrogate-train-v1 metrics JSON here
  --smoke          tiny pinned OPC grid for CI
  --steps N        λ-grid interval count (default: 4 smoke, 6 full)
  --cells A,B,...  cells to train on (default: INV_X1,NAND2_X1)
  --threads N      worker threads for the grid characterization
  --budget F       held-out relative-error budget (default: 0.05)
  --cache-dir DIR  warm arc-cache directory (default: memory only)
  -h, --help       show this help
";

/// Held-out λ points: deliberately off every training grid this binary can
/// produce (grid values are multiples of `1/steps`).
const HELDOUT_LAMBDAS: [(f64, f64); 3] = [(0.37, 0.81), (0.63, 0.19), (0.11, 0.52)];

struct Options {
    model: PathBuf,
    metrics: Option<PathBuf>,
    smoke: bool,
    steps: u32,
    cells: Vec<String>,
    threads: usize,
    budget: f64,
    cache_dir: Option<PathBuf>,
}

fn parse_args() -> Result<Options, FlowError> {
    let mut model = None;
    let mut opts = Options {
        model: PathBuf::new(),
        metrics: None,
        smoke: false,
        steps: 0,
        cells: vec!["INV_X1".into(), "NAND2_X1".into()],
        threads: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        budget: 0.05,
        cache_dir: None,
    };
    let mut steps_set = false;
    let mut args = std::env::args().skip(1);
    let path = |args: &mut dyn Iterator<Item = String>, flag: &str| -> Result<PathBuf, FlowError> {
        args.next()
            .map(PathBuf::from)
            .ok_or_else(|| FlowError::Usage(format!("{flag} needs a path")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--model" => model = Some(path(&mut args, "--model")?),
            "--metrics" => opts.metrics = Some(path(&mut args, "--metrics")?),
            "--smoke" => opts.smoke = true,
            "--steps" => {
                opts.steps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| FlowError::Usage("--steps needs an integer".into()))?;
                steps_set = true;
            }
            "--cells" => {
                let list = args
                    .next()
                    .ok_or_else(|| FlowError::Usage("--cells needs a comma list".into()))?;
                opts.cells = list.split(',').map(|c| c.trim().to_string()).collect();
            }
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| FlowError::Usage("--threads needs an integer".into()))?;
            }
            "--budget" => {
                let budget: f64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| FlowError::Usage("--budget needs a number".into()))?;
                if !(budget.is_finite() && budget > 0.0) {
                    return Err(FlowError::Usage(format!(
                        "--budget must be finite and positive, got {budget}"
                    )));
                }
                opts.budget = budget;
            }
            "--cache-dir" => opts.cache_dir = Some(path(&mut args, "--cache-dir")?),
            "-h" | "--help" => return Err(FlowError::Usage(String::new())),
            other => return Err(FlowError::Usage(format!("unknown argument: {other}"))),
        }
    }
    opts.model = model.ok_or_else(|| FlowError::Usage("--model is required".into()))?;
    // The degree-2 polynomial basis needs a dense enough λ grid to pin the
    // off-grid behavior down: 2 steps (9 scenarios) leaves the fit
    // underdetermined and held-out error an order of magnitude over budget,
    // 4 steps (25 scenarios) brings it safely under.
    if !steps_set {
        opts.steps = if opts.smoke { 4 } else { 6 };
    }
    Ok(opts)
}

fn char_config(opts: &Options) -> CharConfig {
    if opts.smoke {
        CharConfig {
            slews: vec![10e-12, 300e-12],
            loads: vec![1e-15, 10e-15],
            max_dv: 8e-3,
            parallelism: opts.threads,
            ..CharConfig::paper()
        }
    } else {
        CharConfig { parallelism: opts.threads, ..CharConfig::fast() }
    }
}

fn run() -> Result<(), FlowError> {
    let opts = parse_args()?;
    let cells: Vec<&str> = opts.cells.iter().map(String::as_str).collect();
    let set = CellSet::nangate45_like().subset(&cells);
    let config = char_config(&opts);
    println!(
        "surrogate_train: mode={}, steps={}, cells={}, budget={}",
        if opts.smoke { "smoke" } else { "full" },
        opts.steps,
        opts.cells.join(","),
        opts.budget
    );

    // Training pass: budget 0 collects every simulated arc. A warm disk
    // cache replays tables instead of re-simulating; observation happens
    // on both paths, so the sample set is identical either way.
    let collect = Arc::new(SurrogateTier::new(0.0));
    let cache = match &opts.cache_dir {
        Some(dir) => ArcCache::with_dir(dir),
        None => ArcCache::in_memory(),
    };
    let trainer = Characterizer::new(set.clone(), config.clone())?
        .with_cache(Arc::new(cache.with_tier0(Arc::clone(&collect))));
    let start = Instant::now();
    trainer.complete_library(opts.steps, bench::LIFETIME_YEARS)?;
    let train_secs = start.elapsed().as_secs_f64();
    let samples = collect.refit_now() as u64;
    let model = collect
        .model()
        .ok_or_else(|| FlowError::Usage("training produced no model (too few samples)".into()))?;
    println!("  trained {} classes from {samples} samples in {train_secs:.3} s", model.len());

    // Held-out evaluation on off-grid λ points through a second collect
    // tier; the first point is also characterized directly (no cache, no
    // tier) to prove the collect path bit-identical.
    let lambda = |v: f64| DutyCycle::new(v).map_err(|e| FlowError::Usage(e.to_string()));
    let heldout: Vec<AgingScenario> = HELDOUT_LAMBDAS
        .iter()
        .map(|&(p, n)| Ok(AgingScenario::new(lambda(p)?, lambda(n)?, bench::LIFETIME_YEARS)))
        .collect::<Result<_, FlowError>>()?;
    let harvest = Arc::new(SurrogateTier::new(0.0));
    let heldout_char = Characterizer::new(set.clone(), config.clone())?
        .with_cache(Arc::new(ArcCache::in_memory().with_tier0(Arc::clone(&harvest))));
    let heldout_libs =
        heldout.iter().map(|s| heldout_char.library(s)).collect::<Result<Vec<_>, _>>()?;
    let direct = Characterizer::new(set, config)?.library(&heldout[0])?;
    let bit_identical = direct == heldout_libs[0];
    if !bit_identical {
        return Err(flow::EvalError::Simulation {
            message: "collect-only tier diverged from direct characterization".into(),
        }
        .into());
    }
    let eval = model.evaluate(&harvest.samples());
    println!(
        "  held-out: {} points, max_rel={:.6}, mean_rel={:.6}, skipped={}",
        eval.points, eval.max_rel, eval.mean_rel, eval.skipped
    );
    if eval.skipped > 0 {
        return Err(flow::EvalError::Simulation {
            message: format!("{} held-out samples had no predicting class", eval.skipped),
        }
        .into());
    }
    if eval.max_rel > opts.budget {
        return Err(flow::EvalError::Simulation {
            message: format!(
                "held-out error {:.6} exceeds the {} budget — model rejected",
                eval.max_rel, opts.budget
            ),
        }
        .into());
    }

    model.save(&opts.model).map_err(|e| FlowError::io(opts.model.display(), &e))?;
    println!("wrote {}", opts.model.display());
    if let Some(path) = &opts.metrics {
        let json = metrics_json(&opts, train_secs, samples, &model, &eval);
        std::fs::write(path, json).map_err(|e| FlowError::io(path.display(), &e))?;
        println!("wrote {}", path.display());
    }
    Ok(())
}

fn metrics_json(
    opts: &Options,
    train_secs: f64,
    samples: u64,
    model: &surrogate::SurrogateModel,
    eval: &surrogate::ErrorSummary,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, r#"  "schema": "reliaware-surrogate-train-v1","#);
    let _ = writeln!(
        out,
        r#"  "config": {{"mode": "{}", "grid_steps": {}, "cells": {:?}, "budget": {}}},"#,
        if opts.smoke { "smoke" } else { "full" },
        opts.steps,
        opts.cells,
        opts.budget
    );
    let _ = writeln!(
        out,
        r#"  "train": {{"seconds": {train_secs:.6}, "samples": {samples}, "classes": {}}},"#,
        model.len()
    );
    let _ = writeln!(out, r#"  "class_bounds": ["#);
    let summaries = model.class_summaries();
    for (k, (class, points, bound)) in summaries.iter().enumerate() {
        let comma = if k + 1 == summaries.len() { "" } else { "," };
        let _ = writeln!(
            out,
            r#"    {{"class": "{class}", "train_points": {points}, "bound": {bound:.6}}}{comma}"#
        );
    }
    let _ = writeln!(out, "  ],");
    let lambdas: Vec<String> = HELDOUT_LAMBDAS.iter().map(|(p, n)| format!("[{p}, {n}]")).collect();
    let _ = writeln!(
        out,
        r#"  "heldout": {{"lambdas": [{}], "points": {}, "max_rel": {:.6}, "mean_rel": {:.6}, "skipped": {}}},"#,
        lambdas.join(", "),
        eval.points,
        eval.max_rel,
        eval.mean_rel,
        eval.skipped
    );
    let _ = writeln!(out, r#"  "fallback_bit_identical": true"#);
    let _ = writeln!(out, "}}");
    out
}

fn main() -> ExitCode {
    bench::cli::run(USAGE, run)
}
