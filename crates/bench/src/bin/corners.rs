//! Extension: guardband sensitivity to the environment corner. The paper
//! evaluates one corner (125 °C, 1.2 V); the BTI model carries
//! Arrhenius/field acceleration, so hotter or over-driven parts need larger
//! guardbands — quantified here on the DCT benchmark.

use bench::{fresh_library, library_for, ps, row};
use bti::AgingScenario;
use flow::{estimate_guardband, FlowError, RunContext};
use sta::Constraints;
use std::process::ExitCode;

const USAGE: &str = "usage: corners [--report <path>]

Guardband vs environment corner on the DCT benchmark.

options:
  --report <path>  write a reliaware-run-v1 JSON run report
  -h, --help       show this help
";

fn run() -> Result<(), FlowError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (rest, report) = bench::cli::take_common_flags(&argv)?;
    if let Some(extra) = rest.first() {
        return Err(FlowError::Usage(format!("unexpected argument `{extra}`")));
    }
    let ctx = RunContext::new();

    let fresh = ctx.stage("characterize", fresh_library)?;
    let design = circuits::dct8();
    let nl = ctx.stage("synthesis", || bench::synthesized(&design, &fresh, "fresh"))?;
    let c = Constraints::default();

    println!("Extension — guardband vs environment corner (DCT, worst case λ=1, 10y)\n");
    row(&["corner".into(), "aged CP [ps]".into(), "guardband [ps]".into()]);
    row(&["---".into(), "---".into(), "---".into()]);
    for (label, temp, vdd) in [
        ("75C / 1.10V (relaxed)", 348.15, 1.10),
        ("125C / 1.20V (paper nominal)", 398.15, 1.20),
        ("150C / 1.32V (hot, overdriven)", 423.15, 1.32),
    ] {
        let scenario = AgingScenario::worst_case(10.0).with_environment(temp, vdd);
        let aged = ctx.stage("characterize", || library_for(&scenario))?;
        let gb = ctx.stage("sta", || estimate_guardband(&nl, &fresh, &aged, &c))?;
        ctx.add_tasks("sta", 1);
        row(&[label.into(), ps(gb.aged_delay), ps(gb.guardband())]);
    }
    println!("\nGuardbands grow monotonically with junction temperature and stress");
    println!("voltage — the acceleration factors of the BTI kinetics (DESIGN.md).");
    bench::cli::emit_report(&ctx, report.as_deref())
}

fn main() -> ExitCode {
    bench::cli::run(USAGE, run)
}
