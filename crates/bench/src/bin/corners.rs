//! Extension: guardband sensitivity to the environment corner. The paper
//! evaluates one corner (125 °C, 1.2 V); the BTI model carries
//! Arrhenius/field acceleration, so hotter or over-driven parts need larger
//! guardbands — quantified here on the DCT benchmark.

use bench::{fresh_library, library_for, ps, row};
use bti::AgingScenario;
use flow::estimate_guardband;
use sta::Constraints;

fn main() {
    let fresh = fresh_library();
    let design = circuits::dct8();
    let nl = bench::synthesized(&design, &fresh, "fresh");
    let c = Constraints::default();

    println!("Extension — guardband vs environment corner (DCT, worst case λ=1, 10y)\n");
    row(&["corner".into(), "aged CP [ps]".into(), "guardband [ps]".into()]);
    row(&["---".into(), "---".into(), "---".into()]);
    for (label, temp, vdd) in [
        ("75C / 1.10V (relaxed)", 348.15, 1.10),
        ("125C / 1.20V (paper nominal)", 398.15, 1.20),
        ("150C / 1.32V (hot, overdriven)", 423.15, 1.32),
    ] {
        let scenario = AgingScenario::worst_case(10.0).with_environment(temp, vdd);
        let aged = library_for(&scenario);
        let gb = estimate_guardband(&nl, &fresh, &aged, &c).expect("sta");
        row(&[label.into(), ps(gb.aged_delay), ps(gb.guardband())]);
    }
    println!("\nGuardbands grow monotonically with junction temperature and stress");
    println!("voltage — the acceleration factors of the BTI kinetics (DESIGN.md).");
}
