//! Concurrent load generator for the characterization service.
//!
//! Drives a server (an external one via `--socket`, or an in-process one
//! it spawns itself) through four phases and writes a schema-versioned
//! `BENCH_<stamp>_loadgen.json` record:
//!
//! 1. **storm** — every client fires the *same* cold key simultaneously;
//!    the run fails unless the server computed it **exactly once** (100 %
//!    coalescing) and every client received byte-identical library text;
//! 2. **bit-identity** — the served library is compared byte for byte
//!    against a direct, in-process [`flow::Characterizer`] run;
//! 3. **shed** — a deliberately tiny in-process server (1 slot, ~1 ms
//!    queue timeout) is stormed with distinct cold keys to demonstrate
//!    the typed `overload` backpressure path (skipped with `--socket`);
//! 4. **load** — for each `--clients` count, a warm (or `--cold`) mixed
//!    key schedule with a configurable hot-key bias; throughput, latency
//!    percentiles and per-tier hit counters are recorded.
//!
//! Throughput scaling across client counts is always *recorded*; it is
//! only *asserted* (≥ `--min-scaling`) when the flag is given, because a
//! single-core machine serializes the compute phase and cannot
//! demonstrate parallel speedup.
//!
//! ```text
//! loadgen [--smoke] [--socket PATH] [--clients LIST] [--requests N]
//!         [--keys N] [--bias F] [--cold] [--storm-clients N]
//!         [--min-scaling X] [--out DIR]
//! ```

use bench::loadreport::LoadgenRecord;
use flow::{CharConfig, Characterizer, FlowError};
use liberty::write_library;
use serve::{
    run_load, run_storm, CharRequest, LoadConfig, LoadReport, ServeConfig, Server, StormReport,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;
use stdcells::CellSet;

const USAGE: &str = "usage: loadgen [--smoke] [--socket PATH] [--clients LIST] [--requests N]
               [--keys N] [--bias F] [--cold] [--storm-clients N]
               [--min-scaling X] [--out DIR]

options:
  --smoke            small pinned mix for CI
  --socket PATH      target an already-running server instead of spawning one
  --clients LIST     comma-separated client counts, e.g. 1,2,4,8
  --requests N       requests per client per load phase
  --keys N           unique λ-keys in the load key space
  --bias F           hot-key probability in [0,1] (default 0.3)
  --cold             skip pre-warming: measure cold-cache serving
  --storm-clients N  clients in the identical-key storm phase
  --min-scaling X    assert throughput(max clients) >= X * throughput(1)
  --out DIR          output directory for the BENCH record (default: repo root)
  -h, --help         show this help
";

struct Options {
    smoke: bool,
    socket: Option<PathBuf>,
    clients: Vec<usize>,
    requests: usize,
    keys: usize,
    bias: f64,
    cold: bool,
    storm_clients: usize,
    min_scaling: Option<f64>,
    out_dir: PathBuf,
}

fn parse_args() -> Result<Options, FlowError> {
    let mut opts = Options {
        smoke: false,
        socket: None,
        clients: vec![1, 2, 4, 8],
        requests: 32,
        keys: 8,
        bias: 0.3,
        cold: false,
        storm_clients: 8,
        min_scaling: None,
        out_dir: repo_root(),
    };
    let mut clients_set = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().ok_or_else(|| FlowError::Usage(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--cold" => opts.cold = true,
            "--socket" => opts.socket = Some(PathBuf::from(value("--socket")?)),
            "--out" => opts.out_dir = PathBuf::from(value("--out")?),
            "--clients" => {
                opts.clients = value("--clients")?
                    .split(',')
                    .map(|v| v.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|_| FlowError::Usage("--clients wants e.g. 1,2,4,8".into()))?;
                clients_set = true;
                if opts.clients.is_empty() || opts.clients.contains(&0) {
                    return Err(FlowError::Usage("--clients must be positive".into()));
                }
            }
            "--requests" => {
                opts.requests = value("--requests")?
                    .parse()
                    .map_err(|_| FlowError::Usage("--requests needs an integer".into()))?;
            }
            "--keys" => {
                opts.keys = value("--keys")?
                    .parse()
                    .map_err(|_| FlowError::Usage("--keys needs an integer".into()))?;
            }
            "--storm-clients" => {
                opts.storm_clients = value("--storm-clients")?
                    .parse()
                    .map_err(|_| FlowError::Usage("--storm-clients needs an integer".into()))?;
            }
            "--bias" => {
                opts.bias = value("--bias")?
                    .parse()
                    .map_err(|_| FlowError::Usage("--bias needs a number in [0,1]".into()))?;
            }
            "--min-scaling" => {
                opts.min_scaling = Some(
                    value("--min-scaling")?
                        .parse()
                        .map_err(|_| FlowError::Usage("--min-scaling needs a number".into()))?,
                );
            }
            "-h" | "--help" => return Err(FlowError::Usage(String::new())),
            other => return Err(FlowError::Usage(format!("unknown argument: {other}"))),
        }
    }
    if opts.smoke && !clients_set {
        opts.clients = vec![1, 4];
        opts.requests = 8;
        opts.keys = 3;
        opts.storm_clients = 6;
    }
    if !(0.0..=1.0).contains(&opts.bias) {
        return Err(FlowError::Usage(format!("--bias must be in [0,1], got {}", opts.bias)));
    }
    Ok(opts)
}

fn repo_root() -> PathBuf {
    let mut path = Path::new(env!("CARGO_MANIFEST_DIR")).to_path_buf();
    path.pop();
    path.pop();
    path
}

fn temp_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("reliaware_{tag}_{}.sock", std::process::id()))
}

/// Reproduces the server's characterization in-process — the reference
/// for the bit-identity check.
fn direct_library_text(req: &CharRequest) -> Result<String, FlowError> {
    let scenario = bti::AgingScenario::new(
        bti::DutyCycle::saturating(req.lambda_pmos),
        bti::DutyCycle::saturating(req.lambda_nmos),
        req.years,
    )
    .with_environment(req.temperature_k, req.vdd);
    let config = CharConfig {
        vdd: req.vdd,
        slews: req.slews.clone(),
        loads: req.loads.clone(),
        max_dv: req.max_dv,
        parallelism: 1,
        ..CharConfig::fast()
    };
    let names: Vec<&str> = req.cells.iter().map(String::as_str).collect();
    let chars = Characterizer::for_named_cells(&CellSet::nangate45_like(), &names, config)
        .map_err(FlowError::Char)?;
    Ok(write_library(&chars.library(&scenario).map_err(FlowError::Char)?))
}

/// Storms a 1-slot, ~1 ms-timeout server with distinct cold keys; the
/// overload responses prove the typed shed path. Returns
/// `(overloads, served)`.
fn shed_phase() -> Result<(u64, u64), FlowError> {
    let socket = temp_socket("loadgen_shed");
    let mut config = ServeConfig::new(&socket);
    config.max_inflight = 1;
    config.queue_timeout = Duration::from_millis(1);
    let handle = Server::bind(config, CellSet::nangate45_like())?.spawn();
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(3));
    let mut threads = Vec::new();
    for k in 0..3u32 {
        let socket = socket.clone();
        let barrier = std::sync::Arc::clone(&barrier);
        threads.push(std::thread::spawn(move || -> Result<bool, FlowError> {
            let mut client = serve::Client::connect_with_retry(&socket, Duration::from_secs(5))?;
            barrier.wait();
            // Distinct years → distinct content keys → no coalescing.
            let req = CharRequest::new(&["INV_X1"], 1.0, 1.0, 1.0 + f64::from(k));
            match client.characterize(req)? {
                serve::Response::Overload { .. } => Ok(true),
                serve::Response::Ok { .. } => Ok(false),
                other => Err(FlowError::Usage(format!("unexpected shed response: {other:?}"))),
            }
        }));
    }
    let mut overloads = 0u64;
    let mut served = 0u64;
    for t in threads {
        if t.join().map_err(|_| FlowError::Usage("shed client panicked".to_owned()))?? {
            overloads += 1;
        } else {
            served += 1;
        }
    }
    handle.shutdown();
    let _ = std::fs::remove_file(&socket);
    Ok((overloads, served))
}

fn run() -> Result<(), FlowError> {
    let opts = parse_args()?;
    let max_clients = opts.clients.iter().copied().max().unwrap_or(1);

    // Spawn an in-process server unless targeting an external one.
    let spawned = match &opts.socket {
        Some(_) => None,
        None => {
            let socket = temp_socket("loadgen");
            let mut config = ServeConfig::new(&socket);
            // Generous slot budget: this run measures memo/coalescing
            // behavior, not shedding (the shed phase covers that).
            config.max_inflight = (max_clients + opts.storm_clients).max(8);
            Some(Server::bind(config, CellSet::nangate45_like())?.spawn())
        }
    };
    let socket = match (&opts.socket, &spawned) {
        (Some(path), _) => path.clone(),
        (None, Some(handle)) => handle.socket().to_path_buf(),
        (None, None) => unreachable!("no socket and no spawned server"),
    };

    println!(
        "loadgen: socket={}, clients={:?}, requests={}, keys={}, bias={}, {}",
        socket.display(),
        opts.clients,
        opts.requests,
        opts.keys,
        opts.bias,
        if opts.cold { "cold" } else { "warm" }
    );

    // 1. Identical-key storm: must collapse to exactly one computation.
    // λp ≠ λn keeps the storm key off the load phase's λ-diagonal.
    let storm_req = CharRequest::new(&["INV_X1", "NAND2_X1"], 0.75, 0.25, 10.0);
    let storm = run_storm(&socket, opts.storm_clients, &storm_req)?;
    let fresh_key = spawned.is_some();
    report_storm(&storm, fresh_key)?;

    // 2. Bit-identity: served text == direct Characterizer output.
    let direct = direct_library_text(&storm_req)?;
    if storm.library != direct {
        return Err(FlowError::Usage(format!(
            "served library differs from direct characterization ({} vs {} bytes)",
            storm.library.len(),
            direct.len()
        )));
    }
    println!("  bit_identity                 ok ({} bytes)", direct.len());

    // 3. Backpressure: typed overload responses from a saturated server.
    let shed = if opts.socket.is_none() {
        let (overloads, served) = shed_phase()?;
        if overloads == 0 {
            return Err(FlowError::Usage(
                "shed phase produced no overload response from a 1-slot server".into(),
            ));
        }
        println!("  shed                         {overloads} overloads, {served} served");
        Some((overloads, served))
    } else {
        None
    };

    // 4. Mixed load at each client count.
    let mut loads: Vec<LoadReport> = Vec::new();
    for &clients in &opts.clients {
        let config = LoadConfig {
            clients,
            requests_per_client: opts.requests,
            unique_keys: opts.keys,
            hot_key_bias: opts.bias,
            warm: !opts.cold,
            ..LoadConfig::smoke(clients)
        };
        let report = run_load(&socket, &config)?;
        let d = &report.stats_delta;
        println!(
            "  load c={clients:<3}                   {:>8.1} rps  p50 {:>6} µs  p95 {:>6} µs  p99 {:>6} µs  (memo {} / coalesced {} / computed {}; tier0 {} hit / {} fallback / {} refit)",
            report.throughput_rps,
            report.p50_us,
            report.p95_us,
            report.p99_us,
            report.memo_hits,
            report.coalesced,
            report.computed,
            d.cache.tier0_hits,
            d.cache.tier0_fallbacks,
            d.tier0_refits
        );
        if report.errors > 0 {
            return Err(FlowError::Usage(format!(
                "load phase at {clients} clients saw {} error responses",
                report.errors
            )));
        }
        loads.push(report);
    }

    // Scaling: always recorded, asserted only on request.
    let scaling = scaling_ratio(&loads);
    if let Some(ratio) = scaling {
        println!(
            "  throughput_scaling           {ratio:.2}x ({} -> {} clients)",
            loads.first().map_or(0, |r| r.clients),
            loads.last().map_or(0, |r| r.clients)
        );
        if let Some(min) = opts.min_scaling {
            if ratio < min {
                return Err(FlowError::Usage(format!(
                    "throughput scaling {ratio:.2}x below required {min:.2}x"
                )));
            }
        }
    }

    // Write the schema-versioned record.
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let stamp = bench::utc_stamp(unix_time);
    let json = LoadgenRecord {
        mode: if opts.smoke { "smoke" } else { "full" },
        clients: &opts.clients,
        requests_per_client: opts.requests,
        unique_keys: opts.keys,
        hot_key_bias: opts.bias,
        warm: !opts.cold,
        unix_time,
        stamp: &stamp,
        storm: &storm,
        shed,
        loads: &loads,
        scaling,
    }
    .to_json();
    std::fs::create_dir_all(&opts.out_dir)
        .map_err(|e| FlowError::io(opts.out_dir.display(), &e))?;
    let path = opts.out_dir.join(format!("BENCH_{stamp}_loadgen.json"));
    std::fs::write(&path, json).map_err(|e| FlowError::io(path.display(), &e))?;
    println!("\nwrote {}", path.display());

    if let Some(handle) = spawned {
        handle.shutdown();
        let _ = std::fs::remove_file(&socket);
    }
    Ok(())
}

fn report_storm(storm: &StormReport, fresh_key: bool) -> Result<(), FlowError> {
    println!(
        "  storm c={:<3}                  computed {} / absorbed {} (server computed {})",
        storm.clients, storm.computed, storm.absorbed, storm.server_computed
    );
    if !storm.all_identical {
        return Err(FlowError::Usage("storm clients received differing libraries".into()));
    }
    if storm.ok != storm.clients as u64 {
        return Err(FlowError::Usage(format!(
            "storm served {} of {} clients",
            storm.ok, storm.clients
        )));
    }
    // Against a server we just spawned the key is provably cold, so the
    // coalescer must have collapsed the storm to exactly one computation.
    // An external server may have the key warm already (0 computations).
    let limit = u64::from(fresh_key);
    if storm.server_computed > 1 || (fresh_key && storm.server_computed != limit) {
        return Err(FlowError::Usage(format!(
            "identical-key storm computed {} times, expected {limit}",
            storm.server_computed
        )));
    }
    Ok(())
}

fn scaling_ratio(loads: &[LoadReport]) -> Option<f64> {
    let first = loads.first()?;
    let last = loads.last()?;
    if loads.len() < 2 || first.throughput_rps <= 0.0 {
        return None;
    }
    Some(last.throughput_rps / first.throughput_rps)
}

fn main() -> ExitCode {
    bench::cli::run(USAGE, run)
}
