//! Sec. 4.2 — dynamic (workload-driven) aging stress: play a workload on a
//! benchmark, extract per-gate duty cycles, annotate the netlist with
//! λ-indexed cells and time it against the merged complete
//! degradation-aware library.
//!
//! Environment: `RELIAWARE_STEPS` sets the λ-grid interval count (default 2
//! → a 3×3 grid / 9 characterized libraries; the paper's 10 → 121 libraries
//! takes ~30 min on one core, all cached).

use bench::{cache_dir, characterizer_in, ps, row, LIFETIME_YEARS};
use bti::AgingScenario;
use flow::{FlowError, RunContext};
use liberty::{merge_indexed, parse_library, write_library, LambdaTag, Library};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sta::Constraints;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "usage: dynamic_stress [--report <path>]

Workload-driven λ-annotated timing vs the static worst case (Sec. 4.2).
RELIAWARE_STEPS sets the λ-grid interval count (default 2).

options:
  --report <path>  write a reliaware-run-v1 JSON run report
  -h, --help       show this help
";

/// Builds (or loads) the complete merged library on a `steps`-interval grid.
fn complete_library(steps: u32, ctx: &Arc<RunContext>) -> Result<Library, FlowError> {
    let dir = cache_dir();
    std::fs::create_dir_all(&dir).map_err(|e| FlowError::io(dir.display(), &e))?;
    let path = dir.join(format!("lib_complete_{steps}steps_10y.lib"));
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(lib) = parse_library(&text) {
            let expected = 68 * ((steps + 1) * (steps + 1)) as usize;
            if lib.len() == expected {
                return Ok(lib);
            }
        }
    }
    // Build from per-scenario cached libraries so partial progress persists.
    let chars = characterizer_in(ctx)?;
    let mut parts = Vec::new();
    for scenario in AgingScenario::grid(steps, LIFETIME_YEARS) {
        let lib = chars.library_cached(&dir, &scenario)?;
        parts.push((
            LambdaTag {
                lambda_pmos: scenario.lambda_pmos.value(),
                lambda_nmos: scenario.lambda_nmos.value(),
            },
            lib,
        ));
        eprintln!("characterized λ grid point {scenario}");
    }
    let merged = merge_indexed("complete", &parts);
    std::fs::write(&path, write_library(&merged)).map_err(|e| FlowError::io(path.display(), &e))?;
    Ok(merged)
}

fn run() -> Result<(), FlowError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (rest, report) = bench::cli::take_common_flags(&argv)?;
    if let Some(extra) = rest.first() {
        return Err(FlowError::Usage(format!("unexpected argument `{extra}`")));
    }
    let ctx = Arc::new(RunContext::new());
    let steps: u32 =
        std::env::var("RELIAWARE_STEPS").ok().and_then(|s| s.parse().ok()).unwrap_or(2);
    let fresh = ctx.stage("characterize", bench::fresh_library)?;
    let complete = ctx.stage("characterize", || complete_library(steps, &ctx))?;
    println!(
        "complete degradation-aware library: {} λ-indexed cells ({} scenarios × 68)\n",
        complete.len(),
        (steps + 1) * (steps + 1)
    );

    let design = circuits::dsp_fir();
    let nl = ctx.stage("synthesis", || bench::synthesized(&design, &fresh, "fresh"))?;

    // Two workloads with very different signal statistics.
    let mut rng = StdRng::seed_from_u64(99);
    let uniform: Vec<Vec<bool>> =
        (0..400).map(|_| (0..design.input_width()).map(|_| rng.gen_bool(0.5)).collect()).collect();
    let idle: Vec<Vec<bool>> =
        (0..400).map(|_| (0..design.input_width()).map(|_| rng.gen_bool(0.05)).collect()).collect();

    println!(
        "Sec 4.2 — dynamic aging stress on {} ({} instances, 10y lifetime)\n",
        design.name,
        nl.instance_count()
    );
    row(&[
        "workload / extraction".into(),
        "fresh CP [ps]".into(),
        "dynamic aged CP [ps]".into(),
        "dynamic GB [ps]".into(),
        "static worst GB [ps]".into(),
    ]);
    row(&["---".into(), "---".into(), "---".into(), "---".into(), "---".into()]);
    for (name, vectors) in [("uniform p=0.5", &uniform), ("idle p=0.05", &idle)] {
        for (mode_name, mode) in [
            ("gate-average (paper fn.2)", flow::DutyExtraction::GateAverage),
            ("worst-pin (conservative)", flow::DutyExtraction::WorstPin),
        ] {
            let report = ctx.stage("sta", || {
                flow::dynamic_stress_analysis_with(
                    &nl,
                    &fresh,
                    &complete,
                    steps,
                    Some("clk"),
                    vectors,
                    &Constraints::default(),
                    mode,
                )
            })?;
            ctx.add_tasks("sta", 1);
            row(&[
                format!("{name}, {mode_name}"),
                ps(report.fresh_delay),
                ps(report.aged_delay),
                ps(report.dynamic_guardband()),
                ps(report.static_guardband()),
            ]);
        }
    }
    println!("\nThe workload-specific guardband is bounded by the static worst case,");
    println!("exactly as Sec. 4.2 argues; suppressing aging for *any* workload");
    println!("requires the λ=1 static analysis.");
    bench::cli::emit_report(&ctx, report.as_deref())
}

fn main() -> ExitCode {
    bench::cli::run(USAGE, run)
}
