//! Sec. 3 — how deep in the *fresh* path ranking does the *aged* critical
//! path hide? Related work tracks the "top x % of critical paths" hoping the
//! future critical path is among them; the paper argues no practical x is
//! guaranteed. This binary measures the required rank per benchmark and the
//! number of paths within the top-5 % delay window, and attributes each aged
//! critical path's degradation to its single worst-aging arc (per-arc
//! fresh→aged delta and its share of the whole-path slowdown), plus the
//! path's lifetime attribution: the smallest static MTTF lower bound among
//! the instances on the aged critical path and its dominant mechanism.

use bench::{benchmark_netlists, fresh_library, pct, ps, row, worst_library};
use flow::{FlowError, RunContext};
use sta::{analyze, evaluate_path_steps_with, k_worst_paths, Constraints, PathSpec};
use std::process::ExitCode;

const USAGE: &str = "usage: top_paths [--report <path>]

Rank of the aged critical path within the fresh path ordering (Sec. 3).

options:
  --report <path>  write a reliaware-run-v1 JSON run report
  -h, --help       show this help
";

/// Per-arc aging attribution along a path: the arc whose fresh→aged delay
/// delta is largest, its delta, and that delta's share of the whole-path
/// degradation. Uses graph-consistent slews so each per-arc delay is the
/// exact term the analysis summed into the endpoint arrival.
fn worst_aging_arc(
    nl: &netlist::Netlist,
    fresh: &liberty::Library,
    aged: &liberty::Library,
    c: &Constraints,
    fresh_report: &sta::TimingReport,
    aged_report: &sta::TimingReport,
    path: &PathSpec,
) -> Result<(String, f64, f64), FlowError> {
    let fresh_steps = evaluate_path_steps_with(nl, fresh, c, fresh_report, path)?;
    let aged_steps = evaluate_path_steps_with(nl, aged, c, aged_report, path)?;
    let total: f64 = aged_steps.iter().sum::<f64>() - fresh_steps.iter().sum::<f64>();
    let (idx, delta) = fresh_steps
        .iter()
        .zip(&aged_steps)
        .map(|(f, a)| a - f)
        .enumerate()
        .max_by(|x, y| x.1.total_cmp(&y.1))
        .unwrap_or((0, 0.0));
    let arc = path.steps.get(idx).map_or_else(String::new, |s| {
        format!("{}.{}->{}", nl.instance(s.inst).name, s.input, s.output)
    });
    let share = if total > 0.0 { delta / total } else { 0.0 };
    Ok((arc, delta, share))
}

/// Lifetime attribution of a path: the smallest per-instance MTTF lower
/// bound along its steps and that instance's dominant aging mechanism.
fn path_lifetime(lifetimes: &dataflow::LifetimeReport, path: &PathSpec) -> (f64, &'static str) {
    path.steps
        .iter()
        .map(|s| &lifetimes.instances[s.inst.index()])
        .map(|inst| (inst.mttf_lo_years, inst.dominant))
        .min_by(|a, b| a.0.total_cmp(&b.0))
        .unwrap_or((f64::INFINITY, "-"))
}

/// A structural signature of a path (instance/pin/polarity sequence).
fn signature(nl: &netlist::Netlist, p: &PathSpec) -> String {
    p.steps
        .iter()
        .map(|s| {
            format!(
                "{}.{}>{}{}",
                nl.instance(s.inst).name,
                s.input,
                s.output,
                if s.output_rising { '+' } else { '-' }
            )
        })
        .collect::<Vec<_>>()
        .join("/")
}

fn run() -> Result<(), FlowError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (rest, report) = bench::cli::take_common_flags(&argv)?;
    if let Some(extra) = rest.first() {
        return Err(FlowError::Usage(format!("unexpected argument `{extra}`")));
    }
    let ctx = RunContext::new();
    let fresh = ctx.stage("characterize", fresh_library)?;
    let aged = ctx.stage("characterize", worst_library)?;
    let designs = ctx.stage("synthesis", || benchmark_netlists(&fresh, "fresh"))?;
    let c = Constraints::default();
    let k = 2000;

    println!("Sec 3 — rank of the aged critical path within the fresh path ordering\n");
    row(&[
        "design".into(),
        "fresh CP [ps]".into(),
        "aged CP [ps]".into(),
        "paths in top 5%".into(),
        format!("aged-CP rank (k={k})"),
        "worst aging arc".into(),
        "arc Δ [ps]".into(),
        "arc share".into(),
        "path MTTF lo [y]".into(),
        "mechanism".into(),
    ]);
    row(&["---"; 10].map(String::from));
    for (design, nl) in &designs {
        let fresh_report = ctx.stage("sta", || analyze(nl, &fresh, &c))?;
        let aged_report = ctx.stage("sta", || analyze(nl, &aged, &c))?;
        let aged_cp = aged_report.critical_path();
        let aged_sig = signature(nl, aged_cp);
        let (arc, delta, share) =
            worst_aging_arc(nl, &fresh, &aged, &c, &fresh_report, &aged_report, aged_cp)?;
        let lifetimes = ctx.stage("lifetime-bound", || {
            dataflow::static_lifetime_bound(
                nl,
                &fresh,
                &dataflow::LifetimeConfig::default(),
                &dataflow::DataflowConfig::default(),
            )
        });
        let (path_mttf, mechanism) = path_lifetime(&lifetimes, aged_cp);
        let fresh_paths = ctx.stage("sta", || k_worst_paths(nl, &fresh, &c, k))?;
        ctx.add_tasks("sta", 3);
        // Compare raw path delays against the raw worst path (endpoint
        // setup offsets cancel out of the ranking).
        let cp_raw = fresh_paths.first().map_or(0.0, |p| p.arrival);
        let cp = fresh_report.critical_delay();
        let in_top5 = fresh_paths.iter().filter(|p| p.arrival >= 0.95 * cp_raw).count();
        let top5_note = if in_top5 >= k { format!(">{k}") } else { in_top5.to_string() };
        let rank = fresh_paths
            .iter()
            .position(|p| signature(nl, p) == aged_sig)
            .map_or_else(|| format!(">{k}"), |r| (r + 1).to_string());
        row(&[
            design.name.clone(),
            ps(cp),
            ps(aged_report.critical_delay()),
            top5_note,
            rank,
            arc,
            ps(delta),
            pct(share),
            format!("{path_mttf:.0}"),
            mechanism.to_owned(),
        ]);
    }
    println!("\nWhere the rank exceeds k, no top-k tracking of fresh paths would have");
    println!("included the path that actually becomes critical — the paper's argument");
    println!("for re-analyzing the whole circuit with the degradation-aware library.");
    bench::cli::emit_report(&ctx, report.as_deref())
}

fn main() -> ExitCode {
    bench::cli::run(USAGE, run)
}
