//! Sec. 3 — how deep in the *fresh* path ranking does the *aged* critical
//! path hide? Related work tracks the "top x % of critical paths" hoping the
//! future critical path is among them; the paper argues no practical x is
//! guaranteed. This binary measures the required rank per benchmark and the
//! number of paths within the top-5 % delay window.

use bench::{benchmark_netlists, fresh_library, ps, row, worst_library};
use sta::{analyze, k_worst_paths, Constraints, PathSpec};

/// A structural signature of a path (instance/pin/polarity sequence).
fn signature(nl: &netlist::Netlist, p: &PathSpec) -> String {
    p.steps
        .iter()
        .map(|s| {
            format!(
                "{}.{}>{}{}",
                nl.instance(s.inst).name,
                s.input,
                s.output,
                if s.output_rising { '+' } else { '-' }
            )
        })
        .collect::<Vec<_>>()
        .join("/")
}

fn main() {
    let fresh = fresh_library();
    let aged = worst_library();
    let designs = benchmark_netlists(&fresh, "fresh");
    let c = Constraints::default();
    let k = 2000;

    println!("Sec 3 — rank of the aged critical path within the fresh path ordering\n");
    row(&[
        "design".into(),
        "fresh CP [ps]".into(),
        "aged CP [ps]".into(),
        "paths in top 5%".into(),
        format!("aged-CP rank (k={k})"),
    ]);
    row(&["---".into(), "---".into(), "---".into(), "---".into(), "---".into()]);
    for (design, nl) in &designs {
        let fresh_report = analyze(nl, &fresh, &c).expect("sta");
        let aged_report = analyze(nl, &aged, &c).expect("sta");
        let aged_sig = signature(nl, aged_report.critical_path());
        let fresh_paths = k_worst_paths(nl, &fresh, &c, k).expect("paths");
        // Compare raw path delays against the raw worst path (endpoint
        // setup offsets cancel out of the ranking).
        let cp_raw = fresh_paths.first().map_or(0.0, |p| p.arrival);
        let cp = fresh_report.critical_delay();
        let in_top5 = fresh_paths.iter().filter(|p| p.arrival >= 0.95 * cp_raw).count();
        let top5_note = if in_top5 >= k { format!(">{k}") } else { in_top5.to_string() };
        let rank = fresh_paths
            .iter()
            .position(|p| signature(nl, p) == aged_sig)
            .map_or_else(|| format!(">{k}"), |r| (r + 1).to_string());
        row(&[design.name.clone(), ps(cp), ps(aged_report.critical_delay()), top5_note, rank]);
    }
    println!("\nWhere the rank exceeds k, no top-k tracking of fresh paths would have");
    println!("included the path that actually becomes critical — the paper's argument");
    println!("for re-analyzing the whole circuit with the degradation-aware library.");
}
