//! Sec. 3 — how deep in the *fresh* path ranking does the *aged* critical
//! path hide? Related work tracks the "top x % of critical paths" hoping the
//! future critical path is among them; the paper argues no practical x is
//! guaranteed. This binary measures the required rank per benchmark and the
//! number of paths within the top-5 % delay window.

use bench::{benchmark_netlists, fresh_library, ps, row, worst_library};
use flow::{FlowError, RunContext};
use sta::{analyze, k_worst_paths, Constraints, PathSpec};
use std::process::ExitCode;

const USAGE: &str = "usage: top_paths [--report <path>]

Rank of the aged critical path within the fresh path ordering (Sec. 3).

options:
  --report <path>  write a reliaware-run-v1 JSON run report
  -h, --help       show this help
";

/// A structural signature of a path (instance/pin/polarity sequence).
fn signature(nl: &netlist::Netlist, p: &PathSpec) -> String {
    p.steps
        .iter()
        .map(|s| {
            format!(
                "{}.{}>{}{}",
                nl.instance(s.inst).name,
                s.input,
                s.output,
                if s.output_rising { '+' } else { '-' }
            )
        })
        .collect::<Vec<_>>()
        .join("/")
}

fn run() -> Result<(), FlowError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (rest, report) = bench::cli::take_common_flags(&argv)?;
    if let Some(extra) = rest.first() {
        return Err(FlowError::Usage(format!("unexpected argument `{extra}`")));
    }
    let ctx = RunContext::new();
    let fresh = ctx.stage("characterize", fresh_library)?;
    let aged = ctx.stage("characterize", worst_library)?;
    let designs = ctx.stage("synthesis", || benchmark_netlists(&fresh, "fresh"))?;
    let c = Constraints::default();
    let k = 2000;

    println!("Sec 3 — rank of the aged critical path within the fresh path ordering\n");
    row(&[
        "design".into(),
        "fresh CP [ps]".into(),
        "aged CP [ps]".into(),
        "paths in top 5%".into(),
        format!("aged-CP rank (k={k})"),
    ]);
    row(&["---".into(), "---".into(), "---".into(), "---".into(), "---".into()]);
    for (design, nl) in &designs {
        let fresh_report = ctx.stage("sta", || analyze(nl, &fresh, &c))?;
        let aged_report = ctx.stage("sta", || analyze(nl, &aged, &c))?;
        let aged_sig = signature(nl, aged_report.critical_path());
        let fresh_paths = ctx.stage("sta", || k_worst_paths(nl, &fresh, &c, k))?;
        ctx.add_tasks("sta", 3);
        // Compare raw path delays against the raw worst path (endpoint
        // setup offsets cancel out of the ranking).
        let cp_raw = fresh_paths.first().map_or(0.0, |p| p.arrival);
        let cp = fresh_report.critical_delay();
        let in_top5 = fresh_paths.iter().filter(|p| p.arrival >= 0.95 * cp_raw).count();
        let top5_note = if in_top5 >= k { format!(">{k}") } else { in_top5.to_string() };
        let rank = fresh_paths
            .iter()
            .position(|p| signature(nl, p) == aged_sig)
            .map_or_else(|| format!(">{k}"), |r| (r + 1).to_string());
        row(&[design.name.clone(), ps(cp), ps(aged_report.critical_delay()), top5_note, rank]);
    }
    println!("\nWhere the rank exceeds k, no top-k tracking of fresh paths would have");
    println!("included the path that actually becomes critical — the paper's argument");
    println!("for re-analyzing the whole circuit with the degradation-aware library.");
    bench::cli::emit_report(&ctx, report.as_deref())
}

fn main() -> ExitCode {
    bench::cli::run(USAGE, run)
}
