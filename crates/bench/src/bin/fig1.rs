//! Fig. 1 — impact of worst-case aging on NAND and NOR gate delays across
//! the 7×7 slew × load operating-condition grid.
//!
//! Reproduces the surfaces of Fig. 1(a) (NAND: delay increase grows with
//! input slew, shrinks with load) and Fig. 1(b) (NOR: the fall arc
//! *improves* at large slews / small loads).

use bench::{fresh_library, worst_library};
use flow::{CharError, FlowError, RunContext};
use std::process::ExitCode;

const USAGE: &str = "usage: fig1 [--report <path>]

Worst-case aging impact surfaces for NAND2/NOR2 (paper Fig. 1).

options:
  --report <path>  write a reliaware-run-v1 JSON run report
  -h, --help       show this help
";

fn run() -> Result<(), FlowError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (rest, report) = bench::cli::take_common_flags(&argv)?;
    if let Some(extra) = rest.first() {
        return Err(FlowError::Usage(format!("unexpected argument `{extra}`")));
    }
    let ctx = RunContext::new();
    let fresh = ctx.stage("characterize", fresh_library)?;
    let aged = ctx.stage("characterize", worst_library)?;

    for (cell, pin, arc_edge, title) in [
        (
            "NAND2_X1",
            "A",
            true,
            "Fig 1(a): NAND2_X1 A→Y rise-delay change [%] (worst-case aging, 10y)",
        ),
        (
            "NOR2_X1",
            "A",
            false,
            "Fig 1(b): NOR2_X1 A→Y fall-delay change [%] (worst-case aging, 10y)",
        ),
    ] {
        println!("\n{title}");
        let missing = |pin: &str| {
            FlowError::from(CharError::MissingPin { cell: cell.to_owned(), pin: pin.to_owned() })
        };
        let unknown = || FlowError::from(CharError::UnknownCell { cell: cell.to_owned() });
        let f = fresh
            .cell(cell)
            .ok_or_else(unknown)?
            .output("Y")
            .ok_or_else(|| missing("Y"))?
            .arc_from(pin)
            .ok_or_else(|| missing(pin))?;
        let a = aged
            .cell(cell)
            .ok_or_else(unknown)?
            .output("Y")
            .ok_or_else(|| missing("Y"))?
            .arc_from(pin)
            .ok_or_else(|| missing(pin))?;
        let (ft, at) =
            if arc_edge { (&f.cell_rise, &a.cell_rise) } else { (&f.cell_fall, &a.cell_fall) };
        print!("{:>10}", "slew\\load");
        for load in ft.load_axis() {
            print!("{:>9.1}fF", load * 1e15);
        }
        println!();
        for (si, slew) in ft.slew_axis().iter().enumerate() {
            print!("{:>8.0}ps", slew * 1e12);
            for li in 0..ft.load_axis().len() {
                let delta = at.at(si, li) / ft.at(si, li) - 1.0;
                print!("{:>+10.1}%", delta * 100.0);
            }
            println!();
        }
        ctx.add_tasks("report", 1);
    }
    println!("\nShape check (paper): NAND impact grows with slew, shrinks with load;");
    println!("NOR fall arc improves (negative %) at large slew + small load.");
    bench::cli::emit_report(&ctx, report.as_deref())
}

fn main() -> ExitCode {
    bench::cli::run(USAGE, run)
}
