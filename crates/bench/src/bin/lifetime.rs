//! Sec. 5 lifetime quantification: the paper defines lifetime as the years
//! until the DCT→IDCT image quality drops below 30 dB, and claims > 10×
//! extension from aging-aware synthesis. This binary ladders the years of
//! worst-case stress and reports the failure year of each design.
//!
//! Environment: `RELIAWARE_IMG` sets the image edge (default 24 for speed).

use bench::{fresh_library, library_for, ImageChain};
use bti::AgingScenario;
use imgproc::ACCEPTABLE_PSNR_DB;

fn main() {
    let size: usize =
        std::env::var("RELIAWARE_IMG").ok().and_then(|s| s.parse().ok()).unwrap_or(24);
    let fresh = fresh_library();
    let aged10 = library_for(&AgingScenario::worst_case(10.0));
    let unaware = ImageChain::build(&fresh, &aged10, false);
    let aware = ImageChain::build(&fresh, &aged10, true);
    let period = unaware.fresh_period(&fresh) * 1.001;
    let image = imgproc::synthetic::test_image(size, size, 7);

    let years = [0.25, 0.5, 1.0, 2.0, 3.0, 5.0, 7.0, 10.0];
    println!(
        "Lifetime under worst-case stress (clock {:.0} ps, {size}x{size} image, threshold {ACCEPTABLE_PSNR_DB} dB)\n",
        period * 1e12
    );
    println!("| years | unaware PSNR [dB] | aware PSNR [dB] |");
    println!("| --- | --- | --- |");
    let mut fail_unaware: Option<f64> = None;
    let mut fail_aware: Option<f64> = None;
    for &y in &years {
        let lib = library_for(&AgingScenario::worst_case(y));
        let ru = unaware.run(&image, &lib, period);
        let ra = aware.run(&image, &lib, period);
        println!("| {y} | {:.1} | {:.1} |", ru.psnr_db, ra.psnr_db);
        if ru.psnr_db < ACCEPTABLE_PSNR_DB && fail_unaware.is_none() {
            fail_unaware = Some(y);
        }
        if ra.psnr_db < ACCEPTABLE_PSNR_DB && fail_aware.is_none() {
            fail_aware = Some(y);
        }
    }
    let fu = fail_unaware.map_or(">10".to_owned(), |y| y.to_string());
    let fa = fail_aware.map_or(">10".to_owned(), |y| y.to_string());
    println!("\nfailure year: unaware {fu}, aware {fa}");
    match (fail_unaware, fail_aware) {
        (Some(u), Some(a)) => println!("lifetime extension: {:.1}x", a / u),
        (Some(u), None) => println!("lifetime extension: >{:.1}x", 10.0 / u),
        _ => println!("unaware design did not fail within 10 years at this image/clock"),
    }
    println!("(paper: unaware fails within 1 year; aware exceeds 10 years → >10x)");
}
