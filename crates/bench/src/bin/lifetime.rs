//! Sec. 5 lifetime quantification: the paper defines lifetime as the years
//! until the DCT→IDCT image quality drops below 30 dB, and claims > 10×
//! extension from aging-aware synthesis. This binary ladders the years of
//! worst-case stress and reports the failure year of each design.
//!
//! Environment: `RELIAWARE_IMG` sets the image edge (default 24 for speed).

use bench::{fresh_library, library_for, ImageChain};
use bti::AgingScenario;
use flow::{FlowError, RunContext};
use imgproc::ACCEPTABLE_PSNR_DB;
use std::process::ExitCode;

const USAGE: &str = "usage: lifetime [--report <path>] [--mttf-json <path>]

Failure-year ladder of the DCT→IDCT chain under worst-case stress (Sec. 5).
RELIAWARE_IMG overrides the test image edge length (default 24).

options:
  --report <path>     write a reliaware-run-v1 JSON run report
  --mttf-json <path>  skip the PSNR ladder; instead run the static lifetime
                      analyzer over all bundled benchmarks and write the
                      per-mechanism MTTF bounds and reliability curves as
                      JSON (reliaware-mttf-v1)
  -h, --help          show this help
";

/// Ages (years) the reliability curves are sampled at.
const CURVE_YEARS: [f64; 9] = [0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0];

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".to_owned()
    }
}

/// The fast fixture-based mode behind `--mttf-json`: static lifetime bounds
/// per mechanism over all bundled benchmarks, no characterization ladder.
fn run_mttf(path: &str, ctx: &RunContext) -> Result<(), FlowError> {
    let library = synth::test_fixtures::fixture_library();
    let config = dataflow::LifetimeConfig::default();
    let mut blocks = Vec::new();
    println!("Static per-mechanism MTTF lower bounds ({:.0}-year horizon)\n", config.years);
    println!(
        "| design | instances | MTTF lo [y] | budget exhausted [y] | worst instance | dominant |"
    );
    println!("| --- | --- | --- | --- | --- | --- |");
    for design in circuits::all_benchmarks() {
        let nl = ctx.stage("synthesis", || {
            synth::synthesize(&design.aig, &library, &synth::MapOptions::default())
        })?;
        let report = ctx.stage("lifetime-bound", || {
            dataflow::static_lifetime_bound(
                &nl,
                &library,
                &config,
                &dataflow::DataflowConfig::default(),
            )
        });
        ctx.add_tasks("lifetime-bound", report.instances.len() as u64);
        let dominant = report
            .hazard_shares
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite share"))
            .map_or("-", |(name, _)| name);
        println!(
            "| {} | {} | {:.1} | {} | {} | {dominant} |",
            design.name,
            report.instances.len(),
            report.design_mttf_lo_years,
            if report.years_until_budget.is_finite() {
                format!("{:.1}", report.years_until_budget)
            } else {
                ">1e7".to_owned()
            },
            report.worst_instance.as_deref().unwrap_or("-"),
        );
        let shares = report
            .hazard_shares
            .iter()
            .map(|(name, share)| format!("\"{name}\": {}", json_num(*share)))
            .collect::<Vec<_>>()
            .join(", ");
        let per_mech = report
            .mechanism_design_mttf()
            .iter()
            .map(|(name, mttf)| format!("\"{name}\": {}", json_num(*mttf)))
            .collect::<Vec<_>>()
            .join(", ");
        let curve = CURVE_YEARS
            .iter()
            .map(|&t| format!("[{}, {}]", json_num(t), json_num(report.design_reliability_lo(t))))
            .collect::<Vec<_>>()
            .join(", ");
        blocks.push(format!(
            "    {{\n      \"name\": \"{}\",\n      \"instances\": {},\n      \
             \"design_mttf_lo_years\": {},\n      \"design_mttf_best_years\": {},\n      \
             \"years_until_budget\": {},\n      \"worst_instance\": \"{}\",\n      \
             \"hazard_shares\": {{{shares}}},\n      \
             \"mechanism_mttf_lo_years\": {{{per_mech}}},\n      \
             \"reliability_lo\": [{curve}]\n    }}",
            design.name,
            report.instances.len(),
            json_num(report.design_mttf_lo_years),
            json_num(report.design_mttf_best_years),
            json_num(report.years_until_budget),
            report.worst_instance.as_deref().unwrap_or("-"),
        ));
    }
    let json = format!(
        "{{\n  \"schema\": \"reliaware-mttf-v1\",\n  \"horizon_years\": {},\n  \
         \"designs\": [\n{}\n  ]\n}}\n",
        json_num(config.years),
        blocks.join(",\n")
    );
    std::fs::write(path, json).map_err(|e| FlowError::io(path, &e))?;
    println!("\nwrote {path}");
    Ok(())
}

fn run() -> Result<(), FlowError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (mut rest, report) = bench::cli::take_common_flags(&argv)?;
    let mut mttf_json = None;
    if let Some(pos) = rest.iter().position(|a| a == "--mttf-json") {
        if pos + 1 >= rest.len() {
            return Err(FlowError::Usage("--mttf-json needs a value".into()));
        }
        mttf_json = Some(rest.remove(pos + 1));
        rest.remove(pos);
    }
    if let Some(extra) = rest.first() {
        return Err(FlowError::Usage(format!("unexpected argument `{extra}`")));
    }
    if let Some(path) = mttf_json {
        let ctx = RunContext::new();
        run_mttf(&path, &ctx)?;
        return bench::cli::emit_report(&ctx, report.as_deref());
    }
    let ctx = RunContext::new();
    let size: usize =
        std::env::var("RELIAWARE_IMG").ok().and_then(|s| s.parse().ok()).unwrap_or(24);
    let fresh = ctx.stage("characterize", fresh_library)?;
    let aged10 = ctx.stage("characterize", || library_for(&AgingScenario::worst_case(10.0)))?;
    let unaware = ctx.stage("synthesis", || ImageChain::build(&fresh, &aged10, false))?;
    let aware = ctx.stage("synthesis", || ImageChain::build(&fresh, &aged10, true))?;
    let period = ctx.stage("sta", || unaware.fresh_period(&fresh))? * 1.001;
    let image = imgproc::synthetic::test_image(size, size, 7);

    let years = [0.25, 0.5, 1.0, 2.0, 3.0, 5.0, 7.0, 10.0];
    println!(
        "Lifetime under worst-case stress (clock {:.0} ps, {size}x{size} image, threshold {ACCEPTABLE_PSNR_DB} dB)\n",
        period * 1e12
    );
    println!("| years | unaware PSNR [dB] | aware PSNR [dB] |");
    println!("| --- | --- | --- |");
    let mut fail_unaware: Option<f64> = None;
    let mut fail_aware: Option<f64> = None;
    for &y in &years {
        let lib = ctx.stage("characterize", || library_for(&AgingScenario::worst_case(y)))?;
        let ru = ctx.stage("system-eval", || unaware.run(&image, &lib, period))?;
        let ra = ctx.stage("system-eval", || aware.run(&image, &lib, period))?;
        ctx.add_tasks("system-eval", 2);
        println!("| {y} | {:.1} | {:.1} |", ru.psnr_db, ra.psnr_db);
        if ru.psnr_db < ACCEPTABLE_PSNR_DB && fail_unaware.is_none() {
            fail_unaware = Some(y);
        }
        if ra.psnr_db < ACCEPTABLE_PSNR_DB && fail_aware.is_none() {
            fail_aware = Some(y);
        }
    }
    let fu = fail_unaware.map_or(">10".to_owned(), |y| y.to_string());
    let fa = fail_aware.map_or(">10".to_owned(), |y| y.to_string());
    println!("\nfailure year: unaware {fu}, aware {fa}");
    match (fail_unaware, fail_aware) {
        (Some(u), Some(a)) => println!("lifetime extension: {:.1}x", a / u),
        (Some(u), None) => println!("lifetime extension: >{:.1}x", 10.0 / u),
        _ => println!("unaware design did not fail within 10 years at this image/clock"),
    }
    println!("(paper: unaware fails within 1 year; aware exceeds 10 years → >10x)");
    bench::cli::emit_report(&ctx, report.as_deref())
}

fn main() -> ExitCode {
    bench::cli::run(USAGE, run)
}
