//! Sec. 5 lifetime quantification: the paper defines lifetime as the years
//! until the DCT→IDCT image quality drops below 30 dB, and claims > 10×
//! extension from aging-aware synthesis. This binary ladders the years of
//! worst-case stress and reports the failure year of each design.
//!
//! Environment: `RELIAWARE_IMG` sets the image edge (default 24 for speed).

use bench::{fresh_library, library_for, ImageChain};
use bti::AgingScenario;
use flow::{FlowError, RunContext};
use imgproc::ACCEPTABLE_PSNR_DB;
use std::process::ExitCode;

const USAGE: &str = "usage: lifetime [--report <path>]

Failure-year ladder of the DCT→IDCT chain under worst-case stress (Sec. 5).
RELIAWARE_IMG overrides the test image edge length (default 24).

options:
  --report <path>  write a reliaware-run-v1 JSON run report
  -h, --help       show this help
";

fn run() -> Result<(), FlowError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (rest, report) = bench::cli::take_common_flags(&argv)?;
    if let Some(extra) = rest.first() {
        return Err(FlowError::Usage(format!("unexpected argument `{extra}`")));
    }
    let ctx = RunContext::new();
    let size: usize =
        std::env::var("RELIAWARE_IMG").ok().and_then(|s| s.parse().ok()).unwrap_or(24);
    let fresh = ctx.stage("characterize", fresh_library)?;
    let aged10 = ctx.stage("characterize", || library_for(&AgingScenario::worst_case(10.0)))?;
    let unaware = ctx.stage("synthesis", || ImageChain::build(&fresh, &aged10, false))?;
    let aware = ctx.stage("synthesis", || ImageChain::build(&fresh, &aged10, true))?;
    let period = ctx.stage("sta", || unaware.fresh_period(&fresh))? * 1.001;
    let image = imgproc::synthetic::test_image(size, size, 7);

    let years = [0.25, 0.5, 1.0, 2.0, 3.0, 5.0, 7.0, 10.0];
    println!(
        "Lifetime under worst-case stress (clock {:.0} ps, {size}x{size} image, threshold {ACCEPTABLE_PSNR_DB} dB)\n",
        period * 1e12
    );
    println!("| years | unaware PSNR [dB] | aware PSNR [dB] |");
    println!("| --- | --- | --- |");
    let mut fail_unaware: Option<f64> = None;
    let mut fail_aware: Option<f64> = None;
    for &y in &years {
        let lib = ctx.stage("characterize", || library_for(&AgingScenario::worst_case(y)))?;
        let ru = ctx.stage("system-eval", || unaware.run(&image, &lib, period))?;
        let ra = ctx.stage("system-eval", || aware.run(&image, &lib, period))?;
        ctx.add_tasks("system-eval", 2);
        println!("| {y} | {:.1} | {:.1} |", ru.psnr_db, ra.psnr_db);
        if ru.psnr_db < ACCEPTABLE_PSNR_DB && fail_unaware.is_none() {
            fail_unaware = Some(y);
        }
        if ra.psnr_db < ACCEPTABLE_PSNR_DB && fail_aware.is_none() {
            fail_aware = Some(y);
        }
    }
    let fu = fail_unaware.map_or(">10".to_owned(), |y| y.to_string());
    let fa = fail_aware.map_or(">10".to_owned(), |y| y.to_string());
    println!("\nfailure year: unaware {fu}, aware {fa}");
    match (fail_unaware, fail_aware) {
        (Some(u), Some(a)) => println!("lifetime extension: {:.1}x", a / u),
        (Some(u), None) => println!("lifetime extension: >{:.1}x", 10.0 / u),
        _ => println!("unaware design did not fail within 10 years at this image/clock"),
    }
    println!("(paper: unaware fails within 1 year; aware exceeds 10 years → >10x)");
    bench::cli::emit_report(&ctx, report.as_deref())
}

fn main() -> ExitCode {
    bench::cli::run(USAGE, run)
}
