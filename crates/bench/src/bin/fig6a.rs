//! Fig. 6(a,b) — containing guardbands via aging-aware synthesis: the same
//! designs synthesized with the initial library (baseline, requiring a
//! guardband) versus with the degradation-aware library (aware, with a
//! contained guardband), plus the area overhead of awareness.

use bench::{aware_netlist, benchmark_netlists, fresh_library, pct, ps, row, worst_library};
use sta::{analyze, Constraints};

fn main() {
    let fresh = fresh_library();
    let aged = worst_library();
    let baselines = benchmark_netlists(&fresh, "fresh");
    let c = Constraints::default();

    println!("Fig 6(a) — guardband [ps]: traditional vs aging-aware synthesis (worst case, 10y)\n");
    row(&[
        "design".into(),
        "required GB (baseline)".into(),
        "contained GB (aware)".into(),
        "reduction".into(),
        "freq gain".into(),
    ]);
    row(&["---".into(), "---".into(), "---".into(), "---".into(), "---".into()]);
    let mut reductions = Vec::new();
    let mut area_rows = Vec::new();
    for (design, baseline) in &baselines {
        let aware = aware_netlist(design, &fresh, &aged);
        let baseline_fresh = analyze(baseline, &fresh, &c).expect("sta").critical_delay();
        let baseline_aged = analyze(baseline, &aged, &c).expect("sta").critical_delay();
        let aware_aged = analyze(&aware, &aged, &c).expect("sta").critical_delay();
        let required = baseline_aged - baseline_fresh;
        let contained = aware_aged - baseline_fresh;
        let reduction = 1.0 - contained / required;
        reductions.push(reduction);
        row(&[
            design.name.clone(),
            ps(required),
            ps(contained),
            pct(reduction),
            pct(baseline_aged / aware_aged - 1.0),
        ]);
        let ba = baseline.area(&fresh).expect("area");
        let aa = aware.area(&aged).expect("area");
        area_rows.push((design.name.clone(), ba, aa));
    }
    let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
    println!("\naverage guardband reduction: {}", pct(avg));
    println!("(paper reports 50% on average, up to 75%, with ~4% higher frequency)");

    println!("\nFig 6(b) — area [µm²]\n");
    row(&["design".into(), "baseline".into(), "aging-aware".into(), "overhead".into()]);
    row(&["---".into(), "---".into(), "---".into(), "---".into()]);
    let mut overheads = Vec::new();
    for (name, ba, aa) in &area_rows {
        let o = aa / ba - 1.0;
        overheads.push(o);
        row(&[name.clone(), format!("{ba:.1}"), format!("{aa:.1}"), pct(o)]);
    }
    let avg_area = overheads.iter().sum::<f64>() / overheads.len() as f64;
    println!("\naverage area overhead: {} (paper reports ~0.2%)", pct(avg_area));
}
