//! Fig. 6(a,b) — containing guardbands via aging-aware synthesis: the same
//! designs synthesized with the initial library (baseline, requiring a
//! guardband) versus with the degradation-aware library (aware, with a
//! contained guardband), plus the area overhead of awareness.

use bench::{aware_netlist, benchmark_netlists, fresh_library, pct, ps, row, worst_library};
use flow::{FlowError, RunContext};
use sta::{analyze, Constraints};
use std::process::ExitCode;

const USAGE: &str = "usage: fig6a [--report <path>]

Guardband containment via aging-aware synthesis (paper Fig. 6a/6b).

options:
  --report <path>  write a reliaware-run-v1 JSON run report
  -h, --help       show this help
";

fn run() -> Result<(), FlowError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (rest, report) = bench::cli::take_common_flags(&argv)?;
    if let Some(extra) = rest.first() {
        return Err(FlowError::Usage(format!("unexpected argument `{extra}`")));
    }
    let ctx = RunContext::new();
    let fresh = ctx.stage("characterize", fresh_library)?;
    let aged = ctx.stage("characterize", worst_library)?;
    let baselines = ctx.stage("synthesis", || benchmark_netlists(&fresh, "fresh"))?;
    let c = Constraints::default();

    println!("Fig 6(a) — guardband [ps]: traditional vs aging-aware synthesis (worst case, 10y)\n");
    row(&[
        "design".into(),
        "required GB (baseline)".into(),
        "contained GB (aware)".into(),
        "reduction".into(),
        "freq gain".into(),
    ]);
    row(&["---".into(), "---".into(), "---".into(), "---".into(), "---".into()]);
    let mut reductions = Vec::new();
    let mut area_rows = Vec::new();
    for (design, baseline) in &baselines {
        let aware = ctx.stage("synthesis", || aware_netlist(design, &fresh, &aged))?;
        let baseline_fresh = ctx.stage("sta", || analyze(baseline, &fresh, &c))?.critical_delay();
        let baseline_aged = ctx.stage("sta", || analyze(baseline, &aged, &c))?.critical_delay();
        let aware_aged = ctx.stage("sta", || analyze(&aware, &aged, &c))?.critical_delay();
        ctx.add_tasks("sta", 3);
        let required = baseline_aged - baseline_fresh;
        let contained = aware_aged - baseline_fresh;
        let reduction = 1.0 - contained / required;
        reductions.push(reduction);
        row(&[
            design.name.clone(),
            ps(required),
            ps(contained),
            pct(reduction),
            pct(baseline_aged / aware_aged - 1.0),
        ]);
        let ba = baseline.area(&fresh)?;
        let aa = aware.area(&aged)?;
        area_rows.push((design.name.clone(), ba, aa));
    }
    let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
    println!("\naverage guardband reduction: {}", pct(avg));
    println!("(paper reports 50% on average, up to 75%, with ~4% higher frequency)");

    println!("\nFig 6(b) — area [µm²]\n");
    row(&["design".into(), "baseline".into(), "aging-aware".into(), "overhead".into()]);
    row(&["---".into(), "---".into(), "---".into(), "---".into()]);
    let mut overheads = Vec::new();
    for (name, ba, aa) in &area_rows {
        let o = aa / ba - 1.0;
        overheads.push(o);
        row(&[name.clone(), format!("{ba:.1}"), format!("{aa:.1}"), pct(o)]);
    }
    let avg_area = overheads.iter().sum::<f64>() / overheads.len() as f64;
    println!("\naverage area overhead: {} (paper reports ~0.2%)", pct(avg_area));
    bench::cli::emit_report(&ctx, report.as_deref())
}

fn main() -> ExitCode {
    bench::cli::run(USAGE, run)
}
