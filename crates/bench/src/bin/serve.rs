//! The characterization-service daemon.
//!
//! Binds a unix socket and serves `reliaware-serve-v1` requests (see
//! `crates/serve`) until killed. Clients get degradation-aware libraries
//! out of a sharded memo with in-flight request coalescing, backed by the
//! shared two-tier arc cache; excess load is shed with typed `overload`
//! responses instead of unbounded queueing.
//!
//! With `--surrogate-budget` the arc cache gets a learned tier 0 in
//! front: predictions within the conformal error budget are served
//! without simulation, everything else falls back and feeds online
//! training (see `crates/surrogate`).
//!
//! ```text
//! serve --socket PATH [--threads N] [--inflight N] [--shards N]
//!       [--cache-dir DIR] [--timeout-ms N]
//!       [--surrogate-budget F] [--surrogate-model PATH]
//!       [--surrogate-refit-every N]
//! ```

use flow::FlowError;
use serve::{ServeConfig, Server};
use std::process::ExitCode;
use std::time::Duration;
use stdcells::CellSet;

const USAGE: &str = "usage: serve --socket PATH [--threads N] [--inflight N] [--shards N]
             [--cache-dir DIR] [--timeout-ms N]
             [--surrogate-budget F] [--surrogate-model PATH]
             [--surrogate-refit-every N]

options:
  --socket PATH             unix socket to listen on (required)
  --threads N               worker threads per characterize request (default: 1)
  --inflight N              max concurrently running characterize requests (default: 4)
  --shards N                shard-count hint for the memo and arc cache (default: 16)
  --cache-dir DIR           persist the arc cache to DIR (default: memory only)
  --timeout-ms N            queue wait before shedding with overload (default: 5000)
  --surrogate-budget F      enable the tier-0 surrogate with this relative-error
                            budget (e.g. 0.05); off by default
  --surrogate-model PATH    load a trained model from PATH and persist refits there
  --surrogate-refit-every N retrain after N observed samples (default: 64; 0 = off)
  -h, --help                show this help
";

fn run() -> Result<(), FlowError> {
    let mut socket = None;
    let mut config = ServeConfig::new("");
    let mut args = std::env::args().skip(1);
    let int = |args: &mut dyn Iterator<Item = String>, flag: &str| -> Result<usize, FlowError> {
        args.next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| FlowError::Usage(format!("{flag} needs a positive integer")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => {
                socket = Some(
                    args.next().ok_or_else(|| FlowError::Usage("--socket needs a path".into()))?,
                );
            }
            "--threads" => config.workers = int(&mut args, "--threads")?.max(1),
            "--inflight" => config.max_inflight = int(&mut args, "--inflight")?.max(1),
            "--shards" => config.shards = int(&mut args, "--shards")?.max(1),
            "--timeout-ms" => {
                config.queue_timeout =
                    Duration::from_millis(int(&mut args, "--timeout-ms")? as u64);
            }
            "--cache-dir" => {
                config.cache_dir = Some(
                    args.next()
                        .map(std::path::PathBuf::from)
                        .ok_or_else(|| FlowError::Usage("--cache-dir needs a directory".into()))?,
                );
            }
            "--surrogate-budget" => {
                let budget: f64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| FlowError::Usage("--surrogate-budget needs a number".into()))?;
                if !(budget.is_finite() && budget >= 0.0) {
                    return Err(FlowError::Usage(format!(
                        "--surrogate-budget must be finite and non-negative, got {budget}"
                    )));
                }
                config.surrogate_budget = Some(budget);
            }
            "--surrogate-model" => {
                config.surrogate_model =
                    Some(args.next().map(std::path::PathBuf::from).ok_or_else(|| {
                        FlowError::Usage("--surrogate-model needs a path".into())
                    })?);
            }
            "--surrogate-refit-every" => {
                config.surrogate_refit_every = int(&mut args, "--surrogate-refit-every")?;
            }
            "-h" | "--help" => return Err(FlowError::Usage(String::new())),
            other => return Err(FlowError::Usage(format!("unknown argument: {other}"))),
        }
    }
    config.socket = socket.ok_or_else(|| FlowError::Usage("--socket is required".into()))?.into();

    let server = Server::bind(config, CellSet::nangate45_like())?;
    eprintln!("serve: listening on {}", server.socket().display());
    server.run();
    Ok(())
}

fn main() -> ExitCode {
    bench::cli::run(USAGE, run)
}
