//! `mcvar` — Monte-Carlo process-variation MTTF distributions.
//!
//! Synthesizes the bundled benchmarks against the fixture library, runs the
//! static λ-interval lifetime analysis once per design, then samples N dies
//! with per-instance fresh-Vth offsets and composes each die's series-system
//! design MTTF ([`flow::Characterizer::mc_lifetime`]). Reports the
//! empirical distribution (min / p5 / median / mean / p95 / max), the
//! variation-aware static lower bound every sample must respect, and the p5
//! retention of the nominal bound.
//!
//! ```text
//! mcvar [--design NAME]... [--samples N] [--seed S] [--sigma-vth V]
//!       [--clamp C] [--workers W] [--json PATH] [--smoke] [--report PATH]
//! ```
//!
//! Exit status: 0 on success, 1 when any sampled die falls below the
//! variation-aware static bound (a soundness violation), 2 on usage errors.

use flow::{Characterizer, FlowError, RunContext};
use ptm::VariationModel;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
usage: mcvar [options]

Monte-Carlo MTTF distributions under process variation (reliaware-mcvar-v1).

options:
  --design NAME    benchmark to analyze (repeatable; default: all bundled
                   benchmarks): dct, idct, fft, dsp, risc, risc6, vliw
  --samples N      number of sampled dies per design (default 256)
  --seed S         base seed of the sampling streams (default 1)
  --sigma-vth V    1-sigma per-instance fresh-Vth offset in volts
                   (default 0.015, the ptm 45 nm within-die spread)
  --clamp C        clamp offsets at +/- C standard deviations (default 4)
  --workers W      worker threads for the per-die fan-out (default 4)
  --json PATH      write the reliaware-mcvar-v1 JSON record to PATH
  --smoke          quick CI mode: 16 samples unless --samples is given
  --report PATH    write a reliaware-run-v1 JSON run report
  -h, --help       show this help

exit status:
  0  success
  1  a sampled die fell below the variation-aware static bound
  2  usage or I/O problem";

struct Args {
    designs: Vec<String>,
    samples: Option<usize>,
    seed: u64,
    sigma_vth: f64,
    clamp: f64,
    workers: usize,
    json: Option<String>,
    smoke: bool,
}

fn parse_args(rest: Vec<String>) -> Result<Args, FlowError> {
    let mut args = Args {
        designs: Vec::new(),
        samples: None,
        seed: 1,
        sigma_vth: 0.015,
        clamp: 4.0,
        workers: 4,
        json: None,
        smoke: false,
    };
    let mut it = rest.into_iter();
    while let Some(flag) = it.next() {
        let mut value =
            |flag: &str| it.next().ok_or_else(|| FlowError::Usage(format!("{flag} needs a value")));
        let parse = |flag: &str, v: &str| -> Result<f64, FlowError> {
            v.parse().map_err(|_| FlowError::Usage(format!("bad {flag} value {v}")))
        };
        match flag.as_str() {
            "--design" => args.designs.push(value("--design")?),
            "--samples" => {
                let v = value("--samples")?;
                args.samples =
                    Some(v.parse().map_err(|_| FlowError::Usage(format!("bad sample count {v}")))?);
            }
            "--seed" => {
                let v = value("--seed")?;
                args.seed = v.parse().map_err(|_| FlowError::Usage(format!("bad seed {v}")))?;
            }
            "--sigma-vth" => args.sigma_vth = parse("--sigma-vth", &value("--sigma-vth")?)?,
            "--clamp" => args.clamp = parse("--clamp", &value("--clamp")?)?,
            "--workers" => {
                let v = value("--workers")?;
                args.workers =
                    v.parse().map_err(|_| FlowError::Usage(format!("bad workers {v}")))?;
            }
            "--json" => args.json = Some(value("--json")?),
            "--smoke" => args.smoke = true,
            other => return Err(FlowError::Usage(format!("unknown flag {other}"))),
        }
    }
    Ok(args)
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".to_owned()
    }
}

fn fmt_years(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        ">1e7".to_owned()
    }
}

fn run() -> Result<ExitCode, FlowError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (rest, report_path) = bench::cli::take_common_flags(&argv)?;
    let args = parse_args(rest)?;
    let samples = args.samples.unwrap_or(if args.smoke { 16 } else { 256 });

    let designs: Vec<circuits::Design> = if args.designs.is_empty() {
        circuits::all_benchmarks()
    } else {
        args.designs
            .iter()
            .map(|name| {
                bench::design_by_name(name)
                    .ok_or_else(|| FlowError::Usage(format!("unknown design {name}")))
            })
            .collect::<Result<_, _>>()?
    };

    let ctx = Arc::new(RunContext::new().with_workers(args.workers.max(1)));
    let variation =
        VariationModel { sigma_vth: args.sigma_vth, sigma_kp_frac: 0.0, clamp_sigmas: args.clamp };
    if let Some(problem) = variation.validation_errors().into_iter().next() {
        return Err(FlowError::Usage(problem));
    }
    let chars = Characterizer::in_context(
        stdcells::CellSet::nangate45_like(),
        flow::CharConfig::paper(),
        &ctx,
    )?
    .with_variation(variation, args.seed);

    let library = synth::test_fixtures::fixture_library();
    let lifetime = dataflow::LifetimeConfig::default();
    let df = dataflow::DataflowConfig::default();

    println!(
        "Monte-Carlo design-MTTF distributions ({samples} dies, sigma {} V, clamp {}σ, seed {})\n",
        args.sigma_vth, args.clamp, args.seed
    );
    println!(
        "| design | instances | nominal [y] | var-bound [y] | min [y] | p5 [y] | median [y] \
         | p95 [y] | p5 retention | contained |"
    );
    println!("| --- | --- | --- | --- | --- | --- | --- | --- | --- | --- |");

    let mut blocks = Vec::new();
    let mut all_contained = true;
    for design in &designs {
        let nl = ctx.stage("synthesis", || {
            synth::synthesize(&design.aig, &library, &synth::MapOptions::default())
        })?;
        let outcome =
            ctx.stage("mc-lifetime", || chars.mc_lifetime(&nl, &library, &lifetime, &df, samples));
        let dist = &outcome.distribution;
        let contained = dist.contains_static_bound();
        all_contained &= contained;
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {:.3} | {} |",
            design.name,
            outcome.report.instances.len(),
            fmt_years(dist.nominal_years),
            fmt_years(dist.static_bound_years),
            fmt_years(dist.min_years()),
            fmt_years(dist.quantile_years(0.05)),
            fmt_years(dist.median_years()),
            fmt_years(dist.quantile_years(0.95)),
            dist.p5_retention(),
            if contained { "yes" } else { "NO" },
        );
        blocks.push(format!(
            "    {{\n      \"name\": \"{}\",\n      \"instances\": {},\n      \
             \"nominal_mttf_lo_years\": {},\n      \"static_bound_years\": {},\n      \
             \"min_years\": {},\n      \"p5_years\": {},\n      \"median_years\": {},\n      \
             \"mean_years\": {},\n      \"p95_years\": {},\n      \"max_years\": {},\n      \
             \"p5_retention\": {},\n      \"contains_static_bound\": {}\n    }}",
            design.name,
            outcome.report.instances.len(),
            json_num(dist.nominal_years),
            json_num(dist.static_bound_years),
            json_num(dist.min_years()),
            json_num(dist.quantile_years(0.05)),
            json_num(dist.median_years()),
            json_num(dist.mean_years()),
            json_num(dist.quantile_years(0.95)),
            json_num(dist.max_years()),
            json_num(dist.p5_retention()),
            contained,
        ));
    }

    if let Some(path) = &args.json {
        let json = format!(
            "{{\n  \"schema\": \"reliaware-mcvar-v1\",\n  \"samples\": {samples},\n  \
             \"seed\": {},\n  \"sigma_vth\": {},\n  \"clamp_sigmas\": {},\n  \
             \"designs\": [\n{}\n  ]\n}}\n",
            args.seed,
            json_num(args.sigma_vth),
            json_num(args.clamp),
            blocks.join(",\n")
        );
        std::fs::write(path, json).map_err(|e| FlowError::io(path, &e))?;
        println!("\nwrote {path}");
    }
    bench::cli::emit_report(&ctx, report_path.as_deref())?;
    if all_contained {
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("error: a sampled die fell below the variation-aware static bound");
        Ok(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    bench::cli::run_code(USAGE, run)
}
