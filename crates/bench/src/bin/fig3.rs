//! Fig. 3 — a concrete pair of paths whose criticality *switches* under
//! aging: the initially-critical path ages mildly while the initially
//!-uncritical one ages badly, inverting their order.
//!
//! The paper hand-picks such a pair from HSPICE runs; here we search a
//! small space of 3-cell paths (start strength × gate chain) and print the
//! first pair that switches, with per-stage delays before/after aging.

use bench::{fresh_library, ps, worst_library};
use flow::{EvalError, FlowError, RunContext};
use liberty::Library;
use netlist::{Netlist, NetlistError, PortDir};
use sta::{analyze, Constraints};
use std::process::ExitCode;

const USAGE: &str = "usage: fig3 [--report <path>]

Criticality-switch path pair under worst-case aging (paper Fig. 3).

options:
  --report <path>  write a reliaware-run-v1 JSON run report
  -h, --help       show this help
";

/// Builds a linear path `cells[0] → cells[1] → …` (input pin A, other pins
/// tied to the second input port) and returns the netlist.
fn path_netlist(cells: &[&str], lib: &Library) -> Result<Netlist, FlowError> {
    let mut nl = Netlist::new("path");
    let a = nl.add_port("a", PortDir::Input);
    let b = nl.add_port("b", PortDir::Input);
    let mut prev = a;
    for (k, cell_name) in cells.iter().enumerate() {
        let out = if k + 1 == cells.len() {
            nl.add_port("y", PortDir::Output)
        } else {
            nl.add_net(&format!("n{k}"))
        };
        let Some(cell) = lib.cell(cell_name) else {
            return Err(FlowError::from(NetlistError::UnknownCell {
                instance: format!("g{k}"),
                cell: (*cell_name).to_owned(),
            }));
        };
        let mut conns: Vec<(String, netlist::NetId)> = vec![("A".into(), prev)];
        for pin in cell.inputs.iter().skip(1) {
            conns.push((pin.name.clone(), b));
        }
        conns.push((cell.outputs[0].name.clone(), out));
        let refs: Vec<(&str, netlist::NetId)> =
            conns.iter().map(|(p, n)| (p.as_str(), *n)).collect();
        nl.add_instance(&format!("g{k}"), cell_name, &refs);
        prev = out;
    }
    Ok(nl)
}

fn path_delay(cells: &[&str], lib: &Library) -> Result<f64, FlowError> {
    let nl = path_netlist(cells, lib)?;
    Ok(analyze(&nl, lib, &Constraints::default())?.critical_delay())
}

fn per_stage(cells: &[&str], lib: &Library) -> Result<Vec<f64>, FlowError> {
    let nl = path_netlist(cells, lib)?;
    let report = analyze(&nl, lib, &Constraints::default())?;
    Ok(report.critical_path().steps.iter().map(|s| s.delay).collect())
}

fn run() -> Result<(), FlowError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (rest, report) = bench::cli::take_common_flags(&argv)?;
    if let Some(extra) = rest.first() {
        return Err(FlowError::Usage(format!("unexpected argument `{extra}`")));
    }
    let ctx = RunContext::new();
    let fresh = ctx.stage("characterize", fresh_library)?;
    let aged = ctx.stage("characterize", worst_library)?;

    let candidates: Vec<Vec<&str>> = vec![
        vec!["INV_X4", "NAND2_X1", "NOR2_X2", "INV_X1"],
        vec!["NOR2_X1", "INV_X1", "NAND2_X2", "INV_X1"],
        vec!["INV_X4", "NOR2_X1", "NOR2_X1", "INV_X2"],
        vec!["NAND2_X1", "NAND2_X1", "INV_X2", "NOR2_X1"],
        vec!["INV_X1", "AOI21_X1", "INV_X2", "NAND2_X1"],
        vec!["NOR2_X2", "NOR2_X1", "INV_X1", "INV_X1"],
        vec!["INV_X2", "XOR2_X1", "INV_X1", "NAND2_X1"],
        vec!["BUF_X2", "NOR3_X1", "INV_X1", "NOR2_X1"],
    ];

    let mut found = None;
    'outer: for (i, p1) in candidates.iter().enumerate() {
        for p2 in candidates.iter().skip(i + 1) {
            ctx.add_tasks("sta", 4);
            let f1 = path_delay(p1, &fresh)?;
            let f2 = path_delay(p2, &fresh)?;
            let a1 = path_delay(p1, &aged)?;
            let a2 = path_delay(p2, &aged)?;
            // Path 1 critical before aging, path 2 critical after.
            if f1 > f2 && a2 > a1 {
                found = Some((p1.clone(), p2.clone(), f1, f2, a1, a2));
                break 'outer;
            }
            if f2 > f1 && a1 > a2 {
                found = Some((p2.clone(), p1.clone(), f2, f1, a2, a1));
                break 'outer;
            }
        }
    }

    match found {
        Some((p1, p2, f1, f2, a1, a2)) => {
            println!("Fig 3 — criticality switch under worst-case aging (10y)\n");
            for (label, p, f, a) in [
                ("Path1 (initially critical)", &p1, f1, a1),
                ("Path2 (initially uncritical)", &p2, f2, a2),
            ] {
                println!("{label}: {}", p.join(" -> "));
                let sf = per_stage(p, &fresh)?;
                let sa = per_stage(p, &aged)?;
                let fresh_str: Vec<String> = sf.iter().map(|d| format!("{}ps", ps(*d))).collect();
                let aged_str: Vec<String> = sa
                    .iter()
                    .zip(&sf)
                    .map(|(a, f)| format!("{}ps ({:+.1}%)", ps(*a), (a / f - 1.0) * 100.0))
                    .collect();
                println!("  fresh stages: {}  = {} ps", fresh_str.join(" + "), ps(f));
                println!(
                    "  aged  stages: {}  = {} ps ({:+.1}%)",
                    aged_str.join(" + "),
                    ps(a),
                    (a / f - 1.0) * 100.0
                );
            }
            println!(
                "\nBefore aging:  Path1 {} ps  >  Path2 {} ps   (Path1 critical)",
                ps(f1),
                ps(f2)
            );
            println!(
                "After  aging:  Path1 {} ps  <  Path2 {} ps   (Path2 critical)",
                ps(a1),
                ps(a2)
            );
            println!("\nAs in the paper's Fig. 3: identical worst-case stress, different OPCs,");
            println!("so the initially-critical path loses criticality after aging.");
        }
        None => {
            return Err(FlowError::from(EvalError::Design {
                message: "no criticality switch among the candidate pairs — widen the search space"
                    .into(),
            }));
        }
    }
    bench::cli::emit_report(&ctx, report.as_deref())
}

fn main() -> ExitCode {
    bench::cli::run(USAGE, run)
}
