//! Performance-trajectory harness: times the flow's compute stages under a
//! pinned configuration and writes a `BENCH_<stamp>.json` record at the
//! repo root, so every PR can compare wall-clock numbers against history.
//! A `RUN_<stamp>.json` (`reliaware-run-v1`) observability report rides
//! along: the same stages recorded through [`flow::RunContext`], including
//! the arc-cache hit rates.
//!
//! Stages:
//!
//! 1. single-cell characterization (the simulator inner loop),
//! 2. one-scenario library build, sequential vs. pooled (engine speedup),
//! 3. the (λp, λn) complete-library grid, sequential vs. pooled,
//! 4. the same grid cold vs. warm through the two-tier arc cache,
//! 5. STA arrival propagation and gate-level logic simulation,
//! 6. incremental vs. full re-STA after single-instance λ re-annotation
//!    on the risc and vliw benchmarks (nodes recomputed vs. total),
//! 7. the static lifetime analysis (BTI/HCI/EM/TDDB interval bounds and
//!    the series-system MTTF lower bound) on the same two benchmarks,
//! 8. the characterization service: an in-process server is stormed with
//!    identical requests (must collapse to exactly one computation) and
//!    then driven through a warm concurrent load phase, recording
//!    throughput and latency percentiles,
//! 9. the tier-0 learned surrogate: a collect-only tier harvests training
//!    samples from a λ-grid characterization, the refit model then serves
//!    **novel off-grid** λ points without simulation, timed against the
//!    full-simulation reference — the measured error must respect the
//!    conformal budget and the smoke-mode speedup must clear 20×,
//! 10. Monte-Carlo process variation: per-die MTTF sampling fanned over the
//!     worker pool — bit-identical at worker counts 1/2/8, every sampled die
//!     at or above the variation-aware static bound, samples/sec scaling
//!     against the one-worker run.
//!
//! Every parallel stage asserts bit-identical output against its sequential
//! twin before reporting a speedup; instrumentation is observational, so
//! the instrumented run stays bit-identical to an uninstrumented one.
//! Usage:
//!
//! ```text
//! perfbench [--smoke] [--steps N] [--threads N] [--out DIR] [--report FILE]
//! ```
//!
//! `--smoke` pins a tiny grid for CI; the default configuration is sized
//! for a workstation run (a few minutes on one core).

use bti::{AgingScenario, DutyCycle};
use flow::{ArcCache, CharConfig, Characterizer, FlowError, RunContext, SurrogateTier};
use sta::{analyze, Constraints};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;
use stdcells::CellSet;
use synth::test_fixtures::fixture_library;
use synth::MapOptions;

const USAGE: &str = "usage: perfbench [--smoke] [--steps N] [--threads N] [--out DIR]
                 [--report FILE]

options:
  --smoke          tiny pinned grid for CI
  --steps N        λ-grid interval count (default: 1 smoke, 10 full)
  --threads N      worker threads for the pooled stages
  --out DIR        output directory for BENCH_/RUN_ records (default: repo root)
  --report FILE    additionally write the reliaware-run-v1 report to FILE
  -h, --help       show this help
";

struct Options {
    smoke: bool,
    steps: u32,
    threads: usize,
    out_dir: PathBuf,
    report: Option<PathBuf>,
}

fn parse_args() -> Result<Options, FlowError> {
    let mut opts = Options {
        smoke: false,
        steps: 0,
        threads: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        out_dir: repo_root(),
        report: None,
    };
    let mut steps_set = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--steps" => {
                opts.steps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| FlowError::Usage("--steps needs an integer".into()))?;
                steps_set = true;
            }
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| FlowError::Usage("--threads needs an integer".into()))?;
            }
            "--out" => {
                opts.out_dir = args
                    .next()
                    .map(PathBuf::from)
                    .ok_or_else(|| FlowError::Usage("--out needs a directory".into()))?;
            }
            "--report" => {
                opts.report = Some(
                    args.next()
                        .map(PathBuf::from)
                        .ok_or_else(|| FlowError::Usage("--report needs a file path".into()))?,
                );
            }
            "-h" | "--help" => return Err(FlowError::Usage(String::new())),
            other => return Err(FlowError::Usage(format!("unknown argument: {other}"))),
        }
    }
    if !steps_set {
        opts.steps = if opts.smoke { 1 } else { 10 };
    }
    Ok(opts)
}

fn repo_root() -> PathBuf {
    let mut path = Path::new(env!("CARGO_MANIFEST_DIR")).to_path_buf();
    path.pop(); // crates/
    path.pop(); // repo root
    path
}

/// One timed stage in the JSON record: a name, wall-clock seconds, and
/// free-form extra fields already rendered as JSON.
struct Stage {
    name: &'static str,
    seconds: f64,
    extra: String,
}

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

fn char_config(opts: &Options, parallelism: usize) -> CharConfig {
    if opts.smoke {
        CharConfig {
            slews: vec![10e-12, 300e-12],
            loads: vec![1e-15, 10e-15],
            max_dv: 8e-3,
            parallelism,
            ..CharConfig::paper()
        }
    } else {
        CharConfig { parallelism, ..CharConfig::fast() }
    }
}

fn run() -> Result<(), FlowError> {
    let opts = parse_args()?;
    let ctx = RunContext::new().with_workers(opts.threads);
    let mut stages: Vec<Stage> = Vec::new();
    let lib_cells = if opts.smoke {
        vec!["INV_X1", "NAND2_X1", "NOR2_X1", "DFF_X1"]
    } else {
        vec!["INV_X1", "NAND2_X1", "NOR2_X1", "XOR2_X1", "AOI21_X1", "DFF_X1"]
    };
    let grid_cells = if opts.smoke { vec!["INV_X1"] } else { vec!["INV_X1", "NAND2_X1"] };
    let scenario = AgingScenario::worst_case(10.0);

    println!("perfbench: mode={}, steps={}, threads={}", mode(&opts), opts.steps, opts.threads);

    // 1. Single-cell characterization.
    let single =
        Characterizer::new(CellSet::nangate45_like().subset(&["INV_X1"]), char_config(&opts, 1))?;
    let (r, secs) = time(|| single.library(&scenario));
    r?;
    report(&ctx, &mut stages, "characterize_1cell", secs, 1, String::new());

    // 2. One-scenario library: sequential vs. pooled task queue.
    let subset = CellSet::nangate45_like().subset(&lib_cells);
    let seq = Characterizer::new(subset.clone(), char_config(&opts, 1))?;
    let (lib_seq, seq_secs) = time(|| seq.library(&scenario));
    let lib_seq = lib_seq?;
    let cells = lib_cells.len() as u64;
    report(&ctx, &mut stages, "library_seq", seq_secs, cells, format!(r#""cells": {cells}"#));
    let par = Characterizer::new(subset, char_config(&opts, opts.threads))?;
    let (lib_par, par_secs) = time(|| par.library(&scenario));
    let lib_par = lib_par?;
    assert_eq!(lib_seq, lib_par, "pooled library must be bit-identical to sequential");
    report(
        &ctx,
        &mut stages,
        "library_par",
        par_secs,
        cells,
        format!(
            r#""cells": {cells}, "threads": {}, "speedup_vs_seq": {:.3}, "bit_identical": true"#,
            opts.threads,
            seq_secs / par_secs.max(1e-12)
        ),
    );

    // 3. Complete λ-grid: sequential vs. pooled (scenario × cell) queue.
    let grid_set = CellSet::nangate45_like().subset(&grid_cells);
    let grid_seq = Characterizer::new(grid_set.clone(), char_config(&opts, 1))?;
    let (complete_seq, grid_seq_secs) = time(|| grid_seq.complete_library(opts.steps, 10.0));
    let complete_seq = complete_seq?;
    let scenarios = (opts.steps + 1) * (opts.steps + 1);
    let grid_tasks = u64::from(scenarios) * grid_cells.len() as u64;
    report(
        &ctx,
        &mut stages,
        "complete_grid_seq",
        grid_seq_secs,
        grid_tasks,
        format!(r#""scenarios": {scenarios}, "cells": {}"#, grid_cells.len()),
    );
    let grid_par = Characterizer::new(grid_set.clone(), char_config(&opts, opts.threads))?;
    let (complete_par, grid_par_secs) = time(|| grid_par.complete_library(opts.steps, 10.0));
    let complete_par = complete_par?;
    assert_eq!(
        complete_seq, complete_par,
        "pooled complete library must be bit-identical to sequential"
    );
    report(
        &ctx,
        &mut stages,
        "complete_grid_par",
        grid_par_secs,
        grid_tasks,
        format!(
            r#""scenarios": {scenarios}, "cells": {}, "threads": {}, "speedup_vs_seq": {:.3}, "bit_identical": true"#,
            grid_cells.len(),
            opts.threads,
            grid_seq_secs / grid_par_secs.max(1e-12)
        ),
    );

    // 4. The same grid through the two-tier arc cache: cold, then warm from
    // a fresh process's perspective (new cache instance, same directory).
    let cache_dir =
        std::env::temp_dir().join(format!("reliaware_perfbench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cold_cache = Arc::new(ArcCache::with_dir(&cache_dir));
    let cold = Characterizer::new(grid_set.clone(), char_config(&opts, opts.threads))?
        .with_cache(Arc::clone(&cold_cache));
    let (complete_cold, cold_secs) = time(|| cold.complete_library(opts.steps, 10.0));
    let complete_cold = complete_cold?;
    assert_eq!(complete_cold, complete_seq, "cold-cache grid must match uncached");
    report(
        &ctx,
        &mut stages,
        "complete_grid_cold_cache",
        cold_secs,
        grid_tasks,
        format!(r#""scenarios": {scenarios}, {}"#, cache_json(&cold_cache)),
    );
    let warm_cache = Arc::new(ArcCache::with_dir(&cache_dir));
    let warm = Characterizer::new(grid_set, char_config(&opts, opts.threads))?
        .with_cache(Arc::clone(&warm_cache));
    let (complete_warm, warm_secs) = time(|| warm.complete_library(opts.steps, 10.0));
    let complete_warm = complete_warm?;
    assert_eq!(complete_warm, complete_seq, "warm-cache grid must be bit-identical");
    // The warm cache carries the run's headline hit rates — surface it in
    // the run report alongside the per-stage timings.
    ctx.attach_cache(Arc::clone(&warm_cache));
    ctx.event("complete_grid_warm_cache", cache_json(&warm_cache));
    report(
        &ctx,
        &mut stages,
        "complete_grid_warm_cache",
        warm_secs,
        grid_tasks,
        format!(
            r#""scenarios": {scenarios}, "speedup_vs_cold": {:.3}, "bit_identical": true, {}"#,
            cold_secs / warm_secs.max(1e-12),
            cache_json(&warm_cache)
        ),
    );
    let _ = std::fs::remove_dir_all(&cache_dir);

    // 5. STA and gate-level simulation on a synthesized benchmark.
    let fixture = fixture_library();
    let design = circuits::dct8();
    let netlist = synth::synthesize(&design.aig, &fixture, &MapOptions::default())?;
    let sta_iters: u32 = if opts.smoke { 5 } else { 20 };
    let (r, sta_secs) = time(|| -> Result<(), FlowError> {
        for _ in 0..sta_iters {
            let _ = analyze(&netlist, &fixture, &Constraints::default())?;
        }
        Ok(())
    });
    r?;
    report(
        &ctx,
        &mut stages,
        "sta_arrival_dct8",
        sta_secs / f64::from(sta_iters),
        u64::from(sta_iters),
        format!(r#""iterations": {sta_iters}, "instances": {}"#, netlist.instance_count()),
    );
    let vectors: Vec<Vec<bool>> = (0..16)
        .map(|k| (0..design.input_width()).map(|b| (k * 7 + b) % 3 == 0).collect())
        .collect();
    let sim_iters: u32 = if opts.smoke { 3 } else { 10 };
    let (r, sim_secs) = time(|| -> Result<(), FlowError> {
        for _ in 0..sim_iters {
            let _ = logicsim::run_cycles(&netlist, &fixture, None, &vectors)
                .map_err(|e| flow::EvalError::Simulation { message: e.to_string() })?;
        }
        Ok(())
    });
    r?;
    report(
        &ctx,
        &mut stages,
        "logicsim_dct8_16cy",
        sim_secs / f64::from(sim_iters),
        u64::from(sim_iters),
        format!(r#""iterations": {sim_iters}"#),
    );

    // 6. Incremental vs. full re-STA: single-instance λ re-annotations on
    // the two largest benchmarks. The engine must stay bit-identical to a
    // fresh analysis while re-timing an order of magnitude fewer instances.
    for (stage_name, design) in
        [("incremental_sta_risc", circuits::risc_5p()), ("incremental_sta_vliw", circuits::vliw())]
    {
        let nl = synth::synthesize(&design.aig, &fixture, &MapOptions::default())?;
        let grid_steps = 2u32;
        let complete = bench::lambda_scaled_complete(&fixture, grid_steps);
        let tag0 = liberty::LambdaTag { lambda_pmos: 0.0, lambda_nmos: 0.0 };
        let annotated = netlist::annotate::annotated_with_static(&nl, tag0);
        let constraints = Constraints::default();
        let instances = annotated.instance_count();

        // A deterministic re-annotation schedule over the λ grid.
        let iters: usize = if opts.smoke { 8 } else { 20 };
        let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ stage_name.len() as u64;
        let mut lcg = move || {
            state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            (state >> 33) as usize
        };
        let schedule: Vec<(netlist::InstId, liberty::LambdaTag)> = (0..iters)
            .map(|_| {
                let inst = netlist::InstId::from_index(lcg() % instances);
                let tag = liberty::LambdaTag {
                    lambda_pmos: (lcg() % (grid_steps as usize + 1)) as f64 / f64::from(grid_steps),
                    lambda_nmos: (lcg() % (grid_steps as usize + 1)) as f64 / f64::from(grid_steps),
                };
                (inst, tag)
            })
            .collect();
        let retag = |nl: &netlist::Netlist, inst: netlist::InstId, tag: &liberty::LambdaTag| {
            let (base, _) = liberty::split_lambda_tag(&nl.instance(inst).cell);
            format!("{base}_{}", tag.suffix())
        };

        // Baseline: mutate and fully re-analyze per re-annotation.
        let mut full_nl = annotated.clone();
        let (r, full_secs) = time(|| -> Result<(), FlowError> {
            for (inst, tag) in &schedule {
                full_nl.instance_mut(*inst).cell = retag(&full_nl, *inst, tag);
                let _ = analyze(&full_nl, &complete, &constraints)?;
            }
            Ok(())
        });
        r?;

        // Incremental: one persistent engine over the same schedule.
        let mut inc = sta::IncrementalSta::new(&annotated, &complete, &constraints)?;
        let mut recomputed = 0u64;
        let (r, inc_secs) = time(|| -> Result<(), FlowError> {
            for (inst, tag) in &schedule {
                let cell = retag(inc.netlist(), *inst, tag);
                inc.recell(*inst, &cell)?;
                let _ = inc.report()?;
                recomputed += inc.stats().last_recomputed as u64;
            }
            Ok(())
        });
        r?;

        let final_full = analyze(&full_nl, &complete, &constraints)?;
        let bit_identical = inc.report()? == &final_full;
        assert!(bit_identical, "{stage_name}: incremental diverged from full re-analysis");
        let nodes_full = iters as u64 * instances as u64;
        let node_ratio = nodes_full as f64 / recomputed.max(1) as f64;
        assert!(
            node_ratio >= 10.0,
            "{stage_name}: expected >=10x fewer nodes recomputed, got {node_ratio:.1}x"
        );
        ctx.record_sta_stats(stage_name, &inc.stats());
        report(
            &ctx,
            &mut stages,
            stage_name,
            inc_secs,
            iters as u64,
            format!(
                r#""instances": {instances}, "re_annotations": {iters}, "nodes_full": {nodes_full}, "nodes_recomputed": {recomputed}, "node_ratio": {node_ratio:.2}, "full_seconds": {full_secs:.6}, "speedup_vs_full": {:.3}, "bit_identical": true"#,
                full_secs / inc_secs.max(1e-12)
            ),
        );
    }

    // 7. Static lifetime analysis: the full mechanism-interval sweep plus
    // the series MTTF lower bound. Deterministic by construction — two runs
    // must agree bit for bit before the timing is reported.
    for (stage_name, design) in
        [("static_lifetime_risc", circuits::risc_5p()), ("static_lifetime_vliw", circuits::vliw())]
    {
        let nl = synth::synthesize(&design.aig, &fixture, &MapOptions::default())?;
        let lt_config = dataflow::LifetimeConfig::default();
        let df_config = dataflow::DataflowConfig::default();
        let iters: u32 = if opts.smoke { 2 } else { 5 };
        let first = dataflow::static_lifetime_bound(&nl, &fixture, &lt_config, &df_config);
        let (last, lt_secs) = time(|| {
            let mut last = first.clone();
            for _ in 0..iters {
                last = dataflow::static_lifetime_bound(&nl, &fixture, &lt_config, &df_config);
            }
            last
        });
        assert_eq!(first, last, "{stage_name}: lifetime analysis must be deterministic");
        let instances = nl.instance_count();
        report(
            &ctx,
            &mut stages,
            stage_name,
            lt_secs / f64::from(iters),
            u64::from(iters) * instances as u64,
            format!(
                r#""iterations": {iters}, "instances": {instances}, "mttf_lo_years": {:.3}, "deterministic": true"#,
                first.design_mttf_lo_years
            ),
        );
    }

    // 8. The characterization service under concurrent clients: an
    // identical-key storm (the coalescer must collapse it to exactly one
    // computation) followed by a warm mixed-key load phase.
    {
        let socket =
            std::env::temp_dir().join(format!("reliaware_perfbench_{}.sock", std::process::id()));
        let mut config = serve::ServeConfig::new(&socket);
        config.max_inflight = 16;
        let handle = serve::Server::bind(config, CellSet::nangate45_like())?.spawn();
        let storm_clients = if opts.smoke { 4 } else { 8 };
        let storm_req = serve::CharRequest::new(&["INV_X1", "NAND2_X1"], 0.75, 0.25, 10.0);
        let (storm, storm_secs) = time(|| serve::run_storm(&socket, storm_clients, &storm_req));
        let storm = storm?;
        assert!(storm.all_identical, "storm clients must receive identical libraries");
        assert_eq!(
            storm.server_computed, 1,
            "identical-key storm must compute exactly once, computed {}",
            storm.server_computed
        );
        report(
            &ctx,
            &mut stages,
            "serve_storm",
            storm_secs,
            storm_clients as u64,
            format!(
                r#""clients": {storm_clients}, "server_computed": {}, "absorbed": {}, "coalesced_all": true, "bit_identical": true"#,
                storm.server_computed, storm.absorbed
            ),
        );
        let load_clients = if opts.smoke { 4 } else { 8 };
        let load_config = serve::LoadConfig {
            requests_per_client: if opts.smoke { 8 } else { 32 },
            unique_keys: if opts.smoke { 2 } else { 4 },
            ..serve::LoadConfig::smoke(load_clients)
        };
        let (load, _) = time(|| serve::run_load(&socket, &load_config));
        let load = load?;
        assert_eq!(load.errors, 0, "service load phase must not error");
        report(
            &ctx,
            &mut stages,
            "serve_load_warm",
            load.seconds,
            load.requests,
            format!(
                r#""clients": {load_clients}, "requests": {}, "throughput_rps": {:.3}, "p50_us": {}, "p95_us": {}, "p99_us": {}, "memo_hits": {}, "computed": {}, "coalesced": {}, "overloads": {}"#,
                load.requests,
                load.throughput_rps,
                load.p50_us,
                load.p95_us,
                load.p99_us,
                load.memo_hits,
                load.computed,
                load.coalesced,
                load.overloads
            ),
        );
        handle.shutdown();
        let _ = std::fs::remove_file(&socket);
    }

    // 9. Tier-0 learned surrogate: a collect-only tier (budget 0) harvests
    // training samples from a λ-grid characterization while staying
    // bit-exact, the refit model then serves *novel off-grid* λ points with
    // no simulation at all — timed against the full-simulation reference.
    // The serving run must stay inside the conformal error budget, fall
    // back on nothing, and (smoke mode) clear a 20× speedup.
    {
        // The serving budget must clear the split-conformal class bounds
        // (safety-inflated worst calibration error, ~0.08–0.11 on this
        // grid); the *actual* novel-point error lands well under it.
        let budget = 0.15;
        let sur_cells = ["INV_X1", "NAND2_X1"];
        let sur_set = CellSet::nangate45_like().subset(&sur_cells);
        let config = char_config(&opts, opts.threads);

        let collect = Arc::new(SurrogateTier::new(0.0));
        let trainer = Characterizer::new(sur_set.clone(), config.clone())?
            .with_cache(Arc::new(ArcCache::in_memory().with_tier0(Arc::clone(&collect))));
        // 4 λ steps (25 scenarios) is the floor at which the degree-2
        // polynomial fit pins off-grid points inside the budget.
        let train_steps: u32 = if opts.smoke { 4 } else { 6 };
        let (r, train_secs) = time(|| trainer.complete_library(train_steps, 10.0));
        r?;
        let train_samples = collect.refit_now() as u64;
        let model = collect
            .model()
            .ok_or_else(|| FlowError::Usage("surrogate training produced no model".into()))?;
        let train_points = (u64::from(train_steps) + 1) * (u64::from(train_steps) + 1);
        report(
            &ctx,
            &mut stages,
            "surrogate_train_grid",
            train_secs,
            train_points,
            format!(
                r#""grid_points": {train_points}, "cells": {}, "classes": {}, "samples": {train_samples}"#,
                sur_cells.len(),
                model.len()
            ),
        );

        // Novel λ points: deliberately off the training grid.
        let lambda = |v: f64| DutyCycle::new(v).map_err(|e| FlowError::Usage(e.to_string()));
        let novel: Vec<AgingScenario> = [(0.37, 0.81), (0.63, 0.19), (0.11, 0.52)]
            .iter()
            .map(|&(p, n)| Ok(AgingScenario::new(lambda(p)?, lambda(n)?, 10.0)))
            .collect::<Result<_, FlowError>>()?;

        // Reference: full simulation of the novel points, with a second
        // collect-only tier harvesting their exact tables for the error
        // measurement (observation is memory-only and bit-neutral — proven
        // against a direct, uncached characterization below).
        let harvest = Arc::new(SurrogateTier::new(0.0));
        let ref_char = Characterizer::new(sur_set.clone(), config.clone())?
            .with_cache(Arc::new(ArcCache::in_memory().with_tier0(Arc::clone(&harvest))));
        let (r, ref_secs) =
            time(|| novel.iter().map(|s| ref_char.library(s)).collect::<Result<Vec<_>, _>>());
        let ref_libs = r?;
        let direct = Characterizer::new(sur_set.clone(), config.clone())?.library(&novel[0])?;
        assert_eq!(
            direct, ref_libs[0],
            "collect-only tier must stay bit-identical to direct characterization"
        );

        let eval = model.evaluate(&harvest.samples());
        assert_eq!(eval.skipped, 0, "model must cover every novel arc class");
        assert!(
            eval.max_rel <= budget,
            "novel-point error {:.6} exceeds the {budget} budget",
            eval.max_rel
        );

        // Serving run: same novel points, simulator never invoked.
        let serving = Arc::new(SurrogateTier::new(budget).with_model(model.as_ref().clone()));
        let served_cache = Arc::new(ArcCache::in_memory().with_tier0(Arc::clone(&serving)));
        let served_char =
            Characterizer::new(sur_set, config)?.with_cache(Arc::clone(&served_cache));
        let (r, served_secs) =
            time(|| novel.iter().try_for_each(|s| served_char.library(s).map(|_| ())));
        let r: Result<(), flow::CharError> = r;
        r?;
        let stats = served_cache.stats();
        assert_eq!(
            stats.misses, 0,
            "every novel arc must be served by the surrogate ({} fell back)",
            stats.tier0_fallbacks
        );
        assert!(stats.tier0_hits > 0, "serving run recorded no tier-0 hits");
        let speedup = ref_secs / served_secs.max(1e-12);
        if opts.smoke {
            assert!(speedup >= 20.0, "surrogate speedup {speedup:.1}x below the 20x smoke floor");
        }
        report(
            &ctx,
            &mut stages,
            "surrogate_tier0_novel",
            served_secs,
            novel.len() as u64,
            format!(
                r#""novel_points": {}, "budget": {budget}, "max_rel_err": {:.6}, "mean_rel_err": {:.6}, "ref_seconds": {ref_secs:.6}, "speedup_vs_sim": {speedup:.1}, "tier0_hits": {}, "tier0_fallbacks": {}, "bit_identical_fallback": true"#,
                novel.len(),
                eval.max_rel,
                eval.mean_rel,
                stats.tier0_hits,
                stats.tier0_fallbacks
            ),
        );
    }

    // 10. Monte-Carlo process variation: per-die MTTF sampling fanned over
    // the worker pool. The distribution must be bit-identical at any worker
    // count (each sample is pure in (seed, die)), every sampled die must
    // respect the variation-aware static bound, and the pooled fan-out is
    // timed against one worker for the samples/sec scaling figure.
    {
        let design = circuits::risc_5p();
        let nl = synth::synthesize(&design.aig, &fixture, &MapOptions::default())?;
        let lt_config = dataflow::LifetimeConfig::default();
        let df_config = dataflow::DataflowConfig::default();
        let samples = if opts.smoke { 16 } else { 256 };
        let mc_chars = |workers: usize| -> Result<Characterizer, FlowError> {
            let config = char_config(&opts, workers);
            Ok(Characterizer::new(CellSet::nangate45_like().subset(&["INV_X1"]), config)?
                .with_variation(ptm::VariationModel::nominal_45nm(), 1))
        };
        let (one, one_secs) = time(|| {
            mc_chars(1).map(|c| c.mc_lifetime(&nl, &fixture, &lt_config, &df_config, samples))
        });
        let one = one?;
        for workers in [2, 8] {
            let other =
                mc_chars(workers)?.mc_lifetime(&nl, &fixture, &lt_config, &df_config, samples);
            assert_eq!(
                one.distribution.samples.len(),
                other.distribution.samples.len(),
                "mcvar: sample count must not depend on workers"
            );
            for (i, (a, b)) in
                one.distribution.samples.iter().zip(&other.distribution.samples).enumerate()
            {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "mcvar: die {i} diverged at {workers} workers"
                );
            }
        }
        let (pooled, pooled_secs) = time(|| {
            mc_chars(opts.threads)
                .map(|c| c.mc_lifetime(&nl, &fixture, &lt_config, &df_config, samples))
        });
        let pooled = pooled?;
        assert!(
            pooled.distribution.contains_static_bound(),
            "mcvar: sampled die {:.3} y below the variation-aware bound {:.3} y",
            pooled.distribution.min_years(),
            pooled.distribution.static_bound_years
        );
        let dist = &pooled.distribution;
        report(
            &ctx,
            &mut stages,
            "mcvar_risc",
            pooled_secs,
            samples as u64,
            format!(
                r#""samples": {samples}, "threads": {}, "samples_per_sec": {:.1}, "seq_seconds": {one_secs:.6}, "speedup": {:.2}, "nominal_years": {:.3}, "var_bound_years": {:.3}, "min_years": {:.3}, "p5_retention": {:.4}, "bit_identical_workers": true, "contains_static_bound": true"#,
                opts.threads,
                samples as f64 / pooled_secs.max(1e-12),
                one_secs / pooled_secs.max(1e-12),
                dist.nominal_years,
                dist.static_bound_years,
                dist.min_years(),
                dist.p5_retention()
            ),
        );
    }

    // Assemble and write the JSON records.
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let stamp = bench::utc_stamp(unix_time);
    let json = render_json(&opts, unix_time, &stamp, &stages);
    std::fs::create_dir_all(&opts.out_dir)
        .map_err(|e| FlowError::io(opts.out_dir.display(), &e))?;
    let path = opts.out_dir.join(format!("BENCH_{stamp}.json"));
    std::fs::write(&path, json).map_err(|e| FlowError::io(path.display(), &e))?;
    println!("\nwrote {}", path.display());
    let run_path = opts.out_dir.join(format!("RUN_{stamp}.json"));
    ctx.report().write(&run_path)?;
    println!("wrote {}", run_path.display());
    bench::cli::emit_report(&ctx, opts.report.as_deref())
}

fn main() -> ExitCode {
    bench::cli::run(USAGE, run)
}

fn mode(opts: &Options) -> &'static str {
    if opts.smoke {
        "smoke"
    } else {
        "full"
    }
}

fn report(
    ctx: &RunContext,
    stages: &mut Vec<Stage>,
    name: &'static str,
    seconds: f64,
    tasks: u64,
    extra: String,
) {
    println!("  {name:<28} {seconds:>10.3} s  {}", extra.replace('"', ""));
    ctx.record_stage(name, seconds, tasks);
    stages.push(Stage { name, seconds, extra });
}

fn cache_json(cache: &ArcCache) -> String {
    let stats = cache.stats();
    format!(
        r#""cache": {{"memory_hits": {}, "disk_hits": {}, "misses": {}, "coalesced": {}, "tier0_hits": {}, "tier0_fallbacks": {}, "tier0_refits": {}, "shards": {}, "hit_rate": {:.4}}}"#,
        stats.memory_hits,
        stats.disk_hits,
        stats.misses,
        stats.coalesced,
        stats.tier0_hits,
        stats.tier0_fallbacks,
        cache.tier0_refits(),
        cache.shard_count(),
        stats.hit_rate()
    )
}

fn render_json(opts: &Options, unix_time: u64, stamp: &str, stages: &[Stage]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, r#"  "schema": "reliaware-perfbench-v1","#);
    let _ = writeln!(out, r#"  "stamp": "{stamp}","#);
    let _ = writeln!(out, r#"  "unix_time": {unix_time},"#);
    let _ = writeln!(
        out,
        r#"  "machine": {{"threads_available": {}, "os": "{}", "arch": "{}"}},"#,
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        std::env::consts::OS,
        std::env::consts::ARCH
    );
    let _ = writeln!(
        out,
        r#"  "config": {{"mode": "{}", "grid_steps": {}, "threads": {}}},"#,
        mode(opts),
        opts.steps,
        opts.threads
    );
    let _ = writeln!(out, r#"  "stages": ["#);
    for (k, stage) in stages.iter().enumerate() {
        let comma = if k + 1 == stages.len() { "" } else { "," };
        let extra =
            if stage.extra.is_empty() { String::new() } else { format!(", {}", stage.extra) };
        let _ = writeln!(
            out,
            r#"    {{"name": "{}", "seconds": {:.6}{extra}}}{comma}"#,
            stage.name, stage.seconds
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}
