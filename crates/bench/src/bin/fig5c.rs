//! Fig. 5(c) — the cost of ignoring critical-path switching: re-costing
//! only the *initial* critical path under aging (as CP-only approaches do)
//! versus re-analyzing the whole circuit, which may surface a new critical
//! path.

use bench::{benchmark_netlists, fresh_library, pct, ps, row, worst_library};
use flow::{estimate_guardband, guardband_of_initial_critical_path, FlowError, RunContext};
use sta::Constraints;
use std::process::ExitCode;

const USAGE: &str = "usage: fig5c [--report <path>]

Guardband with vs without critical-path-switch awareness (paper Fig. 5c).

options:
  --report <path>  write a reliaware-run-v1 JSON run report
  -h, --help       show this help
";

fn run() -> Result<(), FlowError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (rest, report) = bench::cli::take_common_flags(&argv)?;
    if let Some(extra) = rest.first() {
        return Err(FlowError::Usage(format!("unexpected argument `{extra}`")));
    }
    let ctx = RunContext::new();
    let fresh = ctx.stage("characterize", fresh_library)?;
    let aged = ctx.stage("characterize", worst_library)?;
    let designs = ctx.stage("synthesis", || benchmark_netlists(&fresh, "fresh"))?;
    let c = Constraints::default();

    println!("Fig 5(c) — guardband [ps]: full re-analysis vs initial-CP-only tracking\n");
    row(&[
        "design".into(),
        "CP switch aware [ours]".into(),
        "initial CP only [SoA]".into(),
        "error".into(),
        "CP switched?".into(),
    ]);
    row(&["---".into(), "---".into(), "---".into(), "---".into(), "---".into()]);
    let mut errors = Vec::new();
    for (design, nl) in &designs {
        let full = ctx.stage("sta", || estimate_guardband(nl, &fresh, &aged, &c))?;
        let cp_only =
            ctx.stage("sta", || guardband_of_initial_critical_path(nl, &fresh, &aged, &c))?;
        ctx.add_tasks("sta", 2);
        let err = cp_only / full.guardband() - 1.0;
        errors.push(err);
        row(&[
            design.name.clone(),
            ps(full.guardband()),
            ps(cp_only),
            pct(err),
            if full.critical_path_switched { "yes".into() } else { "no".into() },
        ]);
    }
    let avg = errors.iter().sum::<f64>() / errors.len() as f64;
    println!("\naverage error from tracking only the initial critical path: {}", pct(avg));
    println!("(paper reports −6% on average, wrong in all circuits)");
    bench::cli::emit_report(&ctx, report.as_deref())
}

fn main() -> ExitCode {
    bench::cli::run(USAGE, run)
}
