//! Fig. 5(c) — the cost of ignoring critical-path switching: re-costing
//! only the *initial* critical path under aging (as CP-only approaches do)
//! versus re-analyzing the whole circuit, which may surface a new critical
//! path.

use bench::{benchmark_netlists, fresh_library, pct, ps, row, worst_library};
use flow::{estimate_guardband, guardband_of_initial_critical_path};
use sta::Constraints;

fn main() {
    let fresh = fresh_library();
    let aged = worst_library();
    let designs = benchmark_netlists(&fresh, "fresh");
    let c = Constraints::default();

    println!("Fig 5(c) — guardband [ps]: full re-analysis vs initial-CP-only tracking\n");
    row(&[
        "design".into(),
        "CP switch aware [ours]".into(),
        "initial CP only [SoA]".into(),
        "error".into(),
        "CP switched?".into(),
    ]);
    row(&["---".into(), "---".into(), "---".into(), "---".into(), "---".into()]);
    let mut errors = Vec::new();
    for (design, nl) in &designs {
        let full = estimate_guardband(nl, &fresh, &aged, &c).expect("sta");
        let cp_only = guardband_of_initial_critical_path(nl, &fresh, &aged, &c).expect("sta");
        let err = cp_only / full.guardband() - 1.0;
        errors.push(err);
        row(&[
            design.name.clone(),
            ps(full.guardband()),
            ps(cp_only),
            pct(err),
            if full.critical_path_switched { "yes".into() } else { "no".into() },
        ]);
    }
    let avg = errors.iter().sum::<f64>() / errors.len() as f64;
    println!("\naverage error from tracking only the initial critical path: {}", pct(avg));
    println!("(paper reports −6% on average, wrong in all circuits)");
}
