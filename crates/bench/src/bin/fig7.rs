//! Fig. 7 — the DCT→IDCT output images themselves: the original, the
//! aging-unaware design and the aging-aware design after 1 and 10 years,
//! written as PGM files under `target/fig7/`.

use bench::{balanced_library, fresh_library, library_for, worst_library, ImageChain};
use bti::AgingScenario;
use flow::{FlowError, RunContext};
use imgproc::write_pgm;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: fig7 [--report <path>]

DCT→IDCT output images under aging, written to target/fig7/ (paper Fig. 7).
RELIAWARE_IMG overrides the test image edge length (default 48).

options:
  --report <path>  write a reliaware-run-v1 JSON run report
  -h, --help       show this help
";

fn run() -> Result<(), FlowError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (rest, report) = bench::cli::take_common_flags(&argv)?;
    if let Some(extra) = rest.first() {
        return Err(FlowError::Usage(format!("unexpected argument `{extra}`")));
    }
    let ctx = RunContext::new();
    let size: usize =
        std::env::var("RELIAWARE_IMG").ok().and_then(|s| s.parse().ok()).unwrap_or(48);
    let out_dir = PathBuf::from("target/fig7");
    std::fs::create_dir_all(&out_dir).map_err(|e| FlowError::io(out_dir.display(), &e))?;

    let fresh = ctx.stage("characterize", fresh_library)?;
    let aged10 = ctx.stage("characterize", worst_library)?;
    let unaware = ctx.stage("synthesis", || ImageChain::build(&fresh, &aged10, false))?;
    let aware = ctx.stage("synthesis", || ImageChain::build(&fresh, &aged10, true))?;
    let period = ctx.stage("sta", || unaware.fresh_period(&fresh))? * 1.001;

    let image = imgproc::synthetic::test_image(size, size, 7);
    let original = out_dir.join("original.pgm");
    std::fs::write(&original, write_pgm(&image))
        .map_err(|e| FlowError::io(original.display(), &e))?;

    let scenarios: Vec<(&str, liberty::Library)> = vec![
        ("year1_balance", ctx.stage("characterize", || balanced_library(1.0))?),
        (
            "year1_worst",
            ctx.stage("characterize", || library_for(&AgingScenario::worst_case(1.0)))?,
        ),
        ("year10_worst", aged10.clone()),
    ];
    println!(
        "Fig 7 — output images written to {} ({}x{} @ {:.0} ps clock)\n",
        out_dir.display(),
        size,
        size,
        period * 1e12
    );
    for (label, chain) in [("unaware", &unaware), ("aware", &aware)] {
        for (scenario, lib) in &scenarios {
            let result = ctx.stage("system-eval", || chain.run(&image, lib, period))?;
            ctx.add_tasks("system-eval", 1);
            let file = out_dir.join(format!("{label}_{scenario}.pgm"));
            std::fs::write(&file, write_pgm(&result.output))
                .map_err(|e| FlowError::io(file.display(), &e))?;
            println!(
                "{label:>8} {scenario:<14} PSNR {:>6.1} dB  late events {:>6}  -> {}",
                result.psnr_db,
                result.late_events,
                file.display()
            );
        }
    }
    println!("\nPaper shape: the reliability-unaware outputs degrade visibly within a");
    println!("year of worst-case aging; the reliability-aware outputs stay clean far longer.");
    bench::cli::emit_report(&ctx, report.as_deref())
}

fn main() -> ExitCode {
    bench::cli::run(USAGE, run)
}
