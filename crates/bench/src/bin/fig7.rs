//! Fig. 7 — the DCT→IDCT output images themselves: the original, the
//! aging-unaware design and the aging-aware design after 1 and 10 years,
//! written as PGM files under `target/fig7/`.

use bench::{balanced_library, fresh_library, library_for, worst_library, ImageChain};
use bti::AgingScenario;
use imgproc::write_pgm;
use std::path::PathBuf;

fn main() {
    let size: usize =
        std::env::var("RELIAWARE_IMG").ok().and_then(|s| s.parse().ok()).unwrap_or(48);
    let out_dir = PathBuf::from("target/fig7");
    std::fs::create_dir_all(&out_dir).expect("output dir");

    let fresh = fresh_library();
    let aged10 = worst_library();
    let unaware = ImageChain::build(&fresh, &aged10, false);
    let aware = ImageChain::build(&fresh, &aged10, true);
    let period = unaware.fresh_period(&fresh) * 1.001;

    let image = imgproc::synthetic::test_image(size, size, 7);
    std::fs::write(out_dir.join("original.pgm"), write_pgm(&image)).expect("write");

    let scenarios: Vec<(&str, liberty::Library)> = vec![
        ("year1_balance", balanced_library(1.0)),
        ("year1_worst", library_for(&AgingScenario::worst_case(1.0))),
        ("year10_worst", aged10.clone()),
    ];
    println!(
        "Fig 7 — output images written to {} ({}x{} @ {:.0} ps clock)\n",
        out_dir.display(),
        size,
        size,
        period * 1e12
    );
    for (label, chain) in [("unaware", &unaware), ("aware", &aware)] {
        for (scenario, lib) in &scenarios {
            let result = chain.run(&image, lib, period);
            let file = out_dir.join(format!("{label}_{scenario}.pgm"));
            std::fs::write(&file, write_pgm(&result.output)).expect("write");
            println!(
                "{label:>8} {scenario:<14} PSNR {:>6.1} dB  late events {:>6}  -> {}",
                result.psnr_db,
                result.late_events,
                file.display()
            );
        }
    }
    println!("\nPaper shape: the reliability-unaware outputs degrade visibly within a");
    println!("year of worst-case aging; the reliability-aware outputs stay clean far longer.");
}
