//! Fig. 6(c) — PSNR of the gate-level DCT→IDCT chain under aging, with
//! **no guardband**: both the aging-unaware and aging-aware designs run at
//! the frequency set by the unaware design's fresh critical path.
//!
//! Environment: `RELIAWARE_IMG` overrides the image edge length
//! (default 32).

use bench::{balanced_library, fresh_library, library_for, worst_library, ImageChain};
use bti::AgingScenario;

fn main() {
    let size: usize =
        std::env::var("RELIAWARE_IMG").ok().and_then(|s| s.parse().ok()).unwrap_or(32);
    let fresh = fresh_library();
    let aged10 = worst_library();

    let unaware = ImageChain::build(&fresh, &aged10, false);
    let aware = ImageChain::build(&fresh, &aged10, true);
    // The common frequency: maximum performance in the absence of aging
    // (the unaware design's fresh CP), with a hair of margin so the fresh
    // run itself is not metastable at the sampling edge.
    let period = unaware.fresh_period(&fresh) * 1.001;
    println!(
        "clock period = {:.1} ps (fresh critical path of the traditional design; no guardband)\n",
        period * 1e12
    );

    let image = imgproc::synthetic::test_image(size, size, 7);
    let scenarios: Vec<(&str, liberty::Library)> = vec![
        ("unaged (year 0)", fresh.clone()),
        ("balanced λ=0.5, 1y", balanced_library(1.0)),
        ("balanced λ=0.5, 10y", balanced_library(10.0)),
        ("worst λ=1, 1y", library_for(&AgingScenario::worst_case(1.0))),
        ("worst λ=1, 3y", library_for(&AgingScenario::worst_case(3.0))),
        ("worst λ=1, 10y", aged10.clone()),
    ];

    println!("Fig 6(c) — PSNR [dB] of the DCT→IDCT chain on a {size}x{size} test image");
    println!("(30 dB is the acceptability threshold)\n");
    println!("| scenario | aging-unaware design | aging-aware design |");
    println!("| --- | --- | --- |");
    for (name, lib) in &scenarios {
        let ru = unaware.run(&image, lib, period);
        let ra = aware.run(&image, lib, period);
        println!(
            "| {name} | {:.1} dB ({} late) | {:.1} dB ({} late) |",
            ru.psnr_db, ru.late_events, ra.psnr_db, ra.late_events
        );
    }
    println!("\nPaper shape: the unaware design collapses within a year of worst-case");
    println!("aging (9 dB; 19 dB balanced), while the aware design holds unaged");
    println!("quality even after 10 years of worst-case stress.");
}
