//! Fig. 6(c) — PSNR of the gate-level DCT→IDCT chain under aging, with
//! **no guardband**: both the aging-unaware and aging-aware designs run at
//! the frequency set by the unaware design's fresh critical path.
//!
//! Environment: `RELIAWARE_IMG` overrides the image edge length
//! (default 32).

use bench::{balanced_library, fresh_library, library_for, worst_library, ImageChain};
use bti::AgingScenario;
use flow::{FlowError, RunContext};
use std::process::ExitCode;

const USAGE: &str = "usage: fig6c [--report <path>]

PSNR of the DCT→IDCT chain under aging, no guardband (paper Fig. 6c).
RELIAWARE_IMG overrides the test image edge length (default 32).

options:
  --report <path>  write a reliaware-run-v1 JSON run report
  -h, --help       show this help
";

fn run() -> Result<(), FlowError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (rest, report) = bench::cli::take_common_flags(&argv)?;
    if let Some(extra) = rest.first() {
        return Err(FlowError::Usage(format!("unexpected argument `{extra}`")));
    }
    let ctx = RunContext::new();
    let size: usize =
        std::env::var("RELIAWARE_IMG").ok().and_then(|s| s.parse().ok()).unwrap_or(32);
    let fresh = ctx.stage("characterize", fresh_library)?;
    let aged10 = ctx.stage("characterize", worst_library)?;

    let unaware = ctx.stage("synthesis", || ImageChain::build(&fresh, &aged10, false))?;
    let aware = ctx.stage("synthesis", || ImageChain::build(&fresh, &aged10, true))?;
    // The common frequency: maximum performance in the absence of aging
    // (the unaware design's fresh CP), with a hair of margin so the fresh
    // run itself is not metastable at the sampling edge.
    let period = ctx.stage("sta", || unaware.fresh_period(&fresh))? * 1.001;
    println!(
        "clock period = {:.1} ps (fresh critical path of the traditional design; no guardband)\n",
        period * 1e12
    );

    let image = imgproc::synthetic::test_image(size, size, 7);
    let scenarios: Vec<(&str, liberty::Library)> = vec![
        ("unaged (year 0)", fresh.clone()),
        ("balanced λ=0.5, 1y", ctx.stage("characterize", || balanced_library(1.0))?),
        ("balanced λ=0.5, 10y", ctx.stage("characterize", || balanced_library(10.0))?),
        (
            "worst λ=1, 1y",
            ctx.stage("characterize", || library_for(&AgingScenario::worst_case(1.0)))?,
        ),
        (
            "worst λ=1, 3y",
            ctx.stage("characterize", || library_for(&AgingScenario::worst_case(3.0)))?,
        ),
        ("worst λ=1, 10y", aged10.clone()),
    ];

    println!("Fig 6(c) — PSNR [dB] of the DCT→IDCT chain on a {size}x{size} test image");
    println!("(30 dB is the acceptability threshold)\n");
    println!("| scenario | aging-unaware design | aging-aware design |");
    println!("| --- | --- | --- |");
    for (name, lib) in &scenarios {
        let ru = ctx.stage("system-eval", || unaware.run(&image, lib, period))?;
        let ra = ctx.stage("system-eval", || aware.run(&image, lib, period))?;
        ctx.add_tasks("system-eval", 2);
        println!(
            "| {name} | {:.1} dB ({} late) | {:.1} dB ({} late) |",
            ru.psnr_db, ru.late_events, ra.psnr_db, ra.late_events
        );
    }
    println!("\nPaper shape: the unaware design collapses within a year of worst-case");
    println!("aging (9 dB; 19 dB balanced), while the aware design holds unaged");
    println!("quality even after 10 years of worst-case stress.");
    bench::cli::emit_report(&ctx, report.as_deref())
}

fn main() -> ExitCode {
    bench::cli::run(USAGE, run)
}
