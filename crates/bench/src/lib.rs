//! Shared harness for the figure-regeneration binaries and Criterion
//! benches: disk-cached characterized libraries, synthesized benchmark
//! netlists and table printing.
//!
//! Every binary in `src/bin/` regenerates one figure of the paper (see
//! `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for recorded
//! results). All expensive artifacts — characterized libraries and mapped
//! netlists — are cached under [`cache_dir`] as Liberty/Verilog text, so
//! repeated runs are fast and the artifacts stay inspectable.

use bti::AgingScenario;
use flow::{CharConfig, Characterizer, FlowError, RunContext};
use liberty::{parse_library, write_library, Library};
use netlist::verilog::{parse_verilog, write_verilog};
use netlist::Netlist;
use std::path::PathBuf;
use std::sync::Arc;
use stdcells::CellSet;
use synth::MapOptions;

pub mod cli;
pub mod loadreport;

/// The artifact cache directory: `$RELIAWARE_CACHE` or
/// `target/reliaware-cache`.
#[must_use]
pub fn cache_dir() -> PathBuf {
    std::env::var_os("RELIAWARE_CACHE")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/reliaware-cache"))
}

/// The paper-grade characterizer: all 68 cells on the 7×7 OPC grid.
///
/// # Errors
///
/// Propagates [`FlowError::Char`] (the paper config always validates, but
/// the caller sees any future validation failure as a typed error).
pub fn characterizer() -> Result<Characterizer, FlowError> {
    Ok(Characterizer::new(CellSet::nangate45_like(), CharConfig::paper())?)
}

/// [`characterizer`] wired into a [`RunContext`]: inherits the context's
/// worker count and arc cache, and bills its work to the `characterize`
/// stage of the context's run report.
///
/// # Errors
///
/// Same as [`characterizer`].
pub fn characterizer_in(ctx: &Arc<RunContext>) -> Result<Characterizer, FlowError> {
    Ok(Characterizer::in_context(CellSet::nangate45_like(), CharConfig::paper(), ctx)?)
}

/// Evaluation lifetime used throughout the figures (the paper's 10 years).
pub const LIFETIME_YEARS: f64 = 10.0;

/// Cached characterized library for `scenario`.
///
/// # Errors
///
/// Returns [`FlowError::Char`] when the cache directory is unusable or
/// characterization fails.
pub fn library_for(scenario: &AgingScenario) -> Result<Library, FlowError> {
    Ok(characterizer()?.library_cached(&cache_dir(), scenario)?)
}

/// The fresh (initial, degradation-unaware) library.
///
/// # Errors
///
/// See [`library_for`].
pub fn fresh_library() -> Result<Library, FlowError> {
    library_for(&AgingScenario::fresh())
}

/// The worst-case (λ = 1, 10 y) degradation-aware library.
///
/// # Errors
///
/// See [`library_for`].
pub fn worst_library() -> Result<Library, FlowError> {
    library_for(&AgingScenario::worst_case(LIFETIME_YEARS))
}

/// The balanced-stress (λ = 0.5) library at `years`.
///
/// # Errors
///
/// See [`library_for`].
pub fn balanced_library(years: f64) -> Result<Library, FlowError> {
    library_for(&AgingScenario::balanced(years))
}

/// The worst-case library with mobility degradation ignored (ΔVth-only
/// state of the art), cached separately.
///
/// # Errors
///
/// Returns [`FlowError::Io`] for an unusable cache directory and
/// propagates characterization failures.
pub fn worst_vth_only_library() -> Result<Library, FlowError> {
    let dir = cache_dir();
    std::fs::create_dir_all(&dir).map_err(|e| FlowError::io(dir.display(), &e))?;
    let path = dir.join("lib_vthonly_worst_10y_7x7.lib");
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(lib) = parse_library(&text) {
            if lib.len() == 68 {
                return Ok(lib);
            }
        }
    }
    let lib = characterizer()?.library_vth_only(&AgingScenario::worst_case(LIFETIME_YEARS))?;
    std::fs::write(&path, write_library(&lib)).map_err(|e| FlowError::io(path.display(), &e))?;
    Ok(lib)
}

/// Synthesizes (or loads from cache) `design` against `library`; the cache
/// key couples the design and library names.
///
/// # Errors
///
/// Returns [`FlowError::Synth`] on synthesis failure and [`FlowError::Io`]
/// for an unusable cache.
pub fn synthesized(
    design: &circuits::Design,
    library: &Library,
    tag: &str,
) -> Result<Netlist, FlowError> {
    let dir = cache_dir();
    std::fs::create_dir_all(&dir).map_err(|e| FlowError::io(dir.display(), &e))?;
    let path = dir.join(format!("netlist_{}_{tag}.v", design.name.replace('-', "_")));
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(nl) = parse_verilog(&text) {
            if nl.validate(library).is_ok() {
                return Ok(nl);
            }
        }
    }
    let nl = flow::synthesize_best(&design.aig, library, &MapOptions::default())?;
    std::fs::write(&path, write_verilog(&nl)).map_err(|e| FlowError::io(path.display(), &e))?;
    Ok(nl)
}

/// The aging-aware netlist of `design` (cached): candidates mapped with
/// both libraries, selected and sized by **aged** timing (paper Sec. 4.3).
///
/// # Errors
///
/// Returns [`FlowError::Synth`] on synthesis failure and [`FlowError::Io`]
/// for an unusable cache.
pub fn aware_netlist(
    design: &circuits::Design,
    fresh: &Library,
    aged: &Library,
) -> Result<Netlist, FlowError> {
    let dir = cache_dir();
    std::fs::create_dir_all(&dir).map_err(|e| FlowError::io(dir.display(), &e))?;
    let path = dir.join(format!("netlist_{}_aware.v", design.name.replace('-', "_")));
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(nl) = parse_verilog(&text) {
            if nl.validate(aged).is_ok() {
                return Ok(nl);
            }
        }
    }
    let nl = flow::synthesize_aging_aware(&design.aig, fresh, aged, &MapOptions::default())?;
    std::fs::write(&path, write_verilog(&nl)).map_err(|e| FlowError::io(path.display(), &e))?;
    Ok(nl)
}

/// All seven paper benchmarks synthesized against `library` (cached),
/// in the paper's order: DSP, FFT, RISC-6P, RISC-5P, VLIW, DCT, IDCT.
///
/// # Errors
///
/// Propagates the first [`FlowError`] from [`synthesized`].
pub fn benchmark_netlists(
    library: &Library,
    tag: &str,
) -> Result<Vec<(circuits::Design, Netlist)>, FlowError> {
    circuits::all_benchmarks()
        .into_iter()
        .map(|d| {
            let nl = synthesized(&d, library, tag)?;
            Ok((d, nl))
        })
        .collect()
}

/// The gate-level DCT→IDCT image chain for one design style, ready to run
/// under any aging scenario.
pub struct ImageChain {
    /// The 8-point DCT design (for port metadata).
    pub dct_design: circuits::Design,
    /// The 8-point IDCT design.
    pub idct_design: circuits::Design,
    /// Mapped DCT netlist.
    pub dct: Netlist,
    /// Mapped IDCT netlist.
    pub idct: Netlist,
}

impl ImageChain {
    /// Builds the chain for the aging-unaware baseline (`aware = false`) or
    /// the aging-aware design.
    ///
    /// # Errors
    ///
    /// Propagates synthesis/cache failures from [`synthesized`] and
    /// [`aware_netlist`].
    pub fn build(fresh: &Library, aged: &Library, aware: bool) -> Result<Self, FlowError> {
        let dct_design = circuits::dct8();
        let idct_design = circuits::idct8();
        let (dct, idct) = if aware {
            (aware_netlist(&dct_design, fresh, aged)?, aware_netlist(&idct_design, fresh, aged)?)
        } else {
            (synthesized(&dct_design, fresh, "fresh")?, synthesized(&idct_design, fresh, "fresh")?)
        };
        Ok(ImageChain { dct_design, idct_design, dct, idct })
    }

    /// The chain's fresh critical path (the larger of the two circuits).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Sta`] on analysis failure.
    pub fn fresh_period(&self, fresh: &Library) -> Result<f64, FlowError> {
        let c = sta::Constraints::default();
        let a = sta::analyze(&self.dct, fresh, &c)?.critical_delay();
        let b = sta::analyze(&self.idct, fresh, &c)?.critical_delay();
        Ok(a.max(b))
    }

    /// Runs `image` through the chain with delays of `scenario_lib` at
    /// clock period `period`.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Sta`] on annotation failure and
    /// [`FlowError::Eval`] on simulation failure.
    pub fn run(
        &self,
        image: &imgproc::GrayImage,
        scenario_lib: &Library,
        period: f64,
    ) -> Result<flow::ImageChainResult, FlowError> {
        let c = sta::Constraints::default();
        let dct_ann = flow::annotation_from_sta(&self.dct, scenario_lib, &c)?;
        let idct_ann = flow::annotation_from_sta(&self.idct, scenario_lib, &c)?;
        Ok(flow::run_image_chain(
            image,
            &self.dct,
            &self.dct_design,
            &self.idct,
            &self.idct_design,
            scenario_lib,
            &dct_ann,
            &idct_ann,
            period,
        )?)
    }
}

/// Resolves a CLI `--design` name to a benchmark generator. Accepts the
/// paper names case-insensitively plus the short aliases used by CI:
/// `dct`, `idct`, `fft`, `dsp`, `risc` (the 5-stage slice), `risc6`, `vliw`.
#[must_use]
pub fn design_by_name(name: &str) -> Option<circuits::Design> {
    match name.to_ascii_lowercase().as_str() {
        "dct" => Some(circuits::dct8()),
        "idct" => Some(circuits::idct8()),
        "fft" => Some(circuits::fft_butterflies()),
        "dsp" => Some(circuits::dsp_fir()),
        "risc" | "risc5" | "risc-5p" => Some(circuits::risc_5p()),
        "risc6" | "risc-6p" => Some(circuits::risc_6p()),
        "vliw" => Some(circuits::vliw()),
        _ => None,
    }
}

/// A λ-indexed complete library derived from `base`: every cell is cloned
/// onto the `(steps+1)²` duty-cycle grid with its delay arcs scaled by
/// `1 + 0.2·(λp + λn)/2` — the analytic stand-in the `--design` CLI modes
/// use instead of the (expensive) characterized grid.
#[must_use]
pub fn lambda_scaled_complete(base: &Library, steps: u32) -> Library {
    let mut parts = Vec::new();
    for p in 0..=steps {
        for n in 0..=steps {
            let lp = f64::from(p) / f64::from(steps);
            let ln = f64::from(n) / f64::from(steps);
            let factor = 1.0 + 0.2 * (lp + ln) / 2.0;
            let mut lib = Library::new("part", base.vdd);
            for cell in base.cells() {
                let mut c = cell.clone();
                for o in &mut c.outputs {
                    for arc in &mut o.arcs {
                        arc.cell_rise = arc.cell_rise.map(|v| v * factor);
                        arc.cell_fall = arc.cell_fall.map(|v| v * factor);
                    }
                }
                lib.add_cell(c);
            }
            parts.push((liberty::LambdaTag { lambda_pmos: lp, lambda_nmos: ln }, lib));
        }
    }
    liberty::merge_indexed("complete", &parts)
}

/// Formats a unix timestamp as `YYYYMMDD-HHMMSS` UTC (civil-from-days,
/// Hinnant's algorithm) — no clock libraries in the workspace. Used by the
/// perfbench and loadgen binaries to stamp their `BENCH_*.json` records.
#[must_use]
pub fn utc_stamp(secs: u64) -> String {
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    let (hh, mm, ss) = (rem / 3600, (rem % 3600) / 60, rem % 60);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = yoe + era * 400 + i64::from(month <= 2);
    format!("{year:04}{month:02}{day:02}-{hh:02}{mm:02}{ss:02}")
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Formats seconds as picoseconds with two decimals.
#[must_use]
pub fn ps(seconds: f64) -> String {
    format!("{:.2}", seconds * 1e12)
}

/// Formats a ratio as a signed percentage.
#[must_use]
pub fn pct(ratio: f64) -> String {
    format!("{:+.1}%", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(ps(1.5e-12), "1.50");
        assert_eq!(pct(0.214), "+21.4%");
        assert_eq!(pct(-0.19), "-19.0%");
    }

    #[test]
    fn utc_stamp_known_instants() {
        assert_eq!(utc_stamp(0), "19700101-000000");
        // 2016-06-05 12:00:00 UTC — the paper's DAC week.
        assert_eq!(utc_stamp(1_465_128_000), "20160605-120000");
    }

    #[test]
    fn cache_dir_default() {
        // No assertion on the env-var path; just exercise the default.
        let d = cache_dir();
        assert!(!d.as_os_str().is_empty());
    }
}
