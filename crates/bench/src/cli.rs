//! Shared CLI orchestration for the bench binaries.
//!
//! Every binary follows one contract:
//!
//! * exit 0 — success (including an explicit help request),
//! * exit 1 — the flow ran and found analysis errors,
//! * exit 2 — usage or I/O problems (bad flags, unreadable files),
//!
//! with failures rendered as `error: [<stage>] <diagnostic>` on stderr.
//! A help request is modelled as `FlowError::Usage(String::new())`: the
//! runner prints the usage text and exits 0 instead of treating it as a
//! failure.

use flow::{FlowError, RunContext};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Runs a fallible CLI body under the shared exit-code contract.
///
/// `usage` is printed verbatim on help requests (empty
/// [`FlowError::Usage`]) and after genuine usage errors.
pub fn run(usage: &str, body: impl FnOnce() -> Result<(), FlowError>) -> ExitCode {
    run_code(usage, || body().map(|()| ExitCode::SUCCESS))
}

/// Like [`run`], but the body chooses its own success exit code — for
/// linters whose diagnostics set exit 1 without being flow errors.
pub fn run_code(usage: &str, body: impl FnOnce() -> Result<ExitCode, FlowError>) -> ExitCode {
    match body() {
        Ok(code) => code,
        Err(FlowError::Usage(message)) if message.is_empty() => {
            println!("{}", usage.trim_end());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            if matches!(e, FlowError::Usage(_)) {
                eprintln!("\n{}", usage.trim_end());
            }
            ExitCode::from(e.exit_code())
        }
    }
}

/// Extracts `--report <path>` (and `-h`/`--help`) from raw argv, returning
/// the remaining positional/flag arguments plus the requested report path.
///
/// # Errors
///
/// Returns an empty [`FlowError::Usage`] for a help request and a
/// descriptive one when `--report` is missing its path operand.
pub fn take_common_flags(argv: &[String]) -> Result<(Vec<String>, Option<PathBuf>), FlowError> {
    let mut rest = Vec::with_capacity(argv.len());
    let mut report = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => return Err(FlowError::Usage(String::new())),
            "--report" => match it.next() {
                Some(path) => report = Some(PathBuf::from(path)),
                None => {
                    return Err(FlowError::Usage("--report requires a file path".into()));
                }
            },
            _ => rest.push(arg.clone()),
        }
    }
    Ok((rest, report))
}

/// Serializes `ctx`'s run report to `path` when one was requested.
///
/// # Errors
///
/// Returns [`FlowError::Io`] when the report file cannot be written.
pub fn emit_report(ctx: &RunContext, path: Option<&Path>) -> Result<(), FlowError> {
    if let Some(path) = path {
        ctx.report().write(path)?;
        eprintln!("run report written to {}", path.display());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_flags_extract_report_and_keep_rest() {
        let argv: Vec<String> = ["--smoke", "--report", "out/run.json", "dct"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let (rest, report) = take_common_flags(&argv).unwrap();
        assert_eq!(rest, vec!["--smoke".to_owned(), "dct".to_owned()]);
        assert_eq!(report, Some(PathBuf::from("out/run.json")));
    }

    #[test]
    fn help_is_an_empty_usage_error() {
        let argv = vec!["--help".to_owned()];
        let err = take_common_flags(&argv).unwrap_err();
        assert!(matches!(err, FlowError::Usage(m) if m.is_empty()));
    }

    #[test]
    fn report_without_path_is_a_usage_error() {
        let argv = vec!["--report".to_owned()];
        let err = take_common_flags(&argv).unwrap_err();
        assert!(matches!(err, FlowError::Usage(m) if m.contains("--report")));
    }

    #[test]
    fn emit_report_writes_schema_tagged_json() {
        let ctx = RunContext::new();
        ctx.record_stage("demo", 0.005, 3);
        let dir = std::env::temp_dir().join("reliaware-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.json");
        emit_report(&ctx, Some(&path)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("reliaware-run-v1"));
        assert!(text.contains("\"demo\""));
        std::fs::remove_file(&path).ok();
    }
}
