//! Ablation benchmarks for the design decisions called out in `DESIGN.md`:
//!
//! 1. `sim_accuracy` — integrator accuracy (`max_dv`) vs characterization
//!    runtime; the measured delay shift is printed once per setting.
//! 2. `lambda_grid` — duty-cycle grid resolution vs complete-library build
//!    cost (per-scenario characterization of a small cell subset).
//! 3. `mapper_objective` — cut-size/exploration settings vs mapping runtime
//!    and the critical delay they achieve (printed).

use bti::AgingScenario;
use criterion::{criterion_group, criterion_main, Criterion};
use flow::{CharConfig, Characterizer};
use sta::{analyze, Constraints};
use stdcells::CellSet;
use synth::test_fixtures::fixture_library;
use synth::{map_to_netlist, MapOptions};

fn ablate_sim_accuracy(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_accuracy");
    group.sample_size(10);
    for (label, max_dv) in [("1mV", 1e-3), ("4mV", 4e-3), ("12mV", 12e-3)] {
        let cfg = CharConfig { max_dv, ..CharConfig::fast() };
        let chars = Characterizer::new(CellSet::nangate45_like().subset(&["NAND2_X1"]), cfg)
            .expect("valid config");
        // Print the measured delay once so accuracy drift is visible.
        let lib = chars.library(&AgingScenario::fresh()).expect("characterization");
        let d = lib.cell("NAND2_X1").expect("cell").worst_delay(150e-12, 4e-15);
        println!("sim_accuracy {label}: NAND2_X1 worst delay {:.3} ps", d * 1e12);
        group.bench_function(label, |b| b.iter(|| chars.library(&AgingScenario::fresh())));
    }
    group.finish();
}

fn ablate_lambda_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("lambda_grid");
    group.sample_size(10);
    let cfg = CharConfig::fast();
    let chars = Characterizer::new(CellSet::nangate45_like().subset(&["INV_X1", "NAND2_X1"]), cfg)
        .expect("valid config");
    for steps in [1u32, 2, 4] {
        let scenarios = (steps + 1) * (steps + 1);
        println!("lambda_grid steps={steps}: {scenarios} scenario libraries");
        group.bench_function(format!("steps_{steps}"), |b| {
            b.iter(|| chars.complete_library(steps, 10.0));
        });
    }
    group.finish();
}

fn ablate_mapper_objective(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapper_objective");
    group.sample_size(10);
    let lib = fixture_library();
    let design = circuits::dct8();
    for (label, options) in [
        ("cut3", MapOptions { cut_size: 3, ..MapOptions::default() }),
        ("cut4", MapOptions::default()),
        ("cut4_wide", MapOptions { cuts_per_node: 14, ..MapOptions::default() }),
    ] {
        let nl = map_to_netlist(&design.aig, &lib, &options).expect("maps");
        let cp = analyze(&nl, &lib, &Constraints::default()).expect("sta").critical_delay();
        println!(
            "mapper_objective {label}: {} instances, CP {:.1} ps",
            nl.instance_count(),
            cp * 1e12
        );
        group.bench_function(label, |b| {
            b.iter(|| map_to_netlist(&design.aig, &lib, &options).expect("maps"));
        });
    }
    group.finish();
}

criterion_group!(benches, ablate_sim_accuracy, ablate_lambda_grid, ablate_mapper_objective);
criterion_main!(benches);
