//! Criterion benchmarks of the flow's computational stages: cell
//! characterization, technology mapping, static timing analysis and
//! gate-level simulation.

use bti::AgingScenario;
use criterion::{criterion_group, criterion_main, Criterion};
use flow::{CharConfig, Characterizer};
use sta::{analyze, Constraints};
use stdcells::CellSet;
use synth::test_fixtures::fixture_library;
use synth::{map_to_netlist, MapOptions};

fn bench_characterization(c: &mut Criterion) {
    let mut group = c.benchmark_group("characterize");
    group.sample_size(10);
    let cfg = CharConfig::fast();
    for name in ["INV_X1", "NAND2_X1", "XOR2_X1"] {
        let set = CellSet::nangate45_like().subset(&[name]);
        let chars = Characterizer::new(set, cfg.clone()).expect("valid config");
        group.bench_function(name, |b| {
            b.iter(|| chars.library(&AgingScenario::worst_case(10.0)));
        });
    }
    group.finish();
}

fn bench_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("map");
    group.sample_size(10);
    let lib = fixture_library();
    let options = MapOptions::default();
    for design in [circuits::dct8(), circuits::vliw()] {
        group.bench_function(design.name.clone(), |b| {
            b.iter(|| map_to_netlist(&design.aig, &lib, &options).expect("maps"));
        });
    }
    group.finish();
}

fn bench_sta(c: &mut Criterion) {
    let mut group = c.benchmark_group("sta");
    group.sample_size(20);
    let lib = fixture_library();
    let options = MapOptions::default();
    for design in [circuits::dct8(), circuits::risc_5p()] {
        let nl = synth::synthesize(&design.aig, &lib, &options).expect("synth");
        group.bench_function(design.name.clone(), |b| {
            b.iter(|| analyze(&nl, &lib, &Constraints::default()).expect("sta"));
        });
    }
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("logicsim");
    group.sample_size(10);
    let lib = fixture_library();
    let design = circuits::dct8();
    let nl = synth::synthesize(&design.aig, &lib, &MapOptions::default()).expect("synth");
    let ann = flow::annotation_from_sta(&nl, &lib, &Constraints::default()).expect("ann");
    let vectors: Vec<Vec<bool>> = (0..16)
        .map(|k| (0..design.input_width()).map(|b| (k * 7 + b) % 3 == 0).collect())
        .collect();
    group.bench_function("dct_zero_delay_16cy", |b| {
        b.iter(|| logicsim::run_cycles(&nl, &lib, None, &vectors).expect("sim"));
    });
    group.bench_function("dct_timed_16cy", |b| {
        b.iter(|| logicsim::run_timed(&nl, &lib, &ann, 1e-9, None, &vectors).expect("sim"));
    });
    group.finish();
}

criterion_group!(benches, bench_characterization, bench_mapping, bench_sta, bench_simulation);
criterion_main!(benches);
