//! Integration tests reproducing the *mechanisms* behind the paper's Fig. 1:
//! the impact of aging on a gate's delay is driven by its operating
//! conditions (input slew, output load), and under some OPCs a gate's delay
//! *improves* with aging (the NOR fall arc at large slews).

use bti::AgingScenario;
use ptm::MosModel;
use spicesim::{TransientConfig, Waveform};
use std::collections::BTreeMap;
use stdcells::CellSet;

const VDD: f64 = 1.2;

/// Measures one delay of `cell` for an edge on input A (other inputs held at
/// non-controlling values given in `side`), returning seconds.
#[allow(clippy::too_many_arguments)]
fn measure(
    cell: &stdcells::CellDef,
    nmos: &MosModel,
    pmos: &MosModel,
    input_rising: bool,
    output_rising: bool,
    slew: f64,
    load: f64,
    side: &[(&str, bool)],
) -> f64 {
    let mut stimuli: BTreeMap<String, Waveform> = BTreeMap::new();
    stimuli.insert("A".into(), Waveform::from_slew(0.4e-9, slew, VDD, input_rising));
    for (pin, high) in side {
        stimuli.insert((*pin).into(), Waveform::Dc(if *high { VDD } else { 0.0 }));
    }
    let loads: BTreeMap<String, f64> = [("Y".to_owned(), load)].into_iter().collect();
    let inst = cell.instantiate(nmos, pmos, VDD, &stimuli, &loads);
    let t_stop = 3.0e-9 + 3.0 * slew;
    let trace = inst.circuit.transient(&TransientConfig::up_to(t_stop));
    trace
        .delay_after(
            inst.node("A").unwrap(),
            input_rising,
            inst.node("Y").unwrap(),
            output_rising,
            0.0,
        )
        .expect("edge propagates")
}

fn aged_models() -> (MosModel, MosModel) {
    let d = AgingScenario::worst_case(10.0).degradations();
    (MosModel::nmos_45nm().degraded(&d.nmos), MosModel::pmos_45nm().degraded(&d.pmos))
}

fn fresh_models() -> (MosModel, MosModel) {
    (MosModel::nmos_45nm(), MosModel::pmos_45nm())
}

#[test]
fn nand_aging_impact_grows_with_input_slew() {
    // Fig. 1(a): a larger input slew magnifies the NAND delay increase —
    // slow falling input keeps the pull-down on while the NBTI-weakened
    // pull-up fights it.
    let cells = CellSet::nangate45_like();
    let nand = cells.get("NAND2_X1").unwrap();
    let (fn_, fp) = fresh_models();
    let (an, ap) = aged_models();
    let side = [("B", true)];
    let load = 1.0e-15;
    let ratio_at = |slew: f64| {
        let fresh = measure(nand, &fn_, &fp, false, true, slew, load, &side);
        let aged = measure(nand, &an, &ap, false, true, slew, load, &side);
        aged / fresh
    };
    let fast = ratio_at(10e-12);
    let slow = ratio_at(600e-12);
    assert!(fast > 1.0, "aging must slow the NAND rise at fast slew (ratio {fast})");
    assert!(slow > fast, "aging impact must grow with slew: {slow} vs {fast}");
}

#[test]
fn nand_aging_impact_shrinks_with_load() {
    // Fig. 1(a): increasing the output load diminishes the (relative)
    // impact of aging — a slower gate tolerates device degradation.
    let cells = CellSet::nangate45_like();
    let nand = cells.get("NAND2_X1").unwrap();
    let (fn_, fp) = fresh_models();
    let (an, ap) = aged_models();
    let side = [("B", true)];
    let slew = 300e-12;
    let ratio_at = |load: f64| {
        let fresh = measure(nand, &fn_, &fp, false, true, slew, load, &side);
        let aged = measure(nand, &an, &ap, false, true, slew, load, &side);
        aged / fresh
    };
    let light = ratio_at(0.5e-15);
    let heavy = ratio_at(20e-15);
    assert!(
        heavy < light,
        "relative aging impact must shrink with load: light {light}, heavy {heavy}"
    );
}

#[test]
fn nor_fall_delay_improves_with_aging_at_large_slew() {
    // Fig. 1(b): for the NOR's falling output under a slowly rising input,
    // NBTI weakens the opposing pull-up stack, so the aged gate is FASTER.
    let cells = CellSet::nangate45_like();
    let nor = cells.get("NOR2_X1").unwrap();
    let (fn_, fp) = fresh_models();
    let (an, ap) = aged_models();
    let side = [("B", false)];
    let slew = 600e-12;
    let load = 0.5e-15;
    let fresh = measure(nor, &fn_, &fp, true, false, slew, load, &side);
    let aged = measure(nor, &an, &ap, true, false, slew, load, &side);
    assert!(aged < fresh, "aged NOR fall must improve at large slew: fresh {fresh}, aged {aged}");
}

#[test]
fn inverter_always_degrades_at_fast_slew() {
    // At the fastest slews no contention window exists, so aging simply
    // slows every edge — the single-OPC world of Fig. 2 (left).
    let cells = CellSet::nangate45_like();
    let inv = cells.get("INV_X1").unwrap();
    let (fn_, fp) = fresh_models();
    let (an, ap) = aged_models();
    for (in_rising, out_rising) in [(true, false), (false, true)] {
        let fresh = measure(inv, &fn_, &fp, in_rising, out_rising, 5e-12, 1e-15, &[]);
        let aged = measure(inv, &an, &ap, in_rising, out_rising, 5e-12, 1e-15, &[]);
        assert!(
            aged > fresh,
            "aged INV edge (in_rising={in_rising}) must be slower: {aged} vs {fresh}"
        );
    }
}

#[test]
fn vth_only_underestimates_delay_degradation() {
    // The root of Fig. 5(a): dropping Δμ from the aged models recovers part
    // of the lost drive, underestimating the delay increase.
    let cells = CellSet::nangate45_like();
    let inv = cells.get("INV_X1").unwrap();
    let (fn_, fp) = fresh_models();
    let d = AgingScenario::worst_case(10.0).degradations();
    let full = (MosModel::nmos_45nm().degraded(&d.nmos), MosModel::pmos_45nm().degraded(&d.pmos));
    let vth_only = (
        MosModel::nmos_45nm().degraded(&d.nmos.vth_only()),
        MosModel::pmos_45nm().degraded(&d.pmos.vth_only()),
    );
    let fresh = measure(inv, &fn_, &fp, false, true, 50e-12, 4e-15, &[]);
    let aged_full = measure(inv, &full.0, &full.1, false, true, 50e-12, 4e-15, &[]);
    let aged_vth = measure(inv, &vth_only.0, &vth_only.1, false, true, 50e-12, 4e-15, &[]);
    assert!(aged_full > aged_vth, "Δμ must add delay: {aged_full} vs {aged_vth}");
    assert!(aged_vth > fresh);
}
