//! Instantiating a [`CellDef`] as a transistor-level [`spicesim::Circuit`].
//!
//! Device cards are supplied through [`CardSource`]: the builder asks the
//! source for a card once per MOS device, identified by its *ordinal* —
//! the position in the cell's deterministic device-addition order (per
//! stage, the pull-down network first, then the width-compensated dual
//! pull-up; flops add their inverter/transmission-gate devices in a fixed
//! sequence). The nominal source ([`PolarityCards`]) returns one shared
//! card per polarity — the pre-variation behavior — while
//! [`SampledCards`] draws a per-device process-variation sample, so
//! within-cell mismatch reaches the simulator without the topology code
//! knowing anything about sampling.

use crate::def::{CellDef, Stage, Topology};
use crate::network::Network;
use crate::{UNIT_NMOS_WIDTH, UNIT_PMOS_WIDTH};
use ptm::{DeviceSample, MosModel, MosPolarity, VariationModel};
use spicesim::{Circuit, NodeId, Waveform};
use std::collections::BTreeMap;

/// Per-device transistor-card source.
///
/// `ordinal` is the device's position in the cell's deterministic
/// instantiation order; implementations must be pure functions of
/// `(polarity, ordinal)` so rebuilding a cell yields bit-identical
/// circuits regardless of caller, worker, or cache state.
pub trait CardSource {
    /// The card of the device at `ordinal` with `polarity`.
    fn card(&self, polarity: MosPolarity, ordinal: u64) -> MosModel;
}

/// The nominal source: one fixed card per polarity, every ordinal alike.
#[derive(Debug, Clone, Copy)]
pub struct PolarityCards<'a> {
    /// Card used by every n-channel device.
    pub nmos: &'a MosModel,
    /// Card used by every p-channel device.
    pub pmos: &'a MosModel,
}

impl CardSource for PolarityCards<'_> {
    fn card(&self, polarity: MosPolarity, _ordinal: u64) -> MosModel {
        match polarity {
            MosPolarity::Nmos => self.nmos.clone(),
            MosPolarity::Pmos => self.pmos.clone(),
        }
    }
}

/// A process-variation source: each device's card is the polarity base
/// shifted by the [`VariationModel`] sample at `(seed, ordinal)`.
#[derive(Debug, Clone, Copy)]
pub struct SampledCards<'a> {
    /// Base (nominal or aged) n-channel card.
    pub nmos: &'a MosModel,
    /// Base (nominal or aged) p-channel card.
    pub pmos: &'a MosModel,
    /// The within-die spread to sample from.
    pub variation: &'a VariationModel,
    /// Stream seed; one per (Monte-Carlo sample, cell) in practice.
    pub seed: u64,
}

impl SampledCards<'_> {
    /// The sample applied to the device at `ordinal`. Polarities use
    /// disjoint counter ranges so an nMOS and a pMOS at the same ordinal
    /// never share a draw.
    #[must_use]
    pub fn sample_at(&self, polarity: MosPolarity, ordinal: u64) -> DeviceSample {
        let counter = match polarity {
            MosPolarity::Nmos => ordinal.wrapping_mul(2),
            MosPolarity::Pmos => ordinal.wrapping_mul(2).wrapping_add(1),
        };
        self.variation.sample(self.seed, counter)
    }
}

impl CardSource for SampledCards<'_> {
    fn card(&self, polarity: MosPolarity, ordinal: u64) -> MosModel {
        let base = match polarity {
            MosPolarity::Nmos => self.nmos,
            MosPolarity::Pmos => self.pmos,
        };
        base.sampled(&self.sample_at(polarity, ordinal))
    }
}

/// Adds the device at the circuit's next ordinal with a card drawn from
/// `cards` — the single funnel every topology builder goes through.
fn add_device(
    circuit: &mut Circuit,
    cards: &dyn CardSource,
    polarity: MosPolarity,
    gate: NodeId,
    drain: NodeId,
    source: NodeId,
    w: f64,
) {
    let card = cards.card(polarity, circuit.device_count() as u64);
    debug_assert_eq!(card.polarity, polarity, "card source returned the wrong polarity");
    circuit.add_mos(card, gate, drain, source, w);
}

/// A cell instantiated into a simulatable circuit, with name → node lookup
/// for all pins and internal signals.
#[derive(Debug, Clone)]
pub struct CellInstance {
    /// The transistor-level circuit, ready for [`Circuit::transient`].
    pub circuit: Circuit,
    nodes: BTreeMap<String, NodeId>,
}

impl CellInstance {
    /// The circuit node carrying `signal` (an input pin, output pin or
    /// internal node name).
    #[must_use]
    pub fn node(&self, signal: &str) -> Option<NodeId> {
        self.nodes.get(signal).copied()
    }
}

impl CellDef {
    /// Builds the transistor-level circuit of this cell.
    ///
    /// * `nmos`/`pmos` — transistor models (fresh or [`MosModel::degraded`]).
    /// * `vdd` — supply voltage.
    /// * `stimuli` — waveform per input pin; unspecified pins are tied low.
    /// * `loads` — extra load capacitance per output pin (farad).
    ///
    /// Internal nodes are pre-biased to their logic levels implied by the
    /// stimulus values at the simulation start, so the DC settle phase is
    /// short and robust.
    ///
    /// # Panics
    ///
    /// Panics if a `loads` key names an unknown output pin.
    #[must_use]
    pub fn instantiate(
        &self,
        nmos: &MosModel,
        pmos: &MosModel,
        vdd: f64,
        stimuli: &BTreeMap<String, Waveform>,
        loads: &BTreeMap<String, f64>,
    ) -> CellInstance {
        self.instantiate_with(&PolarityCards { nmos, pmos }, vdd, stimuli, loads)
    }

    /// Builds the transistor-level circuit with per-device cards from
    /// `cards` — the variation-aware generalization of
    /// [`CellDef::instantiate`]. With a [`PolarityCards`] source the two
    /// are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if a `loads` key names an unknown output pin.
    #[must_use]
    pub fn instantiate_with(
        &self,
        cards: &dyn CardSource,
        vdd: f64,
        stimuli: &BTreeMap<String, Waveform>,
        loads: &BTreeMap<String, f64>,
    ) -> CellInstance {
        let mut circuit = Circuit::new(vdd);
        let mut nodes: BTreeMap<String, NodeId> = BTreeMap::new();
        let mut logic: BTreeMap<String, bool> = BTreeMap::new();

        // Input pins become stimulus sources; their t→-∞ value seeds the
        // initial logic state.
        for pin in &self.inputs {
            let wave = stimuli.get(pin).cloned().unwrap_or(Waveform::Dc(0.0));
            let initial_high = wave.value(f64::NEG_INFINITY.max(-1.0)) > 0.5 * vdd;
            logic.insert(pin.clone(), initial_high);
            nodes.insert(pin.clone(), circuit.add_source(pin, wave));
        }

        match &self.topology {
            Topology::Stages(stages) => {
                build_stages(self, stages, cards, vdd, &mut circuit, &mut nodes, &mut logic);
            }
            Topology::Flop { strength } => {
                build_flop(*strength, cards, vdd, &mut circuit, &mut nodes, &logic);
            }
        }

        for (pin, cap) in loads {
            let node = nodes
                .get(pin)
                .copied()
                .unwrap_or_else(|| panic!("cell {} has no pin {pin} to load", self.name));
            circuit.add_cap(node, *cap);
        }
        CellInstance { circuit, nodes }
    }
}

#[allow(clippy::too_many_arguments)]
fn build_stages(
    def: &CellDef,
    stages: &[Stage],
    cards: &dyn CardSource,
    vdd: f64,
    circuit: &mut Circuit,
    nodes: &mut BTreeMap<String, NodeId>,
    logic: &mut BTreeMap<String, bool>,
) {
    // Create all stage output nodes first so forward references resolve.
    for stage in stages {
        let id = circuit.add_node(&stage.output, 0.0);
        nodes.insert(stage.output.clone(), id);
    }
    for stage in stages {
        let out = nodes[&stage.output];
        // Nangate-style sizing: nMOS stacks keep unit width, but pMOS
        // series stacks are width-compensated (low hole mobility would make
        // them catastrophically weak otherwise).
        let wn = UNIT_NMOS_WIDTH * stage.strength;
        let pullup = stage.pulldown.dual();
        let wp = UNIT_PMOS_WIDTH * stage.strength * pullup.series_depth() as f64;
        let gnd = circuit.gnd_node();
        let vdd_node = circuit.vdd_node();
        let (n, p) = (MosPolarity::Nmos, MosPolarity::Pmos);
        build_network(circuit, &stage.pulldown, out, gnd, cards, n, wn, nodes, &stage.output, "n");
        build_network(circuit, &pullup, out, vdd_node, cards, p, wp, nodes, &stage.output, "p");
        // Stage logic value = NOT(pull-down conducts) under the initial input state.
        let assign = |s: &str| logic.get(s).copied().unwrap_or(false);
        let value = !stage.pulldown.conducts(&assign);
        logic.insert(stage.output.clone(), value);
        circuit.set_initial_voltage(out, if value { vdd } else { 0.0 });
    }
    let _ = def;
}

/// Recursively instantiates `net` between `top` and `bottom`, creating
/// intermediate chain nodes for series stacks.
#[allow(clippy::too_many_arguments)]
fn build_network(
    circuit: &mut Circuit,
    net: &Network,
    top: NodeId,
    bottom: NodeId,
    cards: &dyn CardSource,
    polarity: MosPolarity,
    width: f64,
    nodes: &BTreeMap<String, NodeId>,
    stage_name: &str,
    side: &str,
) {
    match net {
        Network::Input(signal) => {
            let gate = *nodes
                .get(signal)
                .unwrap_or_else(|| panic!("stage {stage_name}: unknown gate signal {signal}"));
            add_device(circuit, cards, polarity, gate, top, bottom, width);
        }
        Network::Parallel(children) => {
            for child in children {
                build_network(
                    circuit, child, top, bottom, cards, polarity, width, nodes, stage_name, side,
                );
            }
        }
        Network::Series(children) => {
            let mut upper = top;
            for (k, child) in children.iter().enumerate() {
                let lower = if k + 1 == children.len() {
                    bottom
                } else {
                    circuit.add_node(&format!("{stage_name}.{side}{k}"), 0.0)
                };
                build_network(
                    circuit, child, upper, lower, cards, polarity, width, nodes, stage_name, side,
                );
                upper = lower;
            }
        }
    }
}

/// Builds the positive-edge master–slave transmission-gate D flip-flop.
fn build_flop(
    strength: f64,
    cards: &dyn CardSource,
    vdd: f64,
    circuit: &mut Circuit,
    nodes: &mut BTreeMap<String, NodeId>,
    logic: &BTreeMap<String, bool>,
) {
    let d = nodes["D"];
    let ck = nodes["CK"];
    let d0 = logic.get("D").copied().unwrap_or(false);
    let ck0 = logic.get("CK").copied().unwrap_or(false);

    let mut mk = |name: &str, level: bool| {
        let id = circuit.add_node(name, 0.0);
        nodes.insert(name.to_owned(), id);
        (id, level)
    };
    // Clock buffer: cn = !CK, cp = buffered CK.
    let (cn, _) = mk("cn", !ck0);
    let (cp, _) = mk("cp", ck0);
    // Master: m1 follows D while CK is low, held otherwise.
    let (m1, _) = mk("m1", d0);
    let (m2, _) = mk("m2", !d0);
    let (m3, _) = mk("m3", d0);
    // Slave: s1 captures m2 on the rising edge.
    let (s1, _) = mk("s1", !d0);
    let (qn, _) = mk("qn", d0);
    let (fb, _) = mk("fb", !d0);
    let (q, _) = mk("Q", d0);

    let wn = UNIT_NMOS_WIDTH;
    let wp = UNIT_PMOS_WIDTH;
    let weak = 0.6;
    let inv = |circuit: &mut Circuit, input: NodeId, output: NodeId, scale: f64| {
        let gnd = circuit.gnd_node();
        let vdd_node = circuit.vdd_node();
        add_device(circuit, cards, MosPolarity::Nmos, input, output, gnd, wn * scale);
        add_device(circuit, cards, MosPolarity::Pmos, input, output, vdd_node, wp * scale);
    };
    let tg = |circuit: &mut Circuit, from: NodeId, to: NodeId, n_gate: NodeId, p_gate: NodeId| {
        add_device(circuit, cards, MosPolarity::Nmos, n_gate, from, to, wn);
        add_device(circuit, cards, MosPolarity::Pmos, p_gate, from, to, wp);
    };

    inv(circuit, ck, cn, 1.0);
    inv(circuit, cn, cp, 1.0);
    // Master input gate passes while CK = 0.
    tg(circuit, d, m1, cn, cp);
    inv(circuit, m1, m2, 1.0);
    inv(circuit, m2, m3, weak);
    // Master feedback holds while CK = 1.
    tg(circuit, m3, m1, cp, cn);
    // Slave input gate passes while CK = 1.
    tg(circuit, m2, s1, cp, cn);
    inv(circuit, s1, qn, weak);
    inv(circuit, qn, fb, weak);
    // Slave feedback holds while CK = 0.
    tg(circuit, fb, s1, cn, cp);
    // Output driver.
    inv(circuit, s1, q, strength);

    for (name, level) in [
        ("cn", !ck0),
        ("cp", ck0),
        ("m1", d0),
        ("m2", !d0),
        ("m3", d0),
        ("s1", !d0),
        ("qn", d0),
        ("fb", !d0),
        ("Q", d0),
    ] {
        circuit.set_initial_voltage(nodes[name], if level { vdd } else { 0.0 });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellSet;
    use spicesim::TransientConfig;

    fn models() -> (MosModel, MosModel) {
        (MosModel::nmos_45nm(), MosModel::pmos_45nm())
    }

    fn waves(pairs: &[(&str, Waveform)]) -> BTreeMap<String, Waveform> {
        pairs.iter().map(|(k, v)| ((*k).to_owned(), v.clone())).collect()
    }

    fn load(pin: &str, cap: f64) -> BTreeMap<String, f64> {
        [(pin.to_owned(), cap)].into_iter().collect()
    }

    #[test]
    fn nand2_truth_by_simulation() {
        let (n, p) = models();
        let cells = CellSet::nangate45_like();
        let nand = cells.get("NAND2_X1").unwrap();
        let vdd = 1.2;
        for (a, b, expect) in [(false, false, true), (true, false, true), (true, true, false)] {
            let inst = nand.instantiate(
                &n,
                &p,
                vdd,
                &waves(&[
                    ("A", Waveform::Dc(if a { vdd } else { 0.0 })),
                    ("B", Waveform::Dc(if b { vdd } else { 0.0 })),
                ]),
                &load("Y", 1e-15),
            );
            let trace = inst.circuit.transient(&TransientConfig::up_to(0.3e-9));
            let y = trace.final_voltage(inst.node("Y").unwrap());
            if expect {
                assert!(y > 0.95 * vdd, "NAND({a},{b}) = {y}");
            } else {
                assert!(y < 0.05 * vdd, "NAND({a},{b}) = {y}");
            }
        }
    }

    #[test]
    fn xor2_truth_by_simulation() {
        let (n, p) = models();
        let cells = CellSet::nangate45_like();
        let xor = cells.get("XOR2_X1").unwrap();
        let vdd = 1.2;
        for (a, b) in [(false, false), (true, false), (false, true), (true, true)] {
            let inst = xor.instantiate(
                &n,
                &p,
                vdd,
                &waves(&[
                    ("A", Waveform::Dc(if a { vdd } else { 0.0 })),
                    ("B", Waveform::Dc(if b { vdd } else { 0.0 })),
                ]),
                &load("Y", 1e-15),
            );
            let trace = inst.circuit.transient(&TransientConfig::up_to(0.3e-9));
            let y = trace.final_voltage(inst.node("Y").unwrap());
            let expect = a ^ b;
            assert_eq!(y > 0.5 * vdd, expect, "XOR({a},{b}) = {y}");
        }
    }

    #[test]
    fn full_adder_truth_by_simulation() {
        let (n, p) = models();
        let cells = CellSet::nangate45_like();
        let fa = cells.get("FA_X1").unwrap();
        let vdd = 1.2;
        for bits in 0..8u32 {
            let (a, b, ci) = (bits & 1 == 1, bits & 2 == 2, bits & 4 == 4);
            let inst = fa.instantiate(
                &n,
                &p,
                vdd,
                &waves(&[
                    ("A", Waveform::Dc(if a { vdd } else { 0.0 })),
                    ("B", Waveform::Dc(if b { vdd } else { 0.0 })),
                    ("CI", Waveform::Dc(if ci { vdd } else { 0.0 })),
                ]),
                &[("S".to_owned(), 1e-15), ("CO".to_owned(), 1e-15)].into_iter().collect(),
            );
            let trace = inst.circuit.transient(&TransientConfig::up_to(0.4e-9));
            let s = trace.final_voltage(inst.node("S").unwrap()) > 0.5 * vdd;
            let co = trace.final_voltage(inst.node("CO").unwrap()) > 0.5 * vdd;
            let sum = u32::from(a) + u32::from(b) + u32::from(ci);
            assert_eq!(s, sum & 1 == 1, "S wrong for {bits:03b}");
            assert_eq!(co, sum >= 2, "CO wrong for {bits:03b}");
        }
    }

    #[test]
    fn dff_captures_on_rising_edge() {
        let (n, p) = models();
        let cells = CellSet::nangate45_like();
        let dff = cells.get("DFF_X1").unwrap();
        let vdd = 1.2;
        // D is high well before the clock edge at 1 ns; Q starts low.
        let inst = dff.instantiate(
            &n,
            &p,
            vdd,
            &waves(&[
                ("D", Waveform::Ramp { t_start: 0.2e-9, duration: 30e-12, from: 0.0, to: vdd }),
                ("CK", Waveform::rising_ramp(1.0e-9, 30e-12, vdd)),
            ]),
            &load("Q", 2e-15),
        );
        let trace = inst.circuit.transient(&TransientConfig::up_to(2.0e-9));
        let q = inst.node("Q").unwrap();
        // Before the edge Q holds the old value (low)...
        let idx_before =
            trace.time().iter().position(|&t| t > 0.9e-9).expect("samples before the edge");
        assert!(trace.voltage(q)[idx_before] < 0.3 * vdd, "Q leaked before clock edge");
        // ...and after the edge it carries D = 1.
        assert!(trace.final_voltage(q) > 0.9 * vdd, "Q = {}", trace.final_voltage(q));
        let delay = trace.delay_after(inst.node("CK").unwrap(), true, q, true, 0.9e-9);
        let delay = delay.expect("clk-to-q edge");
        assert!(delay > 0.0 && delay < 300e-12, "clk→Q = {delay}");
    }

    #[test]
    fn polarity_cards_match_the_two_card_path_bit_for_bit() {
        let (n, p) = models();
        let cells = CellSet::nangate45_like();
        for name in ["INV_X1", "NAND2_X1", "AOI21_X1", "DFF_X1"] {
            let def = cells.get(name).unwrap();
            let a = def.instantiate(&n, &p, 1.2, &BTreeMap::new(), &BTreeMap::new());
            let b = def.instantiate_with(
                &PolarityCards { nmos: &n, pmos: &p },
                1.2,
                &BTreeMap::new(),
                &BTreeMap::new(),
            );
            assert_eq!(a.circuit.device_count(), b.circuit.device_count(), "{name}");
            for (k, (ma, mb)) in
                a.circuit.device_models().zip(b.circuit.device_models()).enumerate()
            {
                assert_eq!(ma, mb, "{name}/{k}");
            }
        }
    }

    #[test]
    fn sampled_cards_vary_per_device_and_replay_deterministically() {
        let (n, p) = models();
        let cells = CellSet::nangate45_like();
        let nand = cells.get("NAND2_X1").unwrap();
        let variation = ptm::VariationModel::nominal_45nm();
        let cards = SampledCards { nmos: &n, pmos: &p, variation: &variation, seed: 0x5eed };
        let a = nand.instantiate_with(&cards, 1.2, &BTreeMap::new(), &BTreeMap::new());
        let b = nand.instantiate_with(&cards, 1.2, &BTreeMap::new(), &BTreeMap::new());
        // Replays are bit-identical; distinct devices of one polarity differ.
        let mut nmos_vths = Vec::new();
        for (ma, mb) in a.circuit.device_models().zip(b.circuit.device_models()) {
            assert_eq!(ma, mb);
            if ma.polarity == MosPolarity::Nmos {
                nmos_vths.push(ma.vth);
            }
        }
        assert!(nmos_vths.len() >= 2);
        assert!(nmos_vths.windows(2).any(|w| w[0] != w[1]), "all devices drew the same card");
        // A different seed produces a different die.
        let other = SampledCards { seed: 0x5eee, ..cards };
        let c = nand.instantiate_with(&other, 1.2, &BTreeMap::new(), &BTreeMap::new());
        assert_ne!(
            a.circuit.device_models().next().unwrap(),
            c.circuit.device_models().next().unwrap()
        );
    }

    #[test]
    fn zero_variance_sampling_is_the_nominal_circuit() {
        let (n, p) = models();
        let cells = CellSet::nangate45_like();
        let inv = cells.get("INV_X1").unwrap();
        let variation = ptm::VariationModel::none();
        let cards = SampledCards { nmos: &n, pmos: &p, variation: &variation, seed: 99 };
        let sampled = inv.instantiate_with(&cards, 1.2, &BTreeMap::new(), &BTreeMap::new());
        let nominal = inv.instantiate(&n, &p, 1.2, &BTreeMap::new(), &BTreeMap::new());
        assert_eq!(sampled.circuit.device_count(), nominal.circuit.device_count());
        for (ms, mn) in sampled.circuit.device_models().zip(nominal.circuit.device_models()) {
            assert_eq!(ms, mn);
        }
    }

    #[test]
    fn unknown_load_pin_panics() {
        let (n, p) = models();
        let cells = CellSet::nangate45_like();
        let inv = cells.get("INV_X1").unwrap();
        let result = std::panic::catch_unwind(|| {
            inv.instantiate(&n, &p, 1.2, &BTreeMap::new(), &load("Z", 1e-15))
        });
        assert!(result.is_err());
    }
}
