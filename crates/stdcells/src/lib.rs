#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! An open 45 nm-style standard cell library at the transistor level.
//!
//! This crate plays the role of the Nangate 45 nm Open Cell Library in the
//! paper's flow: it defines 68 combinational and sequential cells — their
//! boolean functions, their CMOS transistor topologies (pull-down networks
//! with automatically derived dual pull-ups, multi-stage structures,
//! transmission-gate flip-flops) and layout-style parasitics — ready to be
//! instantiated into [`spicesim`] circuits for characterization under fresh
//! or aged transistor models.
//!
//! Pin conventions: combinational inputs are `A`, `B`, `C`, `D`; the output
//! is `Y`. The full adder uses `A`, `B`, `CI` → `S`, `CO`; flip-flops use
//! `D`, `CK` → `Q` (a deviation from Nangate's `A1/A2/ZN` naming, chosen for
//! readability).
//!
//! # Example
//!
//! ```
//! use stdcells::CellSet;
//!
//! let cells = CellSet::nangate45_like();
//! assert_eq!(cells.len(), 68);
//! let nand = cells.get("NAND2_X1").expect("NAND2_X1 exists");
//! assert_eq!(nand.inputs, vec!["A".to_owned(), "B".to_owned()]);
//! assert_eq!(nand.outputs[0].function, "!(A & B)");
//! ```

mod catalog;
mod def;
mod instance;
mod network;

pub use catalog::CellSet;
pub use def::{CellDef, CellOutput, Stage, Topology};
pub use instance::{CardSource, CellInstance, PolarityCards, SampledCards};
pub use network::Network;

/// Unit nMOS width (meters) of a drive-strength-1 stage.
pub const UNIT_NMOS_WIDTH: f64 = 415e-9;
/// Unit pMOS width (meters) of a drive-strength-1 stage (≈ the n/p drive
/// ratio of the 45 nm cards).
pub const UNIT_PMOS_WIDTH: f64 = 630e-9;
