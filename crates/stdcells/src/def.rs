use crate::network::Network;
use liberty::{BoolExpr, TimingSense};

/// Number of devices in `net` gated by `pin`.
fn count_leaves(net: &Network, pin: &str) -> usize {
    match net {
        Network::Input(s) => usize::from(s == pin),
        Network::Series(c) | Network::Parallel(c) => c.iter().map(|x| count_leaves(x, pin)).sum(),
    }
}

/// One static-CMOS stage of a cell: a pull-down network driving a named
/// signal, with the pull-up derived as the structural dual.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// The signal this stage drives (an output pin or an internal node).
    pub output: String,
    /// The nMOS pull-down network; pull-up is [`Network::dual`].
    pub pulldown: Network,
    /// Drive-strength multiplier of this stage's device widths.
    pub strength: f64,
}

/// Transistor-level structure of a cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Topology {
    /// A cascade of static CMOS stages evaluated in order; later stages may
    /// use earlier stage outputs as gate signals.
    Stages(Vec<Stage>),
    /// A positive-edge master–slave transmission-gate D flip-flop.
    Flop {
        /// Output drive-strength multiplier.
        strength: f64,
    },
}

/// An output pin of a cell with its boolean function (Liberty syntax).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellOutput {
    /// Pin name.
    pub pin: String,
    /// Function over the input pins, e.g. `"!(A & B)"`.
    pub function: String,
}

/// A standard-cell definition: logic interface plus transistor topology.
///
/// # Example
///
/// ```
/// use stdcells::CellSet;
///
/// let cells = CellSet::nangate45_like();
/// let xor = cells.get("XOR2_X1").unwrap();
/// // XOR inputs are non-unate: both output edges can follow either input edge.
/// let sense = xor.timing_sense("A", "Y").unwrap();
/// assert_eq!(sense, liberty::TimingSense::NonUnate);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CellDef {
    /// Cell name including drive strength, e.g. `NAND2_X1`.
    pub name: String,
    /// Input pin names in canonical order.
    pub inputs: Vec<String>,
    /// Output pins with functions.
    pub outputs: Vec<CellOutput>,
    /// Transistor-level structure.
    pub topology: Topology,
}

impl CellDef {
    /// True for sequential cells.
    #[must_use]
    pub fn is_sequential(&self) -> bool {
        matches!(self.topology, Topology::Flop { .. })
    }

    /// The parsed boolean function of output `pin`.
    ///
    /// # Panics
    ///
    /// Panics if the stored function text is malformed (a catalog bug) or
    /// the pin does not exist.
    #[must_use]
    pub fn function(&self, pin: &str) -> BoolExpr {
        let out = self
            .outputs
            .iter()
            .find(|o| o.pin == pin)
            .unwrap_or_else(|| panic!("cell {} has no output {pin}", self.name));
        BoolExpr::parse(&out.function)
            .unwrap_or_else(|e| panic!("cell {} function '{}': {e}", self.name, out.function))
    }

    /// Total transistor count of the cell.
    #[must_use]
    pub fn device_count(&self) -> usize {
        match &self.topology {
            Topology::Stages(stages) => stages
                .iter()
                .map(|s| s.pulldown.device_count() + s.pulldown.dual().device_count())
                .sum(),
            // 4 TGs (8) + 5 inverters (10) + clock buffer (4).
            Topology::Flop { .. } => 22,
        }
    }

    /// Sum of all device widths in meters — the basis of the area model.
    #[must_use]
    pub fn total_width(&self) -> f64 {
        match &self.topology {
            Topology::Stages(stages) => stages
                .iter()
                .map(|s| {
                    let nw = crate::UNIT_NMOS_WIDTH * s.strength * s.pulldown.device_count() as f64;
                    let pu = s.pulldown.dual();
                    let pw = crate::UNIT_PMOS_WIDTH
                        * s.strength
                        * pu.series_depth() as f64
                        * pu.device_count() as f64;
                    nw + pw
                })
                .sum(),
            Topology::Flop { strength } => {
                // Internal devices near unit width plus a scaled output stage.
                20.0 * (crate::UNIT_NMOS_WIDTH + crate::UNIT_PMOS_WIDTH) / 2.0
                    + strength * (crate::UNIT_NMOS_WIDTH + crate::UNIT_PMOS_WIDTH)
            }
        }
    }

    /// Layout area estimate in µm², linear in total device width with a
    /// fixed per-cell overhead (calibrated to Nangate-like magnitudes).
    #[must_use]
    pub fn area(&self) -> f64 {
        self.total_width() * 1e6 * 0.45 + 0.25
    }

    /// Capacitance presented by input `pin`: the summed gate capacitance of
    /// every device the pin drives, under the given transistor models.
    #[must_use]
    pub fn input_capacitance(&self, pin: &str, nmos: &ptm::MosModel, pmos: &ptm::MosModel) -> f64 {
        match &self.topology {
            Topology::Stages(stages) => {
                let mut cap = 0.0;
                for s in stages {
                    let count = count_leaves(&s.pulldown, pin);
                    if count == 0 {
                        continue;
                    }
                    let wn = crate::UNIT_NMOS_WIDTH * s.strength;
                    let pu = s.pulldown.dual();
                    let wp = crate::UNIT_PMOS_WIDTH * s.strength * pu.series_depth() as f64;
                    cap += count as f64 * (nmos.gate_capacitance(wn) + pmos.gate_capacitance(wp));
                }
                cap
            }
            Topology::Flop { .. } => {
                // D drives one transmission gate; CK drives the clock
                // buffer's first inverter.
                let unit = nmos.gate_capacitance(crate::UNIT_NMOS_WIDTH)
                    + pmos.gate_capacitance(crate::UNIT_PMOS_WIDTH);
                match pin {
                    "D" | "CK" => unit,
                    _ => 0.0,
                }
            }
        }
    }

    /// Determines the unateness of the `(input, output)` arc from the
    /// output's truth table. Returns `None` if the output does not actually
    /// depend on `input`.
    #[must_use]
    pub fn timing_sense(&self, input: &str, output: &str) -> Option<TimingSense> {
        let f = self.function(output);
        let others: Vec<&String> = self.inputs.iter().filter(|i| *i != input).collect();
        let eval_at = |x: bool, bits: u32| {
            f.eval(&|pin: &str| {
                if pin == input {
                    x
                } else {
                    others.iter().position(|o| *o == pin).is_some_and(|i| bits >> i & 1 == 1)
                }
            })
        };
        let mut can_rise_with_input = false; // f goes 0→1 when input rises
        let mut can_fall_with_input = false; // f goes 1→0 when input rises
        for bits in 0..(1u32 << others.len()) {
            let low = eval_at(false, bits);
            let high = eval_at(true, bits);
            if !low && high {
                can_rise_with_input = true;
            }
            if low && !high {
                can_fall_with_input = true;
            }
        }
        match (can_rise_with_input, can_fall_with_input) {
            (true, false) => Some(TimingSense::PositiveUnate),
            (false, true) => Some(TimingSense::NegativeUnate),
            (true, true) => Some(TimingSense::NonUnate),
            (false, false) => None,
        }
    }

    /// Finds an assignment of the *other* inputs that makes `output`
    /// sensitive to `input` (the boolean difference is 1), preferring the
    /// assignment with the fewest inputs held high. Returns pin/value pairs
    /// for the other inputs.
    #[must_use]
    pub fn sensitizing_assignment(&self, input: &str, output: &str) -> Option<Vec<(String, bool)>> {
        let f = self.function(output);
        let others: Vec<&String> = self.inputs.iter().filter(|i| *i != input).collect();
        let eval_at = |x: bool, bits: u32| {
            f.eval(&|pin: &str| {
                if pin == input {
                    x
                } else {
                    others.iter().position(|o| *o == pin).is_some_and(|i| bits >> i & 1 == 1)
                }
            })
        };
        let mut best: Option<(u32, u32)> = None; // (popcount, bits)
        for bits in 0..(1u32 << others.len()) {
            if eval_at(false, bits) != eval_at(true, bits) {
                let pop = bits.count_ones();
                if best.is_none_or(|(bp, _)| pop < bp) {
                    best = Some((pop, bits));
                }
            }
        }
        best.map(|(_, bits)| {
            others.iter().enumerate().map(|(i, pin)| ((*pin).clone(), bits >> i & 1 == 1)).collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellSet;

    #[test]
    fn nand_sense_negative_unate() {
        let cells = CellSet::nangate45_like();
        let nand = cells.get("NAND2_X1").unwrap();
        assert_eq!(nand.timing_sense("A", "Y"), Some(TimingSense::NegativeUnate));
        let and = cells.get("AND2_X1").unwrap();
        assert_eq!(and.timing_sense("B", "Y"), Some(TimingSense::PositiveUnate));
        let xor = cells.get("XOR2_X1").unwrap();
        assert_eq!(xor.timing_sense("A", "Y"), Some(TimingSense::NonUnate));
    }

    #[test]
    fn sensitization_nand() {
        let cells = CellSet::nangate45_like();
        let nand3 = cells.get("NAND3_X1").unwrap();
        let side = nand3.sensitizing_assignment("A", "Y").unwrap();
        // NAND needs all other inputs high to be sensitive.
        assert!(side.iter().all(|(_, v)| *v));
        assert_eq!(side.len(), 2);
        let nor3 = cells.get("NOR3_X1").unwrap();
        let side = nor3.sensitizing_assignment("B", "Y").unwrap();
        // NOR needs all other inputs low.
        assert!(side.iter().all(|(_, v)| !*v));
    }

    #[test]
    fn area_grows_with_strength() {
        let cells = CellSet::nangate45_like();
        let x1 = cells.get("INV_X1").unwrap().area();
        let x4 = cells.get("INV_X4").unwrap().area();
        assert!(x4 > 2.0 * x1, "INV_X4 area {x4} vs X1 {x1}");
        // Plausible magnitudes (Nangate INV_X1 is 0.53 µm²).
        assert!(x1 > 0.2 && x1 < 2.0, "INV_X1 area = {x1}");
    }

    #[test]
    fn device_counts() {
        let cells = CellSet::nangate45_like();
        assert_eq!(cells.get("INV_X1").unwrap().device_count(), 2);
        assert_eq!(cells.get("NAND2_X1").unwrap().device_count(), 4);
        assert_eq!(cells.get("AND2_X1").unwrap().device_count(), 6);
        assert_eq!(cells.get("FA_X1").unwrap().device_count(), 28);
        assert_eq!(cells.get("DFF_X1").unwrap().device_count(), 22);
    }

    #[test]
    fn function_parses_for_all_cells() {
        let cells = CellSet::nangate45_like();
        for cell in cells.iter() {
            for out in &cell.outputs {
                let f = cell.function(&out.pin);
                for v in f.vars() {
                    assert!(
                        cell.inputs.contains(&v),
                        "cell {} function references unknown pin {v}",
                        cell.name
                    );
                }
            }
        }
    }
}
