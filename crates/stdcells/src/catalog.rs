//! The cell catalog: 68 combinational and sequential cells mirroring the
//! composition of the Nangate 45 nm Open Cell Library used in the paper
//! (inverters/buffers across six drive strengths, 2–4 input NAND/NOR/AND/OR,
//! XOR/XNOR, AOI/OAI complex gates, a mux, half/full adders and flip-flops).

use crate::def::{CellDef, CellOutput, Stage, Topology};
use crate::network::Network;

/// A collection of [`CellDef`]s with name lookup.
///
/// # Example
///
/// ```
/// use stdcells::CellSet;
///
/// let all = CellSet::nangate45_like();
/// assert_eq!(all.len(), 68);
/// let mini = CellSet::minimal();
/// assert!(mini.len() < 15);
/// assert!(mini.get("NAND2_X1").is_some());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CellSet {
    defs: Vec<CellDef>,
}

impl CellSet {
    /// The full 68-cell library.
    #[must_use]
    pub fn nangate45_like() -> Self {
        let mut defs = Vec::with_capacity(68);
        for s in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
            defs.push(inverter(s));
            defs.push(buffer(s));
        }
        for s in [1.0, 2.0, 4.0] {
            for n in 2..=4 {
                defs.push(nand(n, s));
                defs.push(nor(n, s));
                defs.push(and(n, s));
                defs.push(or(n, s));
            }
            defs.push(aoi21(s));
            defs.push(oai21(s));
        }
        for s in [1.0, 2.0] {
            defs.push(xor2(s));
            defs.push(xnor2(s));
            defs.push(aoi22(s));
            defs.push(oai22(s));
            defs.push(mux2(s));
            defs.push(dff(s));
        }
        defs.push(half_adder());
        defs.push(full_adder());
        CellSet { defs }
    }

    /// A small subset for fast tests: inverters, buffer, 2-input gates and
    /// a flip-flop — enough to map any logic.
    #[must_use]
    pub fn minimal() -> Self {
        let keep = [
            "INV_X1", "INV_X2", "INV_X4", "BUF_X2", "NAND2_X1", "NAND2_X2", "NOR2_X1", "NOR2_X2",
            "AND2_X1", "OR2_X1", "XOR2_X1", "DFF_X1",
        ];
        let all = Self::nangate45_like();
        CellSet { defs: all.defs.into_iter().filter(|d| keep.contains(&d.name.as_str())).collect() }
    }

    /// Restricts the set to the named cells (unknown names are ignored).
    #[must_use]
    pub fn subset(&self, names: &[&str]) -> Self {
        CellSet {
            defs: self.defs.iter().filter(|d| names.contains(&d.name.as_str())).cloned().collect(),
        }
    }

    /// Restricts the set to the named cells, rejecting names the catalog
    /// does not contain (unlike [`CellSet::subset`], which drops them).
    ///
    /// # Errors
    ///
    /// Returns the first unresolvable name.
    pub fn checked_subset(&self, names: &[&str]) -> Result<Self, String> {
        for name in names {
            if self.get(name).is_none() {
                return Err((*name).to_owned());
            }
        }
        Ok(self.subset(names))
    }

    /// Looks up a cell by exact name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&CellDef> {
        self.defs.iter().find(|d| d.name == name)
    }

    /// Iterates over all cell definitions.
    pub fn iter(&self) -> impl Iterator<Item = &CellDef> {
        self.defs.iter()
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True if the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }
}

const INPUT_NAMES: [&str; 4] = ["A", "B", "C", "D"];

fn strength_name(base: &str, s: f64) -> String {
    format!("{base}_X{}", s as u32)
}

fn single_output(function: &str) -> Vec<CellOutput> {
    vec![CellOutput { pin: "Y".into(), function: function.to_owned() }]
}

fn inputs(n: usize) -> Vec<String> {
    INPUT_NAMES[..n].iter().map(|s| (*s).to_owned()).collect()
}

fn inverter(s: f64) -> CellDef {
    CellDef {
        name: strength_name("INV", s),
        inputs: inputs(1),
        outputs: single_output("!A"),
        topology: Topology::Stages(vec![Stage {
            output: "Y".into(),
            pulldown: Network::input("A"),
            strength: s,
        }]),
    }
}

fn buffer(s: f64) -> CellDef {
    CellDef {
        name: strength_name("BUF", s),
        inputs: inputs(1),
        outputs: single_output("A"),
        topology: Topology::Stages(vec![
            Stage {
                output: "n1".into(),
                pulldown: Network::input("A"),
                strength: (s / 3.0).max(0.5),
            },
            Stage { output: "Y".into(), pulldown: Network::input("n1"), strength: s },
        ]),
    }
}

fn nand(n: usize, s: f64) -> CellDef {
    let pins = inputs(n);
    let refs: Vec<&str> = pins.iter().map(String::as_str).collect();
    CellDef {
        name: strength_name(&format!("NAND{n}"), s),
        outputs: single_output(&format!("!({})", pins.join(" & "))),
        topology: Topology::Stages(vec![Stage {
            output: "Y".into(),
            pulldown: Network::series_of(&refs),
            strength: s,
        }]),
        inputs: pins,
    }
}

fn nor(n: usize, s: f64) -> CellDef {
    let pins = inputs(n);
    let refs: Vec<&str> = pins.iter().map(String::as_str).collect();
    CellDef {
        name: strength_name(&format!("NOR{n}"), s),
        outputs: single_output(&format!("!({})", pins.join(" | "))),
        topology: Topology::Stages(vec![Stage {
            output: "Y".into(),
            pulldown: Network::parallel_of(&refs),
            strength: s,
        }]),
        inputs: pins,
    }
}

fn and(n: usize, s: f64) -> CellDef {
    let pins = inputs(n);
    let refs: Vec<&str> = pins.iter().map(String::as_str).collect();
    CellDef {
        name: strength_name(&format!("AND{n}"), s),
        outputs: single_output(&pins.join(" & ")),
        topology: Topology::Stages(vec![
            Stage {
                output: "n1".into(),
                pulldown: Network::series_of(&refs),
                strength: (s / 2.0).max(0.5),
            },
            Stage { output: "Y".into(), pulldown: Network::input("n1"), strength: s },
        ]),
        inputs: pins,
    }
}

fn or(n: usize, s: f64) -> CellDef {
    let pins = inputs(n);
    let refs: Vec<&str> = pins.iter().map(String::as_str).collect();
    CellDef {
        name: strength_name(&format!("OR{n}"), s),
        outputs: single_output(&pins.join(" | ")),
        topology: Topology::Stages(vec![
            Stage {
                output: "n1".into(),
                pulldown: Network::parallel_of(&refs),
                strength: (s / 2.0).max(0.5),
            },
            Stage { output: "Y".into(), pulldown: Network::input("n1"), strength: s },
        ]),
        inputs: pins,
    }
}

fn xor2(s: f64) -> CellDef {
    CellDef {
        name: strength_name("XOR2", s),
        inputs: inputs(2),
        outputs: single_output("A ^ B"),
        topology: Topology::Stages(vec![
            Stage { output: "an".into(), pulldown: Network::input("A"), strength: 0.5 },
            Stage { output: "bn".into(), pulldown: Network::input("B"), strength: 0.5 },
            Stage {
                output: "Y".into(),
                // Conducts when A == B, so the output node is A ⊕ B.
                pulldown: Network::Parallel(vec![
                    Network::series_of(&["A", "B"]),
                    Network::series_of(&["an", "bn"]),
                ]),
                strength: s,
            },
        ]),
    }
}

fn xnor2(s: f64) -> CellDef {
    CellDef {
        name: strength_name("XNOR2", s),
        inputs: inputs(2),
        outputs: single_output("!(A ^ B)"),
        topology: Topology::Stages(vec![
            Stage { output: "an".into(), pulldown: Network::input("A"), strength: 0.5 },
            Stage { output: "bn".into(), pulldown: Network::input("B"), strength: 0.5 },
            Stage {
                output: "Y".into(),
                // Conducts when A != B, so the output node is !(A ⊕ B).
                pulldown: Network::Parallel(vec![
                    Network::series_of(&["A", "bn"]),
                    Network::series_of(&["an", "B"]),
                ]),
                strength: s,
            },
        ]),
    }
}

fn aoi21(s: f64) -> CellDef {
    CellDef {
        name: strength_name("AOI21", s),
        inputs: inputs(3),
        outputs: single_output("!((A & B) | C)"),
        topology: Topology::Stages(vec![Stage {
            output: "Y".into(),
            pulldown: Network::Parallel(vec![Network::series_of(&["A", "B"]), Network::input("C")]),
            strength: s,
        }]),
    }
}

fn aoi22(s: f64) -> CellDef {
    CellDef {
        name: strength_name("AOI22", s),
        inputs: inputs(4),
        outputs: single_output("!((A & B) | (C & D))"),
        topology: Topology::Stages(vec![Stage {
            output: "Y".into(),
            pulldown: Network::Parallel(vec![
                Network::series_of(&["A", "B"]),
                Network::series_of(&["C", "D"]),
            ]),
            strength: s,
        }]),
    }
}

fn oai21(s: f64) -> CellDef {
    CellDef {
        name: strength_name("OAI21", s),
        inputs: inputs(3),
        outputs: single_output("!((A | B) & C)"),
        topology: Topology::Stages(vec![Stage {
            output: "Y".into(),
            pulldown: Network::Series(vec![Network::parallel_of(&["A", "B"]), Network::input("C")]),
            strength: s,
        }]),
    }
}

fn oai22(s: f64) -> CellDef {
    CellDef {
        name: strength_name("OAI22", s),
        inputs: inputs(4),
        outputs: single_output("!((A | B) & (C | D))"),
        topology: Topology::Stages(vec![Stage {
            output: "Y".into(),
            pulldown: Network::Series(vec![
                Network::parallel_of(&["A", "B"]),
                Network::parallel_of(&["C", "D"]),
            ]),
            strength: s,
        }]),
    }
}

fn mux2(s: f64) -> CellDef {
    CellDef {
        name: strength_name("MUX2", s),
        inputs: vec!["A".into(), "B".into(), "S".into()],
        outputs: single_output("(A & S) | (B & !S)"),
        topology: Topology::Stages(vec![
            Stage { output: "sn".into(), pulldown: Network::input("S"), strength: 0.5 },
            Stage {
                output: "yn".into(),
                pulldown: Network::Parallel(vec![
                    Network::series_of(&["A", "S"]),
                    Network::series_of(&["B", "sn"]),
                ]),
                strength: (s / 2.0).max(0.5),
            },
            Stage { output: "Y".into(), pulldown: Network::input("yn"), strength: s },
        ]),
    }
}

fn half_adder() -> CellDef {
    CellDef {
        name: "HA_X1".into(),
        inputs: inputs(2),
        outputs: vec![
            CellOutput { pin: "S".into(), function: "A ^ B".into() },
            CellOutput { pin: "CO".into(), function: "A & B".into() },
        ],
        topology: Topology::Stages(vec![
            Stage { output: "an".into(), pulldown: Network::input("A"), strength: 0.5 },
            Stage { output: "bn".into(), pulldown: Network::input("B"), strength: 0.5 },
            Stage {
                output: "S".into(),
                pulldown: Network::Parallel(vec![
                    Network::series_of(&["A", "B"]),
                    Network::series_of(&["an", "bn"]),
                ]),
                strength: 1.0,
            },
            Stage {
                output: "con".into(),
                pulldown: Network::series_of(&["A", "B"]),
                strength: 0.5,
            },
            Stage { output: "CO".into(), pulldown: Network::input("con"), strength: 1.0 },
        ]),
    }
}

fn full_adder() -> CellDef {
    CellDef {
        name: "FA_X1".into(),
        inputs: vec!["A".into(), "B".into(), "CI".into()],
        outputs: vec![
            CellOutput { pin: "S".into(), function: "A ^ B ^ CI".into() },
            CellOutput { pin: "CO".into(), function: "(A & B) | (CI & (A | B))".into() },
        ],
        // The classic CMOS mirror adder: carry-out-bar, sum-bar, inverters.
        topology: Topology::Stages(vec![
            Stage {
                output: "con".into(),
                pulldown: Network::Parallel(vec![
                    Network::series_of(&["A", "B"]),
                    Network::Series(vec![Network::input("CI"), Network::parallel_of(&["A", "B"])]),
                ]),
                strength: 1.0,
            },
            Stage {
                output: "sn".into(),
                pulldown: Network::Parallel(vec![
                    Network::series_of(&["A", "B", "CI"]),
                    Network::Series(vec![
                        Network::input("con"),
                        Network::parallel_of(&["A", "B", "CI"]),
                    ]),
                ]),
                strength: 1.0,
            },
            Stage { output: "S".into(), pulldown: Network::input("sn"), strength: 1.0 },
            Stage { output: "CO".into(), pulldown: Network::input("con"), strength: 1.0 },
        ]),
    }
}

fn dff(s: f64) -> CellDef {
    CellDef {
        name: strength_name("DFF", s),
        inputs: vec!["D".into(), "CK".into()],
        outputs: vec![CellOutput { pin: "Q".into(), function: "D".into() }],
        topology: Topology::Flop { strength: s },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn full_set_is_68_unique_cells() {
        let set = CellSet::nangate45_like();
        assert_eq!(set.len(), 68);
        let names: BTreeSet<&str> = set.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names.len(), 68, "duplicate cell names");
    }

    #[test]
    fn expected_families_present() {
        let set = CellSet::nangate45_like();
        for name in [
            "INV_X1", "INV_X32", "BUF_X8", "NAND2_X1", "NAND4_X4", "NOR3_X2", "AND4_X1", "OR2_X4",
            "XOR2_X2", "XNOR2_X1", "AOI21_X2", "AOI22_X1", "OAI21_X4", "OAI22_X2", "MUX2_X1",
            "HA_X1", "FA_X1", "DFF_X1", "DFF_X2",
        ] {
            assert!(set.get(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn multi_stage_share_of_library() {
        // The paper notes multi-stage cells can exceed 50 % of a library;
        // ours is majority multi-stage too.
        let set = CellSet::nangate45_like();
        let multi = set
            .iter()
            .filter(|d| match &d.topology {
                Topology::Stages(st) => st.len() > 1,
                Topology::Flop { .. } => true,
            })
            .count();
        assert!(
            multi * 2 >= set.len(),
            "expected at least half multi-stage, got {multi}/{}",
            set.len()
        );
    }

    #[test]
    fn functions_match_pulldown_complement() {
        // For every single-stage cell the output function must equal the
        // complement of the pull-down conduction condition.
        let set = CellSet::nangate45_like();
        for def in set.iter() {
            let Topology::Stages(stages) = &def.topology else { continue };
            if stages.len() != 1 {
                continue;
            }
            let stage = &stages[0];
            let f = def.function(&def.outputs[0].pin);
            for bits in 0..(1u32 << def.inputs.len()) {
                let assign = |pin: &str| {
                    def.inputs.iter().position(|p| p == pin).is_some_and(|i| bits >> i & 1 == 1)
                };
                assert_eq!(
                    f.eval(&assign),
                    !stage.pulldown.conducts(&assign),
                    "{}: function vs topology mismatch at {bits:b}",
                    def.name
                );
            }
        }
    }

    #[test]
    fn minimal_subset() {
        let mini = CellSet::minimal();
        assert!(mini.len() >= 10 && mini.len() <= 14);
        assert!(mini.get("DFF_X1").is_some());
        assert!(mini.get("NAND4_X1").is_none());
        let sub = CellSet::nangate45_like().subset(&["INV_X1", "NOPE"]);
        assert_eq!(sub.len(), 1);
    }

    #[test]
    fn checked_subset_rejects_unknown_names() {
        let all = CellSet::nangate45_like();
        assert_eq!(all.checked_subset(&["INV_X1", "NOPE"]), Err("NOPE".to_owned()));
        let sub = all.checked_subset(&["INV_X1", "DFF_X1"]).unwrap();
        assert_eq!(sub.len(), 2);
    }
}
