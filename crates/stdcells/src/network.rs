/// A series/parallel transistor network, expressed over *signal names*
/// (cell input pins or internal stage outputs).
///
/// A [`Network`] describes a pull-down network: an nMOS device per
/// [`Network::Input`] leaf, conducting when its signal is high. The matching
/// pull-up network of a static CMOS stage is the structural [dual]
/// (series ↔ parallel) built from pMOS devices, which conduct when their
/// signal is low — so `pulldown.conducts(assign)` and
/// `pulldown.dual().conducts_pullup(assign)` are always complementary.
///
/// [dual]: Network::dual
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Network {
    /// A single transistor gated by the named signal.
    Input(String),
    /// Series connection: conducts when **all** children conduct.
    Series(Vec<Network>),
    /// Parallel connection: conducts when **any** child conducts.
    Parallel(Vec<Network>),
}

impl Network {
    /// Leaf constructor from a signal name.
    #[must_use]
    pub fn input(name: &str) -> Self {
        Network::Input(name.to_owned())
    }

    /// Series of leaves, one per name.
    #[must_use]
    pub fn series_of(names: &[&str]) -> Self {
        Network::Series(names.iter().map(|n| Self::input(n)).collect())
    }

    /// Parallel of leaves, one per name.
    #[must_use]
    pub fn parallel_of(names: &[&str]) -> Self {
        Network::Parallel(names.iter().map(|n| Self::input(n)).collect())
    }

    /// The structural dual: series ↔ parallel with identical leaves. Applied
    /// to a pull-down network it yields the static-CMOS pull-up network.
    #[must_use]
    pub fn dual(&self) -> Self {
        match self {
            Network::Input(n) => Network::Input(n.clone()),
            Network::Series(c) => Network::Parallel(c.iter().map(Network::dual).collect()),
            Network::Parallel(c) => Network::Series(c.iter().map(Network::dual).collect()),
        }
    }

    /// Whether an **nMOS** network conducts under `assign` (device on when
    /// its gate signal is true).
    pub fn conducts(&self, assign: &impl Fn(&str) -> bool) -> bool {
        match self {
            Network::Input(n) => assign(n),
            Network::Series(c) => c.iter().all(|x| x.conducts(assign)),
            Network::Parallel(c) => c.iter().any(|x| x.conducts(assign)),
        }
    }

    /// Whether a **pMOS** network conducts under `assign` (device on when
    /// its gate signal is false).
    pub fn conducts_pullup(&self, assign: &impl Fn(&str) -> bool) -> bool {
        match self {
            Network::Input(n) => !assign(n),
            Network::Series(c) => c.iter().all(|x| x.conducts_pullup(assign)),
            Network::Parallel(c) => c.iter().any(|x| x.conducts_pullup(assign)),
        }
    }

    /// The longest series stack depth (number of devices between the output
    /// node and the rail on the deepest path) — drives width up-sizing.
    #[must_use]
    pub fn series_depth(&self) -> usize {
        match self {
            Network::Input(_) => 1,
            Network::Series(c) => c.iter().map(Network::series_depth).sum(),
            Network::Parallel(c) => c.iter().map(Network::series_depth).max().unwrap_or(0),
        }
    }

    /// Number of transistors in the network.
    #[must_use]
    pub fn device_count(&self) -> usize {
        match self {
            Network::Input(_) => 1,
            Network::Series(c) | Network::Parallel(c) => c.iter().map(Network::device_count).sum(),
        }
    }

    /// The distinct signal names gating devices of this network, in first-
    /// appearance order.
    #[must_use]
    pub fn signals(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_signals(&mut out);
        out
    }

    fn collect_signals(&self, out: &mut Vec<String>) {
        match self {
            Network::Input(n) => {
                if !out.contains(n) {
                    out.push(n.clone());
                }
            }
            Network::Series(c) | Network::Parallel(c) => {
                c.iter().for_each(|x| x.collect_signals(out));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nand2() -> Network {
        Network::series_of(&["A", "B"])
    }

    fn assign<'a>(high: &'a [&'a str]) -> impl Fn(&str) -> bool + 'a {
        move |s: &str| high.contains(&s)
    }

    #[test]
    fn series_parallel_conduction() {
        let pd = nand2();
        assert!(pd.conducts(&assign(&["A", "B"])));
        assert!(!pd.conducts(&assign(&["A"])));
        let nor_pd = Network::parallel_of(&["A", "B"]);
        assert!(nor_pd.conducts(&assign(&["B"])));
        assert!(!nor_pd.conducts(&assign(&[])));
    }

    #[test]
    fn dual_is_complementary() {
        // Static CMOS invariant: exactly one of pull-down (nMOS) and dual
        // pull-up (pMOS) conducts for every input assignment.
        let pulldowns = [
            nand2(),
            Network::parallel_of(&["A", "B", "C"]),
            Network::Parallel(vec![
                Network::series_of(&["A", "B"]),
                Network::series_of(&["C", "D"]),
            ]),
            Network::Series(vec![Network::input("A"), Network::parallel_of(&["B", "C"])]),
        ];
        for pd in &pulldowns {
            let pu = pd.dual();
            let signals = pd.signals();
            for bits in 0..(1u32 << signals.len()) {
                let f = |s: &str| {
                    signals.iter().position(|x| x == s).is_some_and(|i| bits >> i & 1 == 1)
                };
                assert_ne!(pd.conducts(&f), pu.conducts_pullup(&f), "{pd:?} @ {bits:b}");
            }
        }
    }

    #[test]
    fn depth_and_count() {
        let aoi22 = Network::Parallel(vec![
            Network::series_of(&["A", "B"]),
            Network::series_of(&["C", "D"]),
        ]);
        assert_eq!(aoi22.series_depth(), 2);
        assert_eq!(aoi22.device_count(), 4);
        assert_eq!(aoi22.dual().series_depth(), 2);
        let oai21 = Network::Series(vec![Network::input("A"), Network::parallel_of(&["B", "C"])]);
        assert_eq!(oai21.series_depth(), 2);
        assert_eq!(oai21.dual().series_depth(), 2);
        assert_eq!(Network::input("X").series_depth(), 1);
    }

    #[test]
    fn signal_collection_dedupes() {
        let x = Network::Parallel(vec![
            Network::series_of(&["A", "B"]),
            Network::series_of(&["A", "C"]),
        ]);
        assert_eq!(x.signals(), vec!["A".to_owned(), "B".to_owned(), "C".to_owned()]);
    }
}
