//! `TM001`: operating conditions outside the characterized table axes.
//!
//! [`Table2d::value`](liberty::Table2d::value) extrapolates linearly from
//! the edge gradient when a lookup leaves the grid — silently, matching STA
//! tool behavior. Extrapolated delays have no characterization data behind
//! them, so this rule recomputes the same operating conditions STA will use
//! (the wire-load model of the library plus the configured boundary
//! conditions) and warns where a lookup would leave the grid.

use crate::{Diagnostic, LintConfig, Location, Rule};
use liberty::Library;
use netlist::{Netlist, PortDir};
use std::collections::BTreeSet;

pub(crate) fn check(
    netlist: &Netlist,
    library: &Library,
    config: &LintConfig,
    out: &mut Vec<Diagnostic>,
) {
    let input_slew = config.input_slew.unwrap_or(library.default_input_slew);
    let output_load = config.output_load.unwrap_or(library.default_output_load);

    // The boundary input slew is applied at every cell eventually, so the
    // slew-axis check is a per-cell property: dedupe on cell name.
    let mut slew_checked: BTreeSet<&str> = BTreeSet::new();

    let n_nets = netlist.net_count();
    let mut sink_cap = vec![0.0f64; n_nets];
    let mut fanout = vec![0usize; n_nets];
    let mut is_output_port = vec![false; n_nets];
    for port in netlist.ports() {
        if port.dir == PortDir::Output {
            is_output_port[port.net.index()] = true;
        }
    }
    for inst in netlist.instances() {
        let Some(cell) = library.cell(&inst.cell) else { continue };
        for (pin, net) in &inst.connections {
            if let Some(cap) = cell.input_cap(pin) {
                sink_cap[net.index()] += cap;
                fanout[net.index()] += 1;
            }
        }
    }

    for inst in netlist.instances() {
        let Some(cell) = library.cell(&inst.cell) else { continue };

        if slew_checked.insert(&inst.cell) {
            if let Some((lo, hi)) = axis_range(cell, |t| t.slew_axis()) {
                if input_slew < lo || input_slew > hi {
                    out.push(Diagnostic::new(
                        Rule::Extrapolation,
                        Location::Cell { cell: cell.name.clone() },
                        format!(
                            "input slew {input_slew:.3e} s is outside the characterized slew axis \
                             [{lo:.3e}, {hi:.3e}] s — delays will be extrapolated"
                        ),
                    ));
                }
            }
        }

        for output in &cell.outputs {
            let Some(net) = inst.net_on(&output.name) else { continue };
            let k = net.index();
            let mut load = sink_cap[k] + library.wire_cap_per_fanout * fanout[k] as f64;
            if is_output_port[k] {
                load += output_load;
            }
            if let Some((lo, hi)) = axis_range(cell, |t| t.load_axis()) {
                if load < lo || load > hi {
                    out.push(Diagnostic::new(
                        Rule::Extrapolation,
                        Location::Instance { instance: inst.name.clone() },
                        format!(
                            "pin {} drives {:.3e} F on net {} but cell {} is characterized \
                             for loads in [{lo:.3e}, {hi:.3e}] F — delays will be extrapolated",
                            output.name,
                            load,
                            netlist.net_name(net),
                            cell.name
                        ),
                    ));
                    break; // one diagnostic per instance is enough
                }
            }
        }
    }
}

/// The union of `axis` ranges across all tables of the cell; `None` for a
/// cell with no arcs (that is `LB003`'s problem, not ours).
fn axis_range(
    cell: &liberty::Cell,
    axis: impl Fn(&liberty::Table2d) -> &[f64],
) -> Option<(f64, f64)> {
    let mut range: Option<(f64, f64)> = None;
    for pin in &cell.outputs {
        for arc in &pin.arcs {
            for table in
                [&arc.cell_rise, &arc.cell_fall, &arc.rise_transition, &arc.fall_transition]
            {
                let ax = axis(table);
                let (first, last) = (*ax.first()?, *ax.last()?);
                range = Some(match range {
                    None => (first, last),
                    Some((lo, hi)) => (lo.min(first), hi.max(last)),
                });
            }
        }
    }
    range
}

#[cfg(test)]
mod tests {
    use super::*;
    use liberty::Cell;

    /// `test_inverter` axes: slew [5e-12, 900e-12], load [0.5e-15, 20e-15].
    fn lib() -> Library {
        let mut lib = Library::new("lib", 1.2);
        lib.add_cell(Cell::test_inverter("INV_X1"));
        lib
    }

    fn chain() -> Netlist {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        let n1 = nl.add_net("n1");
        nl.add_instance("u0", "INV_X1", &[("A", a), ("Y", n1)]);
        nl.add_instance("u1", "INV_X1", &[("A", n1), ("Y", y)]);
        nl
    }

    fn run(nl: &Netlist, config: &LintConfig) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check(nl, &lib(), config, &mut out);
        out
    }

    #[test]
    fn defaults_inside_grid_are_silent() {
        assert!(run(&chain(), &LintConfig::default()).is_empty());
    }

    #[test]
    fn oversized_output_load_flagged_on_the_driving_instance() {
        let config = LintConfig { output_load: Some(50e-15), ..LintConfig::default() };
        let diags = run(&chain(), &config);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, Rule::Extrapolation);
        // u1 drives the primary output; u0's load stays internal.
        assert_eq!(diags[0].location, Location::Instance { instance: "u1".into() });
    }

    #[test]
    fn oversized_input_slew_flagged_once_per_cell() {
        let config = LintConfig { input_slew: Some(5e-9), ..LintConfig::default() };
        let diags = run(&chain(), &config);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, Rule::Extrapolation);
        assert_eq!(diags[0].location, Location::Cell { cell: "INV_X1".into() });
    }

    #[test]
    fn high_fanout_overloads_the_driver() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let n1 = nl.add_net("n1");
        nl.add_instance("u0", "INV_X1", &[("A", a), ("Y", n1)]);
        // 20 sinks x (1.0 fF pin + 0.2 fF wire) = 24 fF > 20 fF axis end.
        for k in 0..20 {
            let sink = nl.add_net(&format!("s{k}"));
            nl.add_instance(&format!("u{}", k + 1), "INV_X1", &[("A", n1), ("Y", sink)]);
        }
        let diags = run(&nl, &LintConfig::default());
        let over: Vec<_> = diags
            .iter()
            .filter(|d| d.location == Location::Instance { instance: "u0".into() })
            .collect();
        assert_eq!(over.len(), 1, "{diags:?}");
        assert_eq!(over[0].rule, Rule::Extrapolation);
    }
}
