//! `PV` rules: process-variation Monte-Carlo verification.
//!
//! `PV002` validates the sampling plan and thresholds first — an unsound
//! plan (zero dies, non-finite spread, a quantile outside `[0, 1]`) makes
//! the sampled distribution prove nothing, so when it fires nothing is
//! sampled and the remaining rules stay silent. Otherwise the static
//! lifetime report is computed once and [`dataflow::mc_design_mttf`]
//! composes the sampled dies:
//!
//! - `PV003` asserts the containment invariant — every sampled die's MTTF
//!   must sit at or above the variation-aware (clamp-boundary) static
//!   bound; a violation means the sampler or the bound broke the mechanism
//!   monotonicity contract and is an error, not a design property;
//! - `PV001` measures variation erosion — when the configured low-quantile
//!   die retains less than `1 − max_gap` of the nominal design-MTTF bound,
//!   nominal-only sign-off over-promises and a variation-aware guardband
//!   is required.

use crate::{Diagnostic, LintConfig, Location, Rule};
use liberty::Library;
use netlist::Netlist;

pub(crate) fn check(
    netlist: &Netlist,
    library: &Library,
    config: &LintConfig,
    out: &mut Vec<Diagnostic>,
) {
    let Some(var) = &config.variation else { return };

    let mut unsound = false;
    for problem in var.sampling.validation_errors() {
        unsound = true;
        out.push(Diagnostic::new(Rule::SamplingPlanUnsound, Location::Design, problem));
    }
    for problem in var.config.validation_errors() {
        unsound = true;
        out.push(Diagnostic::new(
            Rule::SamplingPlanUnsound,
            Location::Design,
            format!("lifetime configuration: {problem}"),
        ));
    }
    if !(0.0..=1.0).contains(&var.quantile) {
        unsound = true;
        out.push(Diagnostic::new(
            Rule::SamplingPlanUnsound,
            Location::Design,
            format!("quantile {} must be in [0, 1]", var.quantile),
        ));
    }
    if !(var.max_gap.is_finite() && (0.0..1.0).contains(&var.max_gap)) {
        unsound = true;
        out.push(Diagnostic::new(
            Rule::SamplingPlanUnsound,
            Location::Design,
            format!("max_gap {} must be in [0, 1)", var.max_gap),
        ));
    }
    if unsound {
        return;
    }

    let df_config = dataflow::DataflowConfig { input_intervals: config.input_intervals.clone() };
    let report = dataflow::static_lifetime_bound(netlist, library, &var.config, &df_config);
    let dist = dataflow::mc_design_mttf(&report, &var.sampling);

    if !dist.contains_static_bound() {
        out.push(Diagnostic::new(
            Rule::SampleBelowStaticBound,
            Location::Design,
            format!(
                "sampled die MTTF {:.3} y falls below the variation-aware static bound {:.3} y \
                 (monotonicity invariant violated)",
                dist.min_years(),
                dist.static_bound_years
            ),
        ));
    }

    let quantile_years = dist.quantile_years(var.quantile);
    if dist.nominal_years.is_finite() && dist.nominal_years > 0.0 {
        let retention = quantile_years / dist.nominal_years;
        if retention < 1.0 - var.max_gap {
            out.push(Diagnostic::new(
                Rule::VariationGuardbandGap,
                Location::Design,
                format!(
                    "p{:.0} die MTTF {:.2} y retains only {:.1} % of the nominal bound {:.2} y \
                     over {} sampled dies (allowed gap {:.1} %)",
                    100.0 * var.quantile,
                    quantile_years,
                    100.0 * retention,
                    dist.nominal_years,
                    dist.sampling.samples,
                    100.0 * var.max_gap
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{LintConfig, LintReport, Rule, Severity, VariationLintConfig};
    use liberty::{Cell, Library};
    use netlist::{Netlist, PortDir};

    fn lib() -> Library {
        let mut lib = Library::new("lib", 1.2);
        lib.add_cell(Cell::test_inverter("INV_X1"));
        lib
    }

    fn inv_chain(n: usize) -> Netlist {
        let mut nl = Netlist::new("chain");
        let mut prev = nl.add_port("a", PortDir::Input);
        for k in 0..n {
            let next = if k + 1 == n {
                nl.add_port("y", PortDir::Output)
            } else {
                nl.add_net(&format!("n{k}"))
            };
            nl.add_instance(&format!("u{k}"), "INV_X1", &[("A", prev), ("Y", next)]);
            prev = next;
        }
        nl
    }

    fn variation_config() -> LintConfig {
        LintConfig { variation: Some(VariationLintConfig::default()), ..LintConfig::default() }
    }

    #[test]
    fn sound_sampling_never_trips_the_containment_invariant() {
        let report = LintReport::run_variation(&inv_chain(5), &lib(), &variation_config());
        assert!(
            report.diagnostics().iter().all(|d| d.rule != Rule::SampleBelowStaticBound),
            "{}",
            report.render()
        );
    }

    #[test]
    fn skipped_without_variation_config() {
        let report = LintReport::run(&inv_chain(2), &lib(), &LintConfig::default());
        assert!(report.diagnostics().iter().all(|d| !d.rule.code().starts_with("PV")));
    }

    #[test]
    fn tight_gap_threshold_fires_the_guardband_rule() {
        let mut config = variation_config();
        // Any measurable erosion trips a (near-)zero allowance.
        config.variation.as_mut().unwrap().max_gap = 1.0e-9;
        let report = LintReport::run_variation(&inv_chain(4), &lib(), &config);
        let gap: Vec<_> =
            report.diagnostics().iter().filter(|d| d.rule == Rule::VariationGuardbandGap).collect();
        assert_eq!(gap.len(), 1, "{}", report.render());
        assert_eq!(gap[0].severity, Severity::Warning);
        assert!(gap[0].message.contains("p5"), "{}", gap[0].message);
    }

    #[test]
    fn unsound_plan_is_an_error_and_skips_sampling() {
        let mut config = variation_config();
        let var = config.variation.as_mut().unwrap();
        var.sampling.samples = 0;
        var.sampling.sigma_vth = f64::NAN;
        var.max_gap = 1.0e-9; // would otherwise fire PV001
        let report = LintReport::run_variation(&inv_chain(2), &lib(), &config);
        assert!(report.has_errors());
        let codes: Vec<Rule> = report.diagnostics().iter().map(|d| d.rule).collect();
        assert!(codes.contains(&Rule::SamplingPlanUnsound));
        assert!(!codes.contains(&Rule::VariationGuardbandGap));
        assert!(!codes.contains(&Rule::SampleBelowStaticBound));
    }

    #[test]
    fn bad_quantile_is_rejected() {
        let mut config = variation_config();
        config.variation.as_mut().unwrap().quantile = 1.5;
        let report = LintReport::run_variation(&inv_chain(2), &lib(), &config);
        assert!(report.has_errors());
        assert!(report.diagnostics().iter().any(|d| d.message.contains("quantile")));
    }

    #[test]
    fn diagnostics_are_bit_identical_across_runs() {
        let mut config = variation_config();
        config.variation.as_mut().unwrap().max_gap = 1.0e-9;
        let nl = inv_chain(3);
        let library = lib();
        let first = LintReport::run_variation(&nl, &library, &config);
        let second = LintReport::run_variation(&nl, &library, &config);
        assert_eq!(first.to_json(), second.to_json());
        assert!(!first.is_clean());
    }
}
