//! `LB` rules: characterized-library quality.
//!
//! `LB001`–`LB007` reuse [`Library::sanity_check`] — the kinds map one to
//! one onto rule codes — and `LB008` adds the cross-cell grid-consistency
//! check the per-cell pass cannot see.

use crate::{Diagnostic, Location, Rule};
use liberty::{IssueKind, Library};

pub(crate) fn check(library: &Library, out: &mut Vec<Diagnostic>) {
    for issue in library.sanity_check() {
        let rule = match issue.kind {
            IssueKind::EmptyLibrary => Rule::EmptyLibrary,
            IssueKind::ImplausibleCapacitance => Rule::ImplausibleCapacitance,
            IssueKind::MissingArcs => Rule::MissingArcs,
            IssueKind::NonPositiveTransition => Rule::NonPositiveTransition,
            IssueKind::NonMonotoneLoad => Rule::NonMonotoneLoad,
            IssueKind::NonMonotoneSlew => Rule::NonMonotoneSlew,
            IssueKind::TimedOut => Rule::TimedOutMeasurement,
        };
        let location = if issue.cell.is_empty() {
            Location::Library
        } else {
            Location::Cell { cell: issue.cell }
        };
        out.push(Diagnostic::new(rule, location, issue.detail));
    }
    grid_consistency(library, out);
}

/// `LB008`: every table of every cell should share one slew axis and one
/// load axis — the OPC grid the library was characterized on. A cell on a
/// different grid interpolates differently from its neighbours, which
/// silently skews merged (complete) libraries.
fn grid_consistency(library: &Library, out: &mut Vec<Diagnostic>) {
    let mut reference: Option<(&[f64], &[f64], &str)> = None;
    for cell in library.cells() {
        let mut flagged = false;
        for pin in &cell.outputs {
            for arc in &pin.arcs {
                for table in
                    [&arc.cell_rise, &arc.cell_fall, &arc.rise_transition, &arc.fall_transition]
                {
                    let axes = (table.slew_axis(), table.load_axis());
                    match reference {
                        None => reference = Some((axes.0, axes.1, &cell.name)),
                        Some((s, l, first)) => {
                            if !flagged && (axes.0 != s || axes.1 != l) {
                                flagged = true;
                                out.push(Diagnostic::new(
                                    Rule::InconsistentGrid,
                                    Location::Cell { cell: cell.name.clone() },
                                    format!(
                                        "characterized on a {}x{} grid, but cell {first} uses \
                                         {}x{} — the library mixes OPC grids",
                                        axes.0.len(),
                                        axes.1.len(),
                                        s.len(),
                                        l.len()
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liberty::{Cell, Table2d};

    #[test]
    fn clean_library_silent() {
        let mut lib = Library::new("l", 1.2);
        lib.add_cell(Cell::test_inverter("INV_X1"));
        lib.add_cell(Cell::test_inverter("INV_X2"));
        let mut out = Vec::new();
        check(&lib, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn sanity_issues_become_rules() {
        let lib = Library::new("l", 1.2);
        let mut out = Vec::new();
        check(&lib, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, Rule::EmptyLibrary);
        assert_eq!(out[0].location, Location::Library);
    }

    #[test]
    fn mixed_grids_flagged_once_per_cell() {
        let mut lib = Library::new("l", 1.2);
        lib.add_cell(Cell::test_inverter("INV_X1"));
        let mut odd = Cell::test_inverter("ODD_X1");
        // Re-grid every table of the odd cell to 1×1.
        for pin in &mut odd.outputs {
            for arc in &mut pin.arcs {
                arc.cell_rise = Table2d::constant(20e-12, 4e-15, 30e-12);
                arc.cell_fall = Table2d::constant(20e-12, 4e-15, 30e-12);
                arc.rise_transition = Table2d::constant(20e-12, 4e-15, 10e-12);
                arc.fall_transition = Table2d::constant(20e-12, 4e-15, 10e-12);
            }
        }
        lib.add_cell(odd);
        let mut out = Vec::new();
        check(&lib, &mut out);
        let grid: Vec<_> = out.iter().filter(|d| d.rule == Rule::InconsistentGrid).collect();
        assert_eq!(grid.len(), 1, "{out:?}");
        assert_eq!(grid[0].location, Location::Cell { cell: "ODD_X1".into() });
    }
}
