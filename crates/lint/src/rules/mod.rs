//! Rule implementations, grouped by code prefix.

pub(crate) mod aging;
pub(crate) mod dataflow;
pub(crate) mod lambda;
pub(crate) mod library;
pub(crate) mod lifetime;
pub(crate) mod paths;
pub(crate) mod structure;
pub(crate) mod timing;
pub(crate) mod variation;
