//! `PT` rules: path-level timing checks over an enumerated near-critical
//! path population (see `dataflow::analyze_paths`).

use crate::{Diagnostic, LintConfig, Location, Rule};
use dataflow::{PathAnalysis, PathProfile, StaticBoundReport};
use netlist::Netlist;

/// Relative tolerance when comparing path delays against the static bound:
/// both come from the same annotated netlist, so anything beyond rounding
/// noise is a real inconsistency.
const REL_TOL: f64 = 1e-9;
const ABS_TOL: f64 = 1e-15;

fn endpoint_location(netlist: &Netlist, profile: &PathProfile) -> Location {
    profile
        .path
        .steps
        .last()
        .and_then(|s| netlist.instance(s.inst).net_on(&s.output))
        .map_or(Location::Design, |net| Location::Net { net: netlist.net_name(net).to_owned() })
}

pub(crate) fn check(
    netlist: &Netlist,
    analysis: &PathAnalysis,
    bound: &StaticBoundReport,
    config: &LintConfig,
    diagnostics: &mut Vec<Diagnostic>,
) {
    let near_floor = analysis.critical_fresh * (1.0 - config.near_critical_fraction);

    for profile in &analysis.profiles {
        // PT003 — an aged path must never be faster than its fresh self
        // (monotone degradation); firing means the annotation or the
        // complete library is inconsistent. Checked on every enumerated
        // path, false or not.
        if profile.aged_delay < profile.fresh_delay - ABS_TOL.max(profile.fresh_delay * REL_TOL) {
            diagnostics.push(Diagnostic::new(
                Rule::NonMonotoneAgedPath,
                endpoint_location(netlist, profile),
                format!(
                    "aged path delay {:.4e} s is below the fresh delay {:.4e} s",
                    profile.aged_delay, profile.fresh_delay
                ),
            ));
        }
        if profile.false_path {
            continue;
        }
        // PT001 — no functional path may age past the provable static
        // bound; the bound was computed from the same annotation, so an
        // excess is an invariant violation, not a tight margin.
        let limit = bound.bound_delay * (1.0 + REL_TOL) + ABS_TOL;
        if profile.aged_delay > limit {
            diagnostics.push(Diagnostic::new(
                Rule::PathGuardbandOverBound,
                endpoint_location(netlist, profile),
                format!(
                    "aged path delay {:.4e} s exceeds the static guardband bound {:.4e} s",
                    profile.aged_delay, bound.bound_delay
                ),
            ));
        }
        // PT002 — one arc carrying almost the whole guardband of a
        // near-critical path: a single aging hotspot decides the design's
        // lifetime margin (prime monitor-insertion candidate).
        if profile.fresh_delay >= near_floor && profile.arcs.len() >= 3 {
            if let Some((step, share)) = profile.dominant_arc() {
                if share > config.arc_concentration {
                    let inst = profile.path.steps[step].inst;
                    diagnostics.push(Diagnostic::new(
                        Rule::AgingDominantArc,
                        Location::Instance { instance: netlist.instance(inst).name.clone() },
                        format!(
                            "one arc carries {:.0}% of a near-critical path's \
                             {:.4e} s guardband",
                            share * 100.0,
                            profile.guardband()
                        ),
                    ));
                }
            }
        }
    }

    // PT004 — the near-critical population within the window exceeds the
    // configured limit (or the enumeration budget ran out inside the
    // window): single-path guardbanding is unreliable under criticality
    // switching (the paper's Sec. 3 explosion argument).
    let near = analysis.near_critical_count(config.near_critical_fraction);
    let window_saturated = analysis.budget_exhausted
        && analysis.profiles.last().is_some_and(|p| p.fresh_delay >= near_floor);
    if near >= config.near_critical_limit || window_saturated {
        let qualifier = if analysis.budget_exhausted { "at least " } else { "" };
        diagnostics.push(Diagnostic::new(
            Rule::NearCriticalExplosion,
            Location::Design,
            format!(
                "{qualifier}{near} paths within {:.1}% of the critical delay \
                 (limit {})",
                config.near_critical_fraction * 100.0,
                config.near_critical_limit
            ),
        ));
    }

    // PT005 — endpoints exist but no clock period is configured: every
    // path "meets timing" vacuously and the guardband has no budget to be
    // checked against.
    if config.clock_period.is_none() && !analysis.profiles.is_empty() {
        diagnostics.push(Diagnostic::new(
            Rule::UnconstrainedEndpoint,
            Location::Design,
            format!(
                "{} enumerated endpoints have no clock-period constraint",
                analysis.profiles.len()
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LintReport;
    use liberty::{merge_indexed, Cell, LambdaTag, Library};
    use netlist::{Netlist, PortDir};

    const STEPS: u32 = 4;

    /// Complete library over `INV_X1` (mild aging) and `HOT_X1` (10× the
    /// aging coefficient — a degradation hotspot cell).
    fn libraries(hot_coeff: f64) -> (Library, Library) {
        let mut base = Library::new("base", 1.2);
        base.add_cell(Cell::test_inverter("INV_X1"));
        base.add_cell(Cell::test_inverter("HOT_X1"));
        let mut parts = Vec::new();
        for p in 0..=STEPS {
            for n in 0..=STEPS {
                let lp = f64::from(p) / f64::from(STEPS);
                let ln = f64::from(n) / f64::from(STEPS);
                let mut lib = Library::new("part", 1.2);
                for (name, coeff) in [("INV_X1", 0.05), ("HOT_X1", hot_coeff)] {
                    let factor = 1.0 + coeff * (lp + ln) / 2.0;
                    let mut cell = Cell::test_inverter(name);
                    for o in &mut cell.outputs {
                        for arc in &mut o.arcs {
                            arc.cell_rise = arc.cell_rise.map(|v| v * factor);
                            arc.cell_fall = arc.cell_fall.map(|v| v * factor);
                        }
                    }
                    lib.add_cell(cell);
                }
                parts.push((LambdaTag { lambda_pmos: lp, lambda_nmos: ln }, lib));
            }
        }
        (base, merge_indexed("complete", &parts))
    }

    fn chain(cells: &[&str]) -> Netlist {
        let mut nl = Netlist::new("chain");
        let mut prev = nl.add_port("a", PortDir::Input);
        for (k, cell) in cells.iter().enumerate() {
            let next = if k + 1 == cells.len() {
                nl.add_port("y", PortDir::Output)
            } else {
                nl.add_net(&format!("n{k}"))
            };
            nl.add_instance(&format!("u{k}"), cell, &[("A", prev), ("Y", next)]);
            prev = next;
        }
        nl
    }

    fn config() -> LintConfig {
        LintConfig { lambda_steps: STEPS, clock_period: Some(10e-9), ..LintConfig::default() }
    }

    #[test]
    fn clean_uniform_chain_has_no_findings() {
        let (base, complete) = libraries(0.05);
        let nl = chain(&["INV_X1"; 4]);
        let report = LintReport::run_paths(&nl, &base, &complete, &config()).unwrap();
        assert!(report.diagnostics().is_empty(), "{report:?}");
    }

    #[test]
    fn pt005_fires_without_clock_constraint() {
        let (base, complete) = libraries(0.05);
        let nl = chain(&["INV_X1"; 3]);
        let cfg = LintConfig { clock_period: None, ..config() };
        let report = LintReport::run_paths(&nl, &base, &complete, &cfg).unwrap();
        assert!(
            report.diagnostics().iter().any(|d| d.rule == Rule::UnconstrainedEndpoint),
            "{report:?}"
        );
    }

    #[test]
    fn pt002_flags_a_degradation_hotspot() {
        let (base, complete) = libraries(2.0);
        let nl = chain(&["INV_X1", "HOT_X1", "INV_X1", "INV_X1"]);
        let report = LintReport::run_paths(&nl, &base, &complete, &config()).unwrap();
        let hits: Vec<_> =
            report.diagnostics().iter().filter(|d| d.rule == Rule::AgingDominantArc).collect();
        assert!(!hits.is_empty(), "{report:?}");
        assert!(
            hits.iter().all(|d| d.location == Location::Instance { instance: "u1".to_owned() }),
            "the hotspot instance is named: {report:?}"
        );
    }

    #[test]
    fn pt003_fires_when_aging_speeds_a_path_up() {
        // Unit-level: `static_guardband_bound` always annotates the *worst*
        // variant, so a faster-when-aged path can only come from an
        // externally supplied inconsistent annotation — fabricate one.
        use dataflow::{PathAnalysis, PathProfile};
        use sta::PathSpec;

        let nl = chain(&["INV_X1"; 2]);
        let profile = PathProfile {
            path: PathSpec {
                start_net: netlist::NetId::from_index(0),
                start_rising: true,
                steps: Vec::new(),
                arrival: 1e-9,
            },
            fresh_delay: 1.0e-9,
            aged_delay: 0.8e-9, // faster than fresh: impossible physically
            arcs: Vec::new(),
            false_path: false,
        };
        let analysis = PathAnalysis {
            profiles: vec![profile],
            critical_fresh: 1.0e-9,
            budget_exhausted: false,
            constant_nets: Vec::new(),
        };
        let bound = dataflow::StaticBoundReport {
            fresh_delay: 1.0e-9,
            bound_delay: 1.5e-9,
            exact: true,
            annotated: nl.clone(),
        };
        let mut diagnostics = Vec::new();
        check(&nl, &analysis, &bound, &config(), &mut diagnostics);
        let pt003: Vec<_> =
            diagnostics.iter().filter(|d| d.rule == Rule::NonMonotoneAgedPath).collect();
        assert_eq!(pt003.len(), 1);
        assert_eq!(pt003[0].severity, crate::Severity::Error);
    }

    #[test]
    fn consistent_pipeline_never_trips_pt003() {
        // End-to-end: the bound's worst-variant annotation keeps every
        // aged path at or above its fresh delay even when the complete
        // library contains faster-than-fresh variants.
        let (base, complete) = libraries(-0.5);
        let nl = chain(&["HOT_X1"; 3]);
        let report = LintReport::run_paths(&nl, &base, &complete, &config()).unwrap();
        assert!(
            !report.diagnostics().iter().any(|d| d.rule == Rule::NonMonotoneAgedPath),
            "{report:?}"
        );
    }

    #[test]
    fn pt004_reports_population_explosion_at_low_limit() {
        let (base, complete) = libraries(0.05);
        // Two identical chains: 4 equal near-critical paths (2 polarities).
        let mut nl = Netlist::new("m");
        for c in 0..2 {
            let a = nl.add_port(&format!("a{c}"), PortDir::Input);
            let y = nl.add_port(&format!("y{c}"), PortDir::Output);
            let mid = nl.add_net(&format!("m{c}"));
            nl.add_instance(&format!("u{c}_0"), "INV_X1", &[("A", a), ("Y", mid)]);
            nl.add_instance(&format!("u{c}_1"), "INV_X1", &[("A", mid), ("Y", y)]);
        }
        let cfg = LintConfig { near_critical_limit: 2, ..config() };
        let report = LintReport::run_paths(&nl, &base, &complete, &cfg).unwrap();
        let pt004: Vec<_> =
            report.diagnostics().iter().filter(|d| d.rule == Rule::NearCriticalExplosion).collect();
        assert_eq!(pt004.len(), 1, "{report:?}");
        assert_eq!(pt004[0].severity, crate::Severity::Info, "advisory only");
        assert!(!report.has_errors());
    }

    #[test]
    fn pt001_fires_when_a_path_exceeds_the_bound() {
        // Unit-level: fabricate an analysis whose worst path overshoots the
        // claimed static bound (cannot happen with a consistent pipeline).
        use dataflow::{ArcAging, PathAnalysis, PathProfile};
        use netlist::InstId;
        use sta::PathSpec;

        let nl = chain(&["INV_X1"; 2]);
        let profile = PathProfile {
            path: PathSpec {
                start_net: netlist::NetId::from_index(0),
                start_rising: true,
                steps: Vec::new(),
                arrival: 1e-9,
            },
            fresh_delay: 1.0e-9,
            aged_delay: 1.5e-9,
            arcs: vec![ArcAging {
                inst: InstId::from_index(0),
                input: "A".into(),
                output: "Y".into(),
                fresh: 1.0e-9,
                aged: 1.5e-9,
                mean_lambda: 1.0,
            }],
            false_path: false,
        };
        let analysis = PathAnalysis {
            profiles: vec![profile],
            critical_fresh: 1.0e-9,
            budget_exhausted: false,
            constant_nets: Vec::new(),
        };
        let bound = dataflow::StaticBoundReport {
            fresh_delay: 1.0e-9,
            bound_delay: 1.2e-9, // claimed bound below the actual aged path
            exact: true,
            annotated: nl.clone(),
        };
        let mut diagnostics = Vec::new();
        check(&nl, &analysis, &bound, &config(), &mut diagnostics);
        assert!(diagnostics.iter().any(|d| d.rule == Rule::PathGuardbandOverBound));
    }
}
