//! `LT` rules: static lifetime verification.
//!
//! `LT003`/`LT004` validate the configuration itself — an unsound
//! environment interval or a non-monotone mechanism makes interval-endpoint
//! evaluation prove nothing, so when either fires the bound is **not**
//! computed and the remaining rules stay silent rather than reporting
//! unsound numbers. Otherwise [`dataflow::static_lifetime_bound`] runs and
//! its report drives `LT001` (design MTTF below target), `LT002`
//! (single-mechanism hazard dominance), `LT005` (per-instance lifetime
//! hotspots) and `LT006` (guardband budget exhausted inside the horizon).

use crate::{Diagnostic, LintConfig, Location, Rule};
use liberty::Library;
use netlist::Netlist;

pub(crate) fn check(
    netlist: &Netlist,
    library: &Library,
    config: &LintConfig,
    out: &mut Vec<Diagnostic>,
) {
    let Some(lifetime) = &config.lifetime else { return };

    let mut unsound = false;
    for problem in lifetime.config.validation_errors() {
        unsound = true;
        out.push(Diagnostic::new(Rule::EnvIntervalUnsound, Location::Design, problem));
    }
    for (_, mechanism) in lifetime.config.suite.mechanisms() {
        let violations = bti::monotonicity_violations(mechanism);
        if !violations.is_empty() {
            unsound = true;
            out.push(Diagnostic::new(
                Rule::NonMonotoneMechanism,
                Location::Design,
                format!(
                    "mechanism {} fails the monotonicity probe: {}",
                    mechanism.name(),
                    violations.join("; ")
                ),
            ));
        }
    }
    if unsound {
        return;
    }

    let df_config = dataflow::DataflowConfig { input_intervals: config.input_intervals.clone() };
    let report = dataflow::static_lifetime_bound(netlist, library, &lifetime.config, &df_config);

    if report.design_mttf_lo_years < lifetime.mttf_target_years {
        let worst = report.worst_instance.as_deref().unwrap_or("-");
        out.push(Diagnostic::new(
            Rule::MttfBelowTarget,
            Location::Design,
            format!(
                "provable design MTTF lower bound {:.2} y < target {:.2} y (worst instance {worst})",
                report.design_mttf_lo_years, lifetime.mttf_target_years
            ),
        ));
    }

    for (mechanism, share) in &report.hazard_shares {
        if *share > lifetime.dominance_share {
            out.push(Diagnostic::new(
                Rule::MechanismDominance,
                Location::Design,
                format!(
                    "mechanism {mechanism} carries {:.1} % of the design failure hazard at {:.1} y",
                    100.0 * share,
                    lifetime.config.years
                ),
            ));
        }
    }

    for inst in &report.instances {
        if inst.mttf_lo_years < lifetime.mttf_target_years {
            out.push(Diagnostic::new(
                Rule::LifetimeHotspot,
                Location::Instance { instance: inst.name.clone() },
                format!(
                    "MTTF lower bound {:.2} y < target {:.2} y (dominant mechanism {})",
                    inst.mttf_lo_years, lifetime.mttf_target_years, inst.dominant
                ),
            ));
        }
    }

    if report.years_until_budget < lifetime.config.years {
        out.push(Diagnostic::new(
            Rule::GuardbandExhausted,
            Location::Design,
            format!(
                "ΔVth budget {:.3} V provably exhausted after {:.2} y < horizon {:.1} y",
                lifetime.config.vth_budget, report.years_until_budget, lifetime.config.years
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use crate::{LifetimeLintConfig, LintConfig, LintReport, Rule, Severity};
    use liberty::{Cell, Library};
    use netlist::{Netlist, PortDir};

    fn lib() -> Library {
        let mut lib = Library::new("lib", 1.2);
        lib.add_cell(Cell::test_inverter("INV_X1"));
        lib
    }

    fn inv_chain(n: usize) -> Netlist {
        let mut nl = Netlist::new("chain");
        let mut prev = nl.add_port("a", PortDir::Input);
        for k in 0..n {
            let next = if k + 1 == n {
                nl.add_port("y", PortDir::Output)
            } else {
                nl.add_net(&format!("n{k}"))
            };
            nl.add_instance(&format!("u{k}"), "INV_X1", &[("A", prev), ("Y", next)]);
            prev = next;
        }
        nl
    }

    fn lifetime_config() -> LintConfig {
        LintConfig { lifetime: Some(LifetimeLintConfig::default()), ..LintConfig::default() }
    }

    #[test]
    fn clean_chain_raises_no_lifetime_findings() {
        let report = LintReport::run_lifetime(&inv_chain(6), &lib(), &lifetime_config());
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn skipped_without_lifetime_config() {
        // LintReport::run only invokes the LT rules when configured.
        let report = LintReport::run(&inv_chain(2), &lib(), &LintConfig::default());
        assert!(report.diagnostics().iter().all(|d| !d.rule.code().starts_with("LT")));
    }

    #[test]
    fn unreachable_target_fires_mttf_and_hotspot_rules() {
        let mut config = lifetime_config();
        config.lifetime.as_mut().unwrap().mttf_target_years = 1.0e9;
        let report = LintReport::run_lifetime(&inv_chain(3), &lib(), &config);
        let rules: Vec<Rule> = report.diagnostics().iter().map(|d| d.rule).collect();
        assert!(rules.contains(&Rule::MttfBelowTarget));
        assert!(rules.iter().filter(|r| **r == Rule::LifetimeHotspot).count() == 3);
        assert!(report.diagnostics().iter().all(|d| d.severity == Severity::Warning));
    }

    #[test]
    fn tight_budget_fires_guardband_exhausted() {
        let mut config = lifetime_config();
        config.lifetime.as_mut().unwrap().config.vth_budget = 1.0e-3;
        let report = LintReport::run_lifetime(&inv_chain(2), &lib(), &config);
        assert!(report.diagnostics().iter().any(|d| d.rule == Rule::GuardbandExhausted));
    }

    #[test]
    fn unsound_environment_is_an_error_and_skips_the_bound() {
        let mut config = lifetime_config();
        let lt = config.lifetime.as_mut().unwrap();
        lt.config.temperature_range = (428.15, 398.15);
        // Even with an absurd target no LT001 may appear: the bound must
        // not be computed from an unsound configuration.
        lt.mttf_target_years = 1.0e9;
        let report = LintReport::run_lifetime(&inv_chain(2), &lib(), &config);
        assert!(report.has_errors());
        assert!(report.diagnostics().iter().any(|d| d.rule == Rule::EnvIntervalUnsound));
        assert!(report.diagnostics().iter().all(|d| d.rule != Rule::MttfBelowTarget));
    }

    #[test]
    fn non_monotone_mechanism_is_rejected() {
        let mut config = lifetime_config();
        config.lifetime.as_mut().unwrap().config.suite.hci.cycle_exp = -0.45;
        let report = LintReport::run_lifetime(&inv_chain(2), &lib(), &config);
        assert!(report.has_errors());
        assert!(report.diagnostics().iter().any(|d| d.rule == Rule::NonMonotoneMechanism));
    }

    #[test]
    fn dominance_fires_when_one_mechanism_owns_the_hazard() {
        // Lower every other mechanism's severity so TDDB owns the hazard.
        let mut config = lifetime_config();
        let lt = config.lifetime.as_mut().unwrap();
        lt.config.suite.em.mttf_nominal_years = 9.0e5;
        lt.config.suite.tddb.mttf_nominal_years = 2.0;
        lt.dominance_share = 0.5;
        let report = LintReport::run_lifetime(&inv_chain(2), &lib(), &config);
        let dominance: Vec<_> =
            report.diagnostics().iter().filter(|d| d.rule == Rule::MechanismDominance).collect();
        assert_eq!(dominance.len(), 1);
        assert!(dominance[0].message.contains("tddb"));
        assert_eq!(dominance[0].severity, Severity::Info);
    }

    #[test]
    fn diagnostics_are_bit_identical_across_runs() {
        let mut config = lifetime_config();
        config.lifetime.as_mut().unwrap().mttf_target_years = 1.0e9;
        let nl = inv_chain(4);
        let library = lib();
        let first = LintReport::run_lifetime(&nl, &library, &config);
        let second = LintReport::run_lifetime(&nl, &library, &config);
        assert_eq!(first.to_json(), second.to_json());
        assert!(!first.is_clean());
    }
}
