//! `NL` rules: netlist structure against the library.
//!
//! Unlike [`Netlist::validate`], which stops at the first defect, this pass
//! is total: it reports every violation in one run, and rules stay
//! independent (an unknown cell does not hide a multi-driven net elsewhere).

use crate::{Diagnostic, Location, Rule};
use liberty::{split_lambda_tag, Library};
use netlist::{Netlist, PortDir};
use std::collections::HashMap;

pub(crate) fn check(netlist: &Netlist, library: &Library, out: &mut Vec<Diagnostic>) {
    duplicate_instances(netlist, out);

    let n_nets = netlist.net_count();
    let mut drivers: Vec<Vec<String>> = vec![Vec::new(); n_nets];
    let mut sink_count = vec![0usize; n_nets];
    let mut is_output_port = vec![false; n_nets];
    for port in netlist.ports() {
        match port.dir {
            PortDir::Input => drivers[port.net.index()].push(format!("port {}", port.name)),
            PortDir::Output => is_output_port[port.net.index()] = true,
        }
    }

    for inst in netlist.instances() {
        let Some(cell) = library.cell(&inst.cell) else {
            // λ-tagged references with characterized siblings belong to the
            // LM rules; everything else is a plain unknown cell.
            let (base, tag) = split_lambda_tag(&inst.cell);
            if tag.is_none() || library.cells_with_base(base).next().is_none() {
                out.push(Diagnostic::new(
                    Rule::UnknownCell,
                    Location::Instance { instance: inst.name.clone() },
                    format!("cell {} is not in library {}", inst.cell, library.name),
                ));
            }
            continue;
        };
        for (pin, net) in &inst.connections {
            let is_input = cell.input_cap(pin).is_some();
            let is_output = cell.output(pin).is_some();
            if is_input {
                sink_count[net.index()] += 1;
            }
            if is_output {
                drivers[net.index()].push(inst.name.clone());
            }
            if !is_input && !is_output {
                out.push(Diagnostic::new(
                    Rule::UnknownPin,
                    Location::Instance { instance: inst.name.clone() },
                    format!("cell {} has no pin {pin}", cell.name),
                ));
            }
        }
        for input in &cell.inputs {
            if inst.net_on(&input.name).is_none() {
                out.push(Diagnostic::new(
                    Rule::UnconnectedInput,
                    Location::Instance { instance: inst.name.clone() },
                    format!("input pin {} of cell {} is unconnected", input.name, cell.name),
                ));
            }
        }
        for output in &cell.outputs {
            if inst.net_on(&output.name).is_none() {
                out.push(Diagnostic::new(
                    Rule::DanglingOutput,
                    Location::Instance { instance: inst.name.clone() },
                    format!("output pin {} of cell {} is unconnected", output.name, cell.name),
                ));
            }
        }
    }

    for k in 0..n_nets {
        let name = netlist.net_name(netlist::NetId::from_index(k));
        if drivers[k].len() > 1 {
            out.push(Diagnostic::new(
                Rule::MultipleDrivers,
                Location::Net { net: name.to_owned() },
                format!("driven by {}", drivers[k].join(", ")),
            ));
        }
        if drivers[k].is_empty() && (sink_count[k] > 0 || is_output_port[k]) {
            out.push(Diagnostic::new(
                Rule::FloatingNet,
                Location::Net { net: name.to_owned() },
                format!(
                    "no driver but {} sink(s){}",
                    sink_count[k],
                    if is_output_port[k] { " (including a primary output)" } else { "" }
                ),
            ));
        }
        if drivers[k].len() == 1
            && sink_count[k] == 0
            && !is_output_port[k]
            && !drivers[k][0].starts_with("port ")
        {
            out.push(Diagnostic::new(
                Rule::DanglingOutput,
                Location::Net { net: name.to_owned() },
                format!("driven by {} but read by nothing", drivers[k][0]),
            ));
        }
    }

    for cycle in sta::combinational_loops(netlist, library) {
        let names: Vec<&str> = cycle.iter().map(|&id| netlist.instance(id).name.as_str()).collect();
        let shown = if names.len() > 8 {
            format!("{} ... ({} instances)", names[..8].join(" -> "), names.len())
        } else {
            names.join(" -> ")
        };
        out.push(Diagnostic::new(
            Rule::CombinationalLoop,
            Location::Instance { instance: names[0].to_owned() },
            format!("combinational cycle: {shown}"),
        ));
    }
}

/// `NL007`. [`Netlist::try_add_instance`] rejects duplicates at build time,
/// but netlists also arise from renaming passes (`instance_mut`), so the
/// invariant is re-checked here.
fn duplicate_instances(netlist: &Netlist, out: &mut Vec<Diagnostic>) {
    let mut count: HashMap<&str, usize> = HashMap::new();
    for inst in netlist.instances() {
        *count.entry(inst.name.as_str()).or_default() += 1;
    }
    let mut dups: Vec<(&str, usize)> = count.into_iter().filter(|&(_, n)| n > 1).collect();
    dups.sort_unstable();
    for (name, n) in dups {
        out.push(Diagnostic::new(
            Rule::DuplicateInstance,
            Location::Instance { instance: name.to_owned() },
            format!("{n} instances share this name"),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liberty::Cell;

    fn lib() -> Library {
        let mut lib = Library::new("lib", 1.2);
        lib.add_cell(Cell::test_inverter("INV_X1"));
        lib
    }

    fn run(netlist: &Netlist) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check(netlist, &lib(), &mut out);
        out
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<Rule> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn clean_chain_is_silent() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        let n1 = nl.add_net("n1");
        nl.add_instance("u0", "INV_X1", &[("A", a), ("Y", n1)]);
        nl.add_instance("u1", "INV_X1", &[("A", n1), ("Y", y)]);
        assert!(run(&nl).is_empty());
    }

    #[test]
    fn unknown_cell_and_pin() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        nl.add_instance("u0", "NOPE_X9", &[("A", a), ("Y", y)]);
        nl.add_instance("u1", "INV_X1", &[("A", a), ("Q", y)]);
        let diags = run(&nl);
        assert!(rules_of(&diags).contains(&Rule::UnknownCell));
        assert!(rules_of(&diags).contains(&Rule::UnknownPin));
    }

    #[test]
    fn multi_driven_net_lists_all_drivers() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        nl.add_instance("u0", "INV_X1", &[("A", a), ("Y", y)]);
        nl.add_instance("u1", "INV_X1", &[("A", a), ("Y", y)]);
        let diags = run(&nl);
        let d = diags.iter().find(|d| d.rule == Rule::MultipleDrivers).expect("NL003 fires");
        assert!(d.message.contains("u0") && d.message.contains("u1"));
    }

    #[test]
    fn input_port_collision_counts_as_driver() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let b = nl.add_port("b", PortDir::Input);
        nl.add_instance("u0", "INV_X1", &[("A", b), ("Y", a)]);
        let diags = run(&nl);
        let d = diags.iter().find(|d| d.rule == Rule::MultipleDrivers).expect("NL003 fires");
        assert!(d.message.contains("port a"));
    }

    #[test]
    fn floating_and_unconnected() {
        let mut nl = Netlist::new("m");
        let y = nl.add_port("y", PortDir::Output);
        let float = nl.add_net("float");
        nl.add_instance("u0", "INV_X1", &[("A", float), ("Y", y)]);
        let dead = nl.add_net("dead");
        nl.add_instance("u1", "INV_X1", &[("Y", dead)]);
        let diags = run(&nl);
        let rules = rules_of(&diags);
        assert!(rules.contains(&Rule::FloatingNet), "{diags:?}");
        assert!(rules.contains(&Rule::UnconnectedInput), "{diags:?}");
        assert!(rules.contains(&Rule::DanglingOutput), "{diags:?}");
    }

    #[test]
    fn floating_primary_output_flagged() {
        let mut nl = Netlist::new("m");
        nl.add_port("y", PortDir::Output);
        let diags = run(&nl);
        assert!(rules_of(&diags).contains(&Rule::FloatingNet), "{diags:?}");
    }

    #[test]
    fn duplicate_instance_names_via_rename() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        let n1 = nl.add_net("n1");
        nl.add_instance("u0", "INV_X1", &[("A", a), ("Y", n1)]);
        let u1 = nl.add_instance("u1", "INV_X1", &[("A", n1), ("Y", y)]);
        nl.instance_mut(u1).name = "u0".into();
        let diags = run(&nl);
        let d = diags.iter().find(|d| d.rule == Rule::DuplicateInstance).expect("NL007 fires");
        assert_eq!(d.location, Location::Instance { instance: "u0".into() });
    }

    #[test]
    fn combinational_loop_named() {
        let mut nl = Netlist::new("m");
        let n1 = nl.add_net("n1");
        let n2 = nl.add_net("n2");
        nl.add_instance("u0", "INV_X1", &[("A", n2), ("Y", n1)]);
        nl.add_instance("u1", "INV_X1", &[("A", n1), ("Y", n2)]);
        let diags = run(&nl);
        let d = diags.iter().find(|d| d.rule == Rule::CombinationalLoop).expect("NL008 fires");
        assert!(d.message.contains("u0") && d.message.contains("u1"));
    }
}
