//! `DF` rules: static λ-interval dataflow checks.
//!
//! These rules run the `dataflow` crate's abstract interpretation over the
//! netlist and surface what it proves: statically constant nets are BTI
//! stress hotspots (`DF001`/`DF002`), unobservable cones age for nothing
//! (`DF003`), and a λ-annotation outside its provable interval — or a pair
//! violating the extraction invariant — can come from no workload at all
//! (`DF004`/`DF005`, both errors). When the engine had to widen (loops) or
//! skip (unresolvable cells), `DF006` records that the `DF` coverage is
//! partial.

use crate::{Diagnostic, LintConfig, Location, Rule};
use dataflow::{dead_cone, DataflowConfig, NetlistDataflow, ViolationKind};
use liberty::Library;
use netlist::Netlist;
use std::collections::BTreeSet;

pub(crate) fn check(
    netlist: &Netlist,
    library: &Library,
    config: &LintConfig,
    out: &mut Vec<Diagnostic>,
) {
    let df_config = DataflowConfig { input_intervals: config.input_intervals.clone() };
    let df = NetlistDataflow::analyze_with(netlist, library, &df_config);

    let po_nets: BTreeSet<usize> = netlist.output_nets().map(netlist::NetId::index).collect();
    for (net, level) in df.constant_nets(netlist, library) {
        let name = netlist.net_name(net).to_owned();
        let level = i32::from(level);
        if po_nets.contains(&net.index()) {
            out.push(Diagnostic::new(
                Rule::ConstantOutput,
                Location::Net { net: name },
                format!("primary output is provably stuck at {level} for every workload"),
            ));
        } else {
            out.push(Diagnostic::new(
                Rule::ConstantNet,
                Location::Net { net: name },
                format!(
                    "provably stuck at {level}: the driver sits at the asymmetric \
                     worst-case λ corner (maximal BTI stress, no recovery)"
                ),
            ));
        }
    }

    for inst in dead_cone(netlist, library) {
        out.push(Diagnostic::new(
            Rule::DeadCone,
            Location::Instance { instance: netlist.instance(inst).name.clone() },
            "output cone never reaches a primary output; its aging is unobservable".to_owned(),
        ));
    }

    for v in
        df.validate_annotations(netlist, library, config.lambda_extraction, config.lambda_steps)
    {
        let instance = netlist.instance(v.inst).name.clone();
        match v.kind {
            ViolationKind::PmosOutsideBounds { value, bounds } => {
                out.push(Diagnostic::new(
                    Rule::LambdaOutsideBounds,
                    Location::Instance { instance },
                    format!(
                        "annotated λp = {value:.2} lies outside the provable interval \
                         {bounds}; no workload can produce it"
                    ),
                ));
            }
            ViolationKind::NmosOutsideBounds { value, bounds } => {
                out.push(Diagnostic::new(
                    Rule::LambdaOutsideBounds,
                    Location::Instance { instance },
                    format!(
                        "annotated λn = {value:.2} lies outside the provable interval \
                         {bounds}; no workload can produce it"
                    ),
                ));
            }
            ViolationKind::InconsistentPair { lambda_pmos, lambda_nmos } => {
                out.push(Diagnostic::new(
                    Rule::LambdaInconsistentPair,
                    Location::Instance { instance },
                    format!(
                        "annotated pair (λp = {lambda_pmos:.2}, λn = {lambda_nmos:.2}) \
                         violates the {:?} extraction invariant",
                        config.lambda_extraction
                    ),
                ));
            }
        }
    }

    if !df.is_exact() {
        out.push(Diagnostic::new(
            Rule::WidenedAnalysis,
            Location::Design,
            format!(
                "interval analysis widened {} and skipped {} instance(s); DF checks \
                 are sound but partial there",
                df.widened_instances().len(),
                df.skipped_instances().len()
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liberty::{Cell, LambdaTag};
    use netlist::{Netlist, PortDir};

    /// An inverter library with the full 11×11 λ-grid of tagged variants.
    fn lib() -> Library {
        let mut lib = Library::new("lib", 1.2);
        lib.add_cell(Cell::test_inverter("INV_X1"));
        for p in 0..=10u32 {
            for n in 0..=10u32 {
                let tag = LambdaTag {
                    lambda_pmos: f64::from(p) / 10.0,
                    lambda_nmos: f64::from(n) / 10.0,
                };
                lib.add_cell(Cell::test_inverter(&format!("INV_X1_{}", tag.suffix())));
            }
        }
        lib
    }

    fn run(nl: &Netlist, config: &LintConfig) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check(nl, &lib(), config, &mut out);
        out
    }

    #[test]
    fn clean_chain_is_silent() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        nl.add_instance("u0", "INV_X1", &[("A", a), ("Y", y)]);
        assert!(run(&nl, &LintConfig::default()).is_empty());
    }

    #[test]
    fn constant_internal_net_and_output_distinguished() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        let n1 = nl.add_net("n1");
        nl.add_instance("u0", "INV_X1", &[("A", a), ("Y", n1)]);
        nl.add_instance("u1", "INV_X1", &[("A", n1), ("Y", y)]);
        let mut config = LintConfig::default();
        config.input_intervals.insert(a, dataflow::Interval::point(1.0));
        let diags = run(&nl, &config);
        assert!(diags.iter().any(
            |d| d.rule == Rule::ConstantNet && d.location == Location::Net { net: "n1".into() }
        ));
        assert!(diags
            .iter()
            .any(|d| d.rule == Rule::ConstantOutput
                && d.location == Location::Net { net: "y".into() }));
    }

    #[test]
    fn dead_cone_reported() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        let d1 = nl.add_net("d1");
        nl.add_instance("live", "INV_X1", &[("A", a), ("Y", y)]);
        nl.add_instance("dead", "INV_X1", &[("A", a), ("Y", d1)]);
        let diags = run(&nl, &LintConfig::default());
        assert!(diags.iter().any(|d| d.rule == Rule::DeadCone
            && d.location == Location::Instance { instance: "dead".into() }));
    }

    #[test]
    fn impossible_annotation_is_an_error() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        nl.add_instance("u0", "INV_X1_1.00_0.00", &[("A", a), ("Y", y)]);
        let mut config = LintConfig::default();
        config.input_intervals.insert(a, dataflow::Interval::point(1.0));
        let diags = run(&nl, &config);
        assert!(diags.iter().any(|d| d.rule == Rule::LambdaOutsideBounds));
    }

    #[test]
    fn inconsistent_pair_is_an_error_without_input_knowledge() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        nl.add_instance("u0", "INV_X1_0.10_0.10", &[("A", a), ("Y", y)]);
        let diags = run(&nl, &LintConfig::default());
        assert!(diags.iter().any(|d| d.rule == Rule::LambdaInconsistentPair));
    }

    #[test]
    fn widened_analysis_is_advisory() {
        let mut nl = Netlist::new("m");
        let n1 = nl.add_net("n1");
        let n2 = nl.add_net("n2");
        let y = nl.add_port("y", PortDir::Output);
        nl.add_instance("u0", "INV_X1", &[("A", n2), ("Y", n1)]);
        nl.add_instance("u1", "INV_X1", &[("A", n1), ("Y", n2)]);
        nl.add_instance("u2", "INV_X1", &[("A", n1), ("Y", y)]);
        let diags = run(&nl, &LintConfig::default());
        let d = diags.iter().find(|d| d.rule == Rule::WidenedAnalysis).expect("DF006 fires");
        assert_eq!(d.severity, crate::Severity::Info);
        assert!(d.message.contains("widened 2"));
    }

    /// The seeded-mutation acceptance path: a valid annotated netlist passes
    /// preflight; corrupting one λ-component out of its interval turns it
    /// into a `DF`-rule preflight error.
    #[test]
    fn preflight_catches_mutated_annotation() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        nl.add_instance("u0", "INV_X1_0.00_1.00", &[("A", a), ("Y", y)]);
        let mut config = LintConfig::default();
        config.input_intervals.insert(a, dataflow::Interval::point(1.0));
        assert!(crate::preflight_with(&nl, &lib(), &config).is_ok());

        // Mutate one component of the tag: λp 0.00 → 0.90.
        let id = netlist::InstId::from_index(0);
        nl.instance_mut(id).cell = "INV_X1_0.90_1.00".to_owned();
        let err = crate::preflight_with(&nl, &lib(), &config).unwrap_err();
        assert!(
            err.errors
                .iter()
                .any(|d| d.rule == Rule::LambdaOutsideBounds
                    || d.rule == Rule::LambdaInconsistentPair),
            "{err}"
        );
    }
}
