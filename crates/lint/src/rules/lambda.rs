//! `LM` rules: λ-annotation consistency against a merged complete library.
//!
//! The paper's flow annotates each instance with its signal-probability
//! duty cycles and retargets it to the λ-indexed cell variant
//! (`NAND2_X1_0.40_0.60`). Two things go wrong in practice: an annotation
//! lands on a duty-cycle pair the library was never characterized for
//! (`LM001`), or the annotation pass covers only part of the design
//! (`LM002`).

use crate::{Diagnostic, Location, Rule};
use liberty::{split_lambda_tag, LambdaTag, Library};
use netlist::Netlist;

pub(crate) fn check(netlist: &Netlist, library: &Library, out: &mut Vec<Diagnostic>) {
    let mut tagged = 0usize;
    let mut gaps: Vec<&str> = Vec::new();
    for inst in netlist.instances() {
        let (base, tag) = split_lambda_tag(&inst.cell);
        match tag {
            Some(tag) => {
                tagged += 1;
                if library.cell(&inst.cell).is_none() {
                    out_of_grid(inst, base, tag, library, out);
                }
            }
            None => {
                if has_lambda_variants(library, base) {
                    gaps.push(&inst.name);
                }
            }
        }
    }
    // LM002 fires only on *mixed* annotation: some instances retargeted,
    // others left on base cells that do have λ variants. A fully
    // unannotated netlist is a different (legitimate) flow stage.
    if tagged > 0 && !gaps.is_empty() {
        let shown = gaps.iter().take(4).copied().collect::<Vec<_>>().join(", ");
        let suffix = if gaps.len() > 4 { ", ..." } else { "" };
        out.push(Diagnostic::new(
            Rule::LambdaCoverageGap,
            Location::Design,
            format!(
                "{} instance(s) are λ-annotated but {} are not ({shown}{suffix}) although \
                 their cells have λ variants",
                tagged,
                gaps.len(),
            ),
        ));
    }
}

/// `LM001` with a diagnosis of *why* the pair is missing: non-canonical
/// number formatting, a range violation, or a hole between grid points.
fn out_of_grid(
    inst: &netlist::Instance,
    base: &str,
    tag: LambdaTag,
    library: &Library,
    out: &mut Vec<Diagnostic>,
) {
    let canonical = format!("{base}_{}", tag.suffix());
    let detail = if library.cell(&canonical).is_some() {
        format!(
            "pair is characterized as {canonical}; the annotation uses non-canonical formatting"
        )
    } else {
        let grid: Vec<LambdaTag> =
            library.cells_with_base(base).filter_map(|c| split_lambda_tag(&c.name).1).collect();
        if grid.is_empty() {
            format!("library {} has {base} but no λ-indexed variants of it", library.name)
        } else {
            let (p_lo, p_hi) = min_max(grid.iter().map(|t| t.lambda_pmos));
            let (n_lo, n_hi) = min_max(grid.iter().map(|t| t.lambda_nmos));
            if tag.lambda_pmos < p_lo
                || tag.lambda_pmos > p_hi
                || tag.lambda_nmos < n_lo
                || tag.lambda_nmos > n_hi
            {
                format!(
                    "(λp={:.2}, λn={:.2}) lies outside the characterized grid \
                     λp ∈ [{p_lo:.2}, {p_hi:.2}], λn ∈ [{n_lo:.2}, {n_hi:.2}]",
                    tag.lambda_pmos, tag.lambda_nmos
                )
            } else {
                format!(
                    "(λp={:.2}, λn={:.2}) falls between the {} characterized grid points \
                     of {base}",
                    tag.lambda_pmos,
                    tag.lambda_nmos,
                    grid.len()
                )
            }
        }
    };
    out.push(Diagnostic::new(
        Rule::LambdaOutOfGrid,
        Location::Instance { instance: inst.name.clone() },
        format!("cell {}: {detail}", inst.cell),
    ));
}

fn has_lambda_variants(library: &Library, base: &str) -> bool {
    library.cells_with_base(base).any(|c| c.name != base)
}

fn min_max(values: impl Iterator<Item = f64>) -> (f64, f64) {
    values.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| (lo.min(v), hi.max(v)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use liberty::Cell;
    use netlist::{Netlist, PortDir};

    /// A merged library with `INV_X1` characterized at the 2×2 grid
    /// {0.25, 0.75}².
    fn merged() -> Library {
        let mut lib = Library::new("complete", 1.2);
        for p in ["0.25", "0.75"] {
            for n in ["0.25", "0.75"] {
                lib.add_cell(Cell::test_inverter(&format!("INV_X1_{p}_{n}")));
            }
        }
        lib
    }

    fn one_instance(cell: &str) -> Netlist {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        nl.add_instance("u0", cell, &[("A", a), ("Y", y)]);
        nl
    }

    fn run(nl: &Netlist, lib: &Library) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check(nl, lib, &mut out);
        out
    }

    #[test]
    fn characterized_pair_is_silent() {
        assert!(run(&one_instance("INV_X1_0.25_0.75"), &merged()).is_empty());
    }

    #[test]
    fn pair_outside_grid_range() {
        let diags = run(&one_instance("INV_X1_0.90_0.25"), &merged());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::LambdaOutOfGrid);
        assert!(diags[0].message.contains("outside"), "{}", diags[0].message);
    }

    #[test]
    fn pair_between_grid_points() {
        let diags = run(&one_instance("INV_X1_0.50_0.50"), &merged());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::LambdaOutOfGrid);
        assert!(diags[0].message.contains("between"), "{}", diags[0].message);
    }

    #[test]
    fn non_canonical_formatting_diagnosed() {
        let diags = run(&one_instance("INV_X1_0.2500_0.75"), &merged());
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("non-canonical"), "{}", diags[0].message);
    }

    #[test]
    fn base_without_variants() {
        let mut lib = merged();
        lib.add_cell(Cell::test_inverter("NAND2_X1"));
        let diags = run(&one_instance("NAND2_X1_0.25_0.25"), &lib);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("no λ-indexed variants"), "{}", diags[0].message);
    }

    #[test]
    fn coverage_gap_on_mixed_annotation() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        let n1 = nl.add_net("n1");
        nl.add_instance("u0", "INV_X1_0.25_0.25", &[("A", a), ("Y", n1)]);
        nl.add_instance("u1", "INV_X1", &[("A", n1), ("Y", y)]);
        let diags = run(&nl, &merged());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::LambdaCoverageGap);
        assert_eq!(diags[0].location, Location::Design);
        assert!(diags[0].message.contains("u1"), "{}", diags[0].message);
    }

    #[test]
    fn fully_unannotated_netlist_has_no_gap() {
        // Against a merged library an unannotated instance is NL001
        // territory, not a coverage gap.
        assert!(run(&one_instance("INV_X1"), &merged()).is_empty());
    }
}
