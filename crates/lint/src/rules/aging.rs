//! `AG001`: aging monotonicity across a fresh/aged library pair.
//!
//! BTI-induced threshold-voltage shifts slow transistors down, so an aged
//! delay table should dominate its fresh counterpart point by point. A
//! faster-when-aged entry is almost always a characterization bug — except
//! for the contention arcs of Fig. 1(b) (the NOR fall delay genuinely
//! improves at large input slews), which the
//! [`improvement_whitelist`](crate::LintConfig::improvement_whitelist)
//! exempts.

use crate::{Diagnostic, LintConfig, Location, Rule};
use liberty::{split_lambda_tag, Library, Table2d};

/// Relative slack below which a faster-when-aged entry is treated as
/// characterization noise rather than a violation.
const REL_TOLERANCE: f64 = 1e-6;

pub(crate) fn check(
    fresh: &Library,
    aged: &Library,
    config: &LintConfig,
    out: &mut Vec<Diagnostic>,
) {
    for fresh_cell in fresh.cells() {
        let Some(aged_cell) = aged.cell(&fresh_cell.name) else { continue };
        let base = split_lambda_tag(&fresh_cell.name).0;
        for fresh_pin in &fresh_cell.outputs {
            let Some(aged_pin) = aged_cell.output(&fresh_pin.name) else { continue };
            for fresh_arc in &fresh_pin.arcs {
                let Some(aged_arc) = aged_pin.arc_from(&fresh_arc.related_pin) else { continue };
                for (falling, fresh_table, aged_table) in [
                    (false, &fresh_arc.cell_rise, &aged_arc.cell_rise),
                    (true, &fresh_arc.cell_fall, &aged_arc.cell_fall),
                ] {
                    let whitelisted = config
                        .improvement_whitelist
                        .iter()
                        .any(|w| base.starts_with(&w.cell_prefix) && w.output_falling == falling);
                    if whitelisted {
                        continue;
                    }
                    if let Some(finding) = worst_improvement(fresh_table, aged_table) {
                        out.push(Diagnostic::new(
                            Rule::AgingImprovement,
                            Location::Arc {
                                cell: fresh_cell.name.clone(),
                                input: fresh_arc.related_pin.clone(),
                                output: fresh_pin.name.clone(),
                            },
                            format!(
                                "{} delay improves with aging by {:.1}% at slew={:.3e} s, \
                                 load={:.3e} F",
                                if falling { "fall" } else { "rise" },
                                finding.rel_improvement * 100.0,
                                finding.slew,
                                finding.load
                            ),
                        ));
                    }
                }
            }
        }
    }
}

struct Improvement {
    rel_improvement: f64,
    slew: f64,
    load: f64,
}

/// The largest relative fresh→aged speed-up over the fresh grid, if any
/// point improves beyond tolerance. The aged table is sampled via
/// interpolating [`Table2d::value`] so mismatched grids still compare.
fn worst_improvement(fresh: &Table2d, aged: &Table2d) -> Option<Improvement> {
    let mut worst: Option<Improvement> = None;
    for (i, &slew) in fresh.slew_axis().iter().enumerate() {
        for (j, &load) in fresh.load_axis().iter().enumerate() {
            let f = fresh.at(i, j);
            let a = aged.value(slew, load);
            if f <= 0.0 {
                continue; // nonsense entries are LB004's problem
            }
            let rel = (f - a) / f;
            if rel > REL_TOLERANCE && worst.as_ref().is_none_or(|w| rel > w.rel_improvement) {
                worst = Some(Improvement { rel_improvement: rel, slew, load });
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use liberty::Cell;

    fn lib_with(cell: Cell) -> Library {
        let mut lib = Library::new("l", 1.2);
        lib.add_cell(cell);
        lib
    }

    /// Scales the named delay edge of every arc by `factor`.
    fn scale_edge(cell: &mut Cell, falling: bool, factor: f64) {
        for pin in &mut cell.outputs {
            for arc in &mut pin.arcs {
                let table = if falling { &mut arc.cell_fall } else { &mut arc.cell_rise };
                *table = table.map(|v| v * factor);
            }
        }
    }

    fn run(fresh: &Library, aged: &Library) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check(fresh, aged, &LintConfig::default(), &mut out);
        out
    }

    #[test]
    fn uniformly_slower_aged_library_is_silent() {
        let fresh = lib_with(Cell::test_inverter("INV_X1"));
        let mut aged_cell = Cell::test_inverter("INV_X1");
        scale_edge(&mut aged_cell, false, 1.1);
        scale_edge(&mut aged_cell, true, 1.1);
        assert!(run(&fresh, &lib_with(aged_cell)).is_empty());
    }

    #[test]
    fn identical_libraries_are_silent() {
        let fresh = lib_with(Cell::test_inverter("INV_X1"));
        let aged = fresh.clone();
        assert!(run(&fresh, &aged).is_empty());
    }

    #[test]
    fn faster_aged_fall_delay_flagged_with_arc_location() {
        let fresh = lib_with(Cell::test_inverter("INV_X1"));
        let mut aged_cell = Cell::test_inverter("INV_X1");
        scale_edge(&mut aged_cell, true, 0.9);
        let diags = run(&fresh, &lib_with(aged_cell));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, Rule::AgingImprovement);
        assert_eq!(
            diags[0].location,
            Location::Arc { cell: "INV_X1".into(), input: "A".into(), output: "Y".into() }
        );
        assert!(diags[0].message.contains("fall"), "{}", diags[0].message);
    }

    #[test]
    fn nor_fall_improvement_is_whitelisted() {
        let fresh = lib_with(Cell::test_inverter("NOR2_X1"));
        let mut aged_cell = Cell::test_inverter("NOR2_X1");
        scale_edge(&mut aged_cell, true, 0.9);
        assert!(run(&fresh, &lib_with(aged_cell)).is_empty());
    }

    #[test]
    fn nor_rise_improvement_still_flagged() {
        let fresh = lib_with(Cell::test_inverter("NOR2_X1"));
        let mut aged_cell = Cell::test_inverter("NOR2_X1");
        scale_edge(&mut aged_cell, false, 0.9);
        let diags = run(&fresh, &lib_with(aged_cell));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("rise"), "{}", diags[0].message);
    }

    #[test]
    fn whitelist_matches_lambda_tagged_variants() {
        let fresh = lib_with(Cell::test_inverter("NOR2_X1_0.40_0.60"));
        let mut aged_cell = Cell::test_inverter("NOR2_X1_0.40_0.60");
        scale_edge(&mut aged_cell, true, 0.9);
        assert!(run(&fresh, &lib_with(aged_cell)).is_empty());
    }
}
