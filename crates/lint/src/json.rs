//! Hand-rolled JSON output for [`LintReport`] (no serde in this workspace).
//!
//! Schema (documented in `DESIGN.md`):
//!
//! ```json
//! {
//!   "tool": "relialint",
//!   "errors": 1,
//!   "warnings": 0,
//!   "diagnostics": [
//!     {
//!       "rule": "NL003",
//!       "severity": "error",
//!       "location": {"kind": "net", "net": "n1"},
//!       "message": "driven by u0, u1"
//!     }
//!   ]
//! }
//! ```

use crate::{LintReport, Location};
use std::fmt::Write;

pub(crate) fn report_to_json(report: &LintReport) -> String {
    let mut out = String::from("{\n");
    let _ = write!(
        out,
        "  \"tool\": \"relialint\",\n  \"errors\": {},\n  \"warnings\": {},\n  \"diagnostics\": [",
        report.error_count(),
        report.warning_count()
    );
    for (k, d) in report.diagnostics().iter().enumerate() {
        let _ = write!(
            out,
            "{}\n    {{\"rule\": {}, \"severity\": {}, \"location\": {}, \"message\": {}}}",
            if k == 0 { "" } else { "," },
            quote(d.rule.code()),
            quote(d.severity.label()),
            location_to_json(&d.location),
            quote(&d.message)
        );
    }
    if !report.diagnostics().is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn location_to_json(location: &Location) -> String {
    match location {
        Location::Library => r#"{"kind": "library"}"#.to_owned(),
        Location::Design => r#"{"kind": "design"}"#.to_owned(),
        Location::Cell { cell } => format!(r#"{{"kind": "cell", "cell": {}}}"#, quote(cell)),
        Location::Arc { cell, input, output } => format!(
            r#"{{"kind": "arc", "cell": {}, "input": {}, "output": {}}}"#,
            quote(cell),
            quote(input),
            quote(output)
        ),
        Location::Instance { instance } => {
            format!(r#"{{"kind": "instance", "instance": {}}}"#, quote(instance))
        }
        Location::Net { net } => format!(r#"{{"kind": "net", "net": {}}}"#, quote(net)),
    }
}

/// Quotes and escapes `s` as a JSON string literal.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Diagnostic, LintConfig, LintReport, Rule};

    #[test]
    fn quoting_escapes_specials() {
        assert_eq!(quote("plain"), r#""plain""#);
        assert_eq!(quote("a\"b\\c"), r#""a\"b\\c""#);
        assert_eq!(quote("a\nb\tc"), r#""a\nb\tc""#);
        assert_eq!(quote("\u{1}"), r#""\u0001""#);
        assert_eq!(quote("λ≥½"), "\"λ≥½\"");
    }

    #[test]
    fn empty_report_serializes() {
        let json = LintReport::default().to_json();
        assert!(json.contains("\"tool\": \"relialint\""));
        assert!(json.contains("\"errors\": 0"));
        assert!(json.contains("\"diagnostics\": []"));
    }

    #[test]
    fn diagnostics_serialize_with_locations() {
        let diagnostics = vec![
            Diagnostic::new(
                Rule::MultipleDrivers,
                Location::Net { net: "n\"1".into() },
                "driven by u0, u1".into(),
            ),
            Diagnostic::new(
                Rule::AgingImprovement,
                Location::Arc { cell: "NOR2_X1".into(), input: "A1".into(), output: "Y".into() },
                "fall delay improves".into(),
            ),
        ];
        let report = LintReport::finish(diagnostics, &LintConfig::default());
        let json = report.to_json();
        assert!(json.contains(r#""rule": "NL003""#), "{json}");
        assert!(json.contains(r#""severity": "error""#), "{json}");
        assert!(json.contains(r#""kind": "net", "net": "n\"1""#), "{json}");
        assert!(
            json.contains(r#""kind": "arc", "cell": "NOR2_X1", "input": "A1", "output": "Y""#),
            "{json}"
        );
        assert!(json.contains(r#""errors": 1"#), "{json}");
        assert!(json.contains(r#""warnings": 1"#), "{json}");
    }
}
