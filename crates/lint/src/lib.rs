//! **relialint** — rule-based static analysis for the reliability-aware
//! design flow.
//!
//! The paper's flow chains characterized libraries, gate-level netlists and
//! λ-annotations through synthesis, STA and simulation; a malformed input
//! surfaces late, deep inside whichever tool happens to trip over it first.
//! relialint runs the checks *before* simulation or timing analysis and
//! reports every finding at once as structured diagnostics:
//!
//! - a stable rule ID per check (`LB...` library, `NL...` netlist,
//!   `LM...` λ-annotation, `TM...` timing-context, `AG...` aging,
//!   `DF...` dataflow, `PT...` path-level timing, `LT...` lifetime,
//!   `PV...` process variation),
//! - a severity ([`Severity::Error`] aborts flows, [`Severity::Warning`]
//!   is logged, [`Severity::Info`] is advisory),
//! - a precise [`Location`] (cell, arc, instance or net),
//! - human-readable rendering and JSON output,
//! - per-rule suppression via [`LintConfig::allow`].
//!
//! Entry points: [`LintReport::run`] (netlist against library),
//! [`LintReport::run_library`] (library alone), [`LintReport::run_aging`]
//! (fresh/aged pair) and [`preflight`] (the gate used by the `flow` crate).
//!
//! # Example
//!
//! ```
//! use lint::{LintConfig, LintReport, Rule};
//! use liberty::{Cell, Library};
//! use netlist::{Netlist, PortDir};
//!
//! let mut lib = Library::new("lib", 1.2);
//! lib.add_cell(Cell::test_inverter("INV_X1"));
//! let mut nl = Netlist::new("m");
//! let a = nl.add_port("a", PortDir::Input);
//! let y = nl.add_port("y", PortDir::Output);
//! nl.add_instance("u0", "MISSING_X1", &[("A", a), ("Y", y)]);
//!
//! let report = LintReport::run(&nl, &lib, &LintConfig::default());
//! assert!(report.has_errors());
//! assert!(report.diagnostics().iter().any(|d| d.rule == Rule::UnknownCell));
//! ```

mod json;
mod rules;

pub use dataflow::Extraction;
use liberty::Library;
use netlist::Netlist;
use std::collections::BTreeSet;
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory; never affects flow control.
    Info,
    /// Suspicious but analyzable; pre-flight gates log these and continue.
    Warning,
    /// The input is unusable for analysis; pre-flight gates abort.
    Error,
}

impl Severity {
    /// Lower-case label used in text and JSON output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Every relialint rule, identified by a stable code.
///
/// Codes are append-only: a rule keeps its code forever so suppression
/// lists and tooling stay valid across versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// LB001 — the library contains no cells.
    EmptyLibrary,
    /// LB002 — an input pin capacitance is non-positive, NaN or absurd.
    ImplausibleCapacitance,
    /// LB003 — an output pin carries no timing arcs.
    MissingArcs,
    /// LB004 — an output-transition table has non-positive entries.
    NonPositiveTransition,
    /// LB005 — delay fails to increase with output load.
    NonMonotoneLoad,
    /// LB006 — a table contains the characterizer's timeout fallback.
    TimedOutMeasurement,
    /// LB007 — delay decreases with input slew.
    NonMonotoneSlew,
    /// LB008 — cells are characterized on different slew/load grids.
    InconsistentGrid,
    /// NL001 — an instance references a cell the library does not have.
    UnknownCell,
    /// NL002 — an instance connects a pin its cell does not have.
    UnknownPin,
    /// NL003 — a net is driven by more than one output (or port).
    MultipleDrivers,
    /// NL004 — a cell input pin is unconnected.
    UnconnectedInput,
    /// NL005 — a net with sinks has no driver at all.
    FloatingNet,
    /// NL006 — a cell output is unconnected, or drives a net nobody reads.
    DanglingOutput,
    /// NL007 — two instances share one name.
    DuplicateInstance,
    /// NL008 — the combinational logic contains a cycle.
    CombinationalLoop,
    /// LM001 — a λ-annotated instance references an uncharacterized
    /// duty-cycle pair (outside or between the grid points of the library).
    LambdaOutOfGrid,
    /// LM002 — an annotated netlist leaves some instances unannotated even
    /// though their cells have λ variants (coverage gap).
    LambdaCoverageGap,
    /// TM001 — the analysis operating conditions fall outside the
    /// characterized table axes, forcing extrapolation.
    Extrapolation,
    /// AG001 — an aged delay is *smaller* than the fresh delay on some arc
    /// that is not a whitelisted physical improvement (cf. the NOR fall
    /// arc of the paper's Fig. 1(b)).
    AgingImprovement,
    /// DF001 — interval propagation pins an internal net to a constant
    /// level: the driver is a maximal asymmetric BTI stress hotspot.
    ConstantNet,
    /// DF002 — a primary output is statically constant (the whole cone
    /// computes nothing observable).
    ConstantOutput,
    /// DF003 — an instance's output cone never reaches a primary output.
    DeadCone,
    /// DF004 — a λ-annotation lies outside its statically provable
    /// interval; no workload can produce it.
    LambdaOutsideBounds,
    /// DF005 — a (λp, λn) annotation pair violates the extraction-mode
    /// invariant (gate-average: λp + λn = 1; worst-pin: λp + λn ≥ 1).
    LambdaInconsistentPair,
    /// DF006 — the interval analysis widened or skipped instances
    /// (combinational loops, unresolvable cells), so DF checks are partial.
    WidenedAnalysis,
    /// PT001 — an enumerated path's aged delay exceeds the provable
    /// `static_guardband_bound`; bound and path come from the same
    /// annotation, so this is an invariant violation.
    PathGuardbandOverBound,
    /// PT002 — one arc carries almost the entire aging guardband of a
    /// near-critical path (a single degradation hotspot decides the
    /// design's lifetime margin).
    AgingDominantArc,
    /// PT003 — a path's aged delay is *below* its fresh delay: the
    /// annotation or complete library breaks degradation monotonicity at
    /// the path level.
    NonMonotoneAgedPath,
    /// PT004 — the near-critical path population inside the window exceeds
    /// the configured limit (or exhausted the enumeration budget):
    /// single-path guardbanding is unreliable under criticality switching.
    NearCriticalExplosion,
    /// PT005 — timing endpoints exist but no clock period is configured,
    /// so path slacks are vacuous.
    UnconstrainedEndpoint,
    /// LT001 — the provable design MTTF lower bound falls below the
    /// configured lifetime target.
    MttfBelowTarget,
    /// LT002 — one mechanism carries almost the entire design failure
    /// hazard: the lifetime verdict hinges on a single model's calibration.
    MechanismDominance,
    /// LT003 — the lifetime environment configuration is unsound
    /// (inverted/non-finite temperature or Vdd range, non-positive horizon,
    /// frequency or budget), so interval-endpoint evaluation proves nothing.
    EnvIntervalUnsound,
    /// LT004 — a configured aging mechanism violates the monotonicity
    /// contract, so evaluating it at interval endpoints is unsound.
    NonMonotoneMechanism,
    /// LT005 — an instance's MTTF lower bound falls below the lifetime
    /// target (a localized wear-out hotspot).
    LifetimeHotspot,
    /// LT006 — the provable years-until-guardband-exhaustion bound is
    /// shorter than the configured lifetime horizon.
    GuardbandExhausted,
    /// PV001 — process variation erodes the design MTTF: the sampled
    /// low-quantile die retains less of the nominal bound than the allowed
    /// variation guardband gap, so nominal-only sign-off over-promises.
    VariationGuardbandGap,
    /// PV002 — the Monte-Carlo sampling plan (or its quantile/gap
    /// thresholds) is unsound, so the sampled distribution proves nothing.
    SamplingPlanUnsound,
    /// PV003 — a sampled die's MTTF falls below the variation-aware static
    /// lower bound; sampler and bound come from the same monotonicity
    /// contract, so this is an invariant violation.
    SampleBelowStaticBound,
}

impl Rule {
    /// All rules in code order.
    pub const ALL: [Rule; 40] = [
        Rule::EmptyLibrary,
        Rule::ImplausibleCapacitance,
        Rule::MissingArcs,
        Rule::NonPositiveTransition,
        Rule::NonMonotoneLoad,
        Rule::TimedOutMeasurement,
        Rule::NonMonotoneSlew,
        Rule::InconsistentGrid,
        Rule::UnknownCell,
        Rule::UnknownPin,
        Rule::MultipleDrivers,
        Rule::UnconnectedInput,
        Rule::FloatingNet,
        Rule::DanglingOutput,
        Rule::DuplicateInstance,
        Rule::CombinationalLoop,
        Rule::LambdaOutOfGrid,
        Rule::LambdaCoverageGap,
        Rule::Extrapolation,
        Rule::AgingImprovement,
        Rule::ConstantNet,
        Rule::ConstantOutput,
        Rule::DeadCone,
        Rule::LambdaOutsideBounds,
        Rule::LambdaInconsistentPair,
        Rule::WidenedAnalysis,
        Rule::PathGuardbandOverBound,
        Rule::AgingDominantArc,
        Rule::NonMonotoneAgedPath,
        Rule::NearCriticalExplosion,
        Rule::UnconstrainedEndpoint,
        Rule::MttfBelowTarget,
        Rule::MechanismDominance,
        Rule::EnvIntervalUnsound,
        Rule::NonMonotoneMechanism,
        Rule::LifetimeHotspot,
        Rule::GuardbandExhausted,
        Rule::VariationGuardbandGap,
        Rule::SamplingPlanUnsound,
        Rule::SampleBelowStaticBound,
    ];

    /// The stable rule code, e.g. `NL003`.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            Rule::EmptyLibrary => "LB001",
            Rule::ImplausibleCapacitance => "LB002",
            Rule::MissingArcs => "LB003",
            Rule::NonPositiveTransition => "LB004",
            Rule::NonMonotoneLoad => "LB005",
            Rule::TimedOutMeasurement => "LB006",
            Rule::NonMonotoneSlew => "LB007",
            Rule::InconsistentGrid => "LB008",
            Rule::UnknownCell => "NL001",
            Rule::UnknownPin => "NL002",
            Rule::MultipleDrivers => "NL003",
            Rule::UnconnectedInput => "NL004",
            Rule::FloatingNet => "NL005",
            Rule::DanglingOutput => "NL006",
            Rule::DuplicateInstance => "NL007",
            Rule::CombinationalLoop => "NL008",
            Rule::LambdaOutOfGrid => "LM001",
            Rule::LambdaCoverageGap => "LM002",
            Rule::Extrapolation => "TM001",
            Rule::AgingImprovement => "AG001",
            Rule::ConstantNet => "DF001",
            Rule::ConstantOutput => "DF002",
            Rule::DeadCone => "DF003",
            Rule::LambdaOutsideBounds => "DF004",
            Rule::LambdaInconsistentPair => "DF005",
            Rule::WidenedAnalysis => "DF006",
            Rule::PathGuardbandOverBound => "PT001",
            Rule::AgingDominantArc => "PT002",
            Rule::NonMonotoneAgedPath => "PT003",
            Rule::NearCriticalExplosion => "PT004",
            Rule::UnconstrainedEndpoint => "PT005",
            Rule::MttfBelowTarget => "LT001",
            Rule::MechanismDominance => "LT002",
            Rule::EnvIntervalUnsound => "LT003",
            Rule::NonMonotoneMechanism => "LT004",
            Rule::LifetimeHotspot => "LT005",
            Rule::GuardbandExhausted => "LT006",
            Rule::VariationGuardbandGap => "PV001",
            Rule::SamplingPlanUnsound => "PV002",
            Rule::SampleBelowStaticBound => "PV003",
        }
    }

    /// The built-in severity of the rule.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            Rule::EmptyLibrary
            | Rule::ImplausibleCapacitance
            | Rule::MissingArcs
            | Rule::NonPositiveTransition
            | Rule::TimedOutMeasurement
            | Rule::UnknownCell
            | Rule::UnknownPin
            | Rule::MultipleDrivers
            | Rule::UnconnectedInput
            | Rule::DuplicateInstance
            | Rule::CombinationalLoop
            | Rule::LambdaOutOfGrid
            | Rule::LambdaOutsideBounds
            | Rule::LambdaInconsistentPair
            | Rule::PathGuardbandOverBound
            | Rule::NonMonotoneAgedPath
            | Rule::EnvIntervalUnsound
            | Rule::NonMonotoneMechanism
            | Rule::SamplingPlanUnsound
            | Rule::SampleBelowStaticBound => Severity::Error,
            Rule::NonMonotoneLoad
            | Rule::NonMonotoneSlew
            | Rule::InconsistentGrid
            | Rule::FloatingNet
            | Rule::LambdaCoverageGap
            | Rule::Extrapolation
            | Rule::AgingImprovement
            | Rule::ConstantNet
            | Rule::ConstantOutput
            | Rule::DeadCone
            | Rule::AgingDominantArc
            | Rule::UnconstrainedEndpoint
            | Rule::MttfBelowTarget
            | Rule::LifetimeHotspot
            | Rule::GuardbandExhausted
            | Rule::VariationGuardbandGap => Severity::Warning,
            Rule::DanglingOutput
            | Rule::WidenedAnalysis
            | Rule::NearCriticalExplosion
            | Rule::MechanismDominance => Severity::Info,
        }
    }

    /// One-line description of what the rule checks.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            Rule::EmptyLibrary => "library has no cells",
            Rule::ImplausibleCapacitance => "implausible input-pin capacitance",
            Rule::MissingArcs => "output pin without timing arcs",
            Rule::NonPositiveTransition => "non-positive output transition",
            Rule::NonMonotoneLoad => "delay not increasing with output load",
            Rule::TimedOutMeasurement => "table contains a timed-out measurement",
            Rule::NonMonotoneSlew => "delay decreasing with input slew",
            Rule::InconsistentGrid => "cells characterized on different OPC grids",
            Rule::UnknownCell => "instance references unknown cell",
            Rule::UnknownPin => "instance connects unknown pin",
            Rule::MultipleDrivers => "net driven by multiple outputs",
            Rule::UnconnectedInput => "cell input pin unconnected",
            Rule::FloatingNet => "net with sinks but no driver",
            Rule::DanglingOutput => "cell output drives nothing",
            Rule::DuplicateInstance => "duplicate instance names",
            Rule::CombinationalLoop => "combinational loop",
            Rule::LambdaOutOfGrid => "λ pair not characterized in the library",
            Rule::LambdaCoverageGap => "λ annotation does not cover all instances",
            Rule::Extrapolation => "operating conditions outside table axes",
            Rule::AgingImprovement => "aged delay faster than fresh (not whitelisted)",
            Rule::ConstantNet => "net statically constant (BTI stress hotspot)",
            Rule::ConstantOutput => "primary output statically constant",
            Rule::DeadCone => "instance unobservable from any primary output",
            Rule::LambdaOutsideBounds => "λ-annotation outside provable interval",
            Rule::LambdaInconsistentPair => "λ pair violates extraction invariant",
            Rule::WidenedAnalysis => "interval analysis widened (partial DF coverage)",
            Rule::PathGuardbandOverBound => "aged path delay exceeds the static bound",
            Rule::AgingDominantArc => "one arc dominates a near-critical path's guardband",
            Rule::NonMonotoneAgedPath => "aged path delay below fresh path delay",
            Rule::NearCriticalExplosion => "near-critical path population explosion",
            Rule::UnconstrainedEndpoint => "timing endpoints without a clock constraint",
            Rule::MttfBelowTarget => "design MTTF lower bound below the lifetime target",
            Rule::MechanismDominance => "one mechanism dominates the failure hazard",
            Rule::EnvIntervalUnsound => "lifetime environment configuration is unsound",
            Rule::NonMonotoneMechanism => "aging mechanism violates monotonicity contract",
            Rule::LifetimeHotspot => "instance MTTF lower bound below the lifetime target",
            Rule::GuardbandExhausted => "guardband budget exhausted within the horizon",
            Rule::VariationGuardbandGap => "sampled quantile MTTF erodes the nominal bound",
            Rule::SamplingPlanUnsound => "Monte-Carlo sampling plan is unsound",
            Rule::SampleBelowStaticBound => "sampled MTTF below the variation-aware bound",
        }
    }

    /// Parses a rule code (`"NL003"`), case-insensitively.
    #[must_use]
    pub fn from_code(code: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.code().eq_ignore_ascii_case(code))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Where a diagnostic points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Location {
    /// The library as a whole.
    Library,
    /// A library cell.
    Cell {
        /// Cell name.
        cell: String,
    },
    /// One timing arc of a cell.
    Arc {
        /// Cell name.
        cell: String,
        /// Related input pin.
        input: String,
        /// Output pin.
        output: String,
    },
    /// A netlist instance.
    Instance {
        /// Instance name.
        instance: String,
    },
    /// A net.
    Net {
        /// Net name.
        net: String,
    },
    /// The design as a whole.
    Design,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Library => f.write_str("library"),
            Location::Cell { cell } => write!(f, "cell {cell}"),
            Location::Arc { cell, input, output } => {
                write!(f, "cell {cell} arc {input}->{output}")
            }
            Location::Instance { instance } => write!(f, "instance {instance}"),
            Location::Net { net } => write!(f, "net {net}"),
            Location::Design => f.write_str("design"),
        }
    }
}

/// One finding: a rule violation at a location.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The violated rule.
    pub rule: Rule,
    /// Severity (the rule's built-in severity).
    pub severity: Severity,
    /// Where the problem is.
    pub location: Location,
    /// Specifics of this occurrence.
    pub message: String,
}

impl Diagnostic {
    pub(crate) fn new(rule: Rule, location: Location, message: String) -> Self {
        Diagnostic { rule, severity: rule.severity(), location, message }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity.label(),
            self.rule.code(),
            self.location,
            self.message
        )
    }
}

/// A whitelisted physical delay improvement for rule `AG001`.
///
/// The paper's Fig. 1(b): the NOR fall delay *improves* with aging at large
/// input slews, because NBTI weakens the opposing pMOS stack during the
/// contention window. Such arcs are physical, not characterization bugs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImprovementWhitelist {
    /// Cell-name prefix the exemption applies to (matched against the
    /// λ-stripped base name), e.g. `"NOR"`.
    pub cell_prefix: String,
    /// `true` exempts falling-output delays, `false` rising-output delays.
    pub output_falling: bool,
}

/// Configuration of the `LT` lifetime rules.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeLintConfig {
    /// The static-lifetime-analysis configuration (mechanism suite,
    /// horizon, environment ranges, `ΔVth` budget).
    pub config: dataflow::LifetimeConfig,
    /// `LT001`/`LT005` fire when a provable MTTF lower bound falls below
    /// this many years.
    pub mttf_target_years: f64,
    /// `LT002` fires when one mechanism's share of the total design hazard
    /// exceeds this fraction.
    pub dominance_share: f64,
}

impl Default for LifetimeLintConfig {
    fn default() -> Self {
        LifetimeLintConfig {
            config: dataflow::LifetimeConfig::default(),
            mttf_target_years: 10.0,
            dominance_share: 0.9,
        }
    }
}

/// Configuration of the `PV` process-variation rules.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationLintConfig {
    /// The static-lifetime-analysis configuration the sampled dies are
    /// derived from.
    pub config: dataflow::LifetimeConfig,
    /// The Monte-Carlo sampling plan (die count, seed, Vth spread, clamp).
    pub sampling: dataflow::McSampling,
    /// The low quantile `PV001` measures variation erosion at (e.g. 0.05
    /// = the p5 die).
    pub quantile: f64,
    /// `PV001` fires when the quantile die retains less than
    /// `1 − max_gap` of the nominal design MTTF bound.
    pub max_gap: f64,
}

impl Default for VariationLintConfig {
    fn default() -> Self {
        VariationLintConfig {
            config: dataflow::LifetimeConfig::default(),
            sampling: dataflow::McSampling::nominal_45nm(64, 1),
            quantile: 0.05,
            max_gap: 0.25,
        }
    }
}

/// Lint configuration: suppression and analysis context.
#[derive(Debug, Clone, PartialEq)]
pub struct LintConfig {
    /// Rules to suppress entirely.
    pub allow: BTreeSet<Rule>,
    /// Input slew assumed at primary inputs for `TM001` (defaults to the
    /// library's `default_input_slew`).
    pub input_slew: Option<f64>,
    /// Load assumed at primary outputs for `TM001` (defaults to the
    /// library's `default_output_load`).
    pub output_load: Option<f64>,
    /// Arcs allowed to improve with aging under `AG001`.
    pub improvement_whitelist: Vec<ImprovementWhitelist>,
    /// Extraction mode assumed by the `DF004`/`DF005` λ-validation rules
    /// (must match the mode the annotations were produced with).
    pub lambda_extraction: Extraction,
    /// λ-grid resolution the annotations were quantized to; sets the
    /// quantization tolerance of `DF004`/`DF005`.
    pub lambda_steps: u32,
    /// Signal-probability intervals assumed at primary inputs for the `DF`
    /// rules (unlisted inputs span the full `[0, 1]` — any workload).
    pub input_intervals: std::collections::HashMap<netlist::NetId, dataflow::Interval>,
    /// Maximum number of worst paths the `PT` rules enumerate.
    pub path_budget: usize,
    /// Near-critical window width for `PT002`/`PT004`, as a fraction of the
    /// fresh critical delay.
    pub near_critical_fraction: f64,
    /// `PT004` fires when at least this many non-false paths sit inside the
    /// near-critical window.
    pub near_critical_limit: usize,
    /// `PT002` fires when one arc's share of a near-critical path's
    /// guardband exceeds this fraction.
    pub arc_concentration: f64,
    /// Clock period assumed by the `PT` rules; `None` trips `PT005` on
    /// designs with endpoints.
    pub clock_period: Option<f64>,
    /// Enables the `LT` lifetime rules with the given configuration;
    /// `None` (the default) skips them.
    pub lifetime: Option<LifetimeLintConfig>,
    /// Enables the `PV` process-variation rules with the given
    /// configuration; `None` (the default) skips them.
    pub variation: Option<VariationLintConfig>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            allow: BTreeSet::new(),
            input_slew: None,
            output_load: None,
            improvement_whitelist: vec![ImprovementWhitelist {
                cell_prefix: "NOR".to_owned(),
                output_falling: true,
            }],
            lambda_extraction: Extraction::default(),
            lambda_steps: 10,
            input_intervals: std::collections::HashMap::new(),
            path_budget: 256,
            near_critical_fraction: 0.05,
            near_critical_limit: 64,
            arc_concentration: 0.8,
            clock_period: None,
            lifetime: None,
            variation: None,
        }
    }
}

impl LintConfig {
    /// Suppresses `rule`.
    #[must_use]
    pub fn allowing(mut self, rule: Rule) -> Self {
        self.allow.insert(rule);
        self
    }

    /// Suppresses every rule named in `codes` (e.g. `["NL006", "LB008"]`).
    ///
    /// # Errors
    ///
    /// Returns the first code that is not a known rule.
    pub fn allow_codes<'a>(
        mut self,
        codes: impl IntoIterator<Item = &'a str>,
    ) -> Result<Self, String> {
        for code in codes {
            let rule = Rule::from_code(code).ok_or_else(|| code.to_owned())?;
            self.allow.insert(rule);
        }
        Ok(self)
    }
}

/// The outcome of a lint run: the surviving diagnostics, worst first.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Lints `netlist` against `library`: all `NL`, `LM` and `TM` rules,
    /// plus the `LB` library rules.
    #[must_use]
    pub fn run(netlist: &Netlist, library: &Library, config: &LintConfig) -> Self {
        let mut diagnostics = Vec::new();
        rules::library::check(library, &mut diagnostics);
        rules::structure::check(netlist, library, &mut diagnostics);
        rules::lambda::check(netlist, library, &mut diagnostics);
        rules::timing::check(netlist, library, config, &mut diagnostics);
        rules::dataflow::check(netlist, library, config, &mut diagnostics);
        if config.lifetime.is_some() {
            rules::lifetime::check(netlist, library, config, &mut diagnostics);
        }
        if config.variation.is_some() {
            rules::variation::check(netlist, library, config, &mut diagnostics);
        }
        Self::finish(diagnostics, config)
    }

    /// Runs the `LT` lifetime rules alone (static lifetime bounds against
    /// [`LintConfig::lifetime`], or the default lifetime configuration when
    /// unset).
    #[must_use]
    pub fn run_lifetime(netlist: &Netlist, library: &Library, config: &LintConfig) -> Self {
        let mut with_lifetime;
        let config = if config.lifetime.is_some() {
            config
        } else {
            with_lifetime = config.clone();
            with_lifetime.lifetime = Some(LifetimeLintConfig::default());
            &with_lifetime
        };
        let mut diagnostics = Vec::new();
        rules::lifetime::check(netlist, library, config, &mut diagnostics);
        Self::finish(diagnostics, config)
    }

    /// Runs the `PV` process-variation rules alone (Monte-Carlo MTTF
    /// distribution against [`LintConfig::variation`], or the default
    /// variation configuration when unset).
    #[must_use]
    pub fn run_variation(netlist: &Netlist, library: &Library, config: &LintConfig) -> Self {
        let mut with_variation;
        let config = if config.variation.is_some() {
            config
        } else {
            with_variation = config.clone();
            with_variation.variation = Some(VariationLintConfig::default());
            &with_variation
        };
        let mut diagnostics = Vec::new();
        rules::variation::check(netlist, library, config, &mut diagnostics);
        Self::finish(diagnostics, config)
    }

    /// Lints a library alone: the `LB` rules.
    #[must_use]
    pub fn run_library(library: &Library, config: &LintConfig) -> Self {
        let mut diagnostics = Vec::new();
        rules::library::check(library, &mut diagnostics);
        Self::finish(diagnostics, config)
    }

    /// Lints a fresh/aged library pair: rule `AG001` (aging monotonicity,
    /// honoring [`LintConfig::improvement_whitelist`]).
    #[must_use]
    pub fn run_aging(fresh: &Library, aged: &Library, config: &LintConfig) -> Self {
        let mut diagnostics = Vec::new();
        rules::aging::check(fresh, aged, config, &mut diagnostics);
        Self::finish(diagnostics, config)
    }

    /// Runs the `PT` path-level rules: enumerates the worst paths of
    /// `netlist` (up to [`LintConfig::path_budget`]), re-evaluates each
    /// under the static worst-case λ-annotation against the merged
    /// `complete` library, and checks the resulting path population.
    ///
    /// # Errors
    ///
    /// Returns [`sta::StaError`] when the design cannot be timed at all
    /// (structural errors, combinational loops, missing arcs) — run the
    /// structural rules first to turn those into diagnostics.
    pub fn run_paths(
        netlist: &Netlist,
        base_library: &Library,
        complete: &Library,
        config: &LintConfig,
    ) -> Result<Self, sta::StaError> {
        let constraints = sta::Constraints {
            clock_period: config.clock_period,
            input_slew: config.input_slew,
            output_load: config.output_load,
        };
        let df_config =
            dataflow::DataflowConfig { input_intervals: config.input_intervals.clone() };
        let bound = dataflow::static_guardband_bound(
            netlist,
            base_library,
            complete,
            config.lambda_steps,
            &df_config,
            &constraints,
        )?;
        let path_config = dataflow::PathAnalysisConfig {
            max_paths: config.path_budget,
            near_critical_fraction: config.near_critical_fraction,
        };
        let analysis = dataflow::analyze_paths(
            netlist,
            &bound.annotated,
            base_library,
            complete,
            &constraints,
            &df_config,
            &path_config,
        )?;
        let mut diagnostics = Vec::new();
        rules::paths::check(netlist, &analysis, &bound, config, &mut diagnostics);
        Ok(Self::finish(diagnostics, config))
    }

    /// Combines two reports (e.g. a netlist run and an aging run) into one,
    /// restoring the errors-first ordering. Suppression has already been
    /// applied by each run.
    #[must_use]
    pub fn merged_with(mut self, other: LintReport) -> LintReport {
        self.diagnostics.extend(other.diagnostics);
        Self::finish(self.diagnostics, &LintConfig::default())
    }

    pub(crate) fn finish(mut diagnostics: Vec<Diagnostic>, config: &LintConfig) -> Self {
        diagnostics.retain(|d| !config.allow.contains(&d.rule));
        // Errors first, then by rule code, then location text — a stable,
        // readable order independent of rule evaluation order.
        diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.rule.cmp(&b.rule))
                .then_with(|| a.location.to_string().cmp(&b.location.to_string()))
        });
        LintReport { diagnostics }
    }

    /// All surviving diagnostics, most severe first.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// True when nothing was found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when at least one [`Severity::Error`] diagnostic survived.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of error diagnostics.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of warning diagnostics.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// The diagnostics of one severity.
    pub fn with_severity(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.severity == severity)
    }

    /// Renders the report as human-readable text, one diagnostic per line,
    /// with a trailing summary line.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} info\n",
            self.error_count(),
            self.warning_count(),
            self.diagnostics.len() - self.error_count() - self.warning_count()
        ));
        out
    }

    /// Serializes the report as JSON (schema documented in `DESIGN.md`).
    #[must_use]
    pub fn to_json(&self) -> String {
        json::report_to_json(self)
    }
}

/// The error returned by [`preflight`] when lint finds fatal problems.
#[derive(Debug, Clone, PartialEq)]
pub struct PreflightError {
    /// The error-severity diagnostics that caused the abort.
    pub errors: Vec<Diagnostic>,
}

impl fmt::Display for PreflightError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "relialint found {} error(s)", self.errors.len())?;
        for d in &self.errors {
            write!(f, "; {} {}: {}", d.rule.code(), d.location, d.message)?;
        }
        Ok(())
    }
}

impl std::error::Error for PreflightError {}

/// The pre-flight gate used before simulation/STA entry points: lints
/// `netlist` against `library` and splits the outcome.
///
/// Returns the non-error diagnostics (for the caller to log) on success.
///
/// # Errors
///
/// Returns [`PreflightError`] carrying every error-severity diagnostic.
pub fn preflight(netlist: &Netlist, library: &Library) -> Result<Vec<Diagnostic>, PreflightError> {
    preflight_with(netlist, library, &LintConfig::default())
}

/// [`preflight`] with an explicit configuration.
///
/// # Errors
///
/// Returns [`PreflightError`] carrying every error-severity diagnostic.
pub fn preflight_with(
    netlist: &Netlist,
    library: &Library,
    config: &LintConfig,
) -> Result<Vec<Diagnostic>, PreflightError> {
    let report = LintReport::run(netlist, library, config);
    split_preflight(report)
}

/// Library-only pre-flight gate (for flows that have no netlist yet, e.g.
/// synthesis): runs the `LB` rules and splits the outcome like [`preflight`].
///
/// # Errors
///
/// Returns [`PreflightError`] carrying every error-severity diagnostic.
pub fn preflight_library(
    library: &Library,
    config: &LintConfig,
) -> Result<Vec<Diagnostic>, PreflightError> {
    split_preflight(LintReport::run_library(library, config))
}

fn split_preflight(report: LintReport) -> Result<Vec<Diagnostic>, PreflightError> {
    let (errors, rest): (Vec<_>, Vec<_>) =
        report.diagnostics.into_iter().partition(|d| d.severity == Severity::Error);
    if errors.is_empty() {
        Ok(rest)
    } else {
        Err(PreflightError { errors })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_codes_unique_and_parse_back() {
        let mut seen = BTreeSet::new();
        for rule in Rule::ALL {
            assert!(seen.insert(rule.code()), "duplicate code {}", rule.code());
            assert_eq!(Rule::from_code(rule.code()), Some(rule));
            assert_eq!(Rule::from_code(&rule.code().to_lowercase()), Some(rule));
            assert!(!rule.summary().is_empty());
        }
        assert_eq!(seen.len(), Rule::ALL.len());
        assert_eq!(Rule::from_code("ZZ999"), None);
    }

    #[test]
    fn at_least_ten_distinct_rules() {
        assert!(Rule::ALL.len() >= 10);
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn config_allow_codes() {
        let cfg = LintConfig::default().allow_codes(["nl006", "LB008"]).unwrap();
        assert!(cfg.allow.contains(&Rule::DanglingOutput));
        assert!(cfg.allow.contains(&Rule::InconsistentGrid));
        assert_eq!(LintConfig::default().allow_codes(["XX123"]).unwrap_err(), "XX123");
    }

    #[test]
    fn display_formats() {
        let d = Diagnostic::new(
            Rule::MultipleDrivers,
            Location::Net { net: "n1".into() },
            "driven by u0 and u1".into(),
        );
        let text = d.to_string();
        assert!(text.contains("error"));
        assert!(text.contains("NL003"));
        assert!(text.contains("net n1"));
    }
}
