//! End-to-end lint runs over whole netlist/library fixtures: one defect-free
//! design that must stay silent, and one deliberately broken design where
//! every seeded defect must surface in a single [`LintReport::run`].

use liberty::{Cell, Library};
use lint::{LintConfig, LintReport, Rule, Severity};
use netlist::{Netlist, PortDir};

/// A merged complete library: `INV_X1` and NAND-ish BUF cells characterized
/// at the λ grid {0.25, 0.75}².
fn merged_library() -> Library {
    let mut lib = Library::new("complete", 1.2);
    for p in ["0.25", "0.75"] {
        for n in ["0.25", "0.75"] {
            lib.add_cell(Cell::test_inverter(&format!("INV_X1_{p}_{n}")));
        }
    }
    lib
}

fn clean_netlist() -> Netlist {
    let mut nl = Netlist::new("clean");
    let a = nl.add_port("a", PortDir::Input);
    let y = nl.add_port("y", PortDir::Output);
    let n1 = nl.add_net("n1");
    // Consistent gate-average pairs (λp + λn = 1) on characterized points.
    nl.add_instance("u0", "INV_X1_0.25_0.75", &[("A", a), ("Y", n1)]);
    nl.add_instance("u1", "INV_X1_0.75_0.25", &[("A", n1), ("Y", y)]);
    nl
}

/// Loop + multi-driven net + out-of-grid λ annotation in one design.
fn broken_netlist() -> Netlist {
    let mut nl = Netlist::new("broken");
    let a = nl.add_port("a", PortDir::Input);
    let y = nl.add_port("y", PortDir::Output);
    let n1 = nl.add_net("n1");
    let n2 = nl.add_net("n2");
    // Combinational loop u0 -> u1 -> u0.
    nl.add_instance("u0", "INV_X1_0.25_0.25", &[("A", n2), ("Y", n1)]);
    nl.add_instance("u1", "INV_X1_0.25_0.25", &[("A", n1), ("Y", n2)]);
    // Two drivers on the output net.
    nl.add_instance("u2", "INV_X1_0.25_0.25", &[("A", a), ("Y", y)]);
    nl.add_instance("u3", "INV_X1_0.75_0.75", &[("A", a), ("Y", y)]);
    // λ pair outside the characterized grid.
    let n3 = nl.add_net("n3");
    nl.add_instance("u4", "INV_X1_0.90_0.25", &[("A", a), ("Y", n3)]);
    // A second multi-driven net, independent of the loop.
    let n4 = nl.add_net("n4");
    nl.add_instance("u5", "INV_X1_0.75_0.25", &[("A", a), ("Y", n4)]);
    nl.add_instance("u6", "INV_X1_0.75_0.25", &[("A", a), ("Y", n4)]);
    let z = nl.add_port("z", PortDir::Output);
    nl.add_instance("u7", "INV_X1_0.25_0.75", &[("A", n4), ("Y", z)]);
    nl
}

#[test]
fn clean_design_is_clean() {
    let report = LintReport::run(&clean_netlist(), &merged_library(), &LintConfig::default());
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn every_seeded_defect_is_flagged_in_one_run() {
    let report = LintReport::run(&broken_netlist(), &merged_library(), &LintConfig::default());
    let fired: Vec<Rule> = report.diagnostics().iter().map(|d| d.rule).collect();
    assert!(fired.contains(&Rule::CombinationalLoop), "{}", report.render());
    assert!(fired.contains(&Rule::MultipleDrivers), "{}", report.render());
    assert!(fired.contains(&Rule::LambdaOutOfGrid), "{}", report.render());
    assert!(report.has_errors());
    // Both collisions (y and n1) must be reported, proving the pass does
    // not stop at the first defect.
    let multi: Vec<_> =
        report.diagnostics().iter().filter(|d| d.rule == Rule::MultipleDrivers).collect();
    assert_eq!(multi.len(), 2, "{}", report.render());
}

#[test]
fn suppression_removes_exactly_the_allowed_rule() {
    let config = LintConfig::default().allow_codes(["NL008"]).unwrap();
    let report = LintReport::run(&broken_netlist(), &merged_library(), &config);
    let fired: Vec<Rule> = report.diagnostics().iter().map(|d| d.rule).collect();
    assert!(!fired.contains(&Rule::CombinationalLoop), "{}", report.render());
    assert!(fired.contains(&Rule::MultipleDrivers));
    assert!(fired.contains(&Rule::LambdaOutOfGrid));
}

#[test]
fn report_orders_errors_first_and_serializes() {
    let report = LintReport::run(&broken_netlist(), &merged_library(), &LintConfig::default());
    let severities: Vec<Severity> = report.diagnostics().iter().map(|d| d.severity).collect();
    let mut sorted = severities.clone();
    sorted.sort_by(|a, b| b.cmp(a));
    assert_eq!(severities, sorted, "errors must sort first:\n{}", report.render());

    let json = report.to_json();
    assert!(json.contains("\"tool\": \"relialint\""));
    assert!(json.contains("\"rule\": \"NL008\""), "{json}");
    let text = report.render();
    assert!(text.contains("error [NL003]"), "{text}");
}

#[test]
fn preflight_gate_splits_errors_from_warnings() {
    let err = lint::preflight(&broken_netlist(), &merged_library())
        .expect_err("broken design must fail pre-flight");
    assert!(err.errors.iter().all(|d| d.severity == Severity::Error));
    assert!(err.to_string().contains("relialint found"), "{err}");

    let warnings = lint::preflight(&clean_netlist(), &merged_library())
        .expect("clean design must pass pre-flight");
    assert!(warnings.is_empty(), "{warnings:?}");
}
