use crate::GrayImage;

/// Mean squared error between two equally-sized images.
///
/// # Panics
///
/// Panics if the images differ in size.
#[must_use]
pub fn mse(a: &GrayImage, b: &GrayImage) -> f64 {
    assert_eq!(a.width(), b.width(), "image width mismatch");
    assert_eq!(a.height(), b.height(), "image height mismatch");
    let sum: f64 = a
        .pixels()
        .iter()
        .zip(b.pixels())
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum();
    sum / (a.pixels().len() as f64)
}

/// Peak signal-to-noise ratio in dB (`10·log10(255² / MSE)`); identical
/// images give `+∞`.
///
/// # Panics
///
/// Panics if the images differ in size.
#[must_use]
pub fn psnr(a: &GrayImage, b: &GrayImage) -> f64 {
    let err = mse(a, b);
    if err == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / err).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_images_infinite_psnr() {
        let img = crate::synthetic::test_image(16, 16, 1);
        assert_eq!(mse(&img, &img), 0.0);
        assert_eq!(psnr(&img, &img), f64::INFINITY);
    }

    #[test]
    fn known_mse() {
        let a = GrayImage::new(2, 2);
        let mut b = GrayImage::new(2, 2);
        b.set(0, 0, 10); // one pixel off by 10 → MSE = 100/4 = 25
        assert!((mse(&a, &b) - 25.0).abs() < 1e-12);
        let p = psnr(&a, &b);
        assert!((p - 10.0 * (255.0f64 * 255.0 / 25.0).log10()).abs() < 1e-12);
    }

    #[test]
    fn heavier_corruption_lower_psnr() {
        let a = crate::synthetic::test_image(32, 32, 2);
        let mut light = a.clone();
        let mut heavy = a.clone();
        for k in 0..light.width() {
            light.set(k, 0, light.get(k, 0) ^ 0x04);
            heavy.set(k, 0, heavy.get(k, 0) ^ 0x80);
        }
        assert!(psnr(&a, &light) > psnr(&a, &heavy));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn size_mismatch_panics() {
        let _ = mse(&GrayImage::new(2, 2), &GrayImage::new(3, 2));
    }
}
