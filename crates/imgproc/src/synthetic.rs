//! Deterministic procedural test images.
//!
//! The paper's evaluation images come from a video-trace archive that is
//! not redistributable; these generators produce images with comparable
//! statistics — smooth large-scale gradients (DC-heavy blocks), sharp
//! geometric edges (high-frequency content) and mild texture noise — from a
//! fixed seed, so every experiment is reproducible.

use crate::GrayImage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A natural-image-like test scene: vignette-shaded gradient background,
/// several circles and bars, plus low-amplitude texture noise.
#[must_use]
pub fn test_image(width: usize, height: usize, seed: u64) -> GrayImage {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut img = GrayImage::new(width, height);
    let (w, h) = (width as f64, height as f64);

    // Background gradient with a diagonal sweep.
    for y in 0..height {
        for x in 0..width {
            let g = 60.0 + 120.0 * (x as f64 / w) + 40.0 * (y as f64 / h);
            img.set(x, y, g.clamp(0.0, 255.0) as u8);
        }
    }
    // Circles of varying brightness.
    for _ in 0..4 {
        let cx = rng.gen_range(0.0..w);
        let cy = rng.gen_range(0.0..h);
        let r = rng.gen_range(0.08..0.25) * w.min(h);
        let level: f64 = rng.gen_range(0.0..255.0);
        for y in 0..height {
            for x in 0..width {
                let dx = x as f64 - cx;
                let dy = y as f64 - cy;
                if dx * dx + dy * dy < r * r {
                    let blended = 0.7 * level + 0.3 * f64::from(img.get(x, y));
                    img.set(x, y, blended.clamp(0.0, 255.0) as u8);
                }
            }
        }
    }
    // A couple of hard-edged bars (high-frequency energy).
    for _ in 0..2 {
        let x0 = rng.gen_range(0..width);
        let bw = (width / 16).max(1);
        for y in 0..height {
            for dx in 0..bw {
                let x = (x0 + dx) % width;
                img.set(x, y, if y % 2 == 0 { 235 } else { 20 });
            }
        }
    }
    // Mild texture noise.
    for y in 0..height {
        for x in 0..width {
            let noise: i16 = rng.gen_range(-6..=6);
            let v = i16::from(img.get(x, y)) + noise;
            img.set(x, y, v.clamp(0, 255) as u8);
        }
    }
    img
}

/// A smooth radial gradient — the easiest possible content for a DCT chain
/// (near-lossless round trip), useful as a best-case workload.
#[must_use]
pub fn gradient_image(width: usize, height: usize) -> GrayImage {
    let mut img = GrayImage::new(width, height);
    let (cx, cy) = (width as f64 / 2.0, height as f64 / 2.0);
    let norm = (cx * cx + cy * cy).sqrt();
    for y in 0..height {
        for x in 0..width {
            let d = ((x as f64 - cx).powi(2) + (y as f64 - cy).powi(2)).sqrt();
            img.set(x, y, (230.0 - 180.0 * d / norm).clamp(0.0, 255.0) as u8);
        }
    }
    img
}

/// A checkerboard with the given cell size — worst-case high-frequency
/// content for the chain.
///
/// # Panics
///
/// Panics if `cell` is zero.
#[must_use]
pub fn checkerboard(width: usize, height: usize, cell: usize) -> GrayImage {
    assert!(cell > 0, "cell size must be positive");
    let mut img = GrayImage::new(width, height);
    for y in 0..height {
        for x in 0..width {
            let on = (x / cell + y / cell).is_multiple_of(2);
            img.set(x, y, if on { 240 } else { 15 });
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let a = test_image(32, 32, 42);
        let b = test_image(32, 32, 42);
        let c = test_image(32, 32, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn has_dynamic_range() {
        let img = test_image(64, 64, 7);
        let min = img.pixels().iter().min().copied().unwrap();
        let max = img.pixels().iter().max().copied().unwrap();
        assert!(max - min > 120, "test image must span a wide range ({min}..{max})");
    }

    #[test]
    fn gradient_is_smooth() {
        let img = gradient_image(64, 64);
        let mut max_step = 0i16;
        for y in 0..64 {
            for x in 1..64 {
                let d = (i16::from(img.get(x, y)) - i16::from(img.get(x - 1, y))).abs();
                max_step = max_step.max(d);
            }
        }
        assert!(max_step <= 12, "gradient steps small, got {max_step}");
    }

    #[test]
    fn checkerboard_alternates() {
        let img = checkerboard(16, 16, 4);
        assert_ne!(img.get(0, 0), img.get(4, 0));
        assert_eq!(img.get(0, 0), img.get(8, 0));
        assert_eq!(img.get(0, 0), img.get(4, 4));
    }
}
