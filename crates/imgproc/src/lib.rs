//! Grayscale image utilities for the system-level aging study.
//!
//! The paper quantifies aging by pushing images through a gate-level
//! DCT→IDCT chain and measuring PSNR (Sec. 5, Figs. 6(c) and 7). Its test
//! images come from a proprietary video-trace archive; this crate
//! substitutes deterministic *procedural* images with natural-image-like
//! statistics (smooth gradients, edges, texture) plus PGM I/O so results
//! can be inspected visually.
//!
//! # Example
//!
//! ```
//! use imgproc::{psnr, GrayImage};
//!
//! let a = imgproc::synthetic::test_image(64, 64, 7);
//! let b = a.clone();
//! assert_eq!(psnr(&a, &b), f64::INFINITY);
//!
//! let mut c = a.clone();
//! c.set(0, 0, a.get(0, 0).wrapping_add(60));
//! assert!(psnr(&a, &c).is_finite());
//! # let _ = GrayImage::new(8, 8);
//! ```

mod image;
mod metrics;
mod pgm;
pub mod synthetic;

pub use image::GrayImage;
pub use metrics::{mse, psnr};
pub use pgm::{parse_pgm, write_pgm, PgmError};

/// PSNR (dB) conventionally considered the threshold of acceptable image
/// quality — the paper's lifetime criterion.
pub const ACCEPTABLE_PSNR_DB: f64 = 30.0;
