/// An 8-bit grayscale image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl GrayImage {
    /// A black image of the given size.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        GrayImage { width, height, pixels: vec![0; width * height] }
    }

    /// Builds an image from row-major pixel data.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height` or a dimension is zero.
    #[must_use]
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<u8>) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        assert_eq!(pixels.len(), width * height, "pixel buffer size mismatch");
        GrayImage { width, height, pixels }
    }

    /// Image width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Row-major pixel data.
    #[must_use]
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// The pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[must_use]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "pixel ({x},{y}) out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, x: usize, y: usize, value: u8) {
        assert!(x < self.width && y < self.height, "pixel ({x},{y}) out of bounds");
        self.pixels[y * self.width + x] = value;
    }

    /// Extracts the 8×8 block whose top-left corner is `(bx*8, by*8)`,
    /// clamping reads beyond the image edge to the nearest pixel.
    #[must_use]
    pub fn block8(&self, bx: usize, by: usize) -> [[u8; 8]; 8] {
        let mut out = [[0u8; 8]; 8];
        for (r, row) in out.iter_mut().enumerate() {
            for (c, px) in row.iter_mut().enumerate() {
                let x = (bx * 8 + c).min(self.width - 1);
                let y = (by * 8 + r).min(self.height - 1);
                *px = self.get(x, y);
            }
        }
        out
    }

    /// Writes an 8×8 block at block coordinates `(bx, by)`, ignoring pixels
    /// beyond the image edge.
    pub fn set_block8(&mut self, bx: usize, by: usize, block: &[[u8; 8]; 8]) {
        for (r, row) in block.iter().enumerate() {
            for (c, &px) in row.iter().enumerate() {
                let x = bx * 8 + c;
                let y = by * 8 + r;
                if x < self.width && y < self.height {
                    self.set(x, y, px);
                }
            }
        }
    }

    /// Number of 8×8 blocks horizontally and vertically (ceiling).
    #[must_use]
    pub fn block_grid(&self) -> (usize, usize) {
        (self.width.div_ceil(8), self.height.div_ceil(8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut img = GrayImage::new(4, 3);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert_eq!(img.get(3, 2), 0);
        img.set(3, 2, 200);
        assert_eq!(img.get(3, 2), 200);
        assert_eq!(img.pixels().len(), 12);
    }

    #[test]
    fn from_pixels_round_trip() {
        let data: Vec<u8> = (0..12).collect();
        let img = GrayImage::from_pixels(4, 3, data.clone());
        assert_eq!(img.pixels(), &data[..]);
        assert_eq!(img.get(1, 2), 9);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_buffer_panics() {
        let _ = GrayImage::from_pixels(4, 3, vec![0; 11]);
    }

    #[test]
    fn blocks_round_trip() {
        let mut img = GrayImage::new(16, 16);
        let mut block = [[0u8; 8]; 8];
        for (r, row) in block.iter_mut().enumerate() {
            for (c, px) in row.iter_mut().enumerate() {
                *px = (r * 8 + c) as u8;
            }
        }
        img.set_block8(1, 1, &block);
        assert_eq!(img.block8(1, 1), block);
        assert_eq!(img.get(8, 8), 0);
        assert_eq!(img.get(15, 15), 63);
        assert_eq!(img.block_grid(), (2, 2));
    }

    #[test]
    fn edge_blocks_clamp() {
        let mut img = GrayImage::new(12, 12);
        img.set(11, 11, 99);
        let block = img.block8(1, 1);
        // Reads beyond 12 clamp to the last row/column.
        assert_eq!(block[3][3], 99);
        assert_eq!(block[7][7], 99);
        assert_eq!(img.block_grid(), (2, 2));
    }
}
