//! Netpbm PGM (portable graymap) reading and writing, binary (`P5`) and
//! ASCII (`P2`) variants — so image-chain results can be eyeballed with any
//! viewer, mirroring the paper's Fig. 7.

use crate::GrayImage;
use std::error::Error;
use std::fmt;

/// Errors from PGM parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PgmError {
    /// The magic number is neither `P2` nor `P5`.
    BadMagic,
    /// Header fields are missing or malformed.
    BadHeader(String),
    /// The pixel payload is truncated or malformed.
    BadPixels(String),
}

impl fmt::Display for PgmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PgmError::BadMagic => write!(f, "not a PGM file (expected P2 or P5)"),
            PgmError::BadHeader(m) => write!(f, "invalid PGM header: {m}"),
            PgmError::BadPixels(m) => write!(f, "invalid PGM pixel data: {m}"),
        }
    }
}

impl Error for PgmError {}

/// Serializes `image` as binary PGM (`P5`, maxval 255).
#[must_use]
pub fn write_pgm(image: &GrayImage) -> Vec<u8> {
    let mut out = format!("P5\n{} {}\n255\n", image.width(), image.height()).into_bytes();
    out.extend_from_slice(image.pixels());
    out
}

/// Parses a binary (`P5`) or ASCII (`P2`) PGM file with maxval ≤ 255.
///
/// # Errors
///
/// Returns [`PgmError`] for malformed input.
pub fn parse_pgm(data: &[u8]) -> Result<GrayImage, PgmError> {
    let magic = data.get(..2).ok_or(PgmError::BadMagic)?;
    let binary = match magic {
        b"P5" => true,
        b"P2" => false,
        _ => return Err(PgmError::BadMagic),
    };
    // Header token scanner: whitespace-separated, `#` comments to EOL.
    let mut pos = 2usize;
    let next_token = |data: &[u8], pos: &mut usize| -> Result<u64, PgmError> {
        loop {
            while *pos < data.len() && data[*pos].is_ascii_whitespace() {
                *pos += 1;
            }
            if data.get(*pos) == Some(&b'#') {
                while *pos < data.len() && data[*pos] != b'\n' {
                    *pos += 1;
                }
                continue;
            }
            break;
        }
        let start = *pos;
        while *pos < data.len() && data[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if start == *pos {
            return Err(PgmError::BadHeader("expected a number".into()));
        }
        std::str::from_utf8(&data[start..*pos])
            .map_err(|_| PgmError::BadHeader("non-UTF8 number".into()))?
            .parse::<u64>()
            .map_err(|_| PgmError::BadHeader("number out of range".into()))
    };
    let width = next_token(data, &mut pos)? as usize;
    let height = next_token(data, &mut pos)? as usize;
    let maxval = next_token(data, &mut pos)?;
    if width == 0 || height == 0 {
        return Err(PgmError::BadHeader("zero dimension".into()));
    }
    if maxval == 0 || maxval > 255 {
        return Err(PgmError::BadHeader(format!("unsupported maxval {maxval}")));
    }
    let count = width * height;
    let pixels = if binary {
        // Exactly one whitespace byte separates header and payload.
        pos += 1;
        let payload = data.get(pos..pos + count).ok_or_else(|| {
            PgmError::BadPixels(format!(
                "expected {count} bytes, file has {}",
                data.len() - pos.min(data.len())
            ))
        })?;
        payload.to_vec()
    } else {
        let mut pixels = Vec::with_capacity(count);
        for _ in 0..count {
            let v = next_token(data, &mut pos)
                .map_err(|_| PgmError::BadPixels("truncated ASCII pixels".into()))?;
            if v > maxval {
                return Err(PgmError::BadPixels(format!("pixel {v} exceeds maxval {maxval}")));
            }
            pixels.push(v as u8);
        }
        pixels
    };
    Ok(GrayImage::from_pixels(width, height, pixels))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_round_trip() {
        let img = crate::synthetic::test_image(24, 16, 5);
        let bytes = write_pgm(&img);
        let parsed = parse_pgm(&bytes).unwrap();
        assert_eq!(parsed, img);
    }

    #[test]
    fn ascii_parsing_with_comments() {
        let text = b"P2\n# a comment\n3 2\n255\n0 128 255\n10 20 30\n";
        let img = parse_pgm(text).unwrap();
        assert_eq!(img.width(), 3);
        assert_eq!(img.get(2, 0), 255);
        assert_eq!(img.get(1, 1), 20);
    }

    #[test]
    fn error_cases() {
        assert_eq!(parse_pgm(b"P6\n1 1\n255\nx"), Err(PgmError::BadMagic));
        assert!(matches!(parse_pgm(b"P5\n0 4\n255\n"), Err(PgmError::BadHeader(_))));
        assert!(matches!(parse_pgm(b"P5\n2 2\n70000\n"), Err(PgmError::BadHeader(_))));
        assert!(matches!(parse_pgm(b"P5\n4 4\n255\nabc"), Err(PgmError::BadPixels(_))));
        assert!(matches!(parse_pgm(b"P2\n2 2\n255\n1 2 3"), Err(PgmError::BadPixels(_))));
        assert!(matches!(parse_pgm(b"P2\n2 2\n100\n1 2 3 200"), Err(PgmError::BadPixels(_))));
    }
}
