//! Property-based tests: PGM round trips, PSNR metric identities and block
//! access invariants on arbitrary images.

use imgproc::{mse, parse_pgm, psnr, write_pgm, GrayImage};
use proptest::prelude::*;

fn image() -> impl Strategy<Value = GrayImage> {
    (1usize..40, 1usize..40).prop_flat_map(|(w, h)| {
        prop::collection::vec(any::<u8>(), w * h)
            .prop_map(move |pixels| GrayImage::from_pixels(w, h, pixels))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Binary PGM round-trips exactly for arbitrary pixel data.
    #[test]
    fn pgm_round_trip(img in image()) {
        let parsed = parse_pgm(&write_pgm(&img)).expect("parses");
        prop_assert_eq!(parsed, img);
    }

    /// PSNR identities: ∞ iff identical; symmetric; decreases under heavier
    /// uniform noise.
    #[test]
    fn psnr_identities(img in image(), delta in 1u8..100) {
        prop_assert_eq!(psnr(&img, &img), f64::INFINITY);
        let mut noisy = img.clone();
        let mut noisier = img.clone();
        for y in 0..img.height() {
            for x in 0..img.width() {
                let v = img.get(x, y);
                noisy.set(x, y, v.saturating_add(delta / 2));
                noisier.set(x, y, v.saturating_add(delta));
            }
        }
        let forward = psnr(&img, &noisy);
        let backward = psnr(&noisy, &img);
        if forward.is_finite() || backward.is_finite() {
            prop_assert!((forward - backward).abs() < 1e-12, "symmetric");
        } else {
            prop_assert_eq!(forward, backward, "both infinite when identical");
        }
        // Saturating noise is per-pixel monotone in the offset, so the
        // larger offset never yields a smaller error.
        prop_assert!(mse(&img, &noisier) >= mse(&img, &noisy));
    }

    /// MSE is a proper squared metric: zero iff equal, bounded by 255².
    #[test]
    fn mse_bounds(a in image()) {
        prop_assert_eq!(mse(&a, &a), 0.0);
        let inverted = GrayImage::from_pixels(
            a.width(),
            a.height(),
            a.pixels().iter().map(|&p| 255 - p).collect(),
        );
        let m = mse(&a, &inverted);
        prop_assert!((0.0..=255.0f64.powi(2)).contains(&m));
    }

    /// Writing then reading any 8×8 block through the block API is the
    /// identity inside the image bounds.
    #[test]
    fn block_read_write_identity(img in image(), bx in 0usize..5, by in 0usize..5) {
        let (gw, gh) = img.block_grid();
        let bx = bx % gw;
        let by = by % gh;
        let block = img.block8(bx, by);
        let mut copy = img.clone();
        copy.set_block8(bx, by, &block);
        prop_assert_eq!(copy, img, "writing a block back changes nothing");
    }
}
