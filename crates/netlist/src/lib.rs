#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! Gate-level netlists: the mapped-circuit data model shared by synthesis,
//! timing analysis and simulation.
//!
//! A [`Netlist`] is a flat module: named nets, primary ports and cell
//! instances whose pins connect to nets. Cell semantics (pin directions,
//! functions, delays) come from a [`liberty::Library`] at use time, so the
//! same netlist can be analyzed against the *initial* or any
//! *degradation-aware* library — the pluggability at the heart of the
//! paper's flow.
//!
//! The crate also provides a structural-Verilog subset writer/parser
//! ([`verilog`]), an SDF delay-annotation writer ([`sdf`]) matching the
//! paper's gate-level simulation setup, and the λ-index renaming of
//! Sec. 4.2 ([`annotate`]).
//!
//! # Example
//!
//! ```
//! use netlist::{Netlist, PortDir};
//!
//! let mut nl = Netlist::new("top");
//! let a = nl.add_port("a", PortDir::Input);
//! let y = nl.add_port("y", PortDir::Output);
//! nl.add_instance("u1", "INV_X1", &[("A", a), ("Y", y)]);
//! assert_eq!(nl.instance_count(), 1);
//! assert_eq!(nl.net_name(a), "a");
//! ```

pub mod annotate;
mod error;
pub mod sdf;
pub mod verilog;

pub use error::NetlistError;
pub use sdf::{parse_sdf, ArcDelays, DelayAnnotation};

use liberty::Library;
use std::collections::HashMap;

/// Handle to a net within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) usize);

impl NetId {
    /// The dense index of this net (0-based creation order) — valid for
    /// indexing per-net side tables.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs a handle from a dense index previously obtained via
    /// [`NetId::index`]. No validation is performed.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        NetId(index)
    }
}

/// Handle to a cell instance within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub(crate) usize);

impl InstId {
    /// The dense index of this instance (0-based placement order).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs a handle from a dense index previously obtained via
    /// [`InstId::index`]. No validation is performed.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        InstId(index)
    }
}

/// Direction of a primary port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Driven from outside the module.
    Input,
    /// Observed from outside the module.
    Output,
}

/// A primary port: a named net exposed at the module boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port (and net) name.
    pub name: String,
    /// Direction.
    pub dir: PortDir,
    /// The net carrying this port.
    pub net: NetId,
}

/// One placed cell: an instance of a library cell with pin connections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// Instance name, unique within the netlist.
    pub name: String,
    /// Library cell name (may carry a λ tag in annotated netlists).
    pub cell: String,
    /// `(pin, net)` connections.
    pub connections: Vec<(String, NetId)>,
}

impl Instance {
    /// The net connected to `pin`, if any.
    #[must_use]
    pub fn net_on(&self, pin: &str) -> Option<NetId> {
        self.connections.iter().find(|(p, _)| p == pin).map(|(_, n)| *n)
    }
}

/// A flat gate-level module.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Netlist {
    /// Module name.
    pub name: String,
    net_names: Vec<String>,
    net_index: HashMap<String, NetId>,
    ports: Vec<Port>,
    instances: Vec<Instance>,
    inst_index: HashMap<String, InstId>,
}

impl Netlist {
    /// Creates an empty module named `name`.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Netlist { name: name.to_owned(), ..Netlist::default() }
    }

    /// Adds a net named `name`, or returns the existing net of that name.
    pub fn add_net(&mut self, name: &str) -> NetId {
        if let Some(&id) = self.net_index.get(name) {
            return id;
        }
        let id = NetId(self.net_names.len());
        self.net_names.push(name.to_owned());
        self.net_index.insert(name.to_owned(), id);
        id
    }

    /// Adds a fresh net with a unique generated name based on `prefix`.
    pub fn add_anonymous_net(&mut self, prefix: &str) -> NetId {
        let mut k = self.net_names.len();
        loop {
            let candidate = format!("{prefix}{k}");
            if !self.net_index.contains_key(&candidate) {
                return self.add_net(&candidate);
            }
            k += 1;
        }
    }

    /// Declares a primary port (creating its net) and returns the net.
    ///
    /// # Panics
    ///
    /// Panics if a port of this name already exists.
    pub fn add_port(&mut self, name: &str, dir: PortDir) -> NetId {
        assert!(
            self.ports.iter().all(|p| p.name != name),
            "duplicate port {name} in module {}",
            self.name
        );
        let net = self.add_net(name);
        self.ports.push(Port { name: name.to_owned(), dir, net });
        net
    }

    /// Places an instance of `cell` with the given pin connections.
    ///
    /// # Panics
    ///
    /// Panics if an instance of this name already exists (mirroring
    /// [`Netlist::add_port`]); use [`Netlist::try_add_instance`] to get a
    /// typed error instead.
    pub fn add_instance(
        &mut self,
        name: &str,
        cell: &str,
        connections: &[(&str, NetId)],
    ) -> InstId {
        match self.try_add_instance(name, cell, connections) {
            Ok(id) => id,
            Err(e) => panic!("{e} in module {}", self.name),
        }
    }

    /// Places an instance of `cell`, rejecting duplicate instance names.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateInstance`] if an instance named
    /// `name` already exists.
    pub fn try_add_instance(
        &mut self,
        name: &str,
        cell: &str,
        connections: &[(&str, NetId)],
    ) -> Result<InstId, NetlistError> {
        if self.inst_index.contains_key(name) {
            return Err(NetlistError::DuplicateInstance { instance: name.to_owned() });
        }
        let id = InstId(self.instances.len());
        self.instances.push(Instance {
            name: name.to_owned(),
            cell: cell.to_owned(),
            connections: connections.iter().map(|(p, n)| ((*p).to_owned(), *n)).collect(),
        });
        self.inst_index.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Looks up an instance by name.
    #[must_use]
    pub fn find_instance(&self, name: &str) -> Option<InstId> {
        self.inst_index.get(name).copied()
    }

    /// Number of cell instances.
    #[must_use]
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Number of nets.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// All instances in placement order.
    #[must_use]
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// The instance behind `id`.
    #[must_use]
    pub fn instance(&self, id: InstId) -> &Instance {
        &self.instances[id.0]
    }

    /// Mutable access to the instance behind `id` (used by sizing passes).
    pub fn instance_mut(&mut self, id: InstId) -> &mut Instance {
        &mut self.instances[id.0]
    }

    /// All instance handles.
    pub fn instance_ids(&self) -> impl Iterator<Item = InstId> {
        (0..self.instances.len()).map(InstId)
    }

    /// The primary ports.
    #[must_use]
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// Primary input nets.
    pub fn input_nets(&self) -> impl Iterator<Item = NetId> + '_ {
        self.ports.iter().filter(|p| p.dir == PortDir::Input).map(|p| p.net)
    }

    /// Primary output nets.
    pub fn output_nets(&self) -> impl Iterator<Item = NetId> + '_ {
        self.ports.iter().filter(|p| p.dir == PortDir::Output).map(|p| p.net)
    }

    /// The name of `net`.
    #[must_use]
    pub fn net_name(&self, net: NetId) -> &str {
        &self.net_names[net.0]
    }

    /// Looks up a net by name.
    #[must_use]
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.net_index.get(name).copied()
    }

    /// Total cell area against `library`, in µm².
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownCell`] if an instance references a
    /// cell missing from the library.
    pub fn area(&self, library: &Library) -> Result<f64, NetlistError> {
        let mut total = 0.0;
        for inst in &self.instances {
            let cell = library.cell(&inst.cell).ok_or_else(|| NetlistError::UnknownCell {
                instance: inst.name.clone(),
                cell: inst.cell.clone(),
            })?;
            total += cell.area;
        }
        Ok(total)
    }

    /// Checks structural consistency against `library`: every instance's
    /// cell exists, every connected pin exists on it, every net has at most
    /// one driver, and every instance input pin is connected.
    ///
    /// # Errors
    ///
    /// Returns the first [`NetlistError`] found.
    pub fn validate(&self, library: &Library) -> Result<(), NetlistError> {
        let mut drivers: Vec<Option<String>> = vec![None; self.net_names.len()];
        for port in &self.ports {
            if port.dir == PortDir::Input {
                drivers[port.net.0] = Some(format!("port {}", port.name));
            }
        }
        for inst in &self.instances {
            let cell = library.cell(&inst.cell).ok_or_else(|| NetlistError::UnknownCell {
                instance: inst.name.clone(),
                cell: inst.cell.clone(),
            })?;
            for (pin, net) in &inst.connections {
                let is_input = cell.input_cap(pin).is_some();
                let is_output = cell.output(pin).is_some();
                if !is_input && !is_output {
                    return Err(NetlistError::UnknownPin {
                        instance: inst.name.clone(),
                        cell: inst.cell.clone(),
                        pin: pin.clone(),
                    });
                }
                if is_output {
                    if let Some(prev) = &drivers[net.0] {
                        return Err(NetlistError::MultipleDrivers {
                            net: self.net_name(*net).to_owned(),
                            first: prev.clone(),
                            second: inst.name.clone(),
                        });
                    }
                    drivers[net.0] = Some(inst.name.clone());
                }
            }
            for input in &cell.inputs {
                if inst.net_on(&input.name).is_none() {
                    return Err(NetlistError::UnconnectedPin {
                        instance: inst.name.clone(),
                        pin: input.name.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Builds the net → (driving instance, output pin) map against `library`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownCell`] for unmapped instances.
    pub fn drivers(
        &self,
        library: &Library,
    ) -> Result<HashMap<NetId, (InstId, String)>, NetlistError> {
        let mut map = HashMap::new();
        for (k, inst) in self.instances.iter().enumerate() {
            let cell = library.cell(&inst.cell).ok_or_else(|| NetlistError::UnknownCell {
                instance: inst.name.clone(),
                cell: inst.cell.clone(),
            })?;
            for (pin, net) in &inst.connections {
                if cell.output(pin).is_some() {
                    map.insert(*net, (InstId(k), pin.clone()));
                }
            }
        }
        Ok(map)
    }

    /// Builds the net → list of (sink instance, input pin) map.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownCell`] for unmapped instances.
    #[allow(clippy::type_complexity)]
    pub fn sinks(
        &self,
        library: &Library,
    ) -> Result<HashMap<NetId, Vec<(InstId, String)>>, NetlistError> {
        let mut map: HashMap<NetId, Vec<(InstId, String)>> = HashMap::new();
        for (k, inst) in self.instances.iter().enumerate() {
            let cell = library.cell(&inst.cell).ok_or_else(|| NetlistError::UnknownCell {
                instance: inst.name.clone(),
                cell: inst.cell.clone(),
            })?;
            for (pin, net) in &inst.connections {
                if cell.input_cap(pin).is_some() {
                    map.entry(*net).or_default().push((InstId(k), pin.clone()));
                }
            }
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liberty::Cell;

    fn tiny_library() -> Library {
        let mut lib = Library::new("tiny", 1.2);
        lib.add_cell(Cell::test_inverter("INV_X1"));
        lib
    }

    fn inv_chain(n: usize) -> Netlist {
        let mut nl = Netlist::new("chain");
        let mut prev = nl.add_port("a", PortDir::Input);
        for k in 0..n {
            let next = if k + 1 == n {
                nl.add_port("y", PortDir::Output)
            } else {
                nl.add_anonymous_net("n")
            };
            nl.add_instance(&format!("u{k}"), "INV_X1", &[("A", prev), ("Y", next)]);
            prev = next;
        }
        nl
    }

    #[test]
    fn build_and_query() {
        let nl = inv_chain(3);
        assert_eq!(nl.instance_count(), 3);
        assert_eq!(nl.net_count(), 4);
        assert_eq!(nl.input_nets().count(), 1);
        assert_eq!(nl.output_nets().count(), 1);
        assert!(nl.find_net("a").is_some());
        assert!(nl.find_net("zz").is_none());
        let u0 = nl.instance(InstId(0));
        assert_eq!(u0.cell, "INV_X1");
        assert_eq!(u0.net_on("A"), nl.find_net("a"));
        assert_eq!(u0.net_on("Z"), None);
    }

    #[test]
    fn add_net_idempotent() {
        let mut nl = Netlist::new("m");
        let a = nl.add_net("x");
        let b = nl.add_net("x");
        assert_eq!(a, b);
        assert_eq!(nl.net_count(), 1);
        let c = nl.add_anonymous_net("x");
        assert_ne!(a, c);
    }

    #[test]
    fn validate_accepts_good_netlist() {
        let nl = inv_chain(2);
        nl.validate(&tiny_library()).expect("valid");
    }

    #[test]
    fn validate_rejects_unknown_cell() {
        let mut nl = inv_chain(1);
        let a = nl.find_net("a").unwrap();
        let y = nl.find_net("y").unwrap();
        nl.add_instance("bad", "NOPE_X9", &[("A", a), ("Y", y)]);
        assert!(matches!(nl.validate(&tiny_library()), Err(NetlistError::UnknownCell { .. })));
    }

    #[test]
    fn validate_rejects_double_driver() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        nl.add_instance("u0", "INV_X1", &[("A", a), ("Y", y)]);
        nl.add_instance("u1", "INV_X1", &[("A", a), ("Y", y)]);
        assert!(matches!(nl.validate(&tiny_library()), Err(NetlistError::MultipleDrivers { .. })));
    }

    #[test]
    fn validate_rejects_dangling_input() {
        let mut nl = Netlist::new("m");
        let y = nl.add_port("y", PortDir::Output);
        nl.add_instance("u0", "INV_X1", &[("Y", y)]);
        assert!(matches!(nl.validate(&tiny_library()), Err(NetlistError::UnconnectedPin { .. })));
    }

    #[test]
    fn validate_rejects_unknown_pin() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        nl.add_instance("u0", "INV_X1", &[("Q", a), ("Y", y)]);
        assert!(matches!(nl.validate(&tiny_library()), Err(NetlistError::UnknownPin { .. })));
    }

    #[test]
    fn drivers_and_sinks() {
        let nl = inv_chain(2);
        let lib = tiny_library();
        let drivers = nl.drivers(&lib).unwrap();
        let sinks = nl.sinks(&lib).unwrap();
        let y = nl.find_net("y").unwrap();
        let a = nl.find_net("a").unwrap();
        assert_eq!(drivers[&y].0, InstId(1));
        assert!(!drivers.contains_key(&a), "primary input has no cell driver");
        assert_eq!(sinks[&a], vec![(InstId(0), "A".to_owned())]);
    }

    #[test]
    fn area_sums_cells() {
        let nl = inv_chain(3);
        let lib = tiny_library();
        let one = lib.cell("INV_X1").unwrap().area;
        assert!((nl.area(&lib).unwrap() - 3.0 * one).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "duplicate port")]
    fn duplicate_port_panics() {
        let mut nl = Netlist::new("m");
        nl.add_port("a", PortDir::Input);
        nl.add_port("a", PortDir::Output);
    }

    #[test]
    fn find_instance_by_name() {
        let nl = inv_chain(2);
        assert_eq!(nl.find_instance("u0"), Some(InstId(0)));
        assert_eq!(nl.find_instance("u1"), Some(InstId(1)));
        assert_eq!(nl.find_instance("u9"), None);
    }

    #[test]
    fn try_add_instance_rejects_duplicate_name() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        let n1 = nl.add_net("n1");
        nl.try_add_instance("u0", "INV_X1", &[("A", a), ("Y", n1)]).unwrap();
        let err = nl.try_add_instance("u0", "INV_X1", &[("A", n1), ("Y", y)]).unwrap_err();
        assert_eq!(err, NetlistError::DuplicateInstance { instance: "u0".into() });
        // The rejected instance must not be half-added.
        assert_eq!(nl.instance_count(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate instance")]
    fn duplicate_instance_panics() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        nl.add_instance("u0", "INV_X1", &[("A", a), ("Y", y)]);
        nl.add_instance("u0", "INV_X1", &[("A", a), ("Y", y)]);
    }
}
