use std::error::Error;
use std::fmt;

/// Structural problems of a netlist, reported by
/// [`Netlist::validate`](crate::Netlist::validate) and friends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// An instance references a cell the library does not contain.
    UnknownCell {
        /// Offending instance name.
        instance: String,
        /// The missing cell name.
        cell: String,
    },
    /// An instance connects a pin its cell does not have.
    UnknownPin {
        /// Offending instance name.
        instance: String,
        /// Its cell name.
        cell: String,
        /// The unknown pin.
        pin: String,
    },
    /// A net is driven by more than one output.
    MultipleDrivers {
        /// Net name.
        net: String,
        /// First driver found.
        first: String,
        /// Second driver found.
        second: String,
    },
    /// An instance input pin is left unconnected.
    UnconnectedPin {
        /// Offending instance name.
        instance: String,
        /// The dangling pin.
        pin: String,
    },
    /// Two instances share one name.
    DuplicateInstance {
        /// The name used twice.
        instance: String,
    },
    /// Error from parsing a structural-Verilog file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownCell { instance, cell } => {
                write!(f, "instance {instance} uses unknown cell {cell}")
            }
            NetlistError::UnknownPin { instance, cell, pin } => {
                write!(f, "instance {instance} connects unknown pin {pin} of cell {cell}")
            }
            NetlistError::MultipleDrivers { net, first, second } => {
                write!(f, "net {net} driven by both {first} and {second}")
            }
            NetlistError::UnconnectedPin { instance, pin } => {
                write!(f, "input pin {pin} of instance {instance} is unconnected")
            }
            NetlistError::DuplicateInstance { instance } => {
                write!(f, "duplicate instance name {instance}")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "verilog parse error on line {line}: {message}")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_render() {
        let e = NetlistError::UnknownCell { instance: "u1".into(), cell: "X".into() };
        assert!(e.to_string().contains("u1"));
        let e = NetlistError::Parse { line: 4, message: "bad token".into() };
        assert!(e.to_string().contains("line 4"));
    }
}
