//! Structural-Verilog subset writer and parser.
//!
//! The subset covers what mapped netlists need: one flat module, scalar
//! `input`/`output`/`wire` declarations and cell instantiations with named
//! port connections. Identifiers may contain letters, digits, `_`, `.` and
//! `$`; escaped identifiers and buses are not supported (bus bits are
//! emitted as `name_3` style scalars by the circuit generators).

use crate::{NetId, Netlist, NetlistError, PortDir};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Serializes `netlist` as structural Verilog.
#[must_use]
pub fn write_verilog(netlist: &Netlist) -> String {
    let mut out = String::with_capacity(64 * netlist.instance_count() + 256);
    let port_names: Vec<&str> = netlist.ports().iter().map(|p| p.name.as_str()).collect();
    let _ = writeln!(out, "module {} ({});", netlist.name, port_names.join(", "));
    for port in netlist.ports() {
        let kw = match port.dir {
            PortDir::Input => "input",
            PortDir::Output => "output",
        };
        let _ = writeln!(out, "  {kw} {};", port.name);
    }
    let port_nets: BTreeSet<NetId> = netlist.ports().iter().map(|p| p.net).collect();
    for k in 0..netlist.net_count() {
        let id = NetId(k);
        if !port_nets.contains(&id) {
            let _ = writeln!(out, "  wire {};", netlist.net_name(id));
        }
    }
    for inst in netlist.instances() {
        let conns: Vec<String> = inst
            .connections
            .iter()
            .map(|(pin, net)| format!(".{pin}({})", netlist.net_name(*net)))
            .collect();
        let _ = writeln!(out, "  {} {} ({});", inst.cell, inst.name, conns.join(", "));
    }
    out.push_str("endmodule\n");
    out
}

/// Parses the structural-Verilog subset produced by [`write_verilog`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] on any token or structure outside the
/// subset.
pub fn parse_verilog(text: &str) -> Result<Netlist, NetlistError> {
    let mut tokens = tokenize(text)?;
    tokens.reverse(); // pop() from the front
    let tokens = &mut tokens;

    let (kw, line) = next(tokens, "module")?;
    if kw != "module" {
        return Err(NetlistError::Parse {
            line,
            message: format!("expected 'module', got '{kw}'"),
        });
    }
    let (name, _) = next(tokens, "module name")?;
    let mut nl = Netlist::new(&name);

    // Header port list: skip names (directions come from declarations).
    let (paren, line) = next(tokens, "(")?;
    if paren != "(" {
        return Err(NetlistError::Parse { line, message: "expected '(' after module name".into() });
    }
    loop {
        let (t, _) = next(tokens, "port list")?;
        if t == ")" {
            break;
        }
    }
    expect_token(tokens, ";")?;

    loop {
        let (t, line) = next(tokens, "statement")?;
        match t.as_str() {
            "endmodule" => break,
            "input" | "output" | "wire" => {
                let dir = match t.as_str() {
                    "input" => Some(PortDir::Input),
                    "output" => Some(PortDir::Output),
                    _ => None,
                };
                loop {
                    let (id, line) = next(tokens, "identifier")?;
                    if !is_ident(&id) {
                        return Err(NetlistError::Parse {
                            line,
                            message: format!("expected identifier, got '{id}'"),
                        });
                    }
                    match dir {
                        Some(d) => {
                            nl.add_port(&id, d);
                        }
                        None => {
                            nl.add_net(&id);
                        }
                    }
                    let (sep, line) = next(tokens, "';' or ','")?;
                    match sep.as_str() {
                        ";" => break,
                        "," => {}
                        other => {
                            return Err(NetlistError::Parse {
                                line,
                                message: format!("expected ';' or ',', got '{other}'"),
                            })
                        }
                    }
                }
            }
            cell if is_ident(cell) => {
                let (inst_name, line) = next(tokens, "instance name")?;
                if !is_ident(&inst_name) {
                    return Err(NetlistError::Parse {
                        line,
                        message: format!("expected instance name, got '{inst_name}'"),
                    });
                }
                expect_token(tokens, "(")?;
                let mut conns: Vec<(String, NetId)> = Vec::new();
                loop {
                    let (t, line) = next(tokens, "'.pin' or ')'")?;
                    if t == ")" {
                        break;
                    }
                    if t == "," {
                        continue;
                    }
                    if t != "." {
                        return Err(NetlistError::Parse {
                            line,
                            message: format!("expected '.', got '{t}'"),
                        });
                    }
                    let (pin, _) = next(tokens, "pin name")?;
                    expect_token(tokens, "(")?;
                    let (net_name, _) = next(tokens, "net name")?;
                    expect_token(tokens, ")")?;
                    let net = nl.add_net(&net_name);
                    conns.push((pin, net));
                }
                expect_token(tokens, ";")?;
                let conn_refs: Vec<(&str, NetId)> =
                    conns.iter().map(|(p, n)| (p.as_str(), *n)).collect();
                nl.try_add_instance(&inst_name, cell, &conn_refs)?;
            }
            other => {
                return Err(NetlistError::Parse {
                    line,
                    message: format!("unexpected token '{other}'"),
                })
            }
        }
    }
    Ok(nl)
}

fn next(tokens: &mut Vec<(String, usize)>, expect: &str) -> Result<(String, usize), NetlistError> {
    tokens.pop().ok_or_else(|| NetlistError::Parse {
        line: 0,
        message: format!("unexpected end of input, expected {expect}"),
    })
}

fn expect_token(tokens: &mut Vec<(String, usize)>, want: &str) -> Result<(), NetlistError> {
    match tokens.pop() {
        Some((t, _)) if t == want => Ok(()),
        Some((t, line)) => {
            Err(NetlistError::Parse { line, message: format!("expected '{want}', got '{t}'") })
        }
        None => Err(NetlistError::Parse {
            line: 0,
            message: format!("unexpected end of input, expected '{want}'"),
        }),
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '$'))
}

fn tokenize(text: &str) -> Result<Vec<(String, usize)>, NetlistError> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i];
        if c == b'\n' {
            line += 1;
            i += 1;
        } else if c.is_ascii_whitespace() {
            i += 1;
        } else if bytes[i..].starts_with(b"//") {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
        } else if bytes[i..].starts_with(b"/*") {
            i += 2;
            while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                if bytes[i] == b'\n' {
                    line += 1;
                }
                i += 1;
            }
            if i + 1 >= bytes.len() {
                return Err(NetlistError::Parse { line, message: "unterminated comment".into() });
            }
            i += 2;
        } else if c.is_ascii_alphanumeric() || c == b'_' {
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric() || matches!(bytes[i], b'_' | b'.' | b'$'))
            {
                // '.' only glues inside identifiers that started alphabetic;
                // the port-connection '.' is isolated because it is preceded
                // by whitespace/parens, never by an identifier character.
                i += 1;
            }
            out.push((text[start..i].to_owned(), line));
        } else if matches!(c, b'(' | b')' | b';' | b',' | b'.') {
            out.push(((c as char).to_string(), line));
            i += 1;
        } else {
            return Err(NetlistError::Parse {
                line,
                message: format!("unexpected character '{}'", c as char),
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Netlist {
        let mut nl = Netlist::new("adder_bit");
        let a = nl.add_port("a", PortDir::Input);
        let b = nl.add_port("b", PortDir::Input);
        let s = nl.add_port("s", PortDir::Output);
        let n1 = nl.add_net("n1");
        nl.add_instance("u_x", "XOR2_X1", &[("A", a), ("B", b), ("Y", n1)]);
        nl.add_instance("u_b", "BUF_X2", &[("A", n1), ("Y", s)]);
        nl
    }

    #[test]
    fn write_then_parse_round_trip() {
        let nl = sample();
        let text = write_verilog(&nl);
        let parsed = parse_verilog(&text).expect("round trip");
        assert_eq!(parsed.name, nl.name);
        assert_eq!(parsed.instance_count(), nl.instance_count());
        assert_eq!(parsed.net_count(), nl.net_count());
        assert_eq!(parsed.ports().len(), nl.ports().len());
        for (a, b) in parsed.instances().iter().zip(nl.instances()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.connections.len(), b.connections.len());
        }
    }

    #[test]
    fn output_shape() {
        let text = write_verilog(&sample());
        assert!(text.starts_with("module adder_bit (a, b, s);"));
        assert!(text.contains("  input a;"));
        assert!(text.contains("  output s;"));
        assert!(text.contains("  wire n1;"));
        assert!(text.contains("  XOR2_X1 u_x (.A(a), .B(b), .Y(n1));"));
        assert!(text.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn parses_comments() {
        let mut text = write_verilog(&sample());
        text = text.replace("wire n1;", "wire n1; // internal\n/* block\ncomment */");
        let parsed = parse_verilog(&text).expect("comments ok");
        assert_eq!(parsed.instance_count(), 2);
    }

    #[test]
    fn parse_error_reporting() {
        assert!(matches!(parse_verilog("modul x (); endmodule"), Err(NetlistError::Parse { .. })));
        let missing_semi = "module m (a);\n input a\nendmodule";
        match parse_verilog(missing_semi) {
            Err(NetlistError::Parse { line, .. }) => assert!(line >= 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(parse_verilog("module m (a); input a; X u1 (.A(a) endmodule").is_err());
        assert!(parse_verilog("module m (%); endmodule").is_err());
    }

    #[test]
    fn lambda_tagged_cells_survive() {
        // Annotated netlists carry λ-suffixed cell names with dots.
        let text = "module m (a, y);\n  input a;\n  output y;\n  INV_X1_0.40_0.60 u1 (.A(a), .Y(y));\nendmodule\n";
        let parsed = parse_verilog(text).expect("tagged cell parses");
        assert_eq!(parsed.instances()[0].cell, "INV_X1_0.40_0.60");
    }
}
