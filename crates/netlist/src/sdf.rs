//! Per-instance arc delay annotation and SDF export.
//!
//! After STA propagates slews through a netlist against a particular
//! library, every timing arc of every instance has concrete rise/fall
//! delays. [`DelayAnnotation`] captures them; the event-driven timing
//! simulator consumes the structure directly, and [`DelayAnnotation::write_sdf`]
//! renders the same information as an SDF file — the artifact the paper
//! feeds from Design Compiler into `ModelSim` for its gate-level image
//! simulations.

use crate::{InstId, Netlist};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Concrete delays of one timing arc: to a rising and to a falling output
/// edge, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArcDelays {
    /// Delay to a rising output edge.
    pub rise: f64,
    /// Delay to a falling output edge.
    pub fall: f64,
}

/// Arc delays for every `(instance, input pin, output pin)` of a netlist.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DelayAnnotation {
    map: HashMap<(InstId, String, String), ArcDelays>,
}

impl DelayAnnotation {
    /// An empty annotation.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the delays of one arc, replacing any previous entry.
    pub fn set(&mut self, inst: InstId, input: &str, output: &str, delays: ArcDelays) {
        self.map.insert((inst, input.to_owned(), output.to_owned()), delays);
    }

    /// The delays of one arc, if annotated.
    #[must_use]
    pub fn get(&self, inst: InstId, input: &str, output: &str) -> Option<ArcDelays> {
        self.map.get(&(inst, input.to_owned(), output.to_owned())).copied()
    }

    /// Number of annotated arcs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no arcs are annotated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The worst (largest) annotated delay, in seconds.
    #[must_use]
    pub fn max_delay(&self) -> f64 {
        self.map.values().map(|d| d.rise.max(d.fall)).fold(0.0, f64::max)
    }

    /// Renders the annotation as an SDF 3.0 file for `netlist`. Delays are
    /// written in nanoseconds (the SDF `TIMESCALE`), one `IOPATH` per arc,
    /// with identical min/typ/max triples.
    #[must_use]
    pub fn write_sdf(&self, netlist: &Netlist) -> String {
        let mut entries: Vec<(&(InstId, String, String), &ArcDelays)> = self.map.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));

        let mut out = String::with_capacity(128 * entries.len() + 256);
        out.push_str("(DELAYFILE\n");
        let _ = writeln!(out, "  (SDFVERSION \"3.0\")");
        let _ = writeln!(out, "  (DESIGN \"{}\")", netlist.name);
        let _ = writeln!(out, "  (TIMESCALE 1ns)");
        let mut current: Option<InstId> = None;
        for ((inst, input, output), d) in entries {
            if current != Some(*inst) {
                if current.is_some() {
                    out.push_str("  )))\n");
                }
                let i = netlist.instance(*inst);
                let _ = writeln!(out, "  (CELL (CELLTYPE \"{}\")", i.cell);
                let _ = writeln!(out, "    (INSTANCE {})", i.name);
                out.push_str("    (DELAY (ABSOLUTE\n");
                current = Some(*inst);
            }
            let r = d.rise * 1e9;
            let f = d.fall * 1e9;
            let _ = writeln!(
                out,
                "      (IOPATH {input} {output} ({r:.6}:{r:.6}:{r:.6}) ({f:.6}:{f:.6}:{f:.6}))"
            );
        }
        if current.is_some() {
            out.push_str("  )))\n");
        }
        out.push_str(")\n");
        out
    }
}

/// Parses an SDF file previously produced by [`DelayAnnotation::write_sdf`]
/// (CELL/IOPATH subset, typ values, TIMESCALE 1ns), resolving instance
/// names against `netlist`.
///
/// # Errors
///
/// Returns [`crate::NetlistError::Parse`] on tokens outside the subset or
/// instances missing from the netlist.
pub fn parse_sdf(text: &str, netlist: &Netlist) -> Result<DelayAnnotation, crate::NetlistError> {
    let mut tokens = tokenize_sdf(text)?;
    tokens.reverse();
    let mut ann = DelayAnnotation::new();
    let mut name_to_id: HashMap<&str, InstId> = HashMap::new();
    for id in netlist.instance_ids() {
        name_to_id.insert(netlist.instance(id).name.as_str(), id);
    }
    let mut current: Option<InstId> = None;
    while let Some((tok, line)) = tokens.pop() {
        match tok.as_str() {
            "INSTANCE" => {
                let (name, line) = tokens.pop().ok_or_else(|| eof(line))?;
                if name == ")" {
                    // Anonymous instance — not produced by our writer.
                    return Err(err(line, "empty INSTANCE"));
                }
                current = Some(
                    *name_to_id
                        .get(name.as_str())
                        .ok_or_else(|| err(line, &format!("unknown instance {name}")))?,
                );
            }
            "IOPATH" => {
                let inst = current.ok_or_else(|| err(line, "IOPATH outside CELL"))?;
                let (input, line) = tokens.pop().ok_or_else(|| eof(line))?;
                let (output, line) = tokens.pop().ok_or_else(|| eof(line))?;
                let rise = parse_triple(&mut tokens, line)?;
                let fall = parse_triple(&mut tokens, line)?;
                ann.set(inst, &input, &output, ArcDelays { rise: rise * 1e-9, fall: fall * 1e-9 });
            }
            _ => {}
        }
    }
    Ok(ann)
}

fn eof(line: usize) -> crate::NetlistError {
    err(line, "unexpected end of SDF")
}

fn err(line: usize, message: &str) -> crate::NetlistError {
    crate::NetlistError::Parse { line, message: message.to_owned() }
}

/// Parses `( a : b : c )` and returns the typ value in the file's ns units.
fn parse_triple(
    tokens: &mut Vec<(String, usize)>,
    line: usize,
) -> Result<f64, crate::NetlistError> {
    let mut values: Vec<f64> = Vec::new();
    let mut depth = 0usize;
    loop {
        let (tok, line) = tokens.pop().ok_or_else(|| eof(line))?;
        match tok.as_str() {
            "(" => depth += 1,
            ")" => {
                if depth == 0 || values.is_empty() {
                    return Err(err(line, "empty delay triple"));
                }
                let typ = values[(values.len() - 1) / 2];
                return Ok(typ);
            }
            ":" => {}
            other => {
                let v: f64 =
                    other.parse().map_err(|_| err(line, &format!("bad delay value '{other}'")))?;
                values.push(v);
            }
        }
    }
}

fn tokenize_sdf(text: &str) -> Result<Vec<(String, usize)>, crate::NetlistError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let bytes = text.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        if c == b'\n' {
            line += 1;
            i += 1;
        } else if c.is_ascii_whitespace() {
            i += 1;
        } else if c == b'"' {
            // Quoted strings (versions, design names) become one token.
            let start = i + 1;
            i += 1;
            while i < bytes.len() && bytes[i] != b'"' {
                i += 1;
            }
            if i >= bytes.len() {
                return Err(err(line, "unterminated string"));
            }
            out.push((text[start..i].to_owned(), line));
            i += 1;
        } else if matches!(c, b'(' | b')' | b':') {
            out.push(((c as char).to_string(), line));
            i += 1;
        } else {
            let start = i;
            while i < bytes.len()
                && !bytes[i].is_ascii_whitespace()
                && !matches!(bytes[i], b'(' | b')' | b':' | b'"')
            {
                i += 1;
            }
            out.push((text[start..i].to_owned(), line));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PortDir;

    fn sample() -> (Netlist, DelayAnnotation) {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        let n = nl.add_net("n1");
        let u0 = nl.add_instance("u0", "INV_X1", &[("A", a), ("Y", n)]);
        let u1 = nl.add_instance("u1", "INV_X2", &[("A", n), ("Y", y)]);
        let mut ann = DelayAnnotation::new();
        ann.set(u0, "A", "Y", ArcDelays { rise: 12e-12, fall: 10e-12 });
        ann.set(u1, "A", "Y", ArcDelays { rise: 9e-12, fall: 8e-12 });
        (nl, ann)
    }

    #[test]
    fn set_get() {
        let (_, ann) = sample();
        let d = ann.get(InstId(0), "A", "Y").unwrap();
        assert_eq!(d.rise, 12e-12);
        assert_eq!(ann.get(InstId(0), "B", "Y"), None);
        assert_eq!(ann.len(), 2);
        assert!(!ann.is_empty());
        assert!((ann.max_delay() - 12e-12).abs() < 1e-18);
    }

    #[test]
    fn sdf_structure() {
        let (nl, ann) = sample();
        let sdf = ann.write_sdf(&nl);
        assert!(sdf.starts_with("(DELAYFILE"));
        assert!(sdf.contains("(DESIGN \"m\")"));
        assert!(sdf.contains("(CELLTYPE \"INV_X1\")"));
        assert!(sdf.contains("(INSTANCE u0)"));
        assert!(
            sdf.contains("(IOPATH A Y (0.012000:0.012000:0.012000) (0.010000:0.010000:0.010000))")
        );
        // Balanced parentheses.
        let open = sdf.chars().filter(|&c| c == '(').count();
        let close = sdf.chars().filter(|&c| c == ')').count();
        assert_eq!(open, close);
    }

    #[test]
    fn sdf_round_trip() {
        let (nl, ann) = sample();
        let text = ann.write_sdf(&nl);
        let parsed = parse_sdf(&text, &nl).expect("parses");
        for id in nl.instance_ids() {
            let a = ann.get(id, "A", "Y");
            let b = parsed.get(id, "A", "Y");
            match (a, b) {
                (Some(x), Some(y)) => {
                    assert!((x.rise - y.rise).abs() < 1e-15, "rise");
                    assert!((x.fall - y.fall).abs() < 1e-15, "fall");
                }
                (None, None) => {}
                other => panic!("annotation mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn sdf_parse_rejects_unknown_instance() {
        let (nl, _) = sample();
        let text = "(DELAYFILE (CELL (CELLTYPE \"X\") (INSTANCE ghost) (DELAY (ABSOLUTE (IOPATH A Y (1:1:1) (1:1:1))))))";
        assert!(parse_sdf(text, &nl).is_err());
    }

    #[test]
    fn empty_annotation_sdf() {
        let (nl, _) = sample();
        let sdf = DelayAnnotation::new().write_sdf(&nl);
        assert!(sdf.contains("DELAYFILE"));
        assert_eq!(DelayAnnotation::new().max_delay(), 0.0);
    }
}
