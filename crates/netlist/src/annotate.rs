//! Netlist annotation for dynamic aging stress (paper Sec. 4.2).
//!
//! After a gate-level simulation extracts the average duty cycles of the
//! pMOS/nMOS transistors of every instance, the netlist is rewritten so each
//! instance references the λ-indexed variant of its cell inside the
//! *complete* degradation-aware library: `AND2_X1` with
//! `Avg(λ_pmos) = 0.4, Avg(λ_nmos) = 0.6` becomes `AND2_X1_0.40_0.60`.

use crate::{InstId, Netlist};
use liberty::LambdaTag;

/// Rewrites cell references to their λ-indexed names.
///
/// `duty_of` returns the `(λ_pmos, λ_nmos)` pair of each instance, already
/// quantized to the grid the complete library was built with; instances for
/// which it returns `None` keep their original cell name (useful to exempt
/// e.g. clock-tree cells).
#[must_use]
pub fn annotated_with_lambda(
    netlist: &Netlist,
    duty_of: impl Fn(InstId) -> Option<LambdaTag>,
) -> Netlist {
    let mut out = netlist.clone();
    for id in netlist.instance_ids() {
        if let Some(tag) = duty_of(id) {
            let inst = out.instance_mut(id);
            inst.cell = format!("{}_{}", inst.cell, tag.suffix());
        }
    }
    out
}

/// Rewrites **all** instances to one uniform static stress case — the
/// static-analysis path of Sec. 4.2 against a merged complete library (for
/// per-scenario libraries, analyzing the unmodified netlist against that
/// library is equivalent and cheaper).
#[must_use]
pub fn annotated_with_static(netlist: &Netlist, tag: LambdaTag) -> Netlist {
    annotated_with_lambda(netlist, |_| Some(tag))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PortDir;

    fn sample() -> Netlist {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        let n = nl.add_net("n1");
        nl.add_instance("u0", "AND2_X1", &[("A", a), ("B", a), ("Y", n)]);
        nl.add_instance("u1", "INV_X1", &[("A", n), ("Y", y)]);
        nl
    }

    #[test]
    fn paper_example() {
        let nl = sample();
        let out = annotated_with_lambda(&nl, |id| {
            (id == InstId(0)).then_some(LambdaTag { lambda_pmos: 0.4, lambda_nmos: 0.6 })
        });
        assert_eq!(out.instances()[0].cell, "AND2_X1_0.40_0.60");
        assert_eq!(out.instances()[1].cell, "INV_X1", "unannotated instance untouched");
        // Original netlist is not modified.
        assert_eq!(nl.instances()[0].cell, "AND2_X1");
    }

    #[test]
    fn static_worst_case() {
        let out =
            annotated_with_static(&sample(), LambdaTag { lambda_pmos: 1.0, lambda_nmos: 1.0 });
        assert!(out.instances().iter().all(|i| i.cell.ends_with("_1.00_1.00")));
    }

    #[test]
    fn round_trips_with_split() {
        let out =
            annotated_with_static(&sample(), LambdaTag { lambda_pmos: 0.3, lambda_nmos: 0.7 });
        for inst in out.instances() {
            let (base, tag) = liberty::split_lambda_tag(&inst.cell);
            assert!(base == "AND2_X1" || base == "INV_X1");
            let tag = tag.expect("tag present");
            assert!((tag.lambda_pmos - 0.3).abs() < 1e-9);
            assert!((tag.lambda_nmos - 0.7).abs() < 1e-9);
        }
    }
}
