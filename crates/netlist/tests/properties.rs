//! Property-based tests: random netlists survive the Verilog and SDF text
//! round trips, and λ annotation composes with name splitting.

use liberty::LambdaTag;
use netlist::verilog::{parse_verilog, write_verilog};
use netlist::{parse_sdf, ArcDelays, DelayAnnotation, Netlist, PortDir};
use proptest::prelude::*;

/// Builds a random single-output-per-gate netlist from connection choices.
fn random_netlist(cells: &[(usize, usize)]) -> Netlist {
    let mut nl = Netlist::new("rand_mod");
    let a = nl.add_port("in_a", PortDir::Input);
    let b = nl.add_port("in_b", PortDir::Input);
    let mut nets = vec![a, b];
    for (k, &(c1, c2)) in cells.iter().enumerate() {
        let out = nl.add_net(&format!("w{k}"));
        let x = nets[c1 % nets.len()];
        let y = nets[c2 % nets.len()];
        nl.add_instance(&format!("g{k}"), "NAND2_X1", &[("A", x), ("B", y), ("Y", out)]);
        nets.push(out);
    }
    let yport = nl.add_port("out_y", PortDir::Output);
    let last = *nets.last().expect("nonempty");
    nl.add_instance("obuf", "BUF_X2", &[("A", last), ("Y", yport)]);
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Structure survives write → parse exactly (names, cells, connections).
    #[test]
    fn verilog_round_trip(cells in prop::collection::vec((any::<usize>(), any::<usize>()), 1..30)) {
        let nl = random_netlist(&cells);
        let parsed = parse_verilog(&write_verilog(&nl)).expect("parses");
        prop_assert_eq!(parsed.name.clone(), nl.name.clone());
        prop_assert_eq!(parsed.instance_count(), nl.instance_count());
        prop_assert_eq!(parsed.net_count(), nl.net_count());
        prop_assert_eq!(parsed.ports().len(), nl.ports().len());
        for (pa, pb) in parsed.instances().iter().zip(nl.instances()) {
            prop_assert_eq!(&pa.name, &pb.name);
            prop_assert_eq!(&pa.cell, &pb.cell);
            for ((pin_a, net_a), (pin_b, net_b)) in pa.connections.iter().zip(&pb.connections) {
                prop_assert_eq!(pin_a, pin_b);
                prop_assert_eq!(parsed.net_name(*net_a), nl.net_name(*net_b));
            }
        }
    }

    /// Delay annotations survive SDF write → parse within print precision.
    #[test]
    fn sdf_round_trip(
        cells in prop::collection::vec((any::<usize>(), any::<usize>()), 1..15),
        delays in prop::collection::vec(1e-12f64..5e-10, 1..6),
    ) {
        let nl = random_netlist(&cells);
        let mut ann = DelayAnnotation::new();
        for (k, id) in nl.instance_ids().enumerate() {
            let d = delays[k % delays.len()];
            let pins: Vec<String> = nl
                .instance(id)
                .connections
                .iter()
                .map(|(p, _)| p.clone())
                .filter(|p| p != "Y")
                .collect();
            for pin in pins {
                ann.set(id, &pin, "Y", ArcDelays { rise: d, fall: d * 0.8 });
            }
        }
        let text = ann.write_sdf(&nl);
        let parsed = parse_sdf(&text, &nl).expect("parses");
        prop_assert_eq!(parsed.len(), ann.len());
        for id in nl.instance_ids() {
            for pin in ["A", "B"] {
                if let Some(orig) = ann.get(id, pin, "Y") {
                    let back = parsed.get(id, pin, "Y").expect("present");
                    // SDF prints 6 decimals in ns → 1 fs precision.
                    prop_assert!((orig.rise - back.rise).abs() < 1e-15);
                    prop_assert!((orig.fall - back.fall).abs() < 1e-15);
                }
            }
        }
    }

    /// Static λ annotation tags every instance, round-trips through
    /// `split_lambda_tag`, and never touches the original netlist.
    #[test]
    fn annotation_round_trip(
        cells in prop::collection::vec((any::<usize>(), any::<usize>()), 1..15),
        p in 0u32..=10,
        n in 0u32..=10,
    ) {
        let nl = random_netlist(&cells);
        let tag = LambdaTag {
            lambda_pmos: f64::from(p) / 10.0,
            lambda_nmos: f64::from(n) / 10.0,
        };
        let annotated = netlist::annotate::annotated_with_static(&nl, tag);
        for (orig, new) in nl.instances().iter().zip(annotated.instances()) {
            let (base, parsed) = liberty::split_lambda_tag(&new.cell);
            prop_assert_eq!(base, orig.cell.as_str());
            let parsed = parsed.expect("tag parses back");
            prop_assert!((parsed.lambda_pmos - tag.lambda_pmos).abs() < 5e-3);
            prop_assert!((parsed.lambda_nmos - tag.lambda_nmos).abs() < 5e-3);
        }
        // The annotated netlist also survives the Verilog round trip
        // (dotted cell names are legal identifiers in our subset).
        let back = parse_verilog(&write_verilog(&annotated)).expect("parses");
        prop_assert_eq!(back.instance_count(), annotated.instance_count());
    }
}
