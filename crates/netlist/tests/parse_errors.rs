//! Error-path coverage of the structural-Verilog and SDF parsers: every
//! malformed input must come back as a typed [`NetlistError`] — never a
//! panic — and parse errors must carry a usable line number.

use netlist::verilog::parse_verilog;
use netlist::{parse_sdf, ArcDelays, DelayAnnotation, Netlist, NetlistError, PortDir};

fn two_inverters() -> Netlist {
    let mut nl = Netlist::new("m");
    let a = nl.add_port("a", PortDir::Input);
    let y = nl.add_port("y", PortDir::Output);
    let n1 = nl.add_net("n1");
    nl.add_instance("u0", "INV_X1", &[("A", a), ("Y", n1)]);
    nl.add_instance("u1", "INV_X1", &[("A", n1), ("Y", y)]);
    nl
}

// ---------------------------------------------------------------- Verilog

#[test]
fn malformed_module_header() {
    // Wrong keyword.
    let err = parse_verilog("modul m (a); endmodule").unwrap_err();
    assert!(matches!(err, NetlistError::Parse { line: 1, .. }), "{err}");
    assert!(err.to_string().contains("module"), "{err}");

    // Missing '(' after the module name.
    let err = parse_verilog("module m a, b);\nendmodule").unwrap_err();
    assert!(matches!(err, NetlistError::Parse { line: 1, .. }), "{err}");

    // Missing ';' after the port list.
    let err = parse_verilog("module m (a)\n  input a;\nendmodule").unwrap_err();
    assert!(matches!(err, NetlistError::Parse { .. }), "{err}");
}

#[test]
fn truncated_verilog_is_a_typed_error() {
    let full =
        "module m (a, y);\n  input a;\n  output y;\n  INV_X1 u0 (.A(a), .Y(y));\nendmodule\n";
    assert!(parse_verilog(full).is_ok());
    // Every prefix must fail cleanly, not panic.
    for cut in 0..full.len() - 1 {
        if !full.is_char_boundary(cut) {
            continue;
        }
        let res = parse_verilog(&full[..cut]);
        assert!(res.is_err(), "prefix of length {cut} unexpectedly parsed");
    }
}

#[test]
fn declaration_without_terminator() {
    let err = parse_verilog("module m (a);\n  input a\nendmodule").unwrap_err();
    let NetlistError::Parse { line, message } = &err else {
        panic!("expected parse error, got {err:?}");
    };
    assert!(*line >= 3, "error should point at the offending token: {err}");
    assert!(message.contains("';'"), "{err}");
}

#[test]
fn malformed_port_connection() {
    // Bare net name instead of '.pin(net)'.
    let err =
        parse_verilog("module m (a, y);\n  input a;\n  output y;\n  INV_X1 u0 (a, y);\nendmodule")
            .unwrap_err();
    assert!(matches!(err, NetlistError::Parse { line: 4, .. }), "{err}");

    // Unclosed connection list.
    let err =
        parse_verilog("module m (a, y);\n  input a;\n  output y;\n  INV_X1 u0 (.A(a) endmodule")
            .unwrap_err();
    assert!(matches!(err, NetlistError::Parse { .. }), "{err}");
}

#[test]
fn duplicate_instance_is_a_structural_error() {
    let text = "module m (a, y);\n  input a;\n  output y;\n  wire n1;\n\
                INV_X1 u0 (.A(a), .Y(n1));\n  INV_X1 u0 (.A(n1), .Y(y));\nendmodule";
    let err = parse_verilog(text).unwrap_err();
    assert_eq!(err, NetlistError::DuplicateInstance { instance: "u0".into() });
}

#[test]
fn stray_character_and_unterminated_comment() {
    let err = parse_verilog("module m (%); endmodule").unwrap_err();
    assert!(err.to_string().contains('%'), "{err}");

    let err = parse_verilog("module m (a);\n/* never closed").unwrap_err();
    assert!(matches!(err, NetlistError::Parse { line: 2, .. }), "{err}");
    assert!(err.to_string().contains("comment"), "{err}");
}

// -------------------------------------------------------------------- SDF

#[test]
fn truncated_sdf_is_a_typed_error() {
    let nl = two_inverters();
    let mut ann = DelayAnnotation::new();
    let ids: Vec<_> = nl.instance_ids().collect();
    ann.set(ids[0], "A", "Y", ArcDelays { rise: 1e-12, fall: 2e-12 });
    ann.set(ids[1], "A", "Y", ArcDelays { rise: 3e-12, fall: 4e-12 });
    let full = ann.write_sdf(&nl);
    assert!(parse_sdf(&full, &nl).is_ok());

    // Every truncation must come back as a Result, never a panic. (The
    // parser skips unknown tokens, so many prefixes legitimately parse as
    // files with fewer arcs — only the typed-error guarantee is universal.)
    for cut in 0..full.len() {
        let _ = parse_sdf(&full[..cut], &nl);
    }

    // A cut inside a delay triple specifically must be an EOF parse error.
    let iopath = full.find("IOPATH").expect("writer emits IOPATH");
    let triple_start = full[iopath..].find('(').expect("triple opens") + iopath;
    let triple_end = full[triple_start..].find(')').expect("triple closes") + triple_start;
    for cut in triple_start + 1..=triple_end {
        let err =
            parse_sdf(&full[..cut], &nl).expect_err("truncation inside a delay triple must fail");
        assert!(err.to_string().contains("end of SDF"), "cut {cut}: {err}");
    }
}

#[test]
fn sdf_unknown_instance_reference() {
    let nl = two_inverters();
    let text = "(DELAYFILE\n  (CELL (CELLTYPE \"INV_X1\")\n    (INSTANCE ghost)\n\
                (DELAY (ABSOLUTE\n  (IOPATH A Y (1:1:1) (1:1:1)))))\n)";
    let err = parse_sdf(text, &nl).unwrap_err();
    let NetlistError::Parse { line, message } = &err else {
        panic!("expected parse error, got {err:?}");
    };
    assert_eq!(*line, 3, "{err}");
    assert!(message.contains("ghost"), "{err}");
}

#[test]
fn sdf_iopath_outside_cell() {
    let nl = two_inverters();
    let text = "(DELAYFILE (IOPATH A Y (1:1:1) (1:1:1)))";
    let err = parse_sdf(text, &nl).unwrap_err();
    assert!(err.to_string().contains("IOPATH outside CELL"), "{err}");
}

#[test]
fn sdf_bad_delay_values() {
    let nl = two_inverters();
    // Non-numeric value.
    let text = "(DELAYFILE (CELL (INSTANCE u0) (IOPATH A Y (abc:1:1) (1:1:1))))";
    let err = parse_sdf(text, &nl).unwrap_err();
    assert!(err.to_string().contains("abc"), "{err}");

    // Empty triple.
    let text = "(DELAYFILE (CELL (INSTANCE u0) (IOPATH A Y () (1:1:1))))";
    let err = parse_sdf(text, &nl).unwrap_err();
    assert!(err.to_string().contains("empty delay triple"), "{err}");
}

#[test]
fn sdf_unterminated_string() {
    let nl = two_inverters();
    let err = parse_sdf("(DELAYFILE (DESIGN \"m))", &nl).unwrap_err();
    assert!(err.to_string().contains("unterminated string"), "{err}");
}
