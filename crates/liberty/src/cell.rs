use crate::expr::BoolExpr;
use crate::table::Table2d;

/// The unateness of a timing arc: how an input edge direction maps to the
/// output edge direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimingSense {
    /// Rising input → rising output (e.g. AND/OR/BUF inputs).
    PositiveUnate,
    /// Rising input → falling output (e.g. NAND/NOR/INV inputs).
    NegativeUnate,
    /// Both output edges can follow either input edge (e.g. XOR inputs).
    NonUnate,
}

impl TimingSense {
    /// The Liberty attribute spelling of this sense.
    #[must_use]
    pub fn as_liberty(self) -> &'static str {
        match self {
            TimingSense::PositiveUnate => "positive_unate",
            TimingSense::NegativeUnate => "negative_unate",
            TimingSense::NonUnate => "non_unate",
        }
    }

    /// Parses the Liberty attribute spelling.
    #[must_use]
    pub fn from_liberty(s: &str) -> Option<Self> {
        match s {
            "positive_unate" => Some(TimingSense::PositiveUnate),
            "negative_unate" => Some(TimingSense::NegativeUnate),
            "non_unate" => Some(TimingSense::NonUnate),
            _ => None,
        }
    }
}

/// One characterized pin-to-pin timing arc of a cell.
///
/// `cell_rise`/`cell_fall` give the propagation delay to a rising/falling
/// *output* edge, and `rise_transition`/`fall_transition` the corresponding
/// output slews — all as functions of (input slew, output load), the OPCs of
/// the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingArc {
    /// The input pin this arc starts at (for flip-flops: the clock pin).
    pub related_pin: String,
    /// Unateness of the arc.
    pub sense: TimingSense,
    /// Delay to a rising output edge.
    pub cell_rise: Table2d,
    /// Delay to a falling output edge.
    pub cell_fall: Table2d,
    /// Output slew of a rising output edge.
    pub rise_transition: Table2d,
    /// Output slew of a falling output edge.
    pub fall_transition: Table2d,
}

impl TimingArc {
    /// Worst (max) delay across both edges at the given OPC.
    #[must_use]
    pub fn worst_delay(&self, slew: f64, load: f64) -> f64 {
        self.cell_rise.value(slew, load).max(self.cell_fall.value(slew, load))
    }

    /// Delay of the edge producing a rising (`true`) or falling output.
    #[must_use]
    pub fn delay(&self, output_rising: bool, slew: f64, load: f64) -> f64 {
        if output_rising {
            self.cell_rise.value(slew, load)
        } else {
            self.cell_fall.value(slew, load)
        }
    }

    /// Output slew of a rising (`true`) or falling output edge.
    #[must_use]
    pub fn transition(&self, output_rising: bool, slew: f64, load: f64) -> f64 {
        if output_rising {
            self.rise_transition.value(slew, load)
        } else {
            self.fall_transition.value(slew, load)
        }
    }
}

/// An input pin with its characterized capacitance.
#[derive(Debug, Clone, PartialEq)]
pub struct InputPin {
    /// Pin name.
    pub name: String,
    /// Input capacitance in farad.
    pub capacitance: f64,
}

/// An output pin: its boolean function and the timing arcs ending at it.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputPin {
    /// Pin name.
    pub name: String,
    /// Boolean function of the cell inputs (for flip-flop outputs this is
    /// the captured data input; sequential semantics live in
    /// [`CellClass::Flop`]).
    pub function: BoolExpr,
    /// Largest load this pin is characterized to drive, in farad.
    pub max_capacitance: f64,
    /// Timing arcs into this output, one per related input pin.
    pub arcs: Vec<TimingArc>,
}

impl OutputPin {
    /// The arc related to input `pin`, if characterized.
    #[must_use]
    pub fn arc_from(&self, pin: &str) -> Option<&TimingArc> {
        self.arcs.iter().find(|a| a.related_pin == pin)
    }
}

/// Combinational vs sequential behavior of a cell.
#[derive(Debug, Clone, PartialEq)]
pub enum CellClass {
    /// Plain combinational logic.
    Combinational,
    /// A rising-edge D flip-flop.
    Flop {
        /// Clock pin name.
        clock: String,
        /// Data pin name.
        data: String,
        /// Setup time requirement at the data pin, in seconds.
        setup: f64,
        /// Hold time requirement at the data pin, in seconds.
        hold: f64,
    },
}

/// A characterized standard cell inside a [`Library`](crate::Library).
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Cell name; in merged degradation-aware libraries the name carries a
    /// λ index suffix (`NAND2_X1_0.40_0.60`).
    pub name: String,
    /// Layout area in µm².
    pub area: f64,
    /// Combinational or sequential behavior.
    pub class: CellClass,
    /// Input pins with capacitances.
    pub inputs: Vec<InputPin>,
    /// Output pins with functions and timing arcs.
    pub outputs: Vec<OutputPin>,
}

impl Cell {
    /// The capacitance of input `pin`, if it exists.
    #[must_use]
    pub fn input_cap(&self, pin: &str) -> Option<f64> {
        self.inputs.iter().find(|p| p.name == pin).map(|p| p.capacitance)
    }

    /// The output pin named `pin`.
    #[must_use]
    pub fn output(&self, pin: &str) -> Option<&OutputPin> {
        self.outputs.iter().find(|p| p.name == pin)
    }

    /// True for sequential cells.
    #[must_use]
    pub fn is_sequential(&self) -> bool {
        matches!(self.class, CellClass::Flop { .. })
    }

    /// Number of input pins.
    #[must_use]
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Worst-case delay of any arc of the cell at the given OPC — a quick
    /// figure of merit used by mapping heuristics.
    #[must_use]
    pub fn worst_delay(&self, slew: f64, load: f64) -> f64 {
        self.outputs
            .iter()
            .flat_map(|o| o.arcs.iter())
            .map(|a| a.worst_delay(slew, load))
            .fold(0.0, f64::max)
    }

    /// A hand-made unit inverter used by tests across the workspace; not a
    /// characterized cell.
    ///
    /// # Panics
    ///
    /// Never — the fixture axes are valid by construction.
    #[must_use]
    #[allow(clippy::expect_used)] // test fixture, must stay pub for other crates
    pub fn test_inverter(name: &str) -> Cell {
        let slews = vec![5e-12, 100e-12, 900e-12];
        let loads = vec![0.5e-15, 5e-15, 20e-15];
        let mk = |base: f64| {
            let mut values = Vec::new();
            for (i, s) in slews.iter().enumerate() {
                for l in &loads {
                    let _ = i;
                    values.push(base + 0.12 * s + 2.0e3 * l);
                }
            }
            Table2d::new(slews.clone(), loads.clone(), values).expect("valid test table")
        };
        Cell {
            name: name.to_owned(),
            area: 0.8,
            class: CellClass::Combinational,
            inputs: vec![InputPin { name: "A".into(), capacitance: 1.0e-15 }],
            outputs: vec![OutputPin {
                name: "Y".into(),
                function: BoolExpr::Not(Box::new(BoolExpr::var("A"))),
                max_capacitance: 25e-15,
                arcs: vec![TimingArc {
                    related_pin: "A".into(),
                    sense: TimingSense::NegativeUnate,
                    cell_rise: mk(12e-12),
                    cell_fall: mk(10e-12),
                    rise_transition: mk(8e-12),
                    fall_transition: mk(7e-12),
                }],
            }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sense_round_trip() {
        for s in [TimingSense::PositiveUnate, TimingSense::NegativeUnate, TimingSense::NonUnate] {
            assert_eq!(TimingSense::from_liberty(s.as_liberty()), Some(s));
        }
        assert_eq!(TimingSense::from_liberty("sideways"), None);
    }

    #[test]
    fn test_inverter_structure() {
        let inv = Cell::test_inverter("INV_X1");
        assert_eq!(inv.input_count(), 1);
        assert_eq!(inv.input_cap("A"), Some(1.0e-15));
        assert_eq!(inv.input_cap("B"), None);
        assert!(!inv.is_sequential());
        let y = inv.output("Y").unwrap();
        assert!(y.arc_from("A").is_some());
        assert!(y.arc_from("Z").is_none());
        assert!(y.function.eval(&|_| false));
    }

    #[test]
    fn arc_lookup_math() {
        let inv = Cell::test_inverter("INV_X1");
        let arc = inv.output("Y").unwrap().arc_from("A").unwrap();
        // Delay grows with slew and load in the fixture.
        let fast = arc.delay(true, 5e-12, 0.5e-15);
        let slow = arc.delay(true, 900e-12, 20e-15);
        assert!(slow > fast);
        assert_eq!(arc.worst_delay(5e-12, 0.5e-15), arc.delay(true, 5e-12, 0.5e-15));
        assert!(arc.transition(false, 5e-12, 0.5e-15) > 0.0);
        assert!(inv.worst_delay(5e-12, 0.5e-15) > 0.0);
    }

    #[test]
    fn flop_class() {
        let mut c = Cell::test_inverter("DFF_X1");
        c.class =
            CellClass::Flop { clock: "CK".into(), data: "D".into(), setup: 30e-12, hold: 5e-12 };
        assert!(c.is_sequential());
    }
}
