use std::error::Error;
use std::fmt;

/// Error parsing a boolean pin-function expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseExprError {
    pub(crate) message: String,
    pub(crate) position: usize,
}

impl fmt::Display for ParseExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid boolean expression at offset {}: {}", self.position, self.message)
    }
}

impl Error for ParseExprError {}

/// Error constructing a lookup table with inconsistent axes/values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableError {
    pub(crate) message: String,
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid lookup table: {}", self.message)
    }
}

impl Error for TableError {}

/// Error reading or interpreting a Liberty-subset library file.
#[derive(Debug)]
pub enum LibertyError {
    /// Lexical or structural error in the text, with a line number.
    Syntax {
        /// 1-based line of the offending token.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// Structurally valid text describing a semantically broken library.
    Semantic(String),
    /// An embedded pin function failed to parse.
    Expr(ParseExprError),
    /// An embedded table was inconsistent.
    Table(TableError),
}

impl fmt::Display for LibertyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LibertyError::Syntax { line, message } => {
                write!(f, "liberty syntax error on line {line}: {message}")
            }
            LibertyError::Semantic(m) => write!(f, "invalid library: {m}"),
            LibertyError::Expr(e) => write!(f, "{e}"),
            LibertyError::Table(e) => write!(f, "{e}"),
        }
    }
}

impl Error for LibertyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LibertyError::Expr(e) => Some(e),
            LibertyError::Table(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseExprError> for LibertyError {
    fn from(e: ParseExprError) -> Self {
        LibertyError::Expr(e)
    }
}

impl From<TableError> for LibertyError {
    fn from(e: TableError) -> Self {
        LibertyError::Table(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ParseExprError { message: "unexpected token".into(), position: 3 };
        assert!(e.to_string().contains("offset 3"));
        let t = TableError { message: "axis empty".into() };
        assert!(t.to_string().contains("axis empty"));
        let s = LibertyError::Syntax { line: 7, message: "missing brace".into() };
        assert!(s.to_string().contains("line 7"));
        assert!(LibertyError::from(e).to_string().contains("unexpected token"));
        assert!(LibertyError::from(t).source().is_some());
    }
}
