use crate::error::TableError;
use std::sync::Arc;

/// A 2-D NLDM lookup table indexed by input slew (axis 1) and output load
/// (axis 2), with bilinear interpolation inside the grid and linear
/// extrapolation outside it.
///
/// The paper characterizes every cell at 7 slews × 7 loads (49 operating
/// conditions); tables of any rectangular size — including degenerate 1×1
/// "single OPC" tables for the state-of-the-art comparison of Fig. 5(b) —
/// are supported.
///
/// Values are stored row-major: `values[slew_index * loads + load_index]`.
///
/// Axes and values are immutable after construction and `Arc`-backed, so
/// cloning a table — and therefore a cell or a whole [`crate::Library`] —
/// shares the grid data instead of deep-copying it. The characterization
/// service relies on this to serve memoized libraries without copying.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2d {
    slew_axis: Arc<[f64]>,
    load_axis: Arc<[f64]>,
    values: Arc<[f64]>,
}

impl Table2d {
    /// Creates a table from its axes and row-major values.
    ///
    /// # Errors
    ///
    /// Returns [`TableError`] if an axis is empty or not strictly
    /// increasing, if any entry is non-finite, or if
    /// `values.len() != slew_axis.len() * load_axis.len()`.
    pub fn new(
        slew_axis: Vec<f64>,
        load_axis: Vec<f64>,
        values: Vec<f64>,
    ) -> Result<Self, TableError> {
        check_axis("slew", &slew_axis)?;
        check_axis("load", &load_axis)?;
        if values.len() != slew_axis.len() * load_axis.len() {
            return Err(TableError {
                message: format!(
                    "expected {} values for a {}x{} table, got {}",
                    slew_axis.len() * load_axis.len(),
                    slew_axis.len(),
                    load_axis.len(),
                    values.len()
                ),
            });
        }
        if let Some(bad) = values.iter().find(|v| !v.is_finite()) {
            return Err(TableError { message: format!("non-finite table value {bad}") });
        }
        Ok(Table2d {
            slew_axis: slew_axis.into(),
            load_axis: load_axis.into(),
            values: values.into(),
        })
    }

    /// A degenerate 1×1 table that returns `value` everywhere — the
    /// "single operating condition" model of the related work in Fig. 5(b).
    ///
    /// # Panics
    ///
    /// Panics if `value`, `slew` or `load` is not finite.
    #[must_use]
    pub fn constant(slew: f64, load: f64, value: f64) -> Self {
        match Table2d::new(vec![slew], vec![load], vec![value]) {
            Ok(t) => t,
            Err(e) => panic!("1x1 table rejected: {e}"),
        }
    }

    /// The input-slew axis in seconds.
    #[must_use]
    pub fn slew_axis(&self) -> &[f64] {
        &self.slew_axis
    }

    /// The output-load axis in farad.
    #[must_use]
    pub fn load_axis(&self) -> &[f64] {
        &self.load_axis
    }

    /// The row-major values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The stored value at grid indexes `(slew_index, load_index)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn at(&self, slew_index: usize, load_index: usize) -> f64 {
        assert!(slew_index < self.slew_axis.len() && load_index < self.load_axis.len());
        self.values[slew_index * self.load_axis.len() + load_index]
    }

    /// Looks up the table at `(slew, load)`: bilinear interpolation inside
    /// the grid, linear extrapolation from the edge gradient outside it
    /// (matching common STA tool behavior). Degenerate single-point axes
    /// return the edge value in that dimension.
    #[must_use]
    pub fn value(&self, slew: f64, load: f64) -> f64 {
        let (i0, i1, fs) = bracket(&self.slew_axis, slew);
        let (j0, j1, fl) = bracket(&self.load_axis, load);
        let v00 = self.at(i0, j0);
        let v01 = self.at(i0, j1);
        let v10 = self.at(i1, j0);
        let v11 = self.at(i1, j1);
        let a = v00 + (v10 - v00) * fs;
        let b = v01 + (v11 - v01) * fs;
        a + (b - a) * fl
    }

    /// Applies `f` to every value, producing a new table on the same grid
    /// (the axes are shared, only the values are materialized).
    #[must_use]
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Self {
        Table2d {
            slew_axis: Arc::clone(&self.slew_axis),
            load_axis: Arc::clone(&self.load_axis),
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise combination of two tables defined on identical grids.
    ///
    /// # Errors
    ///
    /// Returns [`TableError`] if the grids differ.
    pub fn zip_with(
        &self,
        other: &Table2d,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Self, TableError> {
        if self.slew_axis != other.slew_axis || self.load_axis != other.load_axis {
            return Err(TableError { message: "grid mismatch in table combination".into() });
        }
        Ok(Table2d {
            slew_axis: Arc::clone(&self.slew_axis),
            load_axis: Arc::clone(&self.load_axis),
            values: self.values.iter().zip(other.values.iter()).map(|(&a, &b)| f(a, b)).collect(),
        })
    }

    /// Collapses this table to the 1×1 "single OPC" table at the grid point
    /// nearest `(slew, load)` — used to emulate single-operating-condition
    /// state of the art.
    #[must_use]
    pub fn collapsed_to(&self, slew: f64, load: f64) -> Self {
        let i = nearest(&self.slew_axis, slew);
        let j = nearest(&self.load_axis, load);
        Table2d::constant(self.slew_axis[i], self.load_axis[j], self.at(i, j))
    }

    /// Maximum stored value.
    #[must_use]
    pub fn max_value(&self) -> f64 {
        self.values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum stored value.
    #[must_use]
    pub fn min_value(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

fn check_axis(name: &str, axis: &[f64]) -> Result<(), TableError> {
    if axis.is_empty() {
        return Err(TableError { message: format!("{name} axis is empty") });
    }
    if axis.iter().any(|v| !v.is_finite()) {
        return Err(TableError { message: format!("{name} axis has non-finite entries") });
    }
    if axis.windows(2).any(|w| w[1] <= w[0]) {
        return Err(TableError { message: format!("{name} axis must be strictly increasing") });
    }
    Ok(())
}

/// Returns `(i0, i1, frac)` such that the query sits at `frac` between axis
/// points `i0` and `i1`; `frac` may exceed [0, 1] for extrapolation.
fn bracket(axis: &[f64], q: f64) -> (usize, usize, f64) {
    let n = axis.len();
    if n == 1 {
        return (0, 0, 0.0);
    }
    let mut i1 = axis.partition_point(|&a| a < q).clamp(1, n - 1);
    let mut i0 = i1 - 1;
    // For queries beyond the last point use the final segment's gradient.
    if q > axis[n - 1] {
        i0 = n - 2;
        i1 = n - 1;
    }
    let span = axis[i1] - axis[i0];
    let frac = if span > 0.0 { (q - axis[i0]) / span } else { 0.0 };
    (i0, i1, frac)
}

fn nearest(axis: &[f64], q: f64) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, &a) in axis.iter().enumerate() {
        let d = (a - q).abs();
        if d < best_d {
            best = i;
            best_d = d;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table2d {
        // delays grow with slew and load
        Table2d::new(
            vec![10e-12, 100e-12, 500e-12],
            vec![1e-15, 10e-15],
            vec![10e-12, 30e-12, 15e-12, 40e-12, 25e-12, 60e-12],
        )
        .unwrap()
    }

    #[test]
    fn exact_grid_points() {
        let t = table();
        assert_eq!(t.value(10e-12, 1e-15), 10e-12);
        assert_eq!(t.value(100e-12, 10e-15), 40e-12);
        assert_eq!(t.value(500e-12, 1e-15), 25e-12);
        assert_eq!(t.at(2, 1), 60e-12);
    }

    #[test]
    fn bilinear_midpoint() {
        let t = table();
        let v = t.value(55e-12, 5.5e-15);
        // Mid of the first cell: average of its four corners.
        let expected = (10e-12 + 30e-12 + 15e-12 + 40e-12) / 4.0;
        assert!((v - expected).abs() < 1e-15, "v = {v}");
    }

    #[test]
    fn extrapolation_beyond_edges() {
        let t = table();
        // Beyond max load: linear continuation of last segment.
        let inside = t.value(10e-12, 10e-15);
        let outside = t.value(10e-12, 19e-15);
        assert!(outside > inside);
        let expected = 30e-12 + (30e-12 - 10e-12) / 9e-15 * 9e-15;
        assert!((outside - expected).abs() < 1e-13);
        // Below min slew.
        let below = t.value(0.0, 1e-15);
        assert!(below < 10e-12);
    }

    #[test]
    fn constant_table_everywhere() {
        let t = Table2d::constant(20e-12, 4e-15, 42e-12);
        assert_eq!(t.value(0.0, 0.0), 42e-12);
        assert_eq!(t.value(1.0, 1.0), 42e-12);
        assert_eq!(t.max_value(), 42e-12);
        assert_eq!(t.min_value(), 42e-12);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Table2d::new(vec![], vec![1.0], vec![]).is_err());
        assert!(Table2d::new(vec![1.0, 1.0], vec![1.0], vec![1.0, 2.0]).is_err());
        assert!(Table2d::new(vec![2.0, 1.0], vec![1.0], vec![1.0, 2.0]).is_err());
        assert!(Table2d::new(vec![1.0, 2.0], vec![1.0], vec![1.0]).is_err());
        assert!(Table2d::new(vec![1.0], vec![1.0], vec![f64::NAN]).is_err());
    }

    #[test]
    fn map_and_zip() {
        let t = table();
        let doubled = t.map(|v| v * 2.0);
        assert_eq!(doubled.at(0, 0), 20e-12);
        let ratio = doubled.zip_with(&t, |a, b| a / b).unwrap();
        assert!((ratio.at(2, 1) - 2.0).abs() < 1e-12);
        let other = Table2d::constant(1.0, 1.0, 1.0);
        assert!(t.zip_with(&other, |a, _| a).is_err());
    }

    #[test]
    fn collapse_picks_nearest_point() {
        let t = table();
        let c = t.collapsed_to(90e-12, 0.0);
        assert_eq!(c.values(), &[15e-12]); // slew 100p row, load 1f column
        assert_eq!(c.value(500e-12, 10e-15), 15e-12);
    }

    #[test]
    fn interpolation_bounded_by_corners_inside_grid() {
        let t = table();
        for &s in &[10e-12, 55e-12, 300e-12, 500e-12] {
            for &l in &[1e-15, 2e-15, 9e-15, 10e-15] {
                let v = t.value(s, l);
                assert!(v >= t.min_value() - 1e-18 && v <= t.max_value() + 1e-18);
            }
        }
    }
}
