//! Library sanity checks: structural and physical plausibility of
//! characterized libraries, used as QA after characterization runs.

use crate::{Library, Table2d};

/// A human-readable issue found by [`Library::sanity_check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LibraryIssue {
    /// Cell the issue belongs to (empty for library-level issues).
    pub cell: String,
    /// Description of the problem.
    pub detail: String,
}

impl std::fmt::Display for LibraryIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.cell.is_empty() {
            write!(f, "library: {}", self.detail)
        } else {
            write!(f, "cell {}: {}", self.cell, self.detail)
        }
    }
}

impl Library {
    /// Checks the library for structural gaps and physically implausible
    /// characterization data. Returns all issues found (empty = clean).
    ///
    /// Checks: non-empty library; positive input capacitances; every output
    /// pin carries at least one timing arc; output transitions strictly
    /// positive; delay strictly increasing with output load at every slew
    /// (electrically necessary — more charge takes longer); delays bounded
    /// (no runaway values from failed transient measurements).
    #[must_use]
    pub fn sanity_check(&self) -> Vec<LibraryIssue> {
        let mut issues = Vec::new();
        if self.is_empty() {
            issues.push(LibraryIssue { cell: String::new(), detail: "library has no cells".into() });
        }
        for cell in self.cells() {
            for pin in &cell.inputs {
                if pin.capacitance <= 0.0 || pin.capacitance > 1e-12 || pin.capacitance.is_nan() {
                    issues.push(LibraryIssue {
                        cell: cell.name.clone(),
                        detail: format!(
                            "input {} capacitance {:.3e} F implausible",
                            pin.name, pin.capacitance
                        ),
                    });
                }
            }
            for out in &cell.outputs {
                if out.arcs.is_empty() {
                    issues.push(LibraryIssue {
                        cell: cell.name.clone(),
                        detail: format!("output {} has no timing arcs", out.name),
                    });
                }
                for arc in &out.arcs {
                    for (kind, table) in [
                        ("cell_rise", &arc.cell_rise),
                        ("cell_fall", &arc.cell_fall),
                    ] {
                        check_delay_table(&mut issues, &cell.name, &arc.related_pin, kind, table);
                    }
                    for (kind, table) in [
                        ("rise_transition", &arc.rise_transition),
                        ("fall_transition", &arc.fall_transition),
                    ] {
                        if table.min_value() <= 0.0 {
                            issues.push(LibraryIssue {
                                cell: cell.name.clone(),
                                detail: format!(
                                    "arc {}: {kind} has non-positive entries",
                                    arc.related_pin
                                ),
                            });
                        }
                    }
                }
            }
        }
        issues
    }
}

fn check_delay_table(
    issues: &mut Vec<LibraryIssue>,
    cell: &str,
    pin: &str,
    kind: &str,
    table: &Table2d,
) {
    // Monotone in load at each slew row.
    for si in 0..table.slew_axis().len() {
        for li in 1..table.load_axis().len() {
            if table.at(si, li) <= table.at(si, li - 1) {
                issues.push(LibraryIssue {
                    cell: cell.to_owned(),
                    detail: format!(
                        "arc {pin}: {kind} not increasing with load at slew index {si}"
                    ),
                });
                break;
            }
        }
    }
    // Bounded: a standard-cell delay beyond 10 ns means the transient
    // measurement timed out (the characterizer's fallback value).
    if table.max_value() > 10e-9 {
        issues.push(LibraryIssue {
            cell: cell.to_owned(),
            detail: format!("arc {pin}: {kind} contains a timed-out measurement"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cell, InputPin};

    #[test]
    fn clean_fixture_passes() {
        let mut lib = Library::new("l", 1.2);
        lib.add_cell(Cell::test_inverter("INV_X1"));
        assert!(lib.sanity_check().is_empty());
    }

    #[test]
    fn empty_library_flagged() {
        let lib = Library::new("l", 1.2);
        let issues = lib.sanity_check();
        assert_eq!(issues.len(), 1);
        assert!(issues[0].to_string().contains("no cells"));
    }

    #[test]
    fn bad_cap_and_missing_arcs_flagged() {
        let mut lib = Library::new("l", 1.2);
        let mut cell = Cell::test_inverter("INV_X1");
        cell.inputs.push(InputPin { name: "B".into(), capacitance: 0.0 });
        cell.outputs[0].arcs.clear();
        lib.add_cell(cell);
        let issues = lib.sanity_check();
        assert!(issues.iter().any(|i| i.detail.contains("capacitance")));
        assert!(issues.iter().any(|i| i.detail.contains("no timing arcs")));
    }

    #[test]
    fn non_monotone_delay_flagged() {
        let mut lib = Library::new("l", 1.2);
        let mut cell = Cell::test_inverter("INV_X1");
        // Make the delay DECREASE with load.
        cell.outputs[0].arcs[0].cell_rise =
            cell.outputs[0].arcs[0].cell_rise.map(|v| 1e-10 - v);
        lib.add_cell(cell);
        let issues = lib.sanity_check();
        assert!(issues.iter().any(|i| i.detail.contains("not increasing with load")));
    }

    #[test]
    fn timeout_value_flagged() {
        let mut lib = Library::new("l", 1.2);
        let mut cell = Cell::test_inverter("INV_X1");
        cell.outputs[0].arcs[0].cell_fall =
            cell.outputs[0].arcs[0].cell_fall.map(|v| v + 20e-9);
        lib.add_cell(cell);
        let issues = lib.sanity_check();
        assert!(issues.iter().any(|i| i.detail.contains("timed-out")));
    }
}
