//! Library sanity checks: structural and physical plausibility of
//! characterized libraries, used as QA after characterization runs and as
//! the data source for the `relialint` library rules (`LB...`).

use crate::{Library, Table2d};

/// What category of defect a [`LibraryIssue`] reports. Each kind maps to a
/// stable `relialint` rule ID, so the set is append-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IssueKind {
    /// The library contains no cells at all.
    EmptyLibrary,
    /// An input pin's capacitance is non-positive, NaN or absurdly large.
    ImplausibleCapacitance,
    /// An output pin carries no timing arcs.
    MissingArcs,
    /// An output-transition table contains non-positive entries.
    NonPositiveTransition,
    /// A delay table fails to increase with output load at some slew.
    NonMonotoneLoad,
    /// A delay table decreases with input slew at some load.
    NonMonotoneSlew,
    /// A delay table contains the characterizer's timeout fallback value.
    TimedOut,
}

/// A human-readable issue found by [`Library::sanity_check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LibraryIssue {
    /// The category of the defect (stable; maps to a lint rule ID).
    pub kind: IssueKind,
    /// Cell the issue belongs to (empty for library-level issues).
    pub cell: String,
    /// Description of the problem.
    pub detail: String,
}

impl std::fmt::Display for LibraryIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.cell.is_empty() {
            write!(f, "library: {}", self.detail)
        } else {
            write!(f, "cell {}: {}", self.cell, self.detail)
        }
    }
}

impl Library {
    /// Checks the library for structural gaps and physically implausible
    /// characterization data. Returns all issues found (empty = clean).
    ///
    /// Checks: non-empty library; positive input capacitances; every output
    /// pin carries at least one timing arc; output transitions strictly
    /// positive; delay strictly increasing with output load at every slew
    /// (electrically necessary — more charge takes longer); delay never
    /// *decreasing* with input slew at any load (a slower input edge cannot
    /// speed a gate up); delays bounded (no runaway values from failed
    /// transient measurements).
    #[must_use]
    pub fn sanity_check(&self) -> Vec<LibraryIssue> {
        let mut issues = Vec::new();
        if self.is_empty() {
            issues.push(LibraryIssue {
                kind: IssueKind::EmptyLibrary,
                cell: String::new(),
                detail: "library has no cells".into(),
            });
        }
        for cell in self.cells() {
            for pin in &cell.inputs {
                if pin.capacitance <= 0.0 || pin.capacitance > 1e-12 || pin.capacitance.is_nan() {
                    issues.push(LibraryIssue {
                        kind: IssueKind::ImplausibleCapacitance,
                        cell: cell.name.clone(),
                        detail: format!(
                            "input {} capacitance {:.3e} F implausible",
                            pin.name, pin.capacitance
                        ),
                    });
                }
            }
            for out in &cell.outputs {
                if out.arcs.is_empty() {
                    issues.push(LibraryIssue {
                        kind: IssueKind::MissingArcs,
                        cell: cell.name.clone(),
                        detail: format!("output {} has no timing arcs", out.name),
                    });
                }
                for arc in &out.arcs {
                    for (kind, table) in
                        [("cell_rise", &arc.cell_rise), ("cell_fall", &arc.cell_fall)]
                    {
                        check_delay_table(&mut issues, &cell.name, &arc.related_pin, kind, table);
                    }
                    for (kind, table) in [
                        ("rise_transition", &arc.rise_transition),
                        ("fall_transition", &arc.fall_transition),
                    ] {
                        if table.min_value() <= 0.0 {
                            issues.push(LibraryIssue {
                                kind: IssueKind::NonPositiveTransition,
                                cell: cell.name.clone(),
                                detail: format!(
                                    "arc {}: {kind} has non-positive entries",
                                    arc.related_pin
                                ),
                            });
                        }
                    }
                }
            }
        }
        issues
    }
}

fn check_delay_table(
    issues: &mut Vec<LibraryIssue>,
    cell: &str,
    pin: &str,
    kind: &str,
    table: &Table2d,
) {
    // Monotone in load at each slew row.
    for si in 0..table.slew_axis().len() {
        for li in 1..table.load_axis().len() {
            if table.at(si, li) <= table.at(si, li - 1) {
                issues.push(LibraryIssue {
                    kind: IssueKind::NonMonotoneLoad,
                    cell: cell.to_owned(),
                    detail: format!(
                        "arc {pin}: {kind} not increasing with load at slew index {si}"
                    ),
                });
                break;
            }
        }
    }
    // Never *decreasing* with slew at any load column. Unlike the load
    // axis, equality is allowed: far from the slew-sensitive region a
    // delay can plateau, but a drop means the characterization is broken.
    for li in 0..table.load_axis().len() {
        for si in 1..table.slew_axis().len() {
            if table.at(si, li) < table.at(si - 1, li) {
                issues.push(LibraryIssue {
                    kind: IssueKind::NonMonotoneSlew,
                    cell: cell.to_owned(),
                    detail: format!(
                        "arc {pin}: {kind} decreasing with input slew at load index {li}"
                    ),
                });
                break;
            }
        }
    }
    // Bounded: a standard-cell delay beyond 10 ns means the transient
    // measurement timed out (the characterizer's fallback value).
    if table.max_value() > 10e-9 {
        issues.push(LibraryIssue {
            kind: IssueKind::TimedOut,
            cell: cell.to_owned(),
            detail: format!("arc {pin}: {kind} contains a timed-out measurement"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cell, InputPin};

    #[test]
    fn clean_fixture_passes() {
        let mut lib = Library::new("l", 1.2);
        lib.add_cell(Cell::test_inverter("INV_X1"));
        assert!(lib.sanity_check().is_empty());
    }

    #[test]
    fn empty_library_flagged() {
        let lib = Library::new("l", 1.2);
        let issues = lib.sanity_check();
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].kind, IssueKind::EmptyLibrary);
        assert!(issues[0].to_string().contains("no cells"));
    }

    #[test]
    fn bad_cap_and_missing_arcs_flagged() {
        let mut lib = Library::new("l", 1.2);
        let mut cell = Cell::test_inverter("INV_X1");
        cell.inputs.push(InputPin { name: "B".into(), capacitance: 0.0 });
        cell.outputs[0].arcs.clear();
        lib.add_cell(cell);
        let issues = lib.sanity_check();
        assert!(issues.iter().any(|i| i.kind == IssueKind::ImplausibleCapacitance));
        assert!(issues.iter().any(|i| i.kind == IssueKind::MissingArcs));
    }

    #[test]
    fn non_monotone_delay_flagged() {
        let mut lib = Library::new("l", 1.2);
        let mut cell = Cell::test_inverter("INV_X1");
        // Make the delay DECREASE with load.
        cell.outputs[0].arcs[0].cell_rise = cell.outputs[0].arcs[0].cell_rise.map(|v| 1e-10 - v);
        lib.add_cell(cell);
        let issues = lib.sanity_check();
        assert!(issues.iter().any(|i| i.kind == IssueKind::NonMonotoneLoad
            && i.detail.contains("not increasing with load")));
    }

    #[test]
    fn slew_decreasing_delay_flagged() {
        let mut lib = Library::new("l", 1.2);
        let mut cell = Cell::test_inverter("INV_X1");
        // The test inverter's tables grow with both axes; invert the slew
        // trend by subtracting a slew-proportional term per row.
        let rise = &cell.outputs[0].arcs[0].cell_rise;
        let slews = rise.slew_axis().to_vec();
        let loads = rise.load_axis().to_vec();
        let mut values = Vec::new();
        for s in &slews {
            for l in &loads {
                values.push(50e-12 - 0.02 * s + 2.0e3 * l);
            }
        }
        cell.outputs[0].arcs[0].cell_rise =
            Table2d::new(slews, loads, values).expect("valid inverted table");
        lib.add_cell(cell);
        let issues = lib.sanity_check();
        assert!(issues.iter().any(|i| i.kind == IssueKind::NonMonotoneSlew
            && i.detail.contains("decreasing with input slew")));
    }

    #[test]
    fn slew_plateau_not_flagged() {
        let mut lib = Library::new("l", 1.2);
        let mut cell = Cell::test_inverter("INV_X1");
        // Identical rows: flat in slew — allowed (plateau, not a decrease).
        let rise = &cell.outputs[0].arcs[0].cell_rise;
        let slews = rise.slew_axis().to_vec();
        let loads = rise.load_axis().to_vec();
        let mut values = Vec::new();
        for _ in &slews {
            for l in &loads {
                values.push(10e-12 + 2.0e3 * l);
            }
        }
        cell.outputs[0].arcs[0].cell_rise =
            Table2d::new(slews.clone(), loads.clone(), values.clone()).expect("valid");
        cell.outputs[0].arcs[0].cell_fall = Table2d::new(slews, loads, values).expect("valid");
        lib.add_cell(cell);
        assert!(!lib.sanity_check().iter().any(|i| i.kind == IssueKind::NonMonotoneSlew));
    }

    #[test]
    fn timeout_value_flagged() {
        let mut lib = Library::new("l", 1.2);
        let mut cell = Cell::test_inverter("INV_X1");
        cell.outputs[0].arcs[0].cell_fall = cell.outputs[0].arcs[0].cell_fall.map(|v| v + 20e-9);
        lib.add_cell(cell);
        let issues = lib.sanity_check();
        assert!(issues.iter().any(|i| i.kind == IssueKind::TimedOut));
    }
}
