//! Merging per-scenario degradation-aware libraries into one *complete*
//! library (paper Sec. 4.1): every cell of every input library is copied
//! with a `_{λp}_{λn}` suffix so a timing tool sees the delay of each cell
//! under every characterized stress case simultaneously.

use crate::Library;

/// The duty-cycle pair identifying one aging stress case of a merged cell,
/// ordered `(λ_pMOS, λ_nMOS)` as in the paper's `AND2_0.4_0.6` example.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LambdaTag {
    /// pMOS duty cycle.
    pub lambda_pmos: f64,
    /// nMOS duty cycle.
    pub lambda_nmos: f64,
}

impl LambdaTag {
    /// Formats the suffix appended to cell names, e.g. `0.40_0.60`.
    #[must_use]
    pub fn suffix(&self) -> String {
        format!("{:.2}_{:.2}", self.lambda_pmos, self.lambda_nmos)
    }
}

/// Merges `(tag, library)` pairs into one complete degradation-aware
/// library named `name`. Each cell `C` of a library tagged `(λp, λn)`
/// becomes `C_{λp:.2}_{λn:.2}`.
///
/// The environment fields (vdd, defaults) are taken from the first library.
///
/// # Panics
///
/// Panics if `parts` is empty.
#[must_use]
pub fn merge_indexed(name: &str, parts: &[(LambdaTag, Library)]) -> Library {
    assert!(!parts.is_empty(), "cannot merge zero libraries");
    let mut merged = Library::new(name, parts[0].1.vdd);
    merged.default_input_slew = parts[0].1.default_input_slew;
    merged.default_output_load = parts[0].1.default_output_load;
    merged.wire_cap_per_fanout = parts[0].1.wire_cap_per_fanout;
    for (tag, lib) in parts {
        for cell in lib.cells() {
            let mut renamed = cell.clone();
            renamed.name = format!("{}_{}", cell.name, tag.suffix());
            merged.add_cell(renamed);
        }
    }
    merged
}

/// Splits a (possibly λ-indexed) cell name into its base name and tag:
/// `"NAND2_X1_0.40_0.60"` → `("NAND2_X1", Some(tag))`; names without a
/// valid numeric double-suffix return `(name, None)`.
#[must_use]
pub fn split_lambda_tag(name: &str) -> (&str, Option<LambdaTag>) {
    let mut parts = name.rsplitn(3, '_');
    let (Some(last), Some(mid), Some(rest)) = (parts.next(), parts.next(), parts.next()) else {
        return (name, None);
    };
    match (mid.parse::<f64>(), last.parse::<f64>()) {
        (Ok(lambda_pmos), Ok(lambda_nmos))
            if (0.0..=1.0).contains(&lambda_pmos) && (0.0..=1.0).contains(&lambda_nmos) =>
        {
            (rest, Some(LambdaTag { lambda_pmos, lambda_nmos }))
        }
        _ => (name, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cell;

    fn lib_with(names: &[&str]) -> Library {
        let mut lib = Library::new("part", 1.2);
        for n in names {
            lib.add_cell(Cell::test_inverter(n));
        }
        lib
    }

    #[test]
    fn merge_renames_cells() {
        let a = lib_with(&["INV_X1", "NAND2_X1"]);
        let b = lib_with(&["INV_X1", "NAND2_X1"]);
        let merged = merge_indexed(
            "complete",
            &[
                (LambdaTag { lambda_pmos: 0.0, lambda_nmos: 0.0 }, a),
                (LambdaTag { lambda_pmos: 1.0, lambda_nmos: 1.0 }, b),
            ],
        );
        assert_eq!(merged.len(), 4);
        assert!(merged.cell("INV_X1_0.00_0.00").is_some());
        assert!(merged.cell("NAND2_X1_1.00_1.00").is_some());
        assert!(merged.cell("INV_X1").is_none());
    }

    #[test]
    fn paper_example_naming() {
        let tag = LambdaTag { lambda_pmos: 0.4, lambda_nmos: 0.6 };
        assert_eq!(tag.suffix(), "0.40_0.60");
    }

    #[test]
    fn split_round_trip() {
        let (base, tag) = split_lambda_tag("NAND2_X1_0.40_0.60");
        assert_eq!(base, "NAND2_X1");
        let tag = tag.unwrap();
        assert!((tag.lambda_pmos - 0.4).abs() < 1e-12);
        assert!((tag.lambda_nmos - 0.6).abs() < 1e-12);
    }

    #[test]
    fn split_rejects_plain_names() {
        assert_eq!(split_lambda_tag("NAND2_X1"), ("NAND2_X1", None));
        assert_eq!(split_lambda_tag("INV"), ("INV", None));
        // Out-of-range numbers are not λ tags.
        assert!(split_lambda_tag("ADDER_3_9").1.is_none());
        // A drive strength is not a λ tag either (X1 does not parse).
        assert!(split_lambda_tag("FOO_X1_0.5").1.is_none());
    }

    #[test]
    #[should_panic(expected = "zero libraries")]
    fn empty_merge_panics() {
        let _ = merge_indexed("x", &[]);
    }
}
