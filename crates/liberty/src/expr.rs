use crate::error::ParseExprError;
use std::collections::BTreeSet;
use std::fmt;

/// A boolean pin-function expression in Liberty syntax.
///
/// Supported operators, in increasing binding strength: `|`/`+` (or),
/// `^` (xor), `&`/`*` (and), `!` (not, prefix), plus parentheses and the
/// constants `0`/`1`. Identifiers are pin names (`A`, `A1`, `CK`…).
///
/// # Example
///
/// ```
/// use liberty::BoolExpr;
///
/// # fn main() -> Result<(), liberty::ParseExprError> {
/// let f = BoolExpr::parse("(A1 & A2) | !B")?;
/// assert!(f.eval(&|pin: &str| pin == "A1" || pin == "A2"));
/// assert!(f.eval(&|_| false)); // !B dominates when everything is 0
/// assert_eq!(f.vars(), ["A1", "A2", "B"].map(String::from).to_vec());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BoolExpr {
    /// Constant 0 or 1.
    Const(bool),
    /// A pin reference.
    Var(String),
    /// Logical negation.
    Not(Box<BoolExpr>),
    /// Conjunction of two or more terms.
    And(Vec<BoolExpr>),
    /// Disjunction of two or more terms.
    Or(Vec<BoolExpr>),
    /// Exclusive or.
    Xor(Box<BoolExpr>, Box<BoolExpr>),
}

impl BoolExpr {
    /// Parses a Liberty-syntax boolean expression.
    ///
    /// # Errors
    ///
    /// Returns [`ParseExprError`] on malformed input (unbalanced
    /// parentheses, dangling operators, illegal characters).
    pub fn parse(text: &str) -> Result<Self, ParseExprError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let e = p.parse_or()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing input"));
        }
        Ok(e)
    }

    /// A variable reference.
    #[must_use]
    pub fn var(name: &str) -> Self {
        BoolExpr::Var(name.to_owned())
    }

    /// Evaluates the expression with `assign` providing each pin's value.
    pub fn eval(&self, assign: &impl Fn(&str) -> bool) -> bool {
        match self {
            BoolExpr::Const(b) => *b,
            BoolExpr::Var(v) => assign(v),
            BoolExpr::Not(e) => !e.eval(assign),
            BoolExpr::And(es) => es.iter().all(|e| e.eval(assign)),
            BoolExpr::Or(es) => es.iter().any(|e| e.eval(assign)),
            BoolExpr::Xor(a, b) => a.eval(assign) ^ b.eval(assign),
        }
    }

    /// The distinct pin names referenced, sorted.
    #[must_use]
    pub fn vars(&self) -> Vec<String> {
        let mut set = BTreeSet::new();
        self.collect_vars(&mut set);
        set.into_iter().collect()
    }

    fn collect_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            BoolExpr::Const(_) => {}
            BoolExpr::Var(v) => {
                out.insert(v.clone());
            }
            BoolExpr::Not(e) => e.collect_vars(out),
            BoolExpr::And(es) | BoolExpr::Or(es) => es.iter().for_each(|e| e.collect_vars(out)),
            BoolExpr::Xor(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Truth table over `inputs` (index 0 = bit 0 of the row index), for up
    /// to 16 inputs; bit `r` of the result word `words[r / 64]` is the
    /// output for input row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() > 16`.
    #[must_use]
    pub fn truth_table(&self, inputs: &[&str]) -> Vec<u64> {
        assert!(inputs.len() <= 16, "truth tables supported up to 16 inputs");
        let rows = 1usize << inputs.len();
        let mut words = vec![0u64; rows.div_ceil(64)];
        for row in 0..rows {
            let value = self.eval(&|pin: &str| {
                inputs.iter().position(|p| *p == pin).is_some_and(|i| row >> i & 1 == 1)
            });
            if value {
                words[row / 64] |= 1 << (row % 64);
            }
        }
        words
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExpr::Const(b) => write!(f, "{}", u8::from(*b)),
            BoolExpr::Var(v) => write!(f, "{v}"),
            BoolExpr::Not(e) => match **e {
                BoolExpr::Var(_) | BoolExpr::Const(_) => write!(f, "!{e}"),
                _ => write!(f, "!({e})"),
            },
            BoolExpr::And(es) => {
                let parts: Vec<String> = es
                    .iter()
                    .map(|e| match e {
                        BoolExpr::Or(_) | BoolExpr::Xor(..) => format!("({e})"),
                        _ => e.to_string(),
                    })
                    .collect();
                write!(f, "{}", parts.join(" & "))
            }
            BoolExpr::Or(es) => {
                let parts: Vec<String> = es.iter().map(ToString::to_string).collect();
                write!(f, "{}", parts.join(" | "))
            }
            BoolExpr::Xor(a, b) => {
                let wrap = |e: &BoolExpr| match e {
                    BoolExpr::Or(_) => format!("({e})"),
                    _ => e.to_string(),
                };
                write!(f, "{} ^ {}", wrap(a), wrap(b))
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> ParseExprError {
        ParseExprError { message: message.to_owned(), position: self.pos }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn parse_or(&mut self) -> Result<BoolExpr, ParseExprError> {
        let mut terms = vec![self.parse_xor()?];
        while matches!(self.peek(), Some(b'|') | Some(b'+')) {
            self.pos += 1;
            terms.push(self.parse_xor()?);
        }
        Ok(if terms.len() == 1 {
            match terms.pop() {
                Some(term) => term,
                None => unreachable!("one term"),
            }
        } else {
            BoolExpr::Or(terms)
        })
    }

    fn parse_xor(&mut self) -> Result<BoolExpr, ParseExprError> {
        let mut e = self.parse_and()?;
        while self.peek() == Some(b'^') {
            self.pos += 1;
            let rhs = self.parse_and()?;
            e = BoolExpr::Xor(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn parse_and(&mut self) -> Result<BoolExpr, ParseExprError> {
        let mut terms = vec![self.parse_unary()?];
        loop {
            match self.peek() {
                Some(b'&') | Some(b'*') => {
                    self.pos += 1;
                    terms.push(self.parse_unary()?);
                }
                // Liberty allows implicit AND by juxtaposition: `A B`.
                Some(c) if c == b'(' || c == b'!' || is_ident_start(c) => {
                    terms.push(self.parse_unary()?);
                }
                _ => break,
            }
        }
        Ok(if terms.len() == 1 {
            match terms.pop() {
                Some(term) => term,
                None => unreachable!("one term"),
            }
        } else {
            BoolExpr::And(terms)
        })
    }

    fn parse_unary(&mut self) -> Result<BoolExpr, ParseExprError> {
        match self.peek() {
            Some(b'!') => {
                self.pos += 1;
                Ok(BoolExpr::Not(Box::new(self.parse_unary()?)))
            }
            Some(b'(') => {
                self.pos += 1;
                let e = self.parse_or()?;
                if self.peek() != Some(b')') {
                    return Err(self.error("expected ')'"));
                }
                self.pos += 1;
                self.parse_postfix_not(e)
            }
            Some(b'0') => {
                self.pos += 1;
                Ok(BoolExpr::Const(false))
            }
            Some(b'1') => {
                self.pos += 1;
                Ok(BoolExpr::Const(true))
            }
            Some(c) if is_ident_start(c) => {
                let start = self.pos;
                while self.pos < self.bytes.len() && is_ident_char(self.bytes[self.pos]) {
                    self.pos += 1;
                }
                let name = match std::str::from_utf8(&self.bytes[start..self.pos]) {
                    Ok(s) => s.to_owned(),
                    Err(_) => unreachable!("identifier bytes are ASCII"),
                };
                self.parse_postfix_not(BoolExpr::Var(name))
            }
            _ => Err(self.error("expected operand")),
        }
    }

    /// Liberty also permits a postfix `'` for negation (`A'`).
    fn parse_postfix_not(&mut self, e: BoolExpr) -> Result<BoolExpr, ParseExprError> {
        let mut e = e;
        while self.bytes.get(self.pos) == Some(&b'\'') {
            self.pos += 1;
            e = BoolExpr::Not(Box::new(e));
        }
        Ok(e)
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c == b'.'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assign<'a>(pairs: &'a [(&'a str, bool)]) -> impl Fn(&str) -> bool + 'a {
        move |pin: &str| pairs.iter().find(|(p, _)| *p == pin).is_some_and(|(_, v)| *v)
    }

    #[test]
    fn parse_and_eval_basic_gates() {
        let nand = BoolExpr::parse("!(A1 & A2)").unwrap();
        assert!(nand.eval(&assign(&[("A1", true), ("A2", false)])));
        assert!(!nand.eval(&assign(&[("A1", true), ("A2", true)])));

        let nor = BoolExpr::parse("!(A1 | A2)").unwrap();
        assert!(nor.eval(&assign(&[])));
        assert!(!nor.eval(&assign(&[("A2", true)])));

        let xor = BoolExpr::parse("A ^ B").unwrap();
        assert!(xor.eval(&assign(&[("A", true)])));
        assert!(!xor.eval(&assign(&[("A", true), ("B", true)])));
    }

    #[test]
    fn alternative_operator_spellings() {
        let e1 = BoolExpr::parse("A * B + C").unwrap();
        let e2 = BoolExpr::parse("A & B | C").unwrap();
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let pairs = [("A", a), ("B", b), ("C", c)];
                    let f = assign(&pairs);
                    assert_eq!(e1.eval(&f), e2.eval(&f));
                }
            }
        }
    }

    #[test]
    fn postfix_negation_and_juxtaposition() {
        let e = BoolExpr::parse("A B'").unwrap(); // A & !B
        assert!(e.eval(&assign(&[("A", true)])));
        assert!(!e.eval(&assign(&[("A", true), ("B", true)])));
        let g = BoolExpr::parse("(A | B)'").unwrap();
        assert!(g.eval(&assign(&[])));
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let e = BoolExpr::parse("A | B & C").unwrap();
        assert!(e.eval(&assign(&[("A", true)])));
        assert!(!e.eval(&assign(&[("B", true)])));
        assert!(e.eval(&assign(&[("B", true), ("C", true)])));
    }

    #[test]
    fn constants() {
        assert!(BoolExpr::parse("1").unwrap().eval(&assign(&[])));
        assert!(!BoolExpr::parse("0").unwrap().eval(&assign(&[])));
    }

    #[test]
    fn parse_errors() {
        assert!(BoolExpr::parse("").is_err());
        assert!(BoolExpr::parse("A &").is_err());
        assert!(BoolExpr::parse("(A").is_err());
        assert!(BoolExpr::parse("A ) B").is_err());
        assert!(BoolExpr::parse("#").is_err());
    }

    #[test]
    fn vars_sorted_unique() {
        let e = BoolExpr::parse("B & A | B & C").unwrap();
        assert_eq!(e.vars(), vec!["A".to_owned(), "B".to_owned(), "C".to_owned()]);
    }

    #[test]
    fn display_round_trip() {
        for text in ["!(A1 & A2)", "A ^ B", "(A & B) | (!A & !B)", "!(S & A | !S & B)", "1"] {
            let e = BoolExpr::parse(text).unwrap();
            let rendered = e.to_string();
            let back = BoolExpr::parse(&rendered).unwrap();
            let vars = e.vars();
            let names: Vec<&str> = vars.iter().map(String::as_str).collect();
            assert_eq!(e.truth_table(&names), back.truth_table(&names), "{text} vs {rendered}");
        }
    }

    #[test]
    fn truth_table_small() {
        let and2 = BoolExpr::parse("A & B").unwrap();
        assert_eq!(and2.truth_table(&["A", "B"]), vec![0b1000]);
        let or2 = BoolExpr::parse("A | B").unwrap();
        assert_eq!(or2.truth_table(&["A", "B"]), vec![0b1110]);
        let inv = BoolExpr::parse("!A").unwrap();
        assert_eq!(inv.truth_table(&["A"]), vec![0b01]);
    }

    #[test]
    fn truth_table_more_than_six_inputs() {
        let vars: Vec<String> = (0..7).map(|i| format!("I{i}")).collect();
        let names: Vec<&str> = vars.iter().map(String::as_str).collect();
        let e = BoolExpr::And(vars.iter().map(|v| BoolExpr::var(v)).collect());
        let tt = e.truth_table(&names);
        assert_eq!(tt.len(), 2);
        assert_eq!(tt[0], 0);
        assert_eq!(tt[1], 1 << 63);
    }
}
