#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! NLDM timing-library model with a Liberty-subset text format.
//!
//! This crate plays the role of the Liberty (`.lib`) infrastructure in the
//! paper's flow: non-linear delay-model lookup tables indexed by input slew
//! and output load (the *operating conditions*, OPCs, central to the paper),
//! cells with per-arc rise/fall delay and output-slew tables, boolean pin
//! functions, and the merge/index scheme of Sec. 4.1 that combines the
//! per-(λp, λn) degradation-aware libraries into one *complete* library with
//! cells renamed like `NAND2_X1_0.40_0.60`.
//!
//! A writer and parser for a Liberty-style text subset make libraries
//! persistent — characterized libraries are cached on disk in this format.
//!
//! # Example
//!
//! ```
//! use liberty::{BoolExpr, Table2d};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let f = BoolExpr::parse("!(A1 & A2)")?; // a NAND2
//! assert!(f.eval(&|pin: &str| pin == "A1")); // A1=1, A2=0 → Y=1
//!
//! let t = Table2d::new(
//!     vec![5e-12, 100e-12],
//!     vec![0.5e-15, 20e-15],
//!     vec![10e-12, 30e-12, 15e-12, 45e-12],
//! )?;
//! let mid = t.value(50e-12, 10e-15);
//! assert!(mid > 10e-12 && mid < 45e-12);
//! # Ok(())
//! # }
//! ```

mod cell;
mod check;
mod error;
mod expr;
mod format;
mod merge;
mod table;

pub use cell::{Cell, CellClass, InputPin, OutputPin, TimingArc, TimingSense};
pub use check::{IssueKind, LibraryIssue};
pub use error::{LibertyError, ParseExprError, TableError};
pub use expr::BoolExpr;
pub use format::{parse_library, write_library};
pub use merge::{merge_indexed, split_lambda_tag, LambdaTag};
pub use table::Table2d;

use std::collections::BTreeMap;

/// A timing library: a named set of characterized cells plus the shared
/// environment (supply voltage, default slew/load assumptions, a simple
/// per-fanout wire-load model).
///
/// Cells are stored by exact name; degradation-aware merged libraries store
/// many λ-indexed variants of each base cell (see [`merge_indexed`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Library {
    /// Library name, e.g. `aged_1.00_1.00`.
    pub name: String,
    /// Supply voltage the cells were characterized at.
    pub vdd: f64,
    /// Input slew assumed at primary inputs during STA (seconds).
    pub default_input_slew: f64,
    /// Load assumed at primary outputs during STA (farad).
    pub default_output_load: f64,
    /// Extra wire capacitance added per fanout pin (farad) — a minimal
    /// wire-load model.
    pub wire_cap_per_fanout: f64,
    cells: BTreeMap<String, Cell>,
}

impl Library {
    /// Creates an empty library named `name`, characterized at `vdd`.
    #[must_use]
    pub fn new(name: &str, vdd: f64) -> Self {
        Library {
            name: name.to_owned(),
            vdd,
            default_input_slew: 20.0e-12,
            default_output_load: 4.0e-15,
            wire_cap_per_fanout: 0.2e-15,
            cells: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) a cell, returning the previous cell of that name.
    pub fn add_cell(&mut self, cell: Cell) -> Option<Cell> {
        self.cells.insert(cell.name.clone(), cell)
    }

    /// Looks up a cell by exact name.
    #[must_use]
    pub fn cell(&self, name: &str) -> Option<&Cell> {
        self.cells.get(name)
    }

    /// Iterates over all cells in name order.
    pub fn cells(&self) -> impl Iterator<Item = &Cell> {
        self.cells.values()
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the library has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// All cells whose λ-stripped base name equals `base` (see
    /// [`split_lambda_tag`]); used on merged complete libraries.
    pub fn cells_with_base<'a>(&'a self, base: &'a str) -> impl Iterator<Item = &'a Cell> + 'a {
        self.cells.values().filter(move |c| split_lambda_tag(&c.name).0 == base)
    }

    /// Removes a cell by name.
    pub fn remove_cell(&mut self, name: &str) -> Option<Cell> {
        self.cells.remove(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_library() {
        let lib = Library::new("test", 1.2);
        assert!(lib.is_empty());
        assert_eq!(lib.len(), 0);
        assert_eq!(lib.cell("INV_X1"), None);
    }

    #[test]
    fn add_and_lookup() {
        let mut lib = Library::new("test", 1.2);
        lib.add_cell(Cell::test_inverter("INV_X1"));
        assert_eq!(lib.len(), 1);
        assert!(lib.cell("INV_X1").is_some());
        assert!(!lib.is_empty());
        let replaced = lib.add_cell(Cell::test_inverter("INV_X1"));
        assert!(replaced.is_some());
        assert_eq!(lib.len(), 1);
    }

    #[test]
    fn base_name_filter() {
        let mut lib = Library::new("merged", 1.2);
        lib.add_cell(Cell::test_inverter("INV_X1_0.00_0.00"));
        lib.add_cell(Cell::test_inverter("INV_X1_1.00_1.00"));
        lib.add_cell(Cell::test_inverter("INV_X2_1.00_1.00"));
        assert_eq!(lib.cells_with_base("INV_X1").count(), 2);
        assert_eq!(lib.cells_with_base("INV_X2").count(), 1);
        assert_eq!(lib.cells_with_base("NAND2_X1").count(), 0);
    }
}
