//! Writer and parser for a Liberty-style text subset.
//!
//! The subset keeps Liberty's surface syntax — nested `group (args) { … }`
//! blocks, `attribute : value;` statements, quoted index/value arrays — but
//! fixes the schema to what this repository produces. All physical values
//! are written in SI base units (seconds, farad, volt); `time_unit`/
//! `capacitive_load_unit` headers record that choice.
//!
//! Characterized degradation-aware libraries are persisted in this format,
//! which makes them directly inspectable and diffable.

use crate::cell::{Cell, CellClass, InputPin, OutputPin, TimingArc, TimingSense};
use crate::error::LibertyError;
use crate::expr::BoolExpr;
use crate::table::Table2d;
use crate::Library;
use std::fmt::Write as _;

/// Serializes `lib` to the Liberty-subset text format.
#[must_use]
pub fn write_library(lib: &Library) -> String {
    let mut out = String::with_capacity(4096 + lib.len() * 2048);
    let _ = writeln!(out, "library ({}) {{", lib.name);
    let _ = writeln!(out, "  time_unit : \"1s\";");
    let _ = writeln!(out, "  capacitive_load_unit : \"1F\";");
    let _ = writeln!(out, "  nom_voltage : {};", fmt_num(lib.vdd));
    let _ = writeln!(out, "  default_input_slew : {};", fmt_num(lib.default_input_slew));
    let _ = writeln!(out, "  default_output_load : {};", fmt_num(lib.default_output_load));
    let _ = writeln!(out, "  wire_cap_per_fanout : {};", fmt_num(lib.wire_cap_per_fanout));
    for cell in lib.cells() {
        write_cell(&mut out, cell);
    }
    out.push_str("}\n");
    out
}

fn write_cell(out: &mut String, cell: &Cell) {
    let _ = writeln!(out, "  cell ({}) {{", cell.name);
    let _ = writeln!(out, "    area : {};", fmt_num(cell.area));
    if let CellClass::Flop { clock, data, setup, hold } = &cell.class {
        let _ = writeln!(out, "    ff (IQ) {{");
        let _ = writeln!(out, "      clocked_on : \"{clock}\";");
        let _ = writeln!(out, "      next_state : \"{data}\";");
        let _ = writeln!(out, "      setup : {};", fmt_num(*setup));
        let _ = writeln!(out, "      hold : {};", fmt_num(*hold));
        let _ = writeln!(out, "    }}");
    }
    for pin in &cell.inputs {
        let _ = writeln!(out, "    pin ({}) {{", pin.name);
        let _ = writeln!(out, "      direction : input;");
        let _ = writeln!(out, "      capacitance : {};", fmt_num(pin.capacitance));
        let _ = writeln!(out, "    }}");
    }
    for pin in &cell.outputs {
        let _ = writeln!(out, "    pin ({}) {{", pin.name);
        let _ = writeln!(out, "      direction : output;");
        let _ = writeln!(out, "      function : \"{}\";", pin.function);
        let _ = writeln!(out, "      max_capacitance : {};", fmt_num(pin.max_capacitance));
        for arc in &pin.arcs {
            let _ = writeln!(out, "      timing () {{");
            let _ = writeln!(out, "        related_pin : \"{}\";", arc.related_pin);
            let _ = writeln!(out, "        timing_sense : {};", arc.sense.as_liberty());
            write_table(out, "cell_rise", &arc.cell_rise);
            write_table(out, "cell_fall", &arc.cell_fall);
            write_table(out, "rise_transition", &arc.rise_transition);
            write_table(out, "fall_transition", &arc.fall_transition);
            let _ = writeln!(out, "      }}");
        }
        let _ = writeln!(out, "    }}");
    }
    let _ = writeln!(out, "  }}");
}

fn write_table(out: &mut String, kind: &str, t: &Table2d) {
    let _ = writeln!(out, "        {kind} (lut) {{");
    let _ = writeln!(out, "          index_1 (\"{}\");", join_nums(t.slew_axis()));
    let _ = writeln!(out, "          index_2 (\"{}\");", join_nums(t.load_axis()));
    let rows: Vec<String> = t
        .slew_axis()
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let row: Vec<f64> = (0..t.load_axis().len()).map(|j| t.at(i, j)).collect();
            format!("\"{}\"", join_nums(&row))
        })
        .collect();
    let _ = writeln!(out, "          values ({});", rows.join(", "));
    let _ = writeln!(out, "        }}");
}

fn fmt_num(v: f64) -> String {
    // Shortest representation that round-trips through f64.
    format!("{v:e}")
}

fn join_nums(vals: &[f64]) -> String {
    vals.iter().map(|v| fmt_num(*v)).collect::<Vec<_>>().join(", ")
}

// ---------------------------------------------------------------------------
// Parsing: tokenizer → generic group tree → typed library.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Punct(u8),
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(text: &'a str) -> Self {
        Lexer { bytes: text.as_bytes(), pos: 0, line: 1 }
    }

    fn error(&self, message: impl Into<String>) -> LibertyError {
        LibertyError::Syntax { line: self.line, message: message.into() }
    }

    fn next_token(&mut self) -> Result<Option<(Token, usize)>, LibertyError> {
        loop {
            while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
                if self.bytes[self.pos] == b'\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
            // Comments: /* … */ and // … and Liberty's \-newline continuation.
            if self.bytes[self.pos..].starts_with(b"/*") {
                let mut i = self.pos + 2;
                while i + 1 < self.bytes.len()
                    && !(self.bytes[i] == b'*' && self.bytes[i + 1] == b'/')
                {
                    if self.bytes[i] == b'\n' {
                        self.line += 1;
                    }
                    i += 1;
                }
                if i + 1 >= self.bytes.len() {
                    return Err(self.error("unterminated comment"));
                }
                self.pos = i + 2;
                continue;
            }
            if self.bytes[self.pos..].starts_with(b"//") {
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
                continue;
            }
            if self.bytes.get(self.pos) == Some(&b'\\') {
                self.pos += 1;
                continue;
            }
            break;
        }
        let Some(&c) = self.bytes.get(self.pos) else {
            return Ok(None);
        };
        let line = self.line;
        if c == b'"' {
            let start = self.pos + 1;
            let mut i = start;
            while i < self.bytes.len() && self.bytes[i] != b'"' {
                if self.bytes[i] == b'\n' {
                    self.line += 1;
                }
                i += 1;
            }
            if i >= self.bytes.len() {
                return Err(self.error("unterminated string"));
            }
            let s = std::str::from_utf8(&self.bytes[start..i])
                .map_err(|_| self.error("non-UTF8 string"))?
                .to_owned();
            self.pos = i + 1;
            return Ok(Some((Token::Str(s), line)));
        }
        if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'+' || c == b'.' {
            let start = self.pos;
            let mut i = self.pos;
            while i < self.bytes.len() {
                let b = self.bytes[i];
                if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'+' | b'.' | b'!') {
                    i += 1;
                } else {
                    break;
                }
            }
            let s = std::str::from_utf8(&self.bytes[start..i])
                .map_err(|_| self.error("non-UTF8 identifier"))?
                .to_owned();
            self.pos = i;
            return Ok(Some((Token::Ident(s), line)));
        }
        if matches!(c, b'(' | b')' | b'{' | b'}' | b':' | b';' | b',') {
            self.pos += 1;
            return Ok(Some((Token::Punct(c), line)));
        }
        Err(self.error(format!("unexpected character '{}'", c as char)))
    }
}

/// A generic parsed Liberty statement tree.
#[derive(Debug, Clone, PartialEq)]
struct Group {
    name: String,
    args: Vec<String>,
    attrs: Vec<(String, String)>,
    /// Complex attributes: `name (arg, arg, …);`
    complex: Vec<(String, Vec<String>)>,
    children: Vec<Group>,
    line: usize,
}

impl Group {
    fn attr(&self, name: &str) -> Option<&str> {
        self.attrs.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    fn require_attr(&self, name: &str) -> Result<&str, LibertyError> {
        self.attr(name).ok_or_else(|| {
            LibertyError::Semantic(format!("group '{}' missing attribute '{name}'", self.name))
        })
    }

    fn complex_args(&self, name: &str) -> Option<&[String]> {
        self.complex.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_slice())
    }

    fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Group> + 'a {
        self.children.iter().filter(move |g| g.name == name)
    }
}

struct GroupParser<'a> {
    lexer: Lexer<'a>,
    lookahead: Option<(Token, usize)>,
}

impl<'a> GroupParser<'a> {
    fn new(text: &'a str) -> Self {
        GroupParser { lexer: Lexer::new(text), lookahead: None }
    }

    fn peek(&mut self) -> Result<Option<&(Token, usize)>, LibertyError> {
        if self.lookahead.is_none() {
            self.lookahead = self.lexer.next_token()?;
        }
        Ok(self.lookahead.as_ref())
    }

    fn next(&mut self) -> Result<Option<(Token, usize)>, LibertyError> {
        if let Some(t) = self.lookahead.take() {
            return Ok(Some(t));
        }
        self.lexer.next_token()
    }

    fn expect_punct(&mut self, p: u8) -> Result<usize, LibertyError> {
        match self.next()? {
            Some((Token::Punct(c), line)) if c == p => Ok(line),
            Some((t, line)) => Err(LibertyError::Syntax {
                line,
                message: format!("expected '{}', got {t:?}", p as char),
            }),
            None => Err(LibertyError::Syntax {
                line: self.lexer.line,
                message: format!("expected '{}', got end of input", p as char),
            }),
        }
    }

    /// Parses one `name (args) { body }` group, assuming the name token has
    /// already been consumed.
    fn parse_group_after_name(&mut self, name: String, line: usize) -> Result<Group, LibertyError> {
        let mut group = Group {
            name,
            args: Vec::new(),
            attrs: Vec::new(),
            complex: Vec::new(),
            children: Vec::new(),
            line,
        };
        self.expect_punct(b'(')?;
        loop {
            match self.next()? {
                Some((Token::Punct(b')'), _)) => break,
                Some((Token::Punct(b','), _)) => {}
                Some((Token::Ident(s), _)) | Some((Token::Str(s), _)) => group.args.push(s),
                Some((t, l)) => {
                    return Err(LibertyError::Syntax {
                        line: l,
                        message: format!("bad group arg {t:?}"),
                    })
                }
                None => {
                    return Err(LibertyError::Syntax {
                        line: self.lexer.line,
                        message: "unexpected end of input in group args".into(),
                    })
                }
            }
        }
        self.expect_punct(b'{')?;
        self.parse_body(&mut group)?;
        Ok(group)
    }

    fn parse_body(&mut self, group: &mut Group) -> Result<(), LibertyError> {
        loop {
            match self.next()? {
                Some((Token::Punct(b'}'), _)) => return Ok(()),
                Some((Token::Punct(b';'), _)) => {}
                Some((Token::Ident(name), line)) => match self.peek()? {
                    Some((Token::Punct(b':'), _)) => {
                        let _ = self.next()?;
                        let value = match self.next()? {
                            Some((Token::Ident(v), _)) | Some((Token::Str(v), _)) => v,
                            other => {
                                return Err(LibertyError::Syntax {
                                    line,
                                    message: format!("bad attribute value {other:?}"),
                                })
                            }
                        };
                        self.expect_punct(b';')?;
                        group.attrs.push((name, value));
                    }
                    Some((Token::Punct(b'('), _)) => {
                        // Either a nested group or a complex attribute.
                        // Decide by what follows the closing paren.
                        let saved_name = name;
                        let mut args = Vec::new();
                        let _ = self.next()?; // consume '('
                        loop {
                            match self.next()? {
                                Some((Token::Punct(b')'), _)) => break,
                                Some((Token::Punct(b','), _)) => {}
                                Some((Token::Ident(s), _)) | Some((Token::Str(s), _)) => {
                                    args.push(s);
                                }
                                other => {
                                    return Err(LibertyError::Syntax {
                                        line,
                                        message: format!("bad argument {other:?}"),
                                    })
                                }
                            }
                        }
                        match self.peek()? {
                            Some((Token::Punct(b'{'), _)) => {
                                let _ = self.next()?;
                                let mut child = Group {
                                    name: saved_name,
                                    args,
                                    attrs: Vec::new(),
                                    complex: Vec::new(),
                                    children: Vec::new(),
                                    line,
                                };
                                self.parse_body(&mut child)?;
                                group.children.push(child);
                            }
                            _ => {
                                // complex attribute; optional trailing ';'
                                if matches!(self.peek()?, Some((Token::Punct(b';'), _))) {
                                    let _ = self.next()?;
                                }
                                group.complex.push((saved_name, args));
                            }
                        }
                    }
                    other => {
                        return Err(LibertyError::Syntax {
                            line,
                            message: format!("expected ':' or '(' after '{name}', got {other:?}"),
                        })
                    }
                },
                Some((t, line)) => {
                    return Err(LibertyError::Syntax {
                        line,
                        message: format!("unexpected token {t:?}"),
                    })
                }
                None => {
                    return Err(LibertyError::Syntax {
                        line: self.lexer.line,
                        message: "unexpected end of input (missing '}')".into(),
                    })
                }
            }
        }
    }
}

/// Parses a library previously produced by [`write_library`] (or compatible
/// hand-written text).
///
/// # Errors
///
/// Returns [`LibertyError`] on lexical, structural or semantic problems.
pub fn parse_library(text: &str) -> Result<Library, LibertyError> {
    let mut parser = GroupParser::new(text);
    let root = match parser.next()? {
        Some((Token::Ident(name), line)) if name == "library" => {
            parser.parse_group_after_name(name, line)?
        }
        other => {
            return Err(LibertyError::Syntax {
                line: 1,
                message: format!("expected 'library', got {other:?}"),
            })
        }
    };
    let name = root.args.first().cloned().unwrap_or_else(|| "unnamed".to_owned());
    let vdd = parse_num(root.attr("nom_voltage").unwrap_or("1.2"))?;
    let mut lib = Library::new(&name, vdd);
    if let Some(v) = root.attr("default_input_slew") {
        lib.default_input_slew = parse_num(v)?;
    }
    if let Some(v) = root.attr("default_output_load") {
        lib.default_output_load = parse_num(v)?;
    }
    if let Some(v) = root.attr("wire_cap_per_fanout") {
        lib.wire_cap_per_fanout = parse_num(v)?;
    }
    for cg in root.children_named("cell") {
        lib.add_cell(parse_cell(cg)?);
    }
    Ok(lib)
}

fn parse_cell(g: &Group) -> Result<Cell, LibertyError> {
    let name = g
        .args
        .first()
        .cloned()
        .ok_or_else(|| LibertyError::Semantic("cell without a name".into()))?;
    let area = parse_num(g.require_attr("area")?)?;
    let mut class = CellClass::Combinational;
    if let Some(ff) = g.children_named("ff").next() {
        class = CellClass::Flop {
            clock: ff.require_attr("clocked_on")?.to_owned(),
            data: ff.require_attr("next_state")?.to_owned(),
            setup: parse_num(ff.attr("setup").unwrap_or("0"))?,
            hold: parse_num(ff.attr("hold").unwrap_or("0"))?,
        };
    }
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    for pg in g.children_named("pin") {
        let pin_name = pg
            .args
            .first()
            .cloned()
            .ok_or_else(|| LibertyError::Semantic(format!("unnamed pin in cell {name}")))?;
        match pg.attr("direction") {
            Some("input") => inputs.push(InputPin {
                name: pin_name,
                capacitance: parse_num(pg.require_attr("capacitance")?)?,
            }),
            Some("output") => {
                let function = BoolExpr::parse(pg.require_attr("function")?)?;
                let max_capacitance = parse_num(pg.attr("max_capacitance").unwrap_or("1e-13"))?;
                let mut arcs = Vec::new();
                for tg in pg.children_named("timing") {
                    arcs.push(parse_arc(tg)?);
                }
                outputs.push(OutputPin { name: pin_name, function, max_capacitance, arcs });
            }
            other => {
                return Err(LibertyError::Semantic(format!(
                    "pin {pin_name} of cell {name} has invalid direction {other:?}"
                )))
            }
        }
    }
    Ok(Cell { name, area, class, inputs, outputs })
}

fn parse_arc(g: &Group) -> Result<TimingArc, LibertyError> {
    let related_pin = g.require_attr("related_pin")?.to_owned();
    let sense = TimingSense::from_liberty(g.require_attr("timing_sense")?)
        .ok_or_else(|| LibertyError::Semantic("invalid timing_sense".into()))?;
    let table = |kind: &str| -> Result<Table2d, LibertyError> {
        let tg = g
            .children_named(kind)
            .next()
            .ok_or_else(|| LibertyError::Semantic(format!("timing group missing {kind}")))?;
        parse_table(tg)
    };
    Ok(TimingArc {
        related_pin,
        sense,
        cell_rise: table("cell_rise")?,
        cell_fall: table("cell_fall")?,
        rise_transition: table("rise_transition")?,
        fall_transition: table("fall_transition")?,
    })
}

fn parse_table(g: &Group) -> Result<Table2d, LibertyError> {
    let idx1 = g
        .complex_args("index_1")
        .ok_or_else(|| LibertyError::Semantic("table missing index_1".into()))?;
    let idx2 = g
        .complex_args("index_2")
        .ok_or_else(|| LibertyError::Semantic("table missing index_2".into()))?;
    let rows = g
        .complex_args("values")
        .ok_or_else(|| LibertyError::Semantic("table missing values".into()))?;
    let slew_axis = parse_num_list(idx1)?;
    let load_axis = parse_num_list(idx2)?;
    let mut values = Vec::with_capacity(slew_axis.len() * load_axis.len());
    for row in rows {
        values.extend(parse_num_list(std::slice::from_ref(row))?);
    }
    Ok(Table2d::new(slew_axis, load_axis, values)?)
}

fn parse_num_list(args: &[String]) -> Result<Vec<f64>, LibertyError> {
    let mut out = Vec::new();
    for arg in args {
        for piece in arg.split(',') {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            out.push(parse_num(piece)?);
        }
    }
    Ok(out)
}

fn parse_num(s: &str) -> Result<f64, LibertyError> {
    s.trim().parse::<f64>().map_err(|_| LibertyError::Semantic(format!("invalid number '{s}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn library_fixture() -> Library {
        let mut lib = Library::new("fixture", 1.2);
        lib.default_input_slew = 25e-12;
        lib.wire_cap_per_fanout = 0.3e-15;
        lib.add_cell(Cell::test_inverter("INV_X1"));
        let mut dff = Cell::test_inverter("DFF_X1");
        dff.class =
            CellClass::Flop { clock: "CK".into(), data: "D".into(), setup: 30e-12, hold: 5e-12 };
        lib.add_cell(dff);
        lib
    }

    #[test]
    fn round_trip_exact() {
        let lib = library_fixture();
        let text = write_library(&lib);
        let parsed = parse_library(&text).expect("round trip parses");
        assert_eq!(parsed, lib);
    }

    #[test]
    fn parses_comments_and_whitespace() {
        let lib = library_fixture();
        let mut text = write_library(&lib);
        text = text.replace("area :", "/* layout */ area :");
        text.insert_str(0, "// generated\n");
        let parsed = parse_library(&text).expect("tolerates comments");
        assert_eq!(parsed.len(), lib.len());
    }

    #[test]
    fn syntax_errors_have_lines() {
        let text = "library (x) {\n  cell (INV) {\n    area 0.8;\n  }\n}";
        match parse_library(text) {
            Err(LibertyError::Syntax { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn missing_table_is_semantic_error() {
        let text = r#"library (x) {
  cell (INV) {
    area : 1;
    pin (A) { direction : input; capacitance : 1e-15; }
    pin (Y) {
      direction : output;
      function : "!A";
      timing () { related_pin : "A"; timing_sense : negative_unate; }
    }
  }
}"#;
        assert!(matches!(parse_library(text), Err(LibertyError::Semantic(_))));
    }

    #[test]
    fn unterminated_string_reported() {
        let text = "library (x) { cell (C) { area : \"1";
        assert!(parse_library(text).is_err());
    }

    #[test]
    fn flop_metadata_round_trips() {
        let lib = library_fixture();
        let parsed = parse_library(&write_library(&lib)).unwrap();
        match &parsed.cell("DFF_X1").unwrap().class {
            CellClass::Flop { clock, data, setup, hold } => {
                assert_eq!(clock, "CK");
                assert_eq!(data, "D");
                assert!((setup - 30e-12).abs() < 1e-18);
                assert!((hold - 5e-12).abs() < 1e-18);
            }
            CellClass::Combinational => panic!("lost flop class"),
        }
    }

    #[test]
    fn empty_library_round_trips() {
        let lib = Library::new("empty", 1.0);
        let parsed = parse_library(&write_library(&lib)).unwrap();
        assert!(parsed.is_empty());
        assert_eq!(parsed.name, "empty");
    }
}
