//! Property-based tests: table interpolation invariants and library
//! round-tripping through the Liberty-subset text format.

use liberty::{
    merge_indexed, parse_library, split_lambda_tag, write_library, BoolExpr, Cell, CellClass,
    InputPin, LambdaTag, Library, OutputPin, Table2d, TimingArc, TimingSense,
};
use proptest::prelude::*;

fn axis(max_len: usize, scale: f64) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(1.0f64..1000.0, 1..=max_len).prop_map(move |mut v| {
        v.sort_by(f64::total_cmp);
        v.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        let mut acc = 0.0;
        v.iter_mut()
            .map(|x| {
                acc += *x * scale;
                acc
            })
            .collect()
    })
}

fn table() -> impl Strategy<Value = Table2d> {
    (axis(7, 1e-12), axis(7, 1e-15)).prop_flat_map(|(slews, loads)| {
        let n = slews.len() * loads.len();
        prop::collection::vec(1e-12f64..1e-9, n).prop_map(move |values| {
            Table2d::new(slews.clone(), loads.clone(), values).expect("valid")
        })
    })
}

proptest! {
    /// Inside the grid, bilinear interpolation is bounded by the extreme
    /// table entries.
    #[test]
    fn interpolation_bounded(t in table(), fs in 0.0f64..1.0, fl in 0.0f64..1.0) {
        let s0 = t.slew_axis()[0];
        let s1 = *t.slew_axis().last().unwrap();
        let l0 = t.load_axis()[0];
        let l1 = *t.load_axis().last().unwrap();
        let v = t.value(s0 + fs * (s1 - s0), l0 + fl * (l1 - l0));
        prop_assert!(v >= t.min_value() - 1e-18);
        prop_assert!(v <= t.max_value() + 1e-18);
    }

    /// Lookup at grid points returns the stored values exactly (within fp).
    #[test]
    fn grid_points_exact(t in table()) {
        for (i, &s) in t.slew_axis().iter().enumerate() {
            for (j, &l) in t.load_axis().iter().enumerate() {
                let v = t.value(s, l);
                prop_assert!((v - t.at(i, j)).abs() <= 1e-9 * t.at(i, j).abs() + 1e-21);
            }
        }
    }

    /// Collapsing to a single OPC yields a constant table.
    #[test]
    fn collapse_is_constant(t in table(), s in 0.0f64..1e-8, l in 0.0f64..1e-13) {
        let c = t.collapsed_to(s, l);
        prop_assert_eq!(c.values().len(), 1);
        prop_assert_eq!(c.value(0.0, 0.0), c.value(1.0, 1.0));
    }

    /// Libraries round-trip exactly through write → parse.
    #[test]
    fn library_text_round_trip(
        tables in prop::collection::vec(table(), 1..4),
        area in 0.1f64..50.0,
        seq in any::<bool>(),
    ) {
        let mut lib = Library::new("prop", 1.2);
        for (k, t) in tables.into_iter().enumerate() {
            let name = format!("CELL{k}_X1");
            let mut cell = Cell {
                name: name.clone(),
                area,
                class: CellClass::Combinational,
                inputs: vec![InputPin { name: "A".into(), capacitance: 1e-15 * (k + 1) as f64 }],
                outputs: vec![OutputPin {
                    name: "Y".into(),
                    function: BoolExpr::parse("!A").unwrap(),
                    max_capacitance: 3e-14,
                    arcs: vec![TimingArc {
                        related_pin: "A".into(),
                        sense: TimingSense::NegativeUnate,
                        cell_rise: t.clone(),
                        cell_fall: t.map(|v| v * 1.1),
                        rise_transition: t.map(|v| v * 0.5),
                        fall_transition: t.map(|v| v * 0.4),
                    }],
                }],
            };
            if seq && k == 0 {
                cell.class = CellClass::Flop {
                    clock: "CK".into(),
                    data: "D".into(),
                    setup: 3e-11,
                    hold: 2e-12,
                };
            }
            lib.add_cell(cell);
        }
        let parsed = parse_library(&write_library(&lib)).expect("round trip");
        prop_assert_eq!(parsed, lib);
    }

    /// λ-tag naming round-trips through merge and split.
    #[test]
    fn lambda_tag_round_trip(p in 0u32..=10, n in 0u32..=10) {
        let tag = LambdaTag {
            lambda_pmos: f64::from(p) / 10.0,
            lambda_nmos: f64::from(n) / 10.0,
        };
        let mut lib = Library::new("one", 1.2);
        lib.add_cell(Cell::test_inverter("NAND2_X1"));
        let merged = merge_indexed("m", &[(tag, lib)]);
        let merged_name = merged.cells().next().unwrap().name.clone();
        let (base, parsed) = split_lambda_tag(&merged_name);
        prop_assert_eq!(base, "NAND2_X1");
        let parsed = parsed.expect("tag parses");
        prop_assert!((parsed.lambda_pmos - tag.lambda_pmos).abs() < 5e-3);
        prop_assert!((parsed.lambda_nmos - tag.lambda_nmos).abs() < 5e-3);
    }
}
