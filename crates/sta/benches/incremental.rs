//! Criterion benchmark: full re-analysis versus an incremental single-cell
//! change on the same pseudo-random inverter DAGs the `arrival` benchmark
//! uses. The incremental engine re-times only the touched fanout cone, so
//! its advantage grows with design size.

use criterion::{criterion_group, criterion_main, Criterion};
use liberty::{Cell, Library};
use netlist::{InstId, Netlist, PortDir};
use sta::{analyze, Constraints, IncrementalSta};

fn lib() -> Library {
    let mut lib = Library::new("lib", 1.2);
    lib.add_cell(Cell::test_inverter("INV_X1"));
    let mut big = Cell::test_inverter("INV_X2");
    for out in &mut big.outputs {
        for arc in &mut out.arcs {
            arc.cell_rise = arc.cell_rise.map(|v| v * 0.8);
            arc.cell_fall = arc.cell_fall.map(|v| v * 0.8);
        }
    }
    lib.add_cell(big);
    lib
}

/// A deterministic pseudo-random inverter DAG with `gates` instances.
fn dag(gates: usize) -> Netlist {
    let mut nl = Netlist::new("dag");
    let a = nl.add_port("a", PortDir::Input);
    let mut nets = vec![a];
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    for k in 0..gates {
        state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        let src = nets[(state >> 33) as usize % nets.len()];
        let dst = nl.add_net(&format!("n{k}"));
        nl.add_instance(&format!("u{k}"), "INV_X1", &[("A", src), ("Y", dst)]);
        nets.push(dst);
    }
    let y = nl.add_port("y", PortDir::Output);
    nl.add_instance("ob", "INV_X1", &[("A", *nets.last().expect("nonempty")), ("Y", y)]);
    nl
}

fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("sta_incremental");
    let library = lib();
    let constraints = Constraints::default();
    for gates in [100usize, 1000, 5000] {
        let nl = dag(gates);
        // Re-analyze the whole design after one resize (the baseline the
        // sizing loop used to pay per trial).
        group.bench_function(format!("full_recell_{gates}"), |b| {
            let mut nl = nl.clone();
            b.iter(|| {
                let target = InstId::from_index(gates / 2);
                let next = if nl.instance(target).cell == "INV_X1" { "INV_X2" } else { "INV_X1" };
                nl.instance_mut(target).cell = next.to_owned();
                analyze(&nl, &library, &constraints).expect("sta")
            });
        });
        // Incremental: same resize against a persistent engine.
        group.bench_function(format!("incremental_recell_{gates}"), |b| {
            let mut sta = IncrementalSta::new(&nl, &library, &constraints).expect("build");
            b.iter(|| {
                let target = InstId::from_index(gates / 2);
                let next = if sta.netlist().instance(target).cell == "INV_X1" {
                    "INV_X2"
                } else {
                    "INV_X1"
                };
                sta.recell(target, next).expect("recell");
                sta.critical_delay().expect("report")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
