//! Criterion benchmark of STA arrival propagation over inverter DAGs of
//! growing depth (no synthesis dependency — the netlist is built directly).

use criterion::{criterion_group, criterion_main, Criterion};
use liberty::{Cell, Library};
use netlist::{Netlist, PortDir};
use sta::{analyze, Constraints};

fn lib() -> Library {
    let mut lib = Library::new("lib", 1.2);
    lib.add_cell(Cell::test_inverter("INV_X1"));
    lib
}

/// A deterministic pseudo-random inverter DAG with `gates` instances.
fn dag(gates: usize) -> Netlist {
    let mut nl = Netlist::new("dag");
    let a = nl.add_port("a", PortDir::Input);
    let mut nets = vec![a];
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    for k in 0..gates {
        state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        let src = nets[(state >> 33) as usize % nets.len()];
        let dst = nl.add_net(&format!("n{k}"));
        nl.add_instance(&format!("u{k}"), "INV_X1", &[("A", src), ("Y", dst)]);
        nets.push(dst);
    }
    let y = nl.add_port("y", PortDir::Output);
    nl.add_instance("ob", "INV_X1", &[("A", *nets.last().expect("nonempty")), ("Y", y)]);
    nl
}

fn bench_arrival(c: &mut Criterion) {
    let mut group = c.benchmark_group("sta_arrival");
    let library = lib();
    for gates in [100usize, 1000, 5000] {
        let nl = dag(gates);
        group.bench_function(format!("dag_{gates}"), |b| {
            b.iter(|| analyze(&nl, &library, &Constraints::default()).expect("sta"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_arrival);
criterion_main!(benches);
