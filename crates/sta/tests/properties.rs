//! Property-based tests for timing-analysis invariants on randomly shaped
//! tree netlists.

use liberty::{Cell, Library};
use netlist::{NetId, Netlist, PortDir};
use proptest::prelude::*;
use sta::{analyze, evaluate_path, Constraints};

fn lib() -> Library {
    let mut lib = Library::new("lib", 1.2);
    lib.add_cell(Cell::test_inverter("INV_X1"));
    lib
}

/// Builds a random inverter DAG: each new gate drives a fresh net from a
/// randomly chosen existing net.
fn random_dag(choices: &[usize]) -> (Netlist, Vec<NetId>) {
    let mut nl = Netlist::new("dag");
    let a = nl.add_port("a", PortDir::Input);
    let mut nets = vec![a];
    for (k, &c) in choices.iter().enumerate() {
        let src = nets[c % nets.len()];
        let dst = nl.add_net(&format!("n{k}"));
        nl.add_instance(&format!("u{k}"), "INV_X1", &[("A", src), ("Y", dst)]);
        nets.push(dst);
    }
    // Expose the last few nets as outputs.
    let out_count = nets.len().min(3);
    let mut outs = Vec::new();
    for (k, &net) in nets.iter().rev().take(out_count).enumerate() {
        let port = nl.add_port(&format!("y{k}"), PortDir::Output);
        nl.add_instance(&format!("ob{k}"), "INV_X1", &[("A", net), ("Y", port)]);
        outs.push(port);
    }
    (nl, nets)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Arrivals never decrease along any arc, and every net's arrival is at
    /// least its driver-input arrival.
    #[test]
    fn arrivals_monotone(choices in prop::collection::vec(any::<usize>(), 1..30)) {
        let (nl, _) = random_dag(&choices);
        let lib = lib();
        let r = analyze(&nl, &lib, &Constraints::default()).expect("sta");
        for inst in nl.instances() {
            let input = inst.net_on("A").expect("connected");
            let output = inst.net_on("Y").expect("connected");
            prop_assert!(
                r.arrival(output) > r.arrival(input),
                "arrival must grow through {}",
                inst.name
            );
        }
    }

    /// The critical path re-evaluates to exactly the critical delay, and
    /// every endpoint arrival is bounded by it.
    #[test]
    fn critical_path_consistent(choices in prop::collection::vec(any::<usize>(), 1..30)) {
        let (nl, _) = random_dag(&choices);
        let lib = lib();
        let c = Constraints::default();
        let r = analyze(&nl, &lib, &c).expect("sta");
        let re = evaluate_path(&nl, &lib, &c, r.critical_path()).expect("path");
        prop_assert!((re - r.critical_delay()).abs() < 1e-15);
        for e in r.endpoints() {
            prop_assert!(e.arrival <= r.critical_delay() + 1e-15);
        }
    }

    /// Without a clock, worst slack is exactly zero and no net has negative
    /// slack; with a clock, slack shifts uniformly by the period change.
    #[test]
    fn slack_identities(
        choices in prop::collection::vec(any::<usize>(), 1..25),
        period_scale in 1.1f64..3.0,
    ) {
        let (nl, nets) = random_dag(&choices);
        let lib = lib();
        let r0 = analyze(&nl, &lib, &Constraints::default()).expect("sta");
        prop_assert!(r0.worst_slack().is_none());
        for &net in &nets {
            prop_assert!(r0.net_slack(net) >= -1e-15, "implicit slack never negative");
        }
        let period = r0.critical_delay() * period_scale;
        let r1 = analyze(&nl, &lib, &Constraints::with_clock(period)).expect("sta");
        let worst = r1.worst_slack().expect("clocked");
        prop_assert!((worst - (period - r0.critical_delay())).abs() < 1e-15);
    }

    /// Uniformly scaling every table scales every arrival (within the slew
    /// compounding factor) and preserves the critical endpoint.
    #[test]
    fn scaling_preserves_ordering(
        choices in prop::collection::vec(any::<usize>(), 2..25),
        factor in 1.05f64..2.0,
    ) {
        let (nl, _) = random_dag(&choices);
        let fresh = lib();
        let mut aged = Library::new("aged", 1.2);
        let mut c = Cell::test_inverter("INV_X1");
        for o in &mut c.outputs {
            for arc in &mut o.arcs {
                arc.cell_rise = arc.cell_rise.map(|v| v * factor);
                arc.cell_fall = arc.cell_fall.map(|v| v * factor);
                arc.rise_transition = arc.rise_transition.map(|v| v * factor);
                arc.fall_transition = arc.fall_transition.map(|v| v * factor);
            }
        }
        aged.add_cell(c);
        let cst = Constraints::default();
        let rf = analyze(&nl, &fresh, &cst).expect("sta");
        let ra = analyze(&nl, &aged, &cst).expect("sta");
        let ratio = ra.critical_delay() / rf.critical_delay();
        prop_assert!(ratio >= factor - 1e-9, "scaling at least linear, got {ratio}");
        prop_assert!(ratio <= factor * 1.6, "compounding bounded, got {ratio}");
        prop_assert_eq!(
            rf.endpoints().first().map(|e| e.net),
            ra.endpoints().first().map(|e| e.net),
            "uniform scaling keeps the same critical endpoint"
        );
    }
}
