#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! Static timing analysis over gate-level netlists and NLDM libraries.
//!
//! This crate plays the role of the Synopsys timing engine in the paper's
//! flow (Fig. 4(b,c)): it propagates slews and arrival times through a
//! mapped netlist using whatever [`liberty::Library`] it is given — the
//! *initial* library for fresh timing, a *degradation-aware* library for
//! aged timing, or the merged *complete* library for λ-annotated netlists —
//! and reports path delays, the critical path, endpoint slacks and the data
//! needed to compute guardbands.
//!
//! Because cell delay depends on each gate's operating conditions (input
//! slew × output load), simply swapping the library re-evaluates the whole
//! circuit under aging, including paths whose criticality *switches* — the
//! effect of the paper's Fig. 3 / Fig. 5(c). [`PathSpec`] +
//! [`evaluate_path`] allow re-costing a specific fresh-critical path under
//! an aged library to quantify exactly that.
//!
//! # Example
//!
//! ```
//! use liberty::{Cell, Library};
//! use netlist::{Netlist, PortDir};
//! use sta::{analyze, Constraints};
//!
//! # fn main() -> Result<(), sta::StaError> {
//! let mut lib = Library::new("lib", 1.2);
//! lib.add_cell(Cell::test_inverter("INV_X1"));
//!
//! let mut nl = Netlist::new("chain");
//! let a = nl.add_port("a", PortDir::Input);
//! let y = nl.add_port("y", PortDir::Output);
//! let n1 = nl.add_net("n1");
//! nl.add_instance("u0", "INV_X1", &[("A", a), ("Y", n1)]);
//! nl.add_instance("u1", "INV_X1", &[("A", n1), ("Y", y)]);
//!
//! let report = analyze(&nl, &lib, &Constraints::default())?;
//! assert!(report.critical_delay() > 0.0);
//! assert_eq!(report.critical_path().steps.len(), 2);
//! # Ok(())
//! # }
//! ```

mod error;
mod graph;
mod incremental;
mod loops;
mod path;
mod paths_topk;
mod report;

pub use error::StaError;
pub use graph::analyze;
pub use incremental::{IncrementalSta, StaChange, StaStats};
pub use loops::combinational_loops;
pub use path::{evaluate_path, evaluate_path_steps, evaluate_path_steps_with, PathSpec, PathStep};
pub use paths_topk::k_worst_paths;
pub use report::{Endpoint, EndpointKind, TimingReport};

/// Analysis boundary conditions.
///
/// `None` fields fall back to the defaults recorded in the library
/// (`default_input_slew`, `default_output_load`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Constraints {
    /// Clock period in seconds; enables slack/required-time reporting.
    pub clock_period: Option<f64>,
    /// Transition time assumed at primary inputs, in seconds.
    pub input_slew: Option<f64>,
    /// Load capacitance assumed at primary outputs, in farad.
    pub output_load: Option<f64>,
}

impl Constraints {
    /// Constraints with a clock period, for slack analysis.
    #[must_use]
    pub fn with_clock(period: f64) -> Self {
        Constraints { clock_period: Some(period), ..Constraints::default() }
    }
}
