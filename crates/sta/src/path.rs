use crate::{Constraints, StaError, TimingReport};
use liberty::Library;
use netlist::{InstId, NetId, Netlist};

/// One traversed timing arc of a path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// The instance traversed.
    pub inst: InstId,
    /// Input pin the path enters through.
    pub input: String,
    /// Polarity of the edge at the input (`true` = rising).
    pub input_rising: bool,
    /// Output pin the path leaves through.
    pub output: String,
    /// Polarity of the edge at the output.
    pub output_rising: bool,
    /// Arc delay as computed when the path was extracted, in seconds.
    pub delay: f64,
}

/// A concrete path through the netlist, re-evaluable under a different
/// library via [`evaluate_path`] — the tool for the paper's critical-path
/// switching study (Figs. 3, 5(c)).
#[derive(Debug, Clone, PartialEq)]
pub struct PathSpec {
    /// The net the path starts at (a primary input or a clock net).
    pub start_net: NetId,
    /// Edge polarity at the start net.
    pub start_rising: bool,
    /// Traversed arcs in order.
    pub steps: Vec<PathStep>,
    /// Endpoint arrival when the path was extracted, in seconds (includes
    /// the flop setup time when the endpoint is a flop data pin).
    pub arrival: f64,
}

impl PathSpec {
    /// Sum of the recorded step delays.
    #[must_use]
    pub fn recorded_delay(&self) -> f64 {
        self.steps.iter().map(|s| s.delay).sum()
    }

    /// Instance names along the path, for reporting.
    #[must_use]
    pub fn instance_names<'a>(&self, netlist: &'a Netlist) -> Vec<&'a str> {
        self.steps.iter().map(|s| netlist.instance(s.inst).name.as_str()).collect()
    }
}

/// Re-computes the delay of `path` against `library`: slews are propagated
/// along the path's own arcs (starting from the constrained input slew) and
/// each step's delay is looked up at its actual output load. Returns the
/// total path delay in seconds.
///
/// The cell of each step is taken from `netlist` — so re-evaluating a
/// λ-annotated netlist against the merged complete library works the same
/// way as a plain netlist against a per-scenario library.
///
/// # Errors
///
/// Returns [`StaError`] if a step references a cell/pin/arc the library
/// does not provide.
pub fn evaluate_path(
    netlist: &Netlist,
    library: &Library,
    constraints: &Constraints,
    path: &PathSpec,
) -> Result<f64, StaError> {
    Ok(evaluate_path_steps(netlist, library, constraints, path)?.iter().sum())
}

/// Like [`evaluate_path`] but returns the per-step (per-arc) delays instead
/// of their sum — the basis for per-arc aging-sensitivity attribution: the
/// same path evaluated under a fresh and an aged/annotated library gives a
/// fresh-vs-aged delta for every traversed arc.
///
/// # Errors
///
/// Returns [`StaError`] if a step references a cell/pin/arc the library
/// does not provide.
pub fn evaluate_path_steps(
    netlist: &Netlist,
    library: &Library,
    constraints: &Constraints,
    path: &PathSpec,
) -> Result<Vec<f64>, StaError> {
    let sinks = netlist.sinks(library)?;
    let output_load = constraints.output_load.unwrap_or(library.default_output_load);
    let mut slew = constraints.input_slew.unwrap_or(library.default_input_slew);
    let mut delays = Vec::with_capacity(path.steps.len());
    let output_nets: std::collections::HashSet<NetId> = netlist.output_nets().collect();

    for step in &path.steps {
        let inst = netlist.instance(step.inst);
        let cell = library.cell(&inst.cell).ok_or_else(|| {
            StaError::Netlist(netlist::NetlistError::UnknownCell {
                instance: inst.name.clone(),
                cell: inst.cell.clone(),
            })
        })?;
        let out_pin = cell.output(&step.output).ok_or_else(|| StaError::MissingArc {
            cell: cell.name.clone(),
            input: step.input.clone(),
            output: step.output.clone(),
        })?;
        let arc = out_pin.arc_from(&step.input).ok_or_else(|| StaError::MissingArc {
            cell: cell.name.clone(),
            input: step.input.clone(),
            output: step.output.clone(),
        })?;
        let out_net = inst.net_on(&step.output).ok_or_else(|| StaError::MissingArc {
            cell: cell.name.clone(),
            input: step.input.clone(),
            output: step.output.clone(),
        })?;
        let load = net_load(library, &sinks, netlist, out_net, &output_nets, output_load);
        delays.push(arc.delay(step.output_rising, slew, load));
        slew = arc.transition(step.output_rising, slew, load);
    }
    Ok(delays)
}

/// Like [`evaluate_path_steps`], but *graph-consistent*: each arc is looked
/// up at the propagated slew the full analysis recorded in `report` for the
/// arc's input net, instead of a path-local slew chain. Sequential steps
/// (a flop's clock-to-output launch) are evaluated at the constrained input
/// slew, exactly as the analysis launches them. Each returned delay is then
/// one term of the analysis' arrival recurrence, so for any path that
/// starts at a launch point (see `timed_segment` truncation in the
/// `dataflow` crate) the step sum is bounded by the report's critical
/// delay — the property the `PT` path rules rely on when comparing
/// per-path aged delays against a design-level bound.
///
/// `report` must come from analyzing the same `netlist`/`library` pair.
///
/// # Errors
///
/// Returns [`StaError`] if a step references a cell/pin/arc the library
/// does not provide.
pub fn evaluate_path_steps_with(
    netlist: &Netlist,
    library: &Library,
    constraints: &Constraints,
    report: &TimingReport,
    path: &PathSpec,
) -> Result<Vec<f64>, StaError> {
    let sinks = netlist.sinks(library)?;
    let output_load = constraints.output_load.unwrap_or(library.default_output_load);
    let input_slew = constraints.input_slew.unwrap_or(library.default_input_slew);
    let mut delays = Vec::with_capacity(path.steps.len());
    let output_nets: std::collections::HashSet<NetId> = netlist.output_nets().collect();

    for step in &path.steps {
        let inst = netlist.instance(step.inst);
        let cell = library.cell(&inst.cell).ok_or_else(|| {
            StaError::Netlist(netlist::NetlistError::UnknownCell {
                instance: inst.name.clone(),
                cell: inst.cell.clone(),
            })
        })?;
        let missing_arc = || StaError::MissingArc {
            cell: cell.name.clone(),
            input: step.input.clone(),
            output: step.output.clone(),
        };
        let out_pin = cell.output(&step.output).ok_or_else(missing_arc)?;
        let arc = out_pin.arc_from(&step.input).ok_or_else(missing_arc)?;
        let in_net = inst.net_on(&step.input).ok_or_else(missing_arc)?;
        let out_net = inst.net_on(&step.output).ok_or_else(missing_arc)?;
        let slew = if cell.is_sequential() {
            // Launch semantics: the analysis starts flop outputs from the
            // clock edge at the constrained input slew, regardless of the
            // clock net's own propagated state.
            input_slew
        } else {
            report.slew_edge(in_net, step.input_rising)
        };
        let load = net_load(library, &sinks, netlist, out_net, &output_nets, output_load);
        delays.push(arc.delay(step.output_rising, slew, load));
    }
    Ok(delays)
}

/// Total capacitive load of `net`: connected input pins, the per-fanout
/// wire model, and the external load if it is a primary output.
pub(crate) fn net_load(
    library: &Library,
    sinks: &std::collections::HashMap<NetId, Vec<(InstId, String)>>,
    netlist: &Netlist,
    net: NetId,
    output_nets: &std::collections::HashSet<NetId>,
    output_load: f64,
) -> f64 {
    let mut load = 0.0;
    let mut fanout = 0usize;
    if let Some(pins) = sinks.get(&net) {
        for (inst, pin) in pins {
            let cell_name = &netlist.instance(*inst).cell;
            if let Some(cell) = library.cell(cell_name) {
                if let Some(cap) = cell.input_cap(pin) {
                    load += cap;
                    fanout += 1;
                }
            }
        }
    }
    if output_nets.contains(&net) {
        load += output_load;
        fanout += 1;
    }
    load + library.wire_cap_per_fanout * fanout as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use liberty::{Cell, Library};
    use netlist::PortDir;

    fn lib() -> Library {
        let mut lib = Library::new("lib", 1.2);
        lib.add_cell(Cell::test_inverter("INV_X1"));
        lib
    }

    fn chain(n: usize) -> Netlist {
        let mut nl = Netlist::new("chain");
        let mut prev = nl.add_port("a", PortDir::Input);
        for k in 0..n {
            let next = if k + 1 == n {
                nl.add_port("y", PortDir::Output)
            } else {
                nl.add_net(&format!("n{k}"))
            };
            nl.add_instance(&format!("u{k}"), "INV_X1", &[("A", prev), ("Y", next)]);
            prev = next;
        }
        nl
    }

    #[test]
    fn evaluate_matches_analysis_on_chain() {
        let nl = chain(4);
        let lib = lib();
        let c = Constraints::default();
        let report = analyze(&nl, &lib, &c).unwrap();
        let path = report.critical_path();
        assert_eq!(path.steps.len(), 4);
        let re = evaluate_path(&nl, &lib, &c, path).unwrap();
        assert!(
            (re - report.critical_delay()).abs() < 1e-15,
            "re-evaluated {re} vs analyzed {}",
            report.critical_delay()
        );
        assert!((path.recorded_delay() - re).abs() < 1e-15);
    }

    #[test]
    fn evaluate_against_scaled_library_scales_delay() {
        let nl = chain(3);
        let lib_fresh = lib();
        // An "aged" library: same cells, 30 % slower everywhere.
        let mut lib_aged = Library::new("aged", 1.2);
        let mut cell = Cell::test_inverter("INV_X1");
        for out in &mut cell.outputs {
            for arc in &mut out.arcs {
                arc.cell_rise = arc.cell_rise.map(|v| v * 1.3);
                arc.cell_fall = arc.cell_fall.map(|v| v * 1.3);
            }
        }
        lib_aged.add_cell(cell);
        let c = Constraints::default();
        let report = analyze(&nl, &lib_fresh, &c).unwrap();
        let fresh = evaluate_path(&nl, &lib_fresh, &c, report.critical_path()).unwrap();
        let aged = evaluate_path(&nl, &lib_aged, &c, report.critical_path()).unwrap();
        assert!((aged / fresh - 1.3).abs() < 1e-9, "ratio = {}", aged / fresh);
    }

    #[test]
    fn graph_consistent_steps_match_analysis_on_chain() {
        let nl = chain(5);
        let lib = lib();
        let c = Constraints::default();
        let report = analyze(&nl, &lib, &c).unwrap();
        let path = report.critical_path();
        let steps = evaluate_path_steps_with(&nl, &lib, &c, &report, path).unwrap();
        let total: f64 = steps.iter().sum();
        // On a chain the recorded slews are the path's own slews, so the
        // graph-consistent evaluation reproduces the analysis exactly.
        assert!(
            (total - report.critical_delay()).abs() < 1e-15,
            "graph-consistent sum {total} vs critical {}",
            report.critical_delay()
        );
        let local = evaluate_path_steps(&nl, &lib, &c, path).unwrap();
        assert_eq!(steps, local);
    }

    #[test]
    fn missing_cell_is_error() {
        let nl = chain(2);
        let c = Constraints::default();
        let report = analyze(&nl, &lib(), &c).unwrap();
        let empty = Library::new("empty", 1.2);
        assert!(evaluate_path(&nl, &empty, &c, report.critical_path()).is_err());
    }

    #[test]
    fn instance_names_follow_path() {
        let nl = chain(3);
        let c = Constraints::default();
        let report = analyze(&nl, &lib(), &c).unwrap();
        assert_eq!(report.critical_path().instance_names(&nl), vec!["u0", "u1", "u2"]);
    }
}
