//! Topological slew/arrival propagation — the analysis core.
//!
//! The per-instance evaluation ([`EvalCtx::eval_comb`] / [`EvalCtx::eval_flop`])
//! and the report extraction ([`extract_report`]) are shared with the
//! incremental engine in [`crate::incremental`]: both paths execute the
//! *same* arc iteration in the *same* order, which is what makes incremental
//! results bit-identical to a full [`analyze`] rather than merely close.

use crate::path::{net_load, PathSpec, PathStep};
use crate::report::{Endpoint, EndpointKind, TimingReport};
use crate::{Constraints, StaError};
use liberty::{Cell, CellClass, Library, TimingSense};
use netlist::{InstId, NetId, Netlist, NetlistError};
use std::collections::{HashMap, HashSet};

/// The predecessor of a net's worst edge: which arc of which instance set it.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Pred {
    pub(crate) inst: InstId,
    pub(crate) input: String,
    pub(crate) input_rising: bool,
    pub(crate) output: String,
    pub(crate) delay: f64,
}

/// One recorded timing edge `(out net, out rising, in net, in rising, delay)`
/// in forward topological order — replayed in reverse for the required-time
/// pass (an order-independent min-fold, so any valid topological order gives
/// bit-identical required times).
pub(crate) type BackEdge = (usize, bool, usize, bool, f64);

/// The per-net forward state of an analysis: worst/earliest arrivals, slews
/// and worst-path predecessors for both edge polarities.
#[derive(Debug, Clone)]
pub(crate) struct NetState {
    pub(crate) arrival_rise: Vec<f64>,
    pub(crate) arrival_fall: Vec<f64>,
    pub(crate) min_rise: Vec<f64>,
    pub(crate) min_fall: Vec<f64>,
    pub(crate) slew_rise: Vec<f64>,
    pub(crate) slew_fall: Vec<f64>,
    pub(crate) pred_rise: Vec<Option<Pred>>,
    pub(crate) pred_fall: Vec<Option<Pred>>,
}

impl NetState {
    /// State before any instance has been evaluated: every net launches at
    /// t = 0 with the boundary input slew.
    pub(crate) fn fresh(n_nets: usize, input_slew: f64) -> Self {
        NetState {
            arrival_rise: vec![0.0; n_nets],
            arrival_fall: vec![0.0; n_nets],
            min_rise: vec![0.0; n_nets],
            min_fall: vec![0.0; n_nets],
            slew_rise: vec![input_slew; n_nets],
            slew_fall: vec![input_slew; n_nets],
            pred_rise: vec![None; n_nets],
            pred_fall: vec![None; n_nets],
        }
    }

    /// Resets one net to its pre-evaluation defaults. The incremental engine
    /// calls this before re-evaluating a net's driver so a re-evaluation
    /// starts from the same state a full analysis would.
    pub(crate) fn reset_net(&mut self, net: usize, input_slew: f64) {
        self.arrival_rise[net] = 0.0;
        self.arrival_fall[net] = 0.0;
        self.min_rise[net] = 0.0;
        self.min_fall[net] = 0.0;
        self.slew_rise[net] = input_slew;
        self.slew_fall[net] = input_slew;
        self.pred_rise[net] = None;
        self.pred_fall[net] = None;
    }

    /// The six value fields of one net as raw bits — bitwise equality is the
    /// dirty-cone propagation criterion (predecessors are a deterministic
    /// function of these inputs, so equal values imply equal downstream
    /// state).
    pub(crate) fn value_bits(&self, net: usize) -> [u64; 6] {
        [
            self.arrival_rise[net].to_bits(),
            self.arrival_fall[net].to_bits(),
            self.min_rise[net].to_bits(),
            self.min_fall[net].to_bits(),
            self.slew_rise[net].to_bits(),
            self.slew_fall[net].to_bits(),
        ]
    }
}

/// Everything the per-instance evaluation reads besides [`NetState`].
pub(crate) struct EvalCtx<'a> {
    pub(crate) netlist: &'a Netlist,
    pub(crate) library: &'a Library,
    pub(crate) sinks: &'a HashMap<NetId, Vec<(InstId, String)>>,
    pub(crate) output_nets: &'a HashSet<NetId>,
    pub(crate) input_slew: f64,
    pub(crate) output_load: f64,
}

impl EvalCtx<'_> {
    fn load_of(&self, net: NetId) -> f64 {
        net_load(self.library, self.sinks, self.netlist, net, self.output_nets, self.output_load)
    }

    /// Launches a flop's outputs from the clock edge: writes the Q-net
    /// state and appends the launch back-edges.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::MissingArc`] when an output lacks a clock arc.
    pub(crate) fn eval_flop(
        &self,
        id: InstId,
        cell: &Cell,
        state: &mut NetState,
        back_edges: &mut Vec<BackEdge>,
    ) -> Result<(), StaError> {
        let CellClass::Flop { clock, .. } = &cell.class else { return Ok(()) };
        let inst = self.netlist.instance(id);
        for out in &cell.outputs {
            let Some(net) = inst.net_on(&out.name) else { continue };
            let arc = out.arc_from(clock).ok_or_else(|| StaError::MissingArc {
                cell: cell.name.clone(),
                input: clock.clone(),
                output: out.name.clone(),
            })?;
            let load = self.load_of(net);
            let i = net.index();
            state.arrival_rise[i] = arc.delay(true, self.input_slew, load);
            state.arrival_fall[i] = arc.delay(false, self.input_slew, load);
            state.min_rise[i] = state.arrival_rise[i];
            state.min_fall[i] = state.arrival_fall[i];
            state.slew_rise[i] = arc.transition(true, self.input_slew, load);
            state.slew_fall[i] = arc.transition(false, self.input_slew, load);
            if let Some(ck_net) = inst.net_on(clock) {
                back_edges.push((i, true, ck_net.index(), true, state.arrival_rise[i]));
                back_edges.push((i, false, ck_net.index(), true, state.arrival_fall[i]));
            }
            state.pred_rise[i] = Some(Pred {
                inst: id,
                input: clock.clone(),
                input_rising: true,
                output: out.name.clone(),
                delay: state.arrival_rise[i],
            });
            state.pred_fall[i] = Some(Pred {
                inst: id,
                input: clock.clone(),
                input_rising: true,
                output: out.name.clone(),
                delay: state.arrival_fall[i],
            });
        }
        Ok(())
    }

    /// Evaluates one combinational instance: for every output pin, folds all
    /// input arcs into worst/earliest arrivals, slews and predecessors, and
    /// appends the traversed back-edges. Inputs must already hold their
    /// final state.
    ///
    /// # Errors
    ///
    /// Returns [`StaError`] for missing arcs and unconnected input pins.
    pub(crate) fn eval_comb(
        &self,
        id: InstId,
        cell: &Cell,
        state: &mut NetState,
        back_edges: &mut Vec<BackEdge>,
    ) -> Result<(), StaError> {
        let inst = self.netlist.instance(id);
        for out in &cell.outputs {
            let Some(out_net) = inst.net_on(&out.name) else { continue };
            let load = self.load_of(out_net);
            let mut best_rise: Option<(f64, f64, Pred)> = None; // (arrival, slew, pred)
            let mut best_fall: Option<(f64, f64, Pred)> = None;
            let mut least_rise = f64::INFINITY;
            let mut least_fall = f64::INFINITY;
            for input in &cell.inputs {
                // Outputs genuinely independent of this input
                // (e.g. HA's CO vs no pin) are skipped only if the
                // function ignores the pin; otherwise it is an error.
                let Some(arc) = out.arc_from(&input.name) else {
                    if out.function.vars().contains(&input.name) {
                        return Err(StaError::MissingArc {
                            cell: cell.name.clone(),
                            input: input.name.clone(),
                            output: out.name.clone(),
                        });
                    }
                    continue;
                };
                let Some(in_net) = inst.net_on(&input.name) else {
                    return Err(StaError::Netlist(NetlistError::UnconnectedPin {
                        instance: inst.name.clone(),
                        pin: input.name.clone(),
                    }));
                };
                let i = in_net.index();
                // Which input edges can cause each output edge.
                let rise_from: &[bool] = match arc.sense {
                    TimingSense::PositiveUnate => &[true],
                    TimingSense::NegativeUnate => &[false],
                    TimingSense::NonUnate => &[true, false],
                };
                for &in_rising in rise_from {
                    let (a_in, s_in) = if in_rising {
                        (state.arrival_rise[i], state.slew_rise[i])
                    } else {
                        (state.arrival_fall[i], state.slew_fall[i])
                    };
                    let d = arc.delay(true, s_in, load);
                    back_edges.push((out_net.index(), true, i, in_rising, d));
                    let m_in = if in_rising { state.min_rise[i] } else { state.min_fall[i] };
                    least_rise = least_rise.min(m_in + d);
                    let cand = a_in + d;
                    if best_rise.as_ref().is_none_or(|(b, _, _)| cand > *b) {
                        best_rise = Some((
                            cand,
                            arc.transition(true, s_in, load),
                            Pred {
                                inst: id,
                                input: input.name.clone(),
                                input_rising: in_rising,
                                output: out.name.clone(),
                                delay: d,
                            },
                        ));
                    }
                }
                let fall_from: &[bool] = match arc.sense {
                    TimingSense::PositiveUnate => &[false],
                    TimingSense::NegativeUnate => &[true],
                    TimingSense::NonUnate => &[true, false],
                };
                for &in_rising in fall_from {
                    let (a_in, s_in) = if in_rising {
                        (state.arrival_rise[i], state.slew_rise[i])
                    } else {
                        (state.arrival_fall[i], state.slew_fall[i])
                    };
                    let d = arc.delay(false, s_in, load);
                    back_edges.push((out_net.index(), false, i, in_rising, d));
                    let m_in = if in_rising { state.min_rise[i] } else { state.min_fall[i] };
                    least_fall = least_fall.min(m_in + d);
                    let cand = a_in + d;
                    if best_fall.as_ref().is_none_or(|(b, _, _)| cand > *b) {
                        best_fall = Some((
                            cand,
                            arc.transition(false, s_in, load),
                            Pred {
                                inst: id,
                                input: input.name.clone(),
                                input_rising: in_rising,
                                output: out.name.clone(),
                                delay: d,
                            },
                        ));
                    }
                }
            }
            let o = out_net.index();
            if least_rise.is_finite() {
                state.min_rise[o] = least_rise;
            }
            if least_fall.is_finite() {
                state.min_fall[o] = least_fall;
            }
            if let Some((a, s, p)) = best_rise {
                state.arrival_rise[o] = a;
                state.slew_rise[o] = s;
                state.pred_rise[o] = Some(p);
            }
            if let Some((a, s, p)) = best_fall {
                state.arrival_fall[o] = a;
                state.slew_fall[o] = s;
                state.pred_fall[o] = Some(p);
            }
        }
        Ok(())
    }
}

/// Runs static timing analysis of `netlist` against `library`.
///
/// Primary inputs (and flop clock pins) launch at t = 0 with the
/// constrained input slew; arrival times and slews propagate in topological
/// order through every combinational arc; endpoints are primary outputs and
/// flop data pins.
///
/// # Errors
///
/// Returns [`StaError`] for structurally broken netlists, combinational
/// loops or cells without the required timing arcs.
pub fn analyze(
    netlist: &Netlist,
    library: &Library,
    constraints: &Constraints,
) -> Result<TimingReport, StaError> {
    netlist.validate(library)?;
    let cells = resolved_cells(netlist, library)?;
    let sinks = netlist.sinks(library)?;
    let drivers = netlist.drivers(library)?;
    let n_nets = netlist.net_count();

    let input_slew = constraints.input_slew.unwrap_or(library.default_input_slew);
    let output_load = constraints.output_load.unwrap_or(library.default_output_load);
    let output_nets: HashSet<NetId> = netlist.output_nets().collect();
    let ctx = EvalCtx {
        netlist,
        library,
        sinks: &sinks,
        output_nets: &output_nets,
        input_slew,
        output_load,
    };

    let mut state = NetState::fresh(n_nets, input_slew);
    let mut resolved = vec![false; n_nets];
    let mut back_edges: Vec<BackEdge> = Vec::new();

    // Sources: primary inputs and undriven nets (assumed external).
    for (k, r) in resolved.iter_mut().enumerate() {
        if !drivers.contains_key(&NetId::from_index(k)) {
            *r = true;
        }
    }

    // Flop outputs launch from the clock edge.
    let mut comb_instances: Vec<InstId> = Vec::new();
    for id in netlist.instance_ids() {
        let inst = netlist.instance(id);
        let cell = cells[id.index()];
        match &cell.class {
            CellClass::Flop { .. } => {
                ctx.eval_flop(id, cell, &mut state, &mut back_edges)?;
                for out in &cell.outputs {
                    if let Some(net) = inst.net_on(&out.name) {
                        resolved[net.index()] = true;
                    }
                }
            }
            CellClass::Combinational => comb_instances.push(id),
        }
    }

    // Kahn-style topological sweep over combinational instances.
    let mut remaining: Vec<InstId> = comb_instances;
    loop {
        let mut progressed = false;
        let mut next_round = Vec::with_capacity(remaining.len());
        for id in remaining.drain(..) {
            let inst = netlist.instance(id);
            let cell = cells[id.index()];
            let inputs_ready = cell
                .inputs
                .iter()
                .all(|p| inst.net_on(&p.name).is_some_and(|net| resolved[net.index()]));
            if !inputs_ready {
                next_round.push(id);
                continue;
            }
            progressed = true;
            ctx.eval_comb(id, cell, &mut state, &mut back_edges)?;
            for out in &cell.outputs {
                if let Some(net) = inst.net_on(&out.name) {
                    resolved[net.index()] = true;
                }
            }
        }
        if next_round.is_empty() {
            break;
        }
        if !progressed {
            // Name an instance actually *on* a cycle, not merely starved
            // downstream of one — the standalone detector tells them apart.
            let on_cycle = crate::loops::combinational_loops(netlist, library)
                .into_iter()
                .flatten()
                .next()
                .unwrap_or(next_round[0]);
            let name = netlist.instance(on_cycle).name.clone();
            return Err(StaError::CombinationalLoop { instance: name });
        }
        remaining = next_round;
    }

    Ok(extract_report(netlist, &cells, constraints, &state, &back_edges))
}

/// Builds the final [`TimingReport`] from a converged forward state:
/// endpoints, hold slacks, the backward required-time pass over
/// `back_edges`, and the extracted critical path.
///
/// `back_edges` may be any concatenation of per-instance edge lists in a
/// valid forward topological order — the required-time pass is a min-fold,
/// so every such order yields bit-identical values.
pub(crate) fn extract_report(
    netlist: &Netlist,
    cells: &[&Cell],
    constraints: &Constraints,
    state: &NetState,
    back_edges: &[BackEdge],
) -> TimingReport {
    let n_nets = netlist.net_count();

    // Endpoints: primary outputs and flop data pins.
    let mut endpoints = Vec::new();
    for net in netlist.output_nets() {
        let i = net.index();
        let arrival = state.arrival_rise[i].max(state.arrival_fall[i]);
        endpoints.push(Endpoint {
            net,
            kind: EndpointKind::Output,
            arrival,
            required: constraints.clock_period,
        });
    }
    for id in netlist.instance_ids() {
        let inst = netlist.instance(id);
        let cell = cells[id.index()];
        if let CellClass::Flop { data, setup, .. } = &cell.class {
            if let Some(net) = inst.net_on(data) {
                let i = net.index();
                let arrival = state.arrival_rise[i].max(state.arrival_fall[i]) + setup;
                endpoints.push(Endpoint {
                    net,
                    kind: EndpointKind::FlopData { setup: *setup },
                    arrival,
                    required: constraints.clock_period,
                });
            }
        }
    }
    endpoints.sort_by(|a, b| b.arrival.total_cmp(&a.arrival));

    // Hold checks at flop data pins: the earliest data change after the
    // launching edge must not beat the hold window of the capturing flop.
    let mut hold_slacks: Vec<(NetId, f64)> = Vec::new();
    for id in netlist.instance_ids() {
        let inst = netlist.instance(id);
        let cell = cells[id.index()];
        if let CellClass::Flop { data, hold, .. } = &cell.class {
            if let Some(net) = inst.net_on(data) {
                let i = net.index();
                let earliest = state.min_rise[i].min(state.min_fall[i]);
                hold_slacks.push((net, earliest - hold));
            }
        }
    }

    // Backward required-time pass. Without an explicit clock the worst
    // endpoint arrival acts as the implicit required time (zero worst slack).
    let implicit = endpoints.first().map_or(0.0, |e| e.arrival);
    let mut required_rise = vec![f64::INFINITY; n_nets];
    let mut required_fall = vec![f64::INFINITY; n_nets];
    for e in &endpoints {
        let budget = constraints.clock_period.unwrap_or(implicit);
        let at_net = match e.kind {
            EndpointKind::Output => budget,
            EndpointKind::FlopData { setup } => budget - setup,
        };
        let i = e.net.index();
        required_rise[i] = required_rise[i].min(at_net);
        required_fall[i] = required_fall[i].min(at_net);
    }
    for &(out, out_rising, input, in_rising, d) in back_edges.iter().rev() {
        let r_out = if out_rising { required_rise[out] } else { required_fall[out] };
        if r_out.is_finite() {
            let slot =
                if in_rising { &mut required_rise[input] } else { &mut required_fall[input] };
            *slot = slot.min(r_out - d);
        }
    }

    // Extract the critical path.
    let (critical, critical_delay) = match endpoints.first() {
        Some(worst) => {
            let i = worst.net.index();
            let rising = state.arrival_rise[i] >= state.arrival_fall[i];
            let spec = backtrack(
                netlist,
                worst.net,
                rising,
                worst.arrival,
                &state.pred_rise,
                &state.pred_fall,
            );
            (spec, worst.arrival)
        }
        None => (
            PathSpec {
                start_net: NetId::from_index(0),
                start_rising: true,
                steps: Vec::new(),
                arrival: 0.0,
            },
            0.0,
        ),
    };

    TimingReport {
        arrival_rise: state.arrival_rise.clone(),
        arrival_fall: state.arrival_fall.clone(),
        min_rise: state.min_rise.clone(),
        min_fall: state.min_fall.clone(),
        slew_rise: state.slew_rise.clone(),
        slew_fall: state.slew_fall.clone(),
        required_rise,
        required_fall,
        endpoints,
        hold_slacks,
        critical,
        critical_delay,
    }
}

/// Resolves every instance's cell up front (indexed by [`InstId`]), turning
/// the "unknown cell" case into a structured error at the door instead of a
/// panic deep inside the propagation loops.
pub(crate) fn resolved_cells<'l>(
    netlist: &Netlist,
    library: &'l Library,
) -> Result<Vec<&'l Cell>, StaError> {
    netlist
        .instance_ids()
        .map(|id| {
            let inst = netlist.instance(id);
            library.cell(&inst.cell).ok_or_else(|| {
                StaError::Netlist(NetlistError::UnknownCell {
                    instance: inst.name.clone(),
                    cell: inst.cell.clone(),
                })
            })
        })
        .collect()
}

fn backtrack(
    netlist: &Netlist,
    endpoint: NetId,
    endpoint_rising: bool,
    arrival: f64,
    pred_rise: &[Option<Pred>],
    pred_fall: &[Option<Pred>],
) -> PathSpec {
    let mut steps = Vec::new();
    let mut net = endpoint;
    let mut rising = endpoint_rising;
    loop {
        let pred = if rising { &pred_rise[net.index()] } else { &pred_fall[net.index()] };
        let Some(p) = pred else { break };
        steps.push(PathStep {
            inst: p.inst,
            input: p.input.clone(),
            input_rising: p.input_rising,
            output: p.output.clone(),
            output_rising: rising,
            delay: p.delay,
        });
        let inst = netlist.instance(p.inst);
        let Some(prev_net) = inst.net_on(&p.input) else { break };
        rising = p.input_rising;
        net = prev_net;
        if steps.len() > netlist.instance_count() + 1 {
            break; // defensive: never loop forever on corrupt pred data
        }
    }
    steps.reverse();
    PathSpec { start_net: net, start_rising: rising, steps, arrival }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liberty::{BoolExpr, Cell, InputPin, OutputPin, Table2d, TimingArc};
    use netlist::PortDir;

    /// A two-input NAND fixture with asymmetric per-pin delays so path
    /// selection is observable.
    fn nand_cell(slow_pin_extra: f64) -> Cell {
        let t = |base: f64| {
            Table2d::new(
                vec![5e-12, 500e-12],
                vec![0.5e-15, 20e-15],
                vec![base, base + 20e-12, base + 5e-12, base + 30e-12],
            )
            .unwrap()
        };
        let arc = |pin: &str, base: f64| TimingArc {
            related_pin: pin.into(),
            sense: TimingSense::NegativeUnate,
            cell_rise: t(base),
            cell_fall: t(base * 0.9),
            rise_transition: t(base * 0.5),
            fall_transition: t(base * 0.4),
        };
        Cell {
            name: "NAND2_X1".into(),
            area: 1.0,
            class: CellClass::Combinational,
            inputs: vec![
                InputPin { name: "A".into(), capacitance: 1e-15 },
                InputPin { name: "B".into(), capacitance: 1e-15 },
            ],
            outputs: vec![OutputPin {
                name: "Y".into(),
                function: BoolExpr::parse("!(A & B)").unwrap(),
                max_capacitance: 30e-15,
                arcs: vec![arc("A", 10e-12), arc("B", 10e-12 + slow_pin_extra)],
            }],
        }
    }

    fn flop_cell() -> Cell {
        let t = Table2d::constant(20e-12, 4e-15, 50e-12);
        Cell {
            name: "DFF_X1".into(),
            area: 4.0,
            class: CellClass::Flop {
                clock: "CK".into(),
                data: "D".into(),
                setup: 30e-12,
                hold: 5e-12,
            },
            inputs: vec![
                InputPin { name: "D".into(), capacitance: 1.2e-15 },
                InputPin { name: "CK".into(), capacitance: 0.8e-15 },
            ],
            outputs: vec![OutputPin {
                name: "Q".into(),
                function: BoolExpr::var("D"),
                max_capacitance: 30e-15,
                arcs: vec![TimingArc {
                    related_pin: "CK".into(),
                    sense: TimingSense::PositiveUnate,
                    cell_rise: t.clone(),
                    cell_fall: t.clone(),
                    rise_transition: t.map(|_| 15e-12),
                    fall_transition: t.map(|_| 15e-12),
                }],
            }],
        }
    }

    fn lib() -> Library {
        let mut lib = Library::new("lib", 1.2);
        lib.add_cell(Cell::test_inverter("INV_X1"));
        lib.add_cell(nand_cell(40e-12));
        lib.add_cell(flop_cell());
        lib
    }

    #[test]
    fn chain_delay_accumulates() {
        let lib = lib();
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        let n1 = nl.add_net("n1");
        nl.add_instance("u0", "INV_X1", &[("A", a), ("Y", n1)]);
        nl.add_instance("u1", "INV_X1", &[("A", n1), ("Y", y)]);
        let r = analyze(&nl, &lib, &Constraints::default()).unwrap();
        let single = {
            let mut nl1 = Netlist::new("m1");
            let a = nl1.add_port("a", PortDir::Input);
            let y = nl1.add_port("y", PortDir::Output);
            nl1.add_instance("u0", "INV_X1", &[("A", a), ("Y", y)]);
            analyze(&nl1, &lib, &Constraints::default()).unwrap().critical_delay()
        };
        assert!(r.critical_delay() > single, "two stages must be slower than one");
        assert_eq!(r.critical_path().steps.len(), 2);
    }

    #[test]
    fn critical_path_picks_slow_pin() {
        // a → NAND.A, b → NAND.B where the B arc is 40 ps slower.
        let lib = lib();
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let b = nl.add_port("b", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        nl.add_instance("u0", "NAND2_X1", &[("A", a), ("B", b), ("Y", y)]);
        let r = analyze(&nl, &lib, &Constraints::default()).unwrap();
        let path = r.critical_path();
        assert_eq!(path.steps.len(), 1);
        assert_eq!(path.steps[0].input, "B");
        assert_eq!(path.start_net, b);
    }

    #[test]
    fn negative_unate_polarity_tracked() {
        let lib = lib();
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let b = nl.add_port("b", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        nl.add_instance("u0", "NAND2_X1", &[("A", a), ("B", b), ("Y", y)]);
        let r = analyze(&nl, &lib, &Constraints::default()).unwrap();
        let step = &r.critical_path().steps[0];
        // NAND is negative-unate: a rising output comes from a falling input.
        assert_ne!(step.input_rising, step.output_rising);
    }

    #[test]
    fn flop_launch_and_capture() {
        let lib = lib();
        let mut nl = Netlist::new("m");
        let clk = nl.add_port("clk", PortDir::Input);
        let d_in = nl.add_port("d", PortDir::Input);
        let q1 = nl.add_net("q1");
        let n1 = nl.add_net("n1");
        let d2 = nl.add_net("d2");
        nl.add_instance("ff0", "DFF_X1", &[("D", d_in), ("CK", clk), ("Q", q1)]);
        nl.add_instance("u0", "INV_X1", &[("A", q1), ("Y", n1)]);
        nl.add_instance("u1", "INV_X1", &[("A", n1), ("Y", d2)]);
        let q2 = nl.add_net("q2");
        nl.add_instance("ff1", "DFF_X1", &[("D", d2), ("CK", clk), ("Q", q2)]);
        let r = analyze(&nl, &lib, &Constraints::with_clock(1e-9)).unwrap();
        // Endpoint is the ff1 data pin: clk→Q + 2 inverters + setup.
        let worst = &r.endpoints()[0];
        assert!(matches!(worst.kind, EndpointKind::FlopData { .. }));
        assert!(worst.arrival > 50e-12 + 30e-12, "arrival {}", worst.arrival);
        assert!(worst.slack().unwrap() > 0.0);
        // The critical path starts at the clock net through the flop.
        let path = r.critical_path();
        assert_eq!(path.start_net, clk);
        assert_eq!(path.steps[0].input, "CK");
        assert_eq!(path.steps.len(), 3);
    }

    #[test]
    fn combinational_loop_detected() {
        let lib = lib();
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let n1 = nl.add_net("n1");
        let n2 = nl.add_net("n2");
        nl.add_instance("u0", "NAND2_X1", &[("A", a), ("B", n2), ("Y", n1)]);
        nl.add_instance("u1", "INV_X1", &[("A", n1), ("Y", n2)]);
        assert!(matches!(
            analyze(&nl, &lib, &Constraints::default()),
            Err(StaError::CombinationalLoop { .. })
        ));
    }

    #[test]
    fn fanout_load_slows_driver() {
        let lib = lib();
        let mk = |fanout: usize| {
            let mut nl = Netlist::new("m");
            let a = nl.add_port("a", PortDir::Input);
            let n1 = nl.add_net("n1");
            nl.add_instance("u0", "INV_X1", &[("A", a), ("Y", n1)]);
            for k in 0..fanout {
                let out = nl.add_port(&format!("y{k}"), PortDir::Output);
                nl.add_instance(&format!("s{k}"), "INV_X1", &[("A", n1), ("Y", out)]);
            }
            let r = analyze(&nl, &lib, &Constraints::default()).unwrap();
            r.arrival(n1)
        };
        assert!(mk(8) > mk(1), "higher fanout must slow the driving inverter");
    }

    #[test]
    fn slack_goes_negative_with_tight_clock() {
        let lib = lib();
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        let n1 = nl.add_net("n1");
        nl.add_instance("u0", "INV_X1", &[("A", a), ("Y", n1)]);
        nl.add_instance("u1", "INV_X1", &[("A", n1), ("Y", y)]);
        let r = analyze(&nl, &lib, &Constraints::with_clock(1e-12)).unwrap();
        assert!(r.worst_slack().unwrap() < 0.0);
    }

    #[test]
    fn required_times_and_slack() {
        let lib = lib();
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        let n1 = nl.add_net("n1");
        nl.add_instance("u0", "INV_X1", &[("A", a), ("Y", n1)]);
        nl.add_instance("u1", "INV_X1", &[("A", n1), ("Y", y)]);
        // With a clock: slack at the endpoint = period − arrival.
        let period = 1e-9;
        let r = analyze(&nl, &lib, &Constraints::with_clock(period)).unwrap();
        let end_slack = r.net_slack(y);
        assert!((end_slack - (period - r.critical_delay())).abs() < 1e-15);
        // Slack decreases monotonically along a single chain? No — it is
        // constant along the single path: every net carries the same slack.
        assert!((r.net_slack(a) - end_slack).abs() < 1e-15);
        assert!((r.net_slack(n1) - end_slack).abs() < 1e-15);
        // Without a clock the implicit required time gives zero worst slack.
        let r0 = analyze(&nl, &lib, &Constraints::default()).unwrap();
        assert!(r0.net_slack(y).abs() < 1e-15);
        // required_edge is finite on path nets.
        assert!(r0.required_edge(n1, true).is_finite());
    }

    #[test]
    fn off_critical_branch_has_positive_slack() {
        let lib = lib();
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y1 = nl.add_port("y1", PortDir::Output);
        let y2 = nl.add_port("y2", PortDir::Output);
        // Long branch: 3 inverters; short branch: 1 inverter.
        let n1 = nl.add_net("n1");
        let n2 = nl.add_net("n2");
        nl.add_instance("u0", "INV_X1", &[("A", a), ("Y", n1)]);
        nl.add_instance("u1", "INV_X1", &[("A", n1), ("Y", n2)]);
        nl.add_instance("u2", "INV_X1", &[("A", n2), ("Y", y1)]);
        nl.add_instance("s0", "INV_X1", &[("A", a), ("Y", y2)]);
        let r = analyze(&nl, &lib, &Constraints::default()).unwrap();
        assert!(r.net_slack(y1).abs() < 1e-15, "critical endpoint has zero slack");
        assert!(r.net_slack(y2) > 1e-12, "short branch has positive slack");
    }

    #[test]
    fn hold_analysis_on_flop_pipeline() {
        let lib = lib();
        let mut nl = Netlist::new("m");
        let clk = nl.add_port("clk", PortDir::Input);
        let d_in = nl.add_port("d", PortDir::Input);
        let q1 = nl.add_net("q1");
        let d2 = nl.add_net("d2");
        let q2 = nl.add_net("q2");
        nl.add_instance("ff0", "DFF_X1", &[("D", d_in), ("CK", clk), ("Q", q1)]);
        nl.add_instance("u0", "INV_X1", &[("A", q1), ("Y", d2)]);
        nl.add_instance("ff1", "DFF_X1", &[("D", d2), ("CK", clk), ("Q", q2)]);
        let r = analyze(&nl, &lib, &Constraints::default()).unwrap();
        assert_eq!(r.hold_slacks().len(), 2);
        // The register-to-register pin (d2): min arrival = clk→Q (50 ps) +
        // one inverter, comfortably above the 5 ps hold window.
        let reg_to_reg = r
            .hold_slacks()
            .iter()
            .find(|(net, _)| *net == d2)
            .map(|(_, s)| *s)
            .expect("d2 is a hold endpoint");
        assert!(reg_to_reg > 0.0, "reg-to-reg hold met, slack = {reg_to_reg}");
        // The input-launched pin (d) has min arrival 0 — without
        // input-delay constraints its slack is exactly −hold, and it is the
        // design's worst.
        let worst = r.worst_hold_slack().unwrap();
        assert!((worst - (-5e-12)).abs() < 1e-15, "worst = {worst}");
        assert!(r.min_arrival(d2) <= r.arrival(d2));
        assert!(r.min_arrival(d2) > 50e-12, "min path includes clk→Q");
    }

    #[test]
    fn min_arrival_takes_short_branch() {
        let lib = lib();
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        // Long path a→u0→u1→y OR short path a→NAND.B→y via the same gate:
        // merge with a NAND whose A comes through two inverters.
        let n1 = nl.add_net("n1");
        let n2 = nl.add_net("n2");
        nl.add_instance("u0", "INV_X1", &[("A", a), ("Y", n1)]);
        nl.add_instance("u1", "INV_X1", &[("A", n1), ("Y", n2)]);
        nl.add_instance("g", "NAND2_X1", &[("A", n2), ("B", a), ("Y", y)]);
        let r = analyze(&nl, &lib, &Constraints::default()).unwrap();
        assert!(
            r.min_arrival(y) < r.arrival(y),
            "short branch gives a strictly earlier min arrival"
        );
        // Min arrival is at least the single NAND arc delay.
        assert!(r.min_arrival(y) > 1e-12);
    }

    #[test]
    fn empty_netlist_reports_zero() {
        let nl = Netlist::new("empty");
        let r = analyze(&nl, &lib(), &Constraints::default()).unwrap();
        assert_eq!(r.critical_delay(), 0.0);
        assert!(r.endpoints().is_empty());
        assert!(r.critical_path().steps.is_empty());
        assert_eq!(r.worst_slack(), None);
    }
}
