use netlist::NetlistError;
use std::error::Error;
use std::fmt;

/// Errors raised by timing analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StaError {
    /// The netlist is structurally broken (unknown cell, multiple drivers…).
    Netlist(NetlistError),
    /// The combinational logic contains a cycle through the named instance.
    CombinationalLoop {
        /// An instance on the cycle.
        instance: String,
    },
    /// A cell output lacks a timing arc from a connected input.
    MissingArc {
        /// Cell name.
        cell: String,
        /// Input pin without an arc.
        input: String,
        /// Output pin.
        output: String,
    },
    /// A pre-flight lint gate rejected the inputs before analysis started
    /// (see the `lint` crate; `message` carries the rendered diagnostics).
    Preflight {
        /// The rendered lint errors.
        message: String,
    },
}

impl fmt::Display for StaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaError::Netlist(e) => write!(f, "{e}"),
            StaError::CombinationalLoop { instance } => {
                write!(f, "combinational loop through instance {instance}")
            }
            StaError::MissingArc { cell, input, output } => {
                write!(f, "cell {cell} has no timing arc {input} -> {output}")
            }
            StaError::Preflight { message } => write!(f, "pre-flight lint failed: {message}"),
        }
    }
}

impl Error for StaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StaError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for StaError {
    fn from(e: NetlistError) -> Self {
        StaError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = StaError::CombinationalLoop { instance: "u7".into() };
        assert!(e.to_string().contains("u7"));
        let n: StaError =
            NetlistError::UnknownCell { instance: "u1".into(), cell: "X".into() }.into();
        assert!(n.source().is_some());
        let m = StaError::MissingArc { cell: "C".into(), input: "A".into(), output: "Y".into() };
        assert!(m.to_string().contains("A -> Y"));
    }
}
