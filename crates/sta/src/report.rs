use crate::path::PathSpec;
use netlist::NetId;

/// The kind of a timing endpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EndpointKind {
    /// A primary output port.
    Output,
    /// The data pin of a flip-flop, with its setup requirement in seconds.
    FlopData {
        /// Setup time subtracted from the clock period.
        setup: f64,
    },
}

/// One timing endpoint with its worst arrival and (if a clock period was
/// given) required time and slack.
#[derive(Debug, Clone, PartialEq)]
pub struct Endpoint {
    /// The net the endpoint observes.
    pub net: NetId,
    /// What terminates the path here.
    pub kind: EndpointKind,
    /// Worst (max) arrival time at the endpoint, in seconds.
    pub arrival: f64,
    /// Required time, if a clock period was constrained.
    pub required: Option<f64>,
}

impl Endpoint {
    /// Slack = required − arrival; `None` without a clock constraint.
    #[must_use]
    pub fn slack(&self) -> Option<f64> {
        self.required.map(|r| r - self.arrival)
    }
}

/// Per-net timing data and the extracted critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    pub(crate) arrival_rise: Vec<f64>,
    pub(crate) arrival_fall: Vec<f64>,
    pub(crate) min_rise: Vec<f64>,
    pub(crate) min_fall: Vec<f64>,
    pub(crate) slew_rise: Vec<f64>,
    pub(crate) slew_fall: Vec<f64>,
    pub(crate) required_rise: Vec<f64>,
    pub(crate) required_fall: Vec<f64>,
    pub(crate) endpoints: Vec<Endpoint>,
    pub(crate) hold_slacks: Vec<(NetId, f64)>,
    pub(crate) critical: PathSpec,
    pub(crate) critical_delay: f64,
}

impl TimingReport {
    /// Worst arrival across all endpoints — the circuit's critical-path
    /// delay `T` of the paper's guardband equation.
    #[must_use]
    pub fn critical_delay(&self) -> f64 {
        self.critical_delay
    }

    /// The critical path as a re-evaluable [`PathSpec`].
    #[must_use]
    pub fn critical_path(&self) -> &PathSpec {
        &self.critical
    }

    /// All endpoints, sorted by decreasing arrival (most critical first).
    #[must_use]
    pub fn endpoints(&self) -> &[Endpoint] {
        &self.endpoints
    }

    /// Worst slack across endpoints; `None` without a clock constraint.
    #[must_use]
    pub fn worst_slack(&self) -> Option<f64> {
        self.endpoints.iter().filter_map(Endpoint::slack).fold(None, |acc, s| {
            Some(match acc {
                None => s,
                Some(a) => a.min(s),
            })
        })
    }

    /// Worst (max) arrival time of `net` across both edge polarities.
    #[must_use]
    pub fn arrival(&self, net: NetId) -> f64 {
        self.arrival_rise[net_index(net)].max(self.arrival_fall[net_index(net)])
    }

    /// Arrival of the rising (`true`) or falling edge at `net`.
    #[must_use]
    pub fn arrival_edge(&self, net: NetId, rising: bool) -> f64 {
        if rising {
            self.arrival_rise[net_index(net)]
        } else {
            self.arrival_fall[net_index(net)]
        }
    }

    /// Propagated slew of the rising (`true`) or falling edge at `net`.
    #[must_use]
    pub fn slew_edge(&self, net: NetId, rising: bool) -> f64 {
        if rising {
            self.slew_rise[net_index(net)]
        } else {
            self.slew_fall[net_index(net)]
        }
    }

    /// Required time of the given edge at `net` (from the backward pass;
    /// `+∞` on nets that reach no endpoint). Without a clock constraint the
    /// critical-path delay acts as the implicit required time, so the
    /// worst slack of the design is exactly zero.
    #[must_use]
    pub fn required_edge(&self, net: NetId, rising: bool) -> f64 {
        if rising {
            self.required_rise[net_index(net)]
        } else {
            self.required_fall[net_index(net)]
        }
    }

    /// Worst slack of `net` across both edges: `min(required − arrival)`.
    #[must_use]
    pub fn net_slack(&self, net: NetId) -> f64 {
        let r = self.required_rise[net_index(net)] - self.arrival_rise[net_index(net)];
        let f = self.required_fall[net_index(net)] - self.arrival_fall[net_index(net)];
        r.min(f)
    }

    /// Earliest (min-delay) arrival of either edge at `net` — the quantity
    /// hold checks compare against.
    #[must_use]
    pub fn min_arrival(&self, net: NetId) -> f64 {
        self.min_rise[net_index(net)].min(self.min_fall[net_index(net)])
    }

    /// Hold slacks per flop data pin: `earliest data arrival − hold time`.
    /// Negative entries are hold violations (aging never causes these — it
    /// only slows paths — but min-delay analysis is part of signoff). Data
    /// pins fed directly from primary inputs report `−hold`, since no
    /// input-delay constraints are modeled.
    #[must_use]
    pub fn hold_slacks(&self) -> &[(NetId, f64)] {
        &self.hold_slacks
    }

    /// The worst (smallest) hold slack, if the design has flops.
    #[must_use]
    pub fn worst_hold_slack(&self) -> Option<f64> {
        self.hold_slacks.iter().map(|(_, s)| *s).min_by(f64::total_cmp)
    }
}

fn net_index(net: NetId) -> usize {
    net.index()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_slack() {
        let e = Endpoint {
            net: NetId::from_index(0),
            kind: EndpointKind::Output,
            arrival: 1.0e-9,
            required: Some(1.5e-9),
        };
        assert!((e.slack().unwrap() - 0.5e-9).abs() < 1e-18);
        let e2 = Endpoint { required: None, ..e };
        assert_eq!(e2.slack(), None);
    }
}
