//! Standalone combinational-loop detection.
//!
//! Historically a combinational loop was only discoverable by running full
//! STA and watching the topological sweep stall. This module exposes the
//! detection as its own cheap pass — used by the `relialint` pre-flight
//! checks and by [`analyze`](crate::analyze) to name the offending cycle.

use liberty::Library;
use netlist::{InstId, Netlist};

/// Finds all combinational cycles of `netlist` against `library`.
///
/// Returns one entry per strongly connected component of the
/// combinational instance graph that contains a cycle (more than one
/// instance, or a single instance feeding itself), in instance order.
/// Sequential cells break cycles: a flop's output launches a new signal,
/// so register feedback is not a combinational loop.
///
/// Instances whose cell (or pins) the library does not know contribute no
/// edges — unknown-cell reporting is a separate concern, and this pass
/// stays total so every check can run on partially broken inputs.
#[must_use]
pub fn combinational_loops(netlist: &Netlist, library: &Library) -> Vec<Vec<InstId>> {
    let n = netlist.instance_count();
    // Net → driving combinational instance.
    let mut driver_of_net: Vec<Option<usize>> = vec![None; netlist.net_count()];
    let mut combinational = vec![false; n];
    for (k, inst) in netlist.instances().iter().enumerate() {
        let Some(cell) = library.cell(&inst.cell) else { continue };
        if cell.is_sequential() {
            continue;
        }
        combinational[k] = true;
        for (pin, net) in &inst.connections {
            if cell.output(pin).is_some() {
                driver_of_net[net.index()] = Some(k);
            }
        }
    }

    // Edges: driving instance → sink instance, via input pins.
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (k, inst) in netlist.instances().iter().enumerate() {
        if !combinational[k] {
            continue;
        }
        let Some(cell) = library.cell(&inst.cell) else { continue };
        for (pin, net) in &inst.connections {
            if cell.input_cap(pin).is_some() {
                if let Some(driver) = driver_of_net[net.index()] {
                    succ[driver].push(k);
                }
            }
        }
    }

    tarjan_cyclic_sccs(&succ, &combinational)
        .into_iter()
        .map(|scc| scc.into_iter().map(InstId::from_index).collect())
        .collect()
}

/// Iterative Tarjan SCC restricted to `active` nodes; returns only the
/// components that contain a cycle, each sorted ascending.
fn tarjan_cyclic_sccs(succ: &[Vec<usize>], active: &[bool]) -> Vec<Vec<usize>> {
    let n = succ.len();
    const UNSEEN: usize = usize::MAX;
    let mut index = vec![UNSEEN; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS state: (node, next successor position).
    let mut call_stack: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if !active[root] || index[root] != UNSEEN {
            continue;
        }
        call_stack.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut pos)) = call_stack.last_mut() {
            if let Some(&w) = succ[v].get(*pos) {
                *pos += 1;
                if !active[w] {
                    continue;
                }
                if index[w] == UNSEEN {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let Some(w) = stack.pop() else { unreachable!("SCC stack underflow") };
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    let cyclic = scc.len() > 1 || succ[v].contains(&v);
                    if cyclic {
                        scc.sort_unstable();
                        out.push(scc);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use liberty::{
        BoolExpr, Cell, CellClass, InputPin, OutputPin, Table2d, TimingArc, TimingSense,
    };
    use netlist::PortDir;

    fn nand_cell() -> Cell {
        let t = Table2d::constant(20e-12, 4e-15, 30e-12);
        let arc = |pin: &str| TimingArc {
            related_pin: pin.into(),
            sense: TimingSense::NegativeUnate,
            cell_rise: t.clone(),
            cell_fall: t.clone(),
            rise_transition: t.clone(),
            fall_transition: t.clone(),
        };
        Cell {
            name: "NAND2_X1".into(),
            area: 1.0,
            class: CellClass::Combinational,
            inputs: vec![
                InputPin { name: "A".into(), capacitance: 1e-15 },
                InputPin { name: "B".into(), capacitance: 1e-15 },
            ],
            outputs: vec![OutputPin {
                name: "Y".into(),
                function: BoolExpr::parse("!(A & B)").unwrap(),
                max_capacitance: 30e-15,
                arcs: vec![arc("A"), arc("B")],
            }],
        }
    }

    fn flop_cell() -> Cell {
        let t = Table2d::constant(20e-12, 4e-15, 50e-12);
        Cell {
            name: "DFF_X1".into(),
            area: 4.0,
            class: CellClass::Flop {
                clock: "CK".into(),
                data: "D".into(),
                setup: 30e-12,
                hold: 5e-12,
            },
            inputs: vec![
                InputPin { name: "D".into(), capacitance: 1.2e-15 },
                InputPin { name: "CK".into(), capacitance: 0.8e-15 },
            ],
            outputs: vec![OutputPin {
                name: "Q".into(),
                function: BoolExpr::var("D"),
                max_capacitance: 30e-15,
                arcs: vec![TimingArc {
                    related_pin: "CK".into(),
                    sense: TimingSense::PositiveUnate,
                    cell_rise: t.clone(),
                    cell_fall: t.clone(),
                    rise_transition: t.clone(),
                    fall_transition: t,
                }],
            }],
        }
    }

    fn lib() -> Library {
        let mut lib = Library::new("lib", 1.2);
        lib.add_cell(Cell::test_inverter("INV_X1"));
        lib.add_cell(nand_cell());
        lib.add_cell(flop_cell());
        lib
    }

    #[test]
    fn clean_chain_has_no_loops() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        let n1 = nl.add_net("n1");
        nl.add_instance("u0", "INV_X1", &[("A", a), ("Y", n1)]);
        nl.add_instance("u1", "INV_X1", &[("A", n1), ("Y", y)]);
        assert!(combinational_loops(&nl, &lib()).is_empty());
    }

    #[test]
    fn two_gate_loop_found() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let n1 = nl.add_net("n1");
        let n2 = nl.add_net("n2");
        nl.add_instance("u0", "NAND2_X1", &[("A", a), ("B", n2), ("Y", n1)]);
        nl.add_instance("u1", "INV_X1", &[("A", n1), ("Y", n2)]);
        let loops = combinational_loops(&nl, &lib());
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0], vec![InstId::from_index(0), InstId::from_index(1)]);
    }

    #[test]
    fn downstream_of_loop_not_reported() {
        // u2 hangs off the loop but is not part of it.
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let y = nl.add_port("y", PortDir::Output);
        let n1 = nl.add_net("n1");
        let n2 = nl.add_net("n2");
        nl.add_instance("u0", "NAND2_X1", &[("A", a), ("B", n2), ("Y", n1)]);
        nl.add_instance("u1", "INV_X1", &[("A", n1), ("Y", n2)]);
        nl.add_instance("u2", "INV_X1", &[("A", n2), ("Y", y)]);
        let loops = combinational_loops(&nl, &lib());
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].len(), 2);
        assert!(!loops[0].contains(&InstId::from_index(2)));
    }

    #[test]
    fn flop_breaks_loop() {
        // Register feedback: NAND → DFF → back to NAND. Not combinational.
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let clk = nl.add_port("clk", PortDir::Input);
        let d = nl.add_net("d");
        let q = nl.add_net("q");
        nl.add_instance("g", "NAND2_X1", &[("A", a), ("B", q), ("Y", d)]);
        nl.add_instance("ff", "DFF_X1", &[("D", d), ("CK", clk), ("Q", q)]);
        assert!(combinational_loops(&nl, &lib()).is_empty());
    }

    #[test]
    fn two_disjoint_loops_both_found() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let mut mk_loop = |tag: &str| {
            let n1 = nl.add_net(&format!("{tag}_n1"));
            let n2 = nl.add_net(&format!("{tag}_n2"));
            nl.add_instance(&format!("{tag}_u0"), "NAND2_X1", &[("A", a), ("B", n2), ("Y", n1)]);
            nl.add_instance(&format!("{tag}_u1"), "INV_X1", &[("A", n1), ("Y", n2)]);
        };
        mk_loop("x");
        mk_loop("y");
        assert_eq!(combinational_loops(&nl, &lib()).len(), 2);
    }

    #[test]
    fn unknown_cells_are_ignored() {
        let mut nl = Netlist::new("m");
        let a = nl.add_port("a", PortDir::Input);
        let n1 = nl.add_net("n1");
        nl.add_instance("u0", "MYSTERY_X1", &[("A", a), ("Y", n1)]);
        assert!(combinational_loops(&nl, &lib()).is_empty());
    }
}
