//! Incremental static timing analysis.
//!
//! [`IncrementalSta`] keeps a persistent levelized timing graph and accepts
//! [`StaChange`] sets — per-instance re-annotation or resize ([`StaChange::Recell`]),
//! library swaps, constraint edits. It re-evaluates only the instances whose
//! timing can actually move (the seeded dirty set plus the value-changed
//! fanout cone) and is **bit-identical** to a fresh [`crate::analyze`] after
//! every change:
//!
//! - Per-instance evaluation is the *same code* ([`EvalCtx::eval_comb`] /
//!   [`EvalCtx::eval_flop`]) running against input nets that hold the same
//!   values a full analysis would produce, so re-evaluated nets get
//!   bit-identical results.
//! - Instances whose input values are bitwise unchanged are skipped: their
//!   evaluation is a pure function of input values, cell and load, so
//!   skipping reproduces the full-analysis result exactly.
//! - The backward required-time pass is an order-independent min-fold, so
//!   replaying stored per-instance edge lists in any valid topological order
//!   yields bit-identical required times.
//!
//! [`StaStats`] counts instances re-evaluated vs total so callers (the
//! sizing loop, perfbench, `RunContext` stages) can report cache
//! effectiveness.

use crate::graph::{extract_report, resolved_cells, BackEdge, EvalCtx, NetState};
use crate::report::TimingReport;
use crate::{Constraints, StaError};
use liberty::{CellClass, Library};
use netlist::{InstId, NetId, Netlist, NetlistError};
use std::collections::{HashMap, HashSet};

/// One edit to a live timing graph.
#[derive(Debug, Clone)]
pub enum StaChange {
    /// Point the instance at a different library cell: a λ re-annotation
    /// (same base cell, new tag) or a resize (same family, new strength).
    Recell {
        /// Instance to edit.
        inst: InstId,
        /// New library cell name.
        cell: String,
    },
    /// Replace the whole library (e.g. fresh ↔ aged corner). Always a full
    /// refresh.
    SwapLibrary(Library),
    /// Replace the constraints. Clock-period-only edits cost zero
    /// re-evaluations; slew/load edits refresh everything.
    SetConstraints(Constraints),
}

/// Cache-effectiveness counters for an [`IncrementalSta`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaStats {
    /// Instances in the design (the cost of one full analysis).
    pub instances_total: usize,
    /// Instances re-evaluated by the most recent change set.
    pub last_recomputed: usize,
    /// Instances re-evaluated since construction (including the initial
    /// full evaluation).
    pub recomputed_total: u64,
    /// Changes that forced a full structural refresh.
    pub full_refreshes: u64,
    /// Change sets applied.
    pub changes_applied: u64,
}

impl StaStats {
    /// Fraction of the design the last change set re-evaluated
    /// (`0.0` for an empty design).
    #[must_use]
    pub fn last_touched_fraction(&self) -> f64 {
        if self.instances_total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.last_recomputed as f64 / self.instances_total as f64
            }
        }
    }
}

/// A persistent, incrementally updatable timing graph.
///
/// Owns clones of the netlist, library and constraints; [`Self::apply`]
/// mutates them in place and repairs the timing state. [`Self::report`]
/// is bit-identical to `analyze(self.netlist(), self.library(),
/// self.constraints())` at every point in the change history.
#[derive(Debug)]
pub struct IncrementalSta {
    netlist: Netlist,
    library: Library,
    constraints: Constraints,
    input_slew: f64,
    output_load: f64,
    state: NetState,
    /// Back edges recorded per instance at its last evaluation.
    inst_edges: Vec<Vec<BackEdge>>,
    sinks: HashMap<NetId, Vec<(InstId, String)>>,
    drivers: HashMap<NetId, (InstId, String)>,
    output_nets: HashSet<NetId>,
    /// Combinational instances bucketed by logic level, ascending id within
    /// a level; flops are listed separately (they launch from the clock and
    /// never depend on upstream combinational timing).
    comb_levels: Vec<Vec<InstId>>,
    level_of: Vec<Option<usize>>,
    flops: Vec<InstId>,
    stats: StaStats,
    cache: Option<TimingReport>,
    poison: Option<StaError>,
}

impl IncrementalSta {
    /// Builds the timing graph and runs the initial full evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`StaError`] for the same structural problems a full
    /// [`crate::analyze`] would report.
    pub fn new(
        netlist: &Netlist,
        library: &Library,
        constraints: &Constraints,
    ) -> Result<Self, StaError> {
        let mut engine = IncrementalSta {
            netlist: netlist.clone(),
            library: library.clone(),
            constraints: constraints.clone(),
            input_slew: 0.0,
            output_load: 0.0,
            state: NetState::fresh(0, 0.0),
            inst_edges: Vec::new(),
            sinks: HashMap::new(),
            drivers: HashMap::new(),
            output_nets: HashSet::new(),
            comb_levels: Vec::new(),
            level_of: Vec::new(),
            flops: Vec::new(),
            stats: StaStats::default(),
            cache: None,
            poison: None,
        };
        engine.full_refresh()?;
        engine.stats.full_refreshes = 0; // the initial build is not a refresh
        Ok(engine)
    }

    /// The engine's current netlist (kept in sync with applied changes).
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The engine's current library.
    #[must_use]
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// The engine's current constraints.
    #[must_use]
    pub fn constraints(&self) -> &Constraints {
        &self.constraints
    }

    /// Cache-effectiveness counters.
    #[must_use]
    pub fn stats(&self) -> StaStats {
        self.stats
    }

    /// Applies a change set in order. Stops at the first failing change.
    ///
    /// # Errors
    ///
    /// Returns [`StaError`] when a change references an unknown cell or
    /// produces a netlist a full analysis would reject; the engine recovers
    /// to its pre-change state when it can and poisons itself otherwise.
    pub fn apply(&mut self, changes: &[StaChange]) -> Result<(), StaError> {
        if let Some(err) = &self.poison {
            return Err(err.clone());
        }
        self.stats.last_recomputed = 0;
        for change in changes {
            self.apply_one(change)?;
        }
        self.stats.changes_applied += 1;
        Ok(())
    }

    /// Convenience wrapper: applies one [`StaChange::Recell`].
    ///
    /// # Errors
    ///
    /// See [`Self::apply`].
    pub fn recell(&mut self, inst: InstId, cell: &str) -> Result<(), StaError> {
        self.apply(&[StaChange::Recell { inst, cell: cell.to_owned() }])
    }

    /// The timing report for the current netlist/library/constraints —
    /// bit-identical to a fresh [`crate::analyze`]. Cached until the next
    /// change.
    ///
    /// # Errors
    ///
    /// Returns the stored error when the engine is poisoned by a previous
    /// failed change.
    pub fn report(&mut self) -> Result<&TimingReport, StaError> {
        if let Some(err) = &self.poison {
            return Err(err.clone());
        }
        let report = match self.cache.take() {
            Some(report) => report,
            None => {
                let cells = resolved_cells(&self.netlist, &self.library)?;
                let mut back_edges = Vec::with_capacity(self.inst_edges.iter().map(Vec::len).sum());
                for &id in &self.flops {
                    back_edges.extend_from_slice(&self.inst_edges[id.index()]);
                }
                for level in &self.comb_levels {
                    for &id in level {
                        back_edges.extend_from_slice(&self.inst_edges[id.index()]);
                    }
                }
                extract_report(&self.netlist, &cells, &self.constraints, &self.state, &back_edges)
            }
        };
        Ok(self.cache.insert(report))
    }

    /// Worst endpoint arrival (the critical delay).
    ///
    /// # Errors
    ///
    /// See [`Self::report`].
    pub fn critical_delay(&mut self) -> Result<f64, StaError> {
        Ok(self.report()?.critical_delay())
    }

    fn apply_one(&mut self, change: &StaChange) -> Result<(), StaError> {
        match change {
            StaChange::SwapLibrary(library) => {
                self.library = library.clone();
                self.full_refresh()
            }
            StaChange::SetConstraints(constraints) => {
                let slew = constraints.input_slew.unwrap_or(self.library.default_input_slew);
                let load = constraints.output_load.unwrap_or(self.library.default_output_load);
                let forward_unchanged = slew.to_bits() == self.input_slew.to_bits()
                    && load.to_bits() == self.output_load.to_bits();
                self.constraints = constraints.clone();
                if forward_unchanged {
                    // Clock-period-only edit: the forward state is untouched;
                    // only the report (required times, slacks) changes.
                    self.cache = None;
                    Ok(())
                } else {
                    self.full_refresh()
                }
            }
            StaChange::Recell { inst, cell } => self.apply_recell(*inst, cell),
        }
    }

    fn apply_recell(&mut self, inst: InstId, cell: &str) -> Result<(), StaError> {
        let instance = self.netlist.instance(inst);
        let old_name = instance.cell.clone();
        if old_name == *cell {
            return Ok(());
        }
        let Some(new_cell) = self.library.cell(cell) else {
            return Err(StaError::Netlist(NetlistError::UnknownCell {
                instance: instance.name.clone(),
                cell: cell.to_owned(),
            }));
        };
        let old_cell = self.library.cell(&old_name);
        let compatible = old_cell.is_some_and(|old| {
            let kind_ok = match (&old.class, &new_cell.class) {
                (CellClass::Combinational, CellClass::Combinational) => true,
                (
                    CellClass::Flop { clock: c0, data: d0, .. },
                    CellClass::Flop { clock: c1, data: d1, .. },
                ) => c0 == c1 && d0 == d1,
                _ => false,
            };
            kind_ok
                && instance.connections.iter().all(|(pin, _)| {
                    let roles = |c: &liberty::Cell| {
                        (
                            c.inputs.iter().any(|p| &p.name == pin),
                            c.outputs.iter().any(|p| &p.name == pin),
                        )
                    };
                    roles(old) == roles(new_cell)
                })
        });

        self.netlist.instance_mut(inst).cell = cell.to_owned();
        let result = if compatible {
            self.repropagate_from(inst)
        } else {
            // Pin roles or sequential class changed: sinks/drivers/levels are
            // stale, rebuild everything.
            self.full_refresh()
        };
        if let Err(err) = result {
            // Restore the pre-change netlist and state so a failed change
            // leaves the engine usable; poison it if even that fails.
            self.netlist.instance_mut(inst).cell = old_name;
            if let Err(fatal) = self.full_refresh() {
                self.poison = Some(fatal);
            }
            return Err(err);
        }
        Ok(())
    }

    /// Re-evaluates the dirty cone of `inst` after a pin-role-compatible
    /// recell. Seeds are the instance itself plus the drivers of every
    /// connected net (their load may have changed with the new input caps);
    /// dirt then propagates to combinational sinks of any net whose value
    /// bits changed.
    fn repropagate_from(&mut self, inst: InstId) -> Result<(), StaError> {
        let n_inst = self.netlist.instance_count();
        let mut dirty = vec![false; n_inst];
        dirty[inst.index()] = true;
        for (_, net) in &self.netlist.instance(inst).connections {
            if let Some((driver, _)) = self.drivers.get(net) {
                dirty[driver.index()] = true;
            }
        }

        let cells = resolved_cells(&self.netlist, &self.library)?;
        let ctx = EvalCtx {
            netlist: &self.netlist,
            library: &self.library,
            sinks: &self.sinks,
            output_nets: &self.output_nets,
            input_slew: self.input_slew,
            output_load: self.output_load,
        };

        let mut recomputed = 0usize;
        // Flops first: their launch values depend only on their own cell and
        // Q-net load, never on upstream timing, so they cannot become dirty
        // transitively — only seeding reaches them.
        for &id in &self.flops {
            if !dirty[id.index()] {
                continue;
            }
            recomputed += 1;
            let changed = Self::reeval(
                &ctx,
                id,
                cells[id.index()],
                &mut self.state,
                &mut self.inst_edges[id.index()],
                self.input_slew,
            )?;
            for net in changed {
                for (sink, _) in self.sinks.get(&net).map_or(&[][..], Vec::as_slice) {
                    if self.level_of[sink.index()].is_some() {
                        dirty[sink.index()] = true;
                    }
                }
            }
        }
        // Then combinational levels in ascending order: every sink of a
        // level-L output sits at a strictly higher level, so each instance
        // is evaluated after all of its fanin settled.
        for level in 0..self.comb_levels.len() {
            for k in 0..self.comb_levels[level].len() {
                let id = self.comb_levels[level][k];
                if !dirty[id.index()] {
                    continue;
                }
                recomputed += 1;
                let changed = Self::reeval(
                    &ctx,
                    id,
                    cells[id.index()],
                    &mut self.state,
                    &mut self.inst_edges[id.index()],
                    self.input_slew,
                )?;
                for net in changed {
                    for (sink, _) in self.sinks.get(&net).map_or(&[][..], Vec::as_slice) {
                        if self.level_of[sink.index()].is_some() {
                            dirty[sink.index()] = true;
                        }
                    }
                }
            }
        }

        self.stats.last_recomputed += recomputed;
        self.stats.recomputed_total += recomputed as u64;
        self.cache = None;
        Ok(())
    }

    /// Resets the instance's output nets, re-runs the shared evaluation and
    /// returns the output nets whose value bits changed.
    fn reeval(
        ctx: &EvalCtx<'_>,
        id: InstId,
        cell: &liberty::Cell,
        state: &mut NetState,
        edges: &mut Vec<BackEdge>,
        input_slew: f64,
    ) -> Result<Vec<NetId>, StaError> {
        let inst = ctx.netlist.instance(id);
        let out_nets: Vec<NetId> =
            cell.outputs.iter().filter_map(|o| inst.net_on(&o.name)).collect();
        let before: Vec<[u64; 6]> = out_nets.iter().map(|n| state.value_bits(n.index())).collect();
        for net in &out_nets {
            state.reset_net(net.index(), input_slew);
        }
        edges.clear();
        match &cell.class {
            CellClass::Flop { .. } => ctx.eval_flop(id, cell, state, edges)?,
            CellClass::Combinational => ctx.eval_comb(id, cell, state, edges)?,
        }
        Ok(out_nets
            .into_iter()
            .zip(before)
            .filter(|(net, old)| state.value_bits(net.index()) != *old)
            .map(|(net, _)| net)
            .collect())
    }

    /// Rebuilds structure (sinks, drivers, levels) and re-evaluates every
    /// instance from scratch.
    fn full_refresh(&mut self) -> Result<(), StaError> {
        self.netlist.validate(&self.library)?;
        let cells = resolved_cells(&self.netlist, &self.library)?;
        self.sinks = self.netlist.sinks(&self.library)?;
        self.drivers = self.netlist.drivers(&self.library)?;
        self.output_nets = self.netlist.output_nets().collect();
        self.input_slew = self.constraints.input_slew.unwrap_or(self.library.default_input_slew);
        self.output_load = self.constraints.output_load.unwrap_or(self.library.default_output_load);

        let n_nets = self.netlist.net_count();
        let n_inst = self.netlist.instance_count();

        // Levelize: nets with no combinational driver are level 0 (primary
        // inputs, undriven nets, flop outputs); a combinational instance
        // sits one level above its deepest input net.
        let mut net_level: Vec<Option<usize>> = vec![None; n_nets];
        self.level_of = vec![None; n_inst];
        self.flops = Vec::new();
        let mut comb: Vec<InstId> = Vec::new();
        for id in self.netlist.instance_ids() {
            match &cells[id.index()].class {
                CellClass::Flop { .. } => self.flops.push(id),
                CellClass::Combinational => comb.push(id),
            }
        }
        for (k, slot) in net_level.iter_mut().enumerate() {
            let comb_driven = self
                .drivers
                .get(&NetId::from_index(k))
                .is_some_and(|(id, _)| matches!(cells[id.index()].class, CellClass::Combinational));
            if !comb_driven {
                *slot = Some(0);
            }
        }
        let mut remaining = comb;
        let mut max_level = 0usize;
        loop {
            let mut progressed = false;
            let mut next_round = Vec::with_capacity(remaining.len());
            for id in remaining.drain(..) {
                let inst = self.netlist.instance(id);
                let cell = cells[id.index()];
                let depth = cell.inputs.iter().try_fold(0usize, |acc, p| {
                    let net = inst.net_on(&p.name)?;
                    Some(acc.max(net_level[net.index()]?))
                });
                let Some(depth) = depth else {
                    next_round.push(id);
                    continue;
                };
                progressed = true;
                self.level_of[id.index()] = Some(depth);
                max_level = max_level.max(depth);
                for out in &cell.outputs {
                    if let Some(net) = inst.net_on(&out.name) {
                        net_level[net.index()] = Some(depth + 1);
                    }
                }
            }
            if next_round.is_empty() {
                break;
            }
            if !progressed {
                let on_cycle = crate::loops::combinational_loops(&self.netlist, &self.library)
                    .into_iter()
                    .flatten()
                    .next()
                    .unwrap_or(next_round[0]);
                let name = self.netlist.instance(on_cycle).name.clone();
                return Err(StaError::CombinationalLoop { instance: name });
            }
            remaining = next_round;
        }
        self.comb_levels = vec![Vec::new(); max_level + 1];
        for id in self.netlist.instance_ids() {
            if let Some(level) = self.level_of[id.index()] {
                self.comb_levels[level].push(id);
            }
        }
        // Kahn rounds do not visit in id order; normalize for determinism.
        for level in &mut self.comb_levels {
            level.sort_unstable();
        }

        // Full forward evaluation: flops, then levels ascending. Each
        // instance reads only settled fanin, so the resulting state is
        // bit-identical to analyze()'s Kahn order.
        self.state = NetState::fresh(n_nets, self.input_slew);
        self.inst_edges = vec![Vec::new(); n_inst];
        let ctx = EvalCtx {
            netlist: &self.netlist,
            library: &self.library,
            sinks: &self.sinks,
            output_nets: &self.output_nets,
            input_slew: self.input_slew,
            output_load: self.output_load,
        };
        for &id in &self.flops {
            ctx.eval_flop(
                id,
                cells[id.index()],
                &mut self.state,
                &mut self.inst_edges[id.index()],
            )?;
        }
        for level in &self.comb_levels {
            for &id in level {
                ctx.eval_comb(
                    id,
                    cells[id.index()],
                    &mut self.state,
                    &mut self.inst_edges[id.index()],
                )?;
            }
        }

        self.stats.instances_total = n_inst;
        self.stats.last_recomputed += n_inst;
        self.stats.recomputed_total += n_inst as u64;
        self.stats.full_refreshes += 1;
        self.cache = None;
        self.poison = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use liberty::Cell;
    use netlist::PortDir;

    fn lib() -> Library {
        let mut lib = Library::new("lib", 1.2);
        lib.add_cell(Cell::test_inverter("INV_X1"));
        let mut big = Cell::test_inverter("INV_X4");
        for pin in &mut big.inputs {
            pin.capacitance *= 4.0;
        }
        for out in &mut big.outputs {
            for arc in &mut out.arcs {
                arc.cell_rise = arc.cell_rise.map(|v| v * 0.5);
                arc.cell_fall = arc.cell_fall.map(|v| v * 0.5);
                arc.rise_transition = arc.rise_transition.map(|v| v * 0.5);
                arc.fall_transition = arc.fall_transition.map(|v| v * 0.5);
            }
        }
        lib.add_cell(big);
        lib
    }

    fn chain(n: usize) -> Netlist {
        let mut nl = Netlist::new("chain");
        let mut prev = nl.add_port("a", PortDir::Input);
        for k in 0..n {
            let next = if k + 1 == n {
                nl.add_port("y", PortDir::Output)
            } else {
                nl.add_net(&format!("n{k}"))
            };
            nl.add_instance(&format!("u{k}"), "INV_X1", &[("A", prev), ("Y", next)]);
            prev = next;
        }
        nl
    }

    #[test]
    fn initial_report_matches_analyze() {
        let lib = lib();
        let nl = chain(6);
        let constraints = Constraints::with_clock(1e-9);
        let full = analyze(&nl, &lib, &constraints).unwrap();
        let mut inc = IncrementalSta::new(&nl, &lib, &constraints).unwrap();
        assert_eq!(inc.report().unwrap(), &full);
        assert_eq!(inc.stats().instances_total, 6);
        assert_eq!(inc.stats().recomputed_total, 6);
    }

    #[test]
    fn recell_matches_fresh_analyze_and_touches_a_cone() {
        let lib = lib();
        let nl = chain(8);
        let constraints = Constraints::default();
        let mut inc = IncrementalSta::new(&nl, &lib, &constraints).unwrap();
        // Resize the tail instance: only itself and the load-affected
        // predecessor driver need re-evaluation.
        let tail = InstId::from_index(7);
        inc.recell(tail, "INV_X4").unwrap();
        assert!(inc.stats().last_recomputed <= 3, "{:?}", inc.stats());
        let mut reference = nl.clone();
        reference.instance_mut(tail).cell = "INV_X4".into();
        let full = analyze(&reference, &lib, &constraints).unwrap();
        assert_eq!(inc.report().unwrap(), &full);
        assert_eq!(inc.netlist(), &reference);
    }

    #[test]
    fn head_recell_repropagates_downstream() {
        let lib = lib();
        let nl = chain(8);
        let mut inc = IncrementalSta::new(&nl, &lib, &Constraints::default()).unwrap();
        inc.recell(InstId::from_index(0), "INV_X4").unwrap();
        // The head's slew change propagates the whole chain.
        assert_eq!(inc.stats().last_recomputed, 8);
        let mut reference = nl.clone();
        reference.instance_mut(InstId::from_index(0)).cell = "INV_X4".into();
        let full = analyze(&reference, &lib, &Constraints::default()).unwrap();
        assert_eq!(inc.report().unwrap(), &full);
    }

    #[test]
    fn recell_to_same_strength_is_free_and_revert_restores() {
        let lib = lib();
        let nl = chain(5);
        let mut inc = IncrementalSta::new(&nl, &lib, &Constraints::default()).unwrap();
        let before = inc.report().unwrap().clone();
        let mid = InstId::from_index(2);
        inc.recell(mid, "INV_X1").unwrap(); // no-op recell
        assert_eq!(inc.stats().last_recomputed, 0);
        inc.recell(mid, "INV_X4").unwrap();
        inc.recell(mid, "INV_X1").unwrap(); // revert
        assert_eq!(inc.report().unwrap(), &before);
    }

    #[test]
    fn unknown_cell_is_rejected_and_engine_survives() {
        let lib = lib();
        let nl = chain(4);
        let mut inc = IncrementalSta::new(&nl, &lib, &Constraints::default()).unwrap();
        let err = inc.recell(InstId::from_index(1), "NO_SUCH_CELL").unwrap_err();
        assert!(matches!(err, StaError::Netlist(NetlistError::UnknownCell { .. })));
        let full = analyze(&nl, &lib, &Constraints::default()).unwrap();
        assert_eq!(inc.report().unwrap(), &full);
    }

    #[test]
    fn clock_only_constraint_edit_recomputes_nothing() {
        let lib = lib();
        let nl = chain(6);
        let mut inc = IncrementalSta::new(&nl, &lib, &Constraints::default()).unwrap();
        let evals = inc.stats().recomputed_total;
        inc.apply(&[StaChange::SetConstraints(Constraints::with_clock(2e-9))]).unwrap();
        assert_eq!(inc.stats().recomputed_total, evals);
        assert_eq!(inc.stats().last_recomputed, 0);
        let full = analyze(&nl, &lib, &Constraints::with_clock(2e-9)).unwrap();
        assert_eq!(inc.report().unwrap(), &full);
    }

    #[test]
    fn library_swap_is_a_full_refresh() {
        let lib = lib();
        let mut slow = Library::new("slow", lib.vdd);
        for cell in lib.cells() {
            let mut cell = cell.clone();
            for out in &mut cell.outputs {
                for arc in &mut out.arcs {
                    arc.cell_rise = arc.cell_rise.map(|v| v * 1.3);
                    arc.cell_fall = arc.cell_fall.map(|v| v * 1.3);
                }
            }
            slow.add_cell(cell);
        }
        let nl = chain(5);
        let mut inc = IncrementalSta::new(&nl, &lib, &Constraints::default()).unwrap();
        inc.apply(&[StaChange::SwapLibrary(slow.clone())]).unwrap();
        assert_eq!(inc.stats().full_refreshes, 1);
        let full = analyze(&nl, &slow, &Constraints::default()).unwrap();
        assert_eq!(inc.report().unwrap(), &full);
    }

    fn flop_cell() -> Cell {
        use liberty::{BoolExpr, InputPin, OutputPin, Table2d, TimingArc, TimingSense};
        let t = Table2d::constant(20e-12, 4e-15, 50e-12);
        Cell {
            name: "DFF_X1".into(),
            area: 4.0,
            class: CellClass::Flop {
                clock: "CK".into(),
                data: "D".into(),
                setup: 30e-12,
                hold: 5e-12,
            },
            inputs: vec![
                InputPin { name: "D".into(), capacitance: 1.2e-15 },
                InputPin { name: "CK".into(), capacitance: 0.8e-15 },
            ],
            outputs: vec![OutputPin {
                name: "Q".into(),
                function: BoolExpr::var("D"),
                max_capacitance: 30e-15,
                arcs: vec![TimingArc {
                    related_pin: "CK".into(),
                    sense: TimingSense::PositiveUnate,
                    cell_rise: t.clone(),
                    cell_fall: t.clone(),
                    rise_transition: t.map(|_| 15e-12),
                    fall_transition: t.map(|_| 15e-12),
                }],
            }],
        }
    }

    #[test]
    fn flop_pipeline_recell_stays_bit_identical() {
        let mut lib = lib();
        lib.add_cell(flop_cell());
        let mut nl = Netlist::new("pipe");
        let clk = nl.add_port("clk", PortDir::Input);
        let d = nl.add_port("d", PortDir::Input);
        let q1 = nl.add_net("q1");
        let n1 = nl.add_net("n1");
        let q2 = nl.add_port("q", PortDir::Output);
        nl.add_instance("ff0", "DFF_X1", &[("D", d), ("CK", clk), ("Q", q1)]);
        nl.add_instance("u0", "INV_X1", &[("A", q1), ("Y", n1)]);
        nl.add_instance("ff1", "DFF_X1", &[("D", n1), ("CK", clk), ("Q", q2)]);
        let constraints = Constraints::with_clock(1e-9);
        let mut inc = IncrementalSta::new(&nl, &lib, &constraints).unwrap();
        inc.recell(InstId::from_index(1), "INV_X4").unwrap();
        let mut reference = nl.clone();
        reference.instance_mut(InstId::from_index(1)).cell = "INV_X4".into();
        let full = analyze(&reference, &lib, &constraints).unwrap();
        assert_eq!(inc.report().unwrap(), &full);
        // The resize changed the Q-net load of ff0, so ff0 was re-launched.
        assert!(inc.stats().last_recomputed >= 2);
    }
}
